"""Table IV — off-grid PV dimensioning at Madrid / Lyon / Vienna / Berlin.

Asserts the paper's sizing outcome (standard system in Madrid/Lyon, doubled
battery in Vienna, doubled battery + 600 Wp in Berlin) and the published
"days with full battery" ordering.
"""

import pytest

from repro import constants
from repro.experiments.table4 import run_table4


def bench_table4_sizing(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    s = result.sizings
    assert (s["madrid"].pv_peak_w, s["madrid"].battery_capacity_wh) == (540.0, 720.0)
    assert (s["lyon"].pv_peak_w, s["lyon"].battery_capacity_wh) == (540.0, 720.0)
    assert (s["vienna"].pv_peak_w, s["vienna"].battery_capacity_wh) == (540.0, 1440.0)
    assert (s["berlin"].pv_peak_w, s["berlin"].battery_capacity_wh) == (600.0, 1440.0)

    assert result.full_days_ordering() == ["madrid", "lyon", "vienna", "berlin"]
    for key, sizing in s.items():
        assert sizing.result.zero_downtime, key
        paper = constants.PAPER_FULL_BATTERY_DAYS_PCT[key]
        assert sizing.result.full_battery_days_pct == pytest.approx(paper, abs=2.5), key


def bench_table4_single_year_sim(benchmark):
    """Microbenchmark of one hourly off-grid year simulation."""
    from repro.solar.climates import LOCATIONS
    from repro.solar.offgrid import OffGridSystem

    result = benchmark(lambda: OffGridSystem(LOCATIONS["vienna"]).simulate_year())
    assert result.days == 365

"""Event vs. batched day simulation — the PR-acceptance speedup benchmark.

The event reference walks 200 seeded Poisson timetable days one at a time
through the scalar event queue (heapq, callbacks, per-event energy updates).
The batched engine (:func:`repro.simulation.batch.simulate_days`) evaluates
the same fleet as stacked ``[realization, element, run]`` interval tensors
with one short scan over merged occupancy groups.

Asserts (a) per-element active seconds, awake seconds and energies equal to
1e-9 across every realization (identical timetable objects, bit-identical
event instants) and (b) a >= 10x wall-time speedup for the batched engine.
"""

import os
import time

import numpy as np

from repro.corridor.layout import CorridorLayout
from repro.energy.scenario import OperatingMode
from repro.simulation.batch import simulate_days
from repro.traffic.timetable import day_timetables

N_REPEATERS = 8
ISD_M = 2400.0
REALIZATIONS = 200
SEED = 0


def _max_rel_diff(a, b):
    return float(np.max(np.abs(a - b) / np.maximum(1.0, np.abs(b))))


def bench_sim_batch_speedup(benchmark, bench_json):
    layout = CorridorLayout.with_uniform_repeaters(ISD_M, N_REPEATERS)
    timetables = day_timetables(realizations=REALIZATIONS, seed=SEED,
                                segment_length_m=ISD_M)

    t0 = time.perf_counter()
    event = simulate_days(layout, mode=OperatingMode.SLEEP,
                          timetables=timetables, engine="event")
    event_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = benchmark.pedantic(
        lambda: simulate_days(layout, mode=OperatingMode.SLEEP,
                              timetables=timetables, engine="batch"),
        rounds=1, iterations=1)
    batched_s = time.perf_counter() - t0

    # Trial-for-trial parity (the PR acceptance criterion): both engines see
    # bit-identical event instants; the measures differ only by float
    # summation order, bounded at 1e-9.
    diffs = {name: _max_rel_diff(getattr(batched, name), getattr(event, name))
             for name in ("active_s", "awake_s", "energy_wh")}
    for name, diff in diffs.items():
        assert diff <= 1e-9, f"{name} diverges between engines: {diff:.2e}"
    assert batched.element_names == event.element_names

    # The stochastic fleet brackets the deterministic day: sleep-mode energy
    # varies across Poisson days but stays near the analytic figure.
    assert batched.avg_w_per_km.std() > 0.0

    speedup = event_s / batched_s
    bench_json("sim", {
        "grid": {"realizations": REALIZATIONS, "isd_m": ISD_M,
                 "n_repeaters": N_REPEATERS, "seed": SEED,
                 "elements": len(batched.element_names)},
        "event_s": event_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "max_rel_diff": diffs,
        "threshold": 10.0,
    })
    # Shared CI runners have noisy neighbours and unstable clocks, so the
    # timing threshold is advisory there (the parity assertions always hold).
    if os.environ.get("CI"):
        print(f"batched sim speedup: {speedup:.1f}x (threshold not "
              "enforced under CI)")
    else:
        assert speedup >= 10.0, f"batched sim engine only {speedup:.1f}x faster"

"""Scalar vs. batched Monte-Carlo shadowing — the PR-acceptance speedup benchmark.

The scalar reference walks the AR(1) recurrence one (candidate, trial)
pair at a time in Python, drawing one standard normal per position — the
seed robustness loop's shape, though it too now benefits from the hoisted
(memoized) per-step coefficients, so the gate understates the win over the
original seed code.  The batched engine
(:func:`repro.optimize.mc.outage_matrix`) draws one shared standard-normal
matrix and advances a ``[candidate, trial]`` shadow state with position as
the only sequential loop.

Asserts (a) trial-for-trial bit-identical outage counts and min-SNR samples
on a 20-candidate x 500-trial grid and (b) a >= 10x wall-time speedup for
the batched engine.
"""

import os
import time

import numpy as np

from repro.corridor.layout import CorridorLayout
from repro.optimize.mc import outage_matrix
from repro.propagation.fading import LogNormalShadowing
from repro.radio.batch import evaluate_scenarios
from repro.scenario.spec import Scenario

N_REPEATERS = 8
N_CANDIDATES = 20
TRIALS = 500
RESOLUTION_M = 10.0
SIGMA_DB = 2.0


def _profiles():
    """20 candidate ISDs in 50 m steps around the paper's N=8 maximum."""
    isds = 2000.0 + 50.0 * np.arange(N_CANDIDATES)
    layouts = [CorridorLayout.with_uniform_repeaters(float(isd), N_REPEATERS)
               for isd in isds]
    return evaluate_scenarios(
        [Scenario(layout=lo, resolution_m=RESOLUTION_M) for lo in layouts])


def bench_mc_shadowing_speedup(benchmark, bench_json):
    profiles = _profiles()
    assert len(profiles) == N_CANDIDATES
    shadowing = LogNormalShadowing(sigma_db=SIGMA_DB)

    t0 = time.perf_counter()
    scalar = outage_matrix(profiles, shadowing, trials=TRIALS, engine="scalar")
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = benchmark.pedantic(
        lambda: outage_matrix(profiles, shadowing, trials=TRIALS),
        rounds=1, iterations=1)
    batched_s = time.perf_counter() - t0

    # Bit-identical min-SNR samples and outage counts (the PR acceptance
    # criterion): same per-trial streams, same draw order, same arithmetic.
    # The default (fused) backend is pinned <= 1e-9 instead — the reference
    # backend is the bit-exact anchor (see benchmarks/bench_backend.py).
    reference = outage_matrix(profiles, shadowing, trials=TRIALS,
                              backend="reference")
    assert np.array_equal(reference.min_snr_db, scalar.min_snr_db)
    assert np.array_equal(reference.outage_counts, scalar.outage_counts)
    np.testing.assert_allclose(batched.min_snr_db, scalar.min_snr_db,
                               rtol=0.0, atol=1e-9)
    assert np.array_equal(batched.outage_counts, scalar.outage_counts)
    # The stretched candidates around the registered maximum are fragile
    # under shadowing, and common random numbers keep the outage curve
    # rising across the ladder (trial noise cancels between candidates).
    outages = batched.outage_probability
    assert outages[-1] > 0.5
    assert outages[0] < outages[-1]

    # ...at a >= 10x wall-time speedup.  Shared CI runners have noisy
    # neighbours and unstable clocks, so the timing threshold is advisory
    # there (the bit-identity assertions above always hold).
    speedup = scalar_s / batched_s
    bench_json("mc", {
        "grid": {"candidates": N_CANDIDATES, "trials": TRIALS,
                 "resolution_m": RESOLUTION_M, "sigma_db": SIGMA_DB},
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "threshold": 10.0,
    })
    if os.environ.get("CI"):
        print(f"batched MC speedup: {speedup:.1f}x (threshold not "
              "enforced under CI)")
    else:
        assert speedup >= 10.0, f"batched MC engine only {speedup:.1f}x faster"

"""Extension benches — the operator-facing analyses beyond the paper.

* EMF: the siting constraint in numbers (HP needs ~46 m clearance under the
  strict national limits the paper lists; the 10 W repeater complies within
  3 m — mountable on any catenary mast),
* uplink closure at every registered operating point,
* per-traversal data volume parity ("maintaining the same data capacity"),
* 10-year economics of the three deployment strategies.
"""

import pytest

from repro.experiments.extensions import (
    run_economics,
    run_emf,
    run_traversal,
    run_uplink,
)


def bench_emf_compliance(benchmark):
    result = benchmark(run_emf)
    assert result.hp["switzerland"] > 40.0
    assert all(d < 3.5 for d in result.lp.values())


def bench_uplink_closure(benchmark):
    result = benchmark.pedantic(lambda: run_uplink(resolution_m=5.0),
                                rounds=1, iterations=1)
    for n, isd, ul, dl in result.rows:
        assert ul > 0.0, f"N={n} @ {isd} m"
        assert dl > ul


def bench_traversal_volume(benchmark):
    result = benchmark.pedantic(run_traversal, rounds=1, iterations=1)
    per_km = [r[3] for r in result.rows]
    assert max(per_km) / min(per_km) < 1.05


def bench_economics_ten_years(benchmark):
    result = benchmark(run_economics)
    totals = {r[0]: r[4] for r in result.rows}
    assert totals["repeaters, sleep"] < 0.5 * totals["conventional"]

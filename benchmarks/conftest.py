"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md section 5) and asserts the reproduced values, so the benchmark run
doubles as an end-to-end verification pass:

    pytest benchmarks/ --benchmark-only

Slow experiments use ``benchmark.pedantic`` with a single round; fast kernels
let pytest-benchmark calibrate itself.

When ``BENCH_JSON_DIR`` is set, speedup benchmarks additionally emit
``BENCH_<name>.json`` files (wall times and speedup ratios) through the
``bench_json`` fixture; CI uploads that directory as a workflow artifact so
the performance trajectory is tracked across PRs.
"""

import json
import os
from pathlib import Path

import pytest


@pytest.fixture
def bench_json():
    """Writer for ``$BENCH_JSON_DIR/BENCH_<name>.json`` perf records.

    A no-op when ``BENCH_JSON_DIR`` is unset, so local benchmark runs need no
    extra setup.
    """
    def write(name: str, payload: dict) -> None:
        out_dir = os.environ.get("BENCH_JSON_DIR")
        if not out_dir:
            return
        path = Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        with open(path / f"BENCH_{name}.json", "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)

    return write

"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md section 5) and asserts the reproduced values, so the benchmark run
doubles as an end-to-end verification pass:

    pytest benchmarks/ --benchmark-only

Slow experiments use ``benchmark.pedantic`` with a single round; fast kernels
let pytest-benchmark calibrate itself.
"""

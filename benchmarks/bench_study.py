"""Inline vs. process-pool study execution — the PR-acceptance benchmark.

A 2-axis declarative study (ISD x trains/day through the day-simulation
engine, a fleet of seeded Poisson days per cell) runs twice through
:func:`repro.study.runner.run_study`: inline (``jobs=1``) and sharded across
a process pool (``jobs=4``).

Asserts (a) the merged tidy tables are **bit-identical** — the CRN seeding
contract makes results independent of the shard layout and job count — and
(b) a >= 2x wall-time speedup for the pooled run.  The speedup gate needs
real parallel hardware, so it is enforced only when the machine has >= 4
CPUs and skipped (with the parity assertions still run) on smaller boxes
and shared CI runners.
"""

import os
import time

from repro.study import parse_study, run_study

JOBS = 4
THRESHOLD = 2.0

STUDY_TEXT = """
name: bench-study
engine: sim
seed: 0
axes:
  isd_m: [1800.0, 2100.0, 2400.0, 2700.0]
  trains_per_day: [76.0, 152.0]
fixed:
  n_repeaters: 8
  headway_s: 450.0
  policy: sleep
  realizations: 250
derived:
  bias_pct: 100 * (mean_w_per_km / analytic_w_per_km - 1)
"""


def bench_study_parallel_speedup(benchmark, bench_json):
    spec = parse_study(STUDY_TEXT)
    assert spec.case_count == 8

    t0 = time.perf_counter()
    inline = run_study(spec, jobs=1, shards=8)
    inline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = benchmark.pedantic(
        lambda: run_study(spec, jobs=JOBS, shards=8),
        rounds=1, iterations=1)
    pooled_s = time.perf_counter() - t0

    # Shard/job-count invariance (the PR acceptance criterion): the pooled
    # run's merged tidy table is bit-identical to the inline run's.
    assert pooled.table.long() == inline.table.long()
    assert pooled.jobs == JOBS and not pooled.partial

    speedup = inline_s / pooled_s
    cpus = os.cpu_count() or 1
    bench_json("study", {
        "grid": {"cases": spec.case_count, "engine": spec.engine,
                 "realizations": 250, "jobs": JOBS, "shards": 8},
        "inline_s": inline_s,
        "pooled_s": pooled_s,
        "speedup": speedup,
        "cpus": cpus,
        "threshold": THRESHOLD,
        # A <4-CPU box cannot demonstrate a 2x pool speedup at all; the
        # summary tool reports unenforced gates as advisory, not failed.
        "enforced": cpus >= JOBS,
    })
    # Shared CI runners have noisy neighbours and unstable clocks, so the
    # timing threshold is advisory there (the parity assertion always holds);
    # likewise a <4-CPU box cannot demonstrate a 2x pool speedup at all.
    if os.environ.get("CI") or cpus < JOBS:
        print(f"study pool speedup: {speedup:.1f}x on {cpus} CPUs "
              "(threshold not enforced)")
    else:
        assert speedup >= THRESHOLD, \
            f"process-pool study run only {speedup:.1f}x faster"

"""Inline vs. process-pool study execution — the PR-acceptance benchmark.

A 2-axis declarative study (ISD x trains/day through the day-simulation
engine, a fleet of seeded Poisson days per cell) runs twice through
:func:`repro.study.runner.run_study`: inline (``jobs=1``) and sharded across
a process pool (``jobs=4``).

Asserts (a) the merged tidy tables are **bit-identical** — the CRN seeding
contract makes results independent of the shard layout and job count — and
(b) a >= 2x wall-time speedup for the pooled run.  The speedup gate needs
real parallel hardware, so it is enforced only when the machine has >= 4
CPUs and skipped (with the parity assertions still run) on smaller boxes
and shared CI runners.

A third leg measures **supervisor overhead**: the same pooled run with the
full retry/timeout machinery armed (``retries=2``, a generous
``shard_timeout``) but no faults firing must stay within 10% of the plain
pooled wall time — the fault-tolerance layer is free when nothing fails.
The overhead gate rides in the same ``BENCH_study.json`` record (as
``overhead.speedup`` = plain / supervised, threshold 1/1.1).

A journal-emit micro-benchmark rides along in ``overhead.journal``: the
persistent-append-handle :class:`~repro.study.journal.RunJournal` writer
vs. a naive open/write/close per event, over the same record shape.
"""

import json
import os
import time

from repro.study import RunJournal, parse_study, run_study

JOBS = 4
THRESHOLD = 2.0
#: Max fractional wall-time overhead of the armed (fault-free) supervisor.
OVERHEAD_FRAC = 0.10

STUDY_TEXT = """
name: bench-study
engine: sim
seed: 0
axes:
  isd_m: [1800.0, 2100.0, 2400.0, 2700.0]
  trains_per_day: [76.0, 152.0]
fixed:
  n_repeaters: 8
  headway_s: 450.0
  policy: sleep
  realizations: 250
derived:
  bias_pct: 100 * (mean_w_per_km / analytic_w_per_km - 1)
"""


#: Events per leg of the journal-emit micro-benchmark.
JOURNAL_EVENTS = 2000


def _bench_journal_emit(tmp_dir) -> dict:
    """Persistent-handle vs open/write/close-per-event journal appends.

    The :class:`~repro.study.journal.RunJournal` writer keeps one append
    handle open across a run (one ``write`` + ``flush`` per event); the
    naive alternative reopens the file for every event.  Both legs write
    the same ``finish``-shaped records; the ratio lands in the
    ``overhead.journal`` node of ``BENCH_study.json``.
    """
    fields = {"shard": 3, "start": 0, "stop": 64, "attempt": 1,
              "wall_s": 0.25}

    naive_path = os.path.join(tmp_dir, "naive.jsonl")
    t0 = time.perf_counter()
    for _ in range(JOURNAL_EVENTS):
        record = {"event": "finish", "t": time.time(), **fields}
        with open(naive_path, "a") as handle:
            handle.write(json.dumps(record) + "\n")
    naive_s = time.perf_counter() - t0

    journal = RunJournal(os.path.join(tmp_dir, "run.jsonl"))
    t0 = time.perf_counter()
    for _ in range(JOURNAL_EVENTS):
        journal.emit("finish", **fields)
    persistent_s = time.perf_counter() - t0
    journal.close()

    return {
        "events": JOURNAL_EVENTS,
        "naive_open_close_s": naive_s,
        "persistent_handle_s": persistent_s,
        "speedup": naive_s / persistent_s,
    }


def bench_study_parallel_speedup(benchmark, bench_json, tmp_path):
    spec = parse_study(STUDY_TEXT)
    assert spec.case_count == 8

    t0 = time.perf_counter()
    inline = run_study(spec, jobs=1, shards=8)
    inline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = benchmark.pedantic(
        lambda: run_study(spec, jobs=JOBS, shards=8),
        rounds=1, iterations=1)
    pooled_s = time.perf_counter() - t0

    # Shard/job-count invariance (the PR acceptance criterion): the pooled
    # run's merged tidy table is bit-identical to the inline run's.
    assert pooled.table.long() == inline.table.long()
    assert pooled.jobs == JOBS and not pooled.partial

    # Supervisor overhead: same pooled run with retries and a (generous)
    # shard timeout armed, no faults firing.  The supervisor's polling loop
    # and journal writes must not tax the fault-free path.
    t0 = time.perf_counter()
    supervised = run_study(spec, jobs=JOBS, shards=8,
                           retries=2, shard_timeout=600.0)
    supervised_s = time.perf_counter() - t0
    assert supervised.table.long() == inline.table.long()
    assert not supervised.retried and not supervised.failed_shards

    speedup = inline_s / pooled_s
    overhead_speedup = pooled_s / supervised_s
    cpus = os.cpu_count() or 1
    timing_enforced = cpus >= JOBS and not os.environ.get("CI")
    bench_json("study", {
        "grid": {"cases": spec.case_count, "engine": spec.engine,
                 "realizations": 250, "jobs": JOBS, "shards": 8},
        "inline_s": inline_s,
        "pooled_s": pooled_s,
        "supervised_s": supervised_s,
        "speedup": speedup,
        "cpus": cpus,
        "threshold": THRESHOLD,
        # A <4-CPU box cannot demonstrate a 2x pool speedup at all; the
        # summary tool reports unenforced gates as advisory, not failed.
        "enforced": cpus >= JOBS,
        "overhead": {
            "retries": 2,
            "shard_timeout_s": 600.0,
            "overhead_pct": 100.0 * (supervised_s / pooled_s - 1.0),
            # Gate form: plain/supervised wall-time ratio >= 1/(1+frac)
            # means the armed supervisor stays within OVERHEAD_FRAC.
            "speedup": overhead_speedup,
            "threshold": 1.0 / (1.0 + OVERHEAD_FRAC),
            "enforced": timing_enforced,
            "journal": _bench_journal_emit(tmp_path),
        },
    })
    # Shared CI runners have noisy neighbours and unstable clocks, so the
    # timing thresholds are advisory there (the parity assertions always
    # hold); likewise a <4-CPU box cannot demonstrate a 2x pool speedup.
    if not timing_enforced:
        print(f"study pool speedup: {speedup:.1f}x, supervisor overhead "
              f"{100.0 * (supervised_s / pooled_s - 1.0):+.1f}% on {cpus} "
              "CPUs (thresholds not enforced)")
    else:
        assert speedup >= THRESHOLD, \
            f"process-pool study run only {speedup:.1f}x faster"
        assert supervised_s <= pooled_s * (1.0 + OVERHEAD_FRAC), \
            (f"armed supervisor {supervised_s:.2f}s vs plain pooled "
             f"{pooled_s:.2f}s exceeds {OVERHEAD_FRAC:.0%} overhead")

"""Ablation — wake-transition time sensitivity (event-driven simulation).

The paper assumes transitions of "a few hundred milliseconds" are negligible;
this ablation quantifies that claim: sweeping the transition from 0 to 5 s
changes the per-km average by well under 1 %.
"""

import pytest

from repro.experiments.ablations import run_sleep_ablation


def bench_wake_transition_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_sleep_ablation(isd_m=2650.0, n_repeaters=10),
        rounds=1, iterations=1)

    power = dict(zip(result.transitions_s, result.w_per_km))
    # Longer transitions never save energy.
    values = [power[t] for t in sorted(power)]
    assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
    # The paper's 0.3 s assumption is indeed negligible (< 1 % vs. ideal).
    assert power[0.3] == pytest.approx(power[0.0], rel=0.01)
    # Even 5 s transitions stay within a few percent.
    assert power[5.0] == pytest.approx(power[0.0], rel=0.05)

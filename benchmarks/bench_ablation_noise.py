"""Ablation — repeater-noise model comparison on the max-ISD sweep.

Quantifies DESIGN.md #4.1: the literal Eq. (2) noise term overshoots the
paper's registered list at high repeater counts, while the calibrated
amplify-and-forward fronthaul model reproduces the diminishing-returns tail.
"""

from repro import constants
from repro.experiments.ablations import run_noise_ablation


def bench_noise_models(benchmark):
    result = benchmark.pedantic(
        lambda: run_noise_ablation(resolution_m=8.0), rounds=1, iterations=1)

    paper = list(constants.PAPER_MAX_ISD_M)
    literal = result.lists["paper"]
    star = result.lists["fronthaul_star"]

    # Fronthaul noise bites at N = 10: smaller ISD than the literal model.
    assert star[9] < literal[9]
    # Fronthaul tail is closer to the paper's registered tail.
    literal_tail_err = sum(abs(a - b) for a, b in zip(literal[7:], paper[7:]))
    star_tail_err = sum(abs(a - b) for a, b in zip(star[7:], paper[7:]))
    assert star_tail_err < literal_tail_err
    # All three variants stay monotone non-decreasing.
    for name, lst in result.lists.items():
        assert all(b >= a for a, b in zip(lst, lst[1:])), name

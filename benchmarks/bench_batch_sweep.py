"""Scalar vs. batched max-ISD sweep — the PR-acceptance speedup benchmark.

The scalar reference below replicates the seed implementation of
``sweep_max_isd`` exactly: one ``compute_snr_profile`` call per (ISD, N)
candidate in a Python loop, keeping the largest feasible ISD.  The batched
path is the current default (:func:`repro.optimize.isd.sweep_max_isd`, which
routes candidate evaluation through :mod:`repro.radio.batch` and bisects the
monotone feasibility boundary).

Asserts (a) both paths return the exact same ``max_isd_by_n`` and
``min_snr_by_n`` on the paper's default grid (N = 0..10, 1 m resolution) and
(b) the batched path is at least 3x faster in wall time.
"""

import os
import time

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.optimize.isd import sweep_max_isd
from repro.radio.link import LinkParams, compute_snr_profile

import numpy as np


def _scalar_seed_sweep(n_max: int = 10, resolution_m: float = 1.0,
                       isd_step_m: float = constants.ISD_STEP_M,
                       isd_max_m: float = 4000.0,
                       spacing_m: float = constants.LP_NODE_SPACING_M):
    """The seed (pre-batch-engine) sweep, candidate by candidate."""
    link = LinkParams()
    threshold = constants.PEAK_SNR_CRITERION_DB
    max_isd: dict[int, float] = {}
    min_snr: dict[int, float] = {}
    for n in range(0, n_max + 1):
        min_isd = spacing_m * max(0, n - 1) + 2.0 * isd_step_m
        candidates = np.arange(max(isd_step_m, min_isd),
                               isd_max_m + isd_step_m / 2, isd_step_m)
        best_isd = best_snr = None
        for isd in candidates:
            layout = CorridorLayout.with_uniform_repeaters(float(isd), n, spacing_m)
            snr = compute_snr_profile(layout, link,
                                      resolution_m=resolution_m).min_snr_db
            if snr >= threshold:
                best_isd, best_snr = float(isd), snr
        assert best_isd is not None
        max_isd[n] = best_isd
        min_snr[n] = float(best_snr)
    return max_isd, min_snr


def bench_batch_sweep_speedup(benchmark, bench_json):
    t0 = time.perf_counter()
    scalar_isd, scalar_snr = _scalar_seed_sweep()
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = benchmark.pedantic(
        lambda: sweep_max_isd(n_max=10, resolution_m=1.0), rounds=1, iterations=1)
    batched_s = time.perf_counter() - t0

    # Identical numeric output (the PR acceptance criterion)...
    assert batched.max_isd_by_n == scalar_isd
    assert batched.min_snr_by_n == scalar_snr
    # ...at a >= 3x wall-time speedup.  Shared CI runners have noisy
    # neighbours and unstable clocks, so the timing threshold is advisory
    # there (the numeric-equality assertions above always hold).
    speedup = scalar_s / batched_s
    bench_json("sweep", {
        "grid": {"n_max": 10, "resolution_m": 1.0},
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "threshold": 3.0,
    })
    if os.environ.get("CI"):
        print(f"batched sweep speedup: {speedup:.1f}x (threshold not "
              "enforced under CI)")
    else:
        assert speedup >= 3.0, f"batched sweep only {speedup:.1f}x faster"


def bench_batch_exhaustive_matches_scalar(benchmark):
    """Exhaustive escape hatch: same scan order as the seed, batched tensors."""
    scalar_isd, scalar_snr = _scalar_seed_sweep(n_max=4, resolution_m=4.0)
    result = benchmark.pedantic(
        lambda: sweep_max_isd(n_max=4, resolution_m=4.0, exhaustive=True),
        rounds=1, iterations=1)
    assert result.max_isd_by_n == scalar_isd
    assert result.min_snr_by_n == scalar_snr

"""Ablation — repeater placement strategies.

Checks the design choice the paper fixes silently: centered 200 m spacing
beats naive equal division on worst-case SNR, and grid-restricted
optimization cannot improve much on it at the registered maximum ISD.
"""

from repro.experiments.ablations import run_placement_ablation


def bench_placement_strategies(benchmark):
    result = benchmark.pedantic(
        lambda: run_placement_ablation(isd_m=2400.0, n_repeaters=8,
                                       resolution_m=4.0),
        rounds=1, iterations=1)

    # The paper's centered layout dominates equal division ...
    assert result.centered_min_snr_db > result.equal_division_min_snr_db
    # ... and the optimizer never does worse than the centered baseline.
    assert result.optimized_min_snr_db >= result.centered_min_snr_db - 0.05
    # Optimized positions remain installable (50 m catenary grid).
    assert all(p % 50.0 == 0.0 for p in result.optimized_positions_m)

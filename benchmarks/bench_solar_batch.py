"""Scalar vs. batched off-grid simulation — the PR-acceptance speedup benchmark.

The scalar reference replicates the seed implementation of the Table IV
workload exactly: one :meth:`OffGridSystem.simulate_year` call per (PV,
battery) candidate in a Python loop, each re-running the hourly double loop
and its own weather synthesis.  The batched path
(:func:`repro.solar.batch.simulate_systems`) synthesizes one weather tensor
per location and advances every candidate's battery recurrence together.

Asserts (a) bit-identical ``OffGridResult`` outputs on a 4-location ×
25-candidate grid — under the ``"reference"`` kernel backend, the bit-exact
anchor; the default fused backend's 1e-9 tolerance contract is gated in
``benchmarks/bench_backend.py`` — and (b) a >= 5x wall-time speedup for
the batched engine.
"""

import dataclasses
import os
import time

from repro.solar.batch import WeatherCache, simulate_systems
from repro.solar.battery import Battery
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import OffGridResult, OffGridSystem
from repro.solar.pv import PvArray

RESULT_FIELDS = tuple(f.name for f in dataclasses.fields(OffGridResult))

#: 25 candidates per location: 5 PV sizes x 5 battery banks around the
#: paper's ladder.
PV_PEAKS_W = (360.0, 450.0, 540.0, 630.0, 720.0)
BATTERY_WHS = (720.0, 1080.0, 1440.0, 1800.0, 2160.0)


def _grid_systems():
    return [
        OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv),
                      battery=Battery(capacity_wh=wh))
        for key in ("madrid", "lyon", "vienna", "berlin")
        for pv in PV_PEAKS_W
        for wh in BATTERY_WHS
    ]


def bench_solar_batch_speedup(benchmark, bench_json):
    systems = _grid_systems()
    assert len(systems) == 100

    t0 = time.perf_counter()
    scalar = [system.simulate_year() for system in systems]
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = benchmark.pedantic(
        lambda: simulate_systems(systems, weather_cache=WeatherCache()),
        rounds=1, iterations=1)
    batched_s = time.perf_counter() - t0

    # Bit-identical outputs on every field (the PR acceptance criterion):
    # the reference backend replays the scalar walk exactly.  The timed
    # (default, fused) run is pinned exact on integers/PV sums and <= 1e-9
    # on the SoC-dependent floats — the backend parity contract.
    reference = simulate_systems(systems, weather_cache=WeatherCache(),
                                 backend="reference")
    soc_dependent = {"unmet_wh", "min_soc", "annual_load_kwh"}
    for batch_result, fused_result, scalar_result in zip(
            reference, batched, scalar):
        for name in RESULT_FIELDS:
            want = getattr(scalar_result, name)
            assert getattr(batch_result, name) == want, name
            got = getattr(fused_result, name)
            if name in soc_dependent:
                assert abs(got - want) <= 1e-9 * max(1.0, abs(want)), name
            else:
                assert got == want, name

    # ...at a >= 5x wall-time speedup.  Shared CI runners have noisy
    # neighbours and unstable clocks, so the timing threshold is advisory
    # there (the bit-identity assertions above always hold).
    speedup = scalar_s / batched_s
    bench_json("solar", {
        "grid": {"locations": 4, "candidates": len(PV_PEAKS_W) * len(BATTERY_WHS)},
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": speedup,
        "threshold": 5.0,
    })
    if os.environ.get("CI"):
        print(f"batched solar speedup: {speedup:.1f}x (threshold not "
              "enforced under CI)")
    else:
        assert speedup >= 5.0, f"batched solar engine only {speedup:.1f}x faster"


def bench_weather_cache_reuse(benchmark):
    """Warm-cache re-evaluation skips every weather synthesis."""
    systems = _grid_systems()
    cache = WeatherCache(maxsize=16)
    cold = simulate_systems(systems, weather_cache=cache)
    assert cache.misses == 4  # one synthesis per location

    warm = benchmark.pedantic(
        lambda: simulate_systems(systems, weather_cache=cache),
        rounds=1, iterations=1)
    assert cache.misses == 4  # no new synthesis
    for a, b in zip(cold, warm):
        for name in RESULT_FIELDS:
            assert getattr(a, name) == getattr(b, name), name

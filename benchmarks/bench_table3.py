"""Table III — traffic scenario and the duty cycles it implies.

Asserts the in-text derived quantities: 16-55 s full load per train,
2.85 % / 9.66 % duty at 500 / 2650 m, and the sleeping repeater's 5.17 W
(124.1 Wh/day) average.
"""

import pytest

from repro.experiments.table3 import run_table3


def bench_table3_duty_cycles(benchmark):
    result = benchmark(run_table3)

    assert result.full_load_s_at_500m == pytest.approx(16.2, abs=0.1)
    assert result.full_load_s_at_2650m == pytest.approx(54.9, abs=0.1)
    assert 100 * result.duty_at_500m == pytest.approx(2.85, abs=0.01)
    assert 100 * result.duty_at_2650m == pytest.approx(9.66, abs=0.01)
    assert result.lp_sleeping_avg_w == pytest.approx(5.17, abs=0.005)
    assert result.lp_sleeping_wh_per_day == pytest.approx(124.1, abs=0.1)

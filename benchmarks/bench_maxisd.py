"""In-text maximum-ISD list — the paper's core optimization sweep.

Paper: {1250, 1450, 1600, 1800, 1950, 2100, 2250, 2400, 2500, 2650} m for
N = 1..10.  The literal Eq. (2) noise model with the stated 29 dB criterion
reproduces N = 1..4 exactly; every entry stays within 400 m and the list is
monotone with diminishing returns captured by the fronthaul noise model
(see bench_ablation_noise).
"""

from repro import constants
from repro.experiments.maxisd import run_maxisd


def bench_maxisd_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_maxisd(resolution_m=4.0), rounds=1, iterations=1)

    model = result.model_list
    assert model[:4] == [1250.0, 1450.0, 1600.0, 1800.0]
    assert all(b >= a for a, b in zip(model, model[1:]))
    for m, p in zip(model, constants.PAPER_MAX_ISD_M):
        assert abs(m - p) <= 400.0
    assert result.total_abs_error_m <= 1300.0


def bench_maxisd_single_n(benchmark):
    """One sweep iteration (N = 8) at full 1 m resolution."""
    from repro.optimize.isd import max_isd_for_n

    isd, snr = benchmark.pedantic(
        lambda: max_isd_for_n(8, resolution_m=2.0), rounds=1, iterations=1)
    assert isd >= 2400.0
    assert snr >= 29.0

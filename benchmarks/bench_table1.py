"""Table I — repeater component power breakdown.

Asserts the published totals: 4.72 W sleep, 24.26 W no load (Table II's P0),
and ~28.4 W full load under TDD operation.
"""

import pytest

from repro.experiments.table1 import run_table1


def bench_table1_breakdown(benchmark):
    result = benchmark(run_table1)

    assert result.sleep_w == pytest.approx(4.72)
    assert result.no_load_w == pytest.approx(24.26, abs=0.01)
    assert result.full_load_tdd_w == pytest.approx(28.38, abs=0.4)
    assert result.full_load_simultaneous_w == pytest.approx(31.9, abs=0.1)
    # Orderings that make the sleep mode worthwhile.
    assert result.sleep_w < 0.2 * result.no_load_w

"""Batched segment-frontier pass vs. the scalar per-segment reference.

The network optimizer's acceptance gate: on the full 10 000-segment
national graph the batched engine — one deduped
:func:`repro.radio.batch.evaluate_scenarios` pass over the unique layouts,
one :func:`repro.energy.scenario.segment_energy` call per unique
(option, speed class, demand) combination, numpy broadcasts for the
per-segment arrays — must be at least 10x faster than the honest scalar
loop that recomputes every quantity segment by segment through the scalar
entry points.  In practice the gap is two to three orders of magnitude;
the 10x gate guards against accidentally reintroducing a per-segment
Python loop into the batched path.

Parity is asserted in-run: both engines must produce bit-identical
frontier arrays on the same graph.  The scalar reference is timed once
(it dominates the benchmark's wall clock); the batched pass takes the
best of three.  Thresholds are advisory under CI (noisy shared runners);
the parity assertions always hold.  Emits ``BENCH_network.json`` when
``BENCH_JSON_DIR`` is set.
"""

import os
import time

import numpy as np

from repro.network import build_graph, optimize_network, segment_frontiers

N_SEGMENTS = 10_000
RESOLUTION_M = 50.0
NETWORK_THRESHOLD = 10.0
BATCHED_REPEATS = 3


def _best_of(fn, repeats=BATCHED_REPEATS):
    """Best wall time over a few runs — damps scheduler / cache noise."""
    best_s = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def bench_network_frontier_batched_vs_scalar(benchmark, bench_json):
    graph = build_graph("national", n_segments=N_SEGMENTS)
    assert graph.n_segments == N_SEGMENTS

    # Warm the batched path once (imports, numpy pools) outside the timing.
    benchmark.pedantic(
        lambda: segment_frontiers(graph, resolution_m=RESOLUTION_M),
        rounds=1, iterations=1)

    batched_s, batched = _best_of(
        lambda: segment_frontiers(graph, resolution_m=RESOLUTION_M))
    t0 = time.perf_counter()
    scalar = segment_frontiers(graph, resolution_m=RESOLUTION_M,
                               engine="scalar")
    scalar_s = time.perf_counter() - t0

    # Parity inside the gate run: the batched arrays are bit-identical to
    # the scalar per-segment reference, including the NaN infeasible cells.
    assert np.array_equal(batched.energy_w, scalar.energy_w, equal_nan=True)
    assert np.array_equal(batched.cost_eur, scalar.cost_eur, equal_nan=True)
    assert np.array_equal(batched.feasible, scalar.feasible)
    assert np.array_equal(batched.eligible, scalar.eligible)

    # The downstream assignment is pure numpy over the frontier arrays and
    # must stay far below the frontier pass itself.
    assign_s, plan = _best_of(
        lambda: optimize_network(frontiers=batched,
                                 energy_budget_w=175.0 * graph.length_km))
    assert plan.total_energy_w <= 175.0 * graph.length_km

    speedup = scalar_s / batched_s
    bench_json("network", {
        "network": {
            "grid": {"segments": N_SEGMENTS, "options": len(batched.options),
                     "resolution_m": RESOLUTION_M},
            "reference_s": scalar_s,
            "fused_s": batched_s,
            "assign_s": assign_s,
            "speedup": speedup,
            "threshold": NETWORK_THRESHOLD,
        },
    })
    if os.environ.get("CI"):
        print(f"batched network frontier speedup: {speedup:.1f}x "
              "(threshold not enforced under CI)")
    else:
        assert speedup >= NETWORK_THRESHOLD, \
            f"batched frontier pass only {speedup:.1f}x faster"

"""Fig. 3 — signal and noise power profile (d_ISD = 2400 m, N = 8).

Regenerates the figure's series and checks the in-text observations: the
serving HP signal falls below -100 dBm within the first half-segment while
the total signal stays above -100 dBm everywhere.
"""

import numpy as np

from repro.experiments.fig3 import run_fig3


def bench_fig3_profile(benchmark):
    result = benchmark(run_fig3)

    assert result.layout.isd_m == 2400.0
    assert result.layout.n_repeaters == 8
    # Total signal kept above -100 dBm thanks to the repeaters.
    assert np.min(result.profile.total_signal_dbm) > -100.0
    # The serving HP cell alone drops below -100 dBm early.
    assert result.hp_below_100dbm_after_m < 1200.0
    # Peak throughput sustained everywhere.
    assert result.profile.min_snr_db > 29.0
    # Series columns are figure-ready.
    series = result.series()
    assert len(series["position_m"]) == len(series["total_noise_dbm"])


def bench_fig3_snr_kernel(benchmark):
    """Microbenchmark of the Eq. (2) SNR-profile kernel itself."""
    from repro.corridor.layout import CorridorLayout
    from repro.radio.link import compute_snr_profile

    layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
    profile = benchmark(compute_snr_profile, layout)
    assert profile.snr_db.shape == profile.positions_m.shape

"""Table II — EARTH power-model parameters and derived site powers.

Asserts the Section III-B site figures (560 / 336 / 224 W) and the abstract's
"repeaters consume only 5 % of the energy of a regular cell site".
"""

import pytest

from repro.experiments.table2 import run_table2


def bench_table2_profiles(benchmark):
    result = benchmark(run_table2)

    assert result.hp_site_full_w == pytest.approx(560.0)
    assert result.hp_site_no_load_w == pytest.approx(336.0)
    assert result.hp_site_sleep_w == pytest.approx(224.0)
    assert result.repeater_energy_share_of_site == pytest.approx(0.05, abs=0.005)

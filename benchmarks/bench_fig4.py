"""Fig. 4 — average energy consumption per km, three operating policies.

Regenerates every bar of the figure and asserts the paper's headline numbers:
conventional ~467 W/km, sleep-mode savings 57 % (N=1) and 74 % (N=10), solar
savings 59 % and 79 %, and the 50 % threshold crossed from N = 3 with
continuously powered repeaters.
"""

import pytest

from repro.experiments.fig4 import run_fig4


def bench_fig4_paper_isds(benchmark):
    result = benchmark(run_fig4)

    rows = {r.n_repeaters: r for r in result.rows}
    assert rows[0].sleep_w_per_km == pytest.approx(467.2, abs=0.5)
    assert 100 * rows[1].sleep_savings == pytest.approx(57.0, abs=0.5)
    assert 100 * rows[10].sleep_savings == pytest.approx(74.0, abs=0.5)
    assert 100 * rows[1].solar_savings == pytest.approx(59.0, abs=0.7)
    assert 100 * rows[10].solar_savings == pytest.approx(79.0, abs=0.5)
    for n in range(3, 11):
        assert rows[n].continuous_savings > 0.50


def bench_fig4_model_derived(benchmark):
    """End-to-end variant: ISDs from the capacity model, then the energy
    figure — the full pipeline the paper describes."""
    from repro.experiments.fig4 import run_fig4 as fig4
    from repro.optimize.isd import sweep_max_isd

    def pipeline():
        sweep = sweep_max_isd(n_max=10, resolution_m=8.0, include_zero=False,
                              isd_step_m=50.0)
        return fig4(isd_by_n=sweep.max_isd_by_n)

    result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    rows = {r.n_repeaters: r for r in result.rows}
    # Shape holds end to end: monotone savings, >70 % at N=10 (sleep).
    assert rows[10].sleep_savings > 0.70
    savings = [rows[n].sleep_savings for n in range(1, 11)]
    assert all(b >= a - 1e-9 for a, b in zip(savings, savings[1:]))

"""Event-driven cross-check — DES vs. the analytic duty-cycle energy model.

Not a figure of the paper, but the validation experiment DESIGN.md commits
to: the 24 h discrete-event simulation of the N = 10 corridor segment must
land within 2 % of the analytic Fig. 4 value in every operating mode.
"""

import pytest

from repro.corridor.layout import CorridorLayout
from repro.energy.scenario import OperatingMode, segment_energy
from repro.simulation.corridor_sim import CorridorSimulation


def bench_des_sleep_mode_day(benchmark):
    layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)

    sim_result = benchmark(
        lambda: CorridorSimulation(layout,
                                   mode=OperatingMode.SLEEP).run(engine="event"))

    analytic = segment_energy(layout, OperatingMode.SLEEP).w_per_km
    assert sim_result.avg_w_per_km == pytest.approx(analytic, rel=0.02)
    assert sim_result.events_processed > 1000


def bench_des_all_modes(benchmark):
    layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)

    def run_all_modes():
        return {mode: CorridorSimulation(layout, mode=mode).run()
                for mode in OperatingMode}

    results = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)
    for mode, sim_result in results.items():
        analytic = segment_energy(layout, mode).w_per_km
        assert sim_result.avg_w_per_km == pytest.approx(analytic, rel=0.02), mode

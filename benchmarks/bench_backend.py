"""Reference vs. fused-numpy kernel backends — the PR-acceptance speedup gates.

Both engines already run batched; this benchmark isolates the *kernel
backend* axis inside them.  The ``"reference"`` backend advances the
original step loops (one Python iteration per position / hour), the
``"numpy"`` backend runs the fused formulations (blocked prefix-product
AR(1) scan with shared-scan candidate grouping, flattened branch-specialized
SoC walk with hoisted accounting).

Gates:

* Monte-Carlo min-scan on a 1 m-resolution grid (~2000-2950 positions per
  candidate, 20 candidates x 500 trials): fused >= 3x, min-SNR parity
  <= 1e-9 with equal outage counts;
* solar year walk over 200 candidates: fused >= 2x; integer counts and
  hour-order PV sums bit-identical, SoC-dependent floats <= 1e-9 (the
  fused walk runs the recurrence in SoC units).

Each backend is timed as the best of five runs (single-shot timings on a
busy host swing by tens of percent); thresholds are advisory under CI
(noisy shared runners), and the parity assertions always hold.  Emits ``BENCH_backend.json`` when
``BENCH_JSON_DIR`` is set.
"""

import dataclasses
import os
import time

import numpy as np

from repro.corridor.layout import CorridorLayout
from repro.optimize.mc import outage_matrix
from repro.propagation.fading import LogNormalShadowing
from repro.radio.batch import evaluate_scenarios
from repro.scenario.spec import Scenario
from repro.solar.batch import WeatherCache, simulate_systems
from repro.solar.battery import Battery
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import OffGridResult, OffGridSystem
from repro.solar.pv import PvArray

N_REPEATERS = 8
N_CANDIDATES = 20
TRIALS = 500
RESOLUTION_M = 1.0  # ~2001..2951 positions per candidate
SIGMA_DB = 2.0

MC_THRESHOLD = 3.0
SOLAR_THRESHOLD = 2.0

RESULT_FIELDS = tuple(f.name for f in dataclasses.fields(OffGridResult))

REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    """Best wall time over a few runs — damps scheduler / cache noise."""
    best_s = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def _mc_profiles():
    """20 candidate ISDs in 50 m steps, evaluated on a 1 m grid."""
    isds = 2000.0 + 50.0 * np.arange(N_CANDIDATES)
    layouts = [CorridorLayout.with_uniform_repeaters(float(isd), N_REPEATERS)
               for isd in isds]
    return evaluate_scenarios(
        [Scenario(layout=lo, resolution_m=RESOLUTION_M) for lo in layouts])


def _solar_systems():
    """200 (location, PV, battery) candidates around the paper's ladder."""
    pv_peaks = (360.0, 450.0, 540.0, 630.0, 720.0)
    battery_whs = tuple(720.0 + 180.0 * k for k in range(10))
    return [
        OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv),
                      battery=Battery(capacity_wh=wh))
        for key in ("madrid", "lyon", "vienna", "berlin")
        for pv in pv_peaks
        for wh in battery_whs
    ]


def bench_backend_mc_min_scan(benchmark, bench_json):
    profiles = _mc_profiles()
    assert max(r.positions_m.size for r in profiles) >= 2000
    shadowing = LogNormalShadowing(sigma_db=SIGMA_DB)

    # Warm both paths once: the shared standard-normal matrix is drawn and
    # cached on first use, and must not count against either backend.
    outage_matrix(profiles, shadowing, trials=TRIALS, backend="reference")
    benchmark.pedantic(
        lambda: outage_matrix(profiles, shadowing, trials=TRIALS,
                              backend="numpy"),
        rounds=1, iterations=1)

    reference_s, reference = _best_of(
        lambda: outage_matrix(profiles, shadowing, trials=TRIALS,
                              backend="reference"))
    fused_s, fused = _best_of(
        lambda: outage_matrix(profiles, shadowing, trials=TRIALS,
                              backend="numpy"))

    # Parity inside the gate run: <= 1e-9 on every min-SNR sample and
    # identical outage decisions.
    np.testing.assert_allclose(fused.min_snr_db, reference.min_snr_db,
                               rtol=0.0, atol=1e-9)
    assert np.array_equal(fused.outage_counts, reference.outage_counts)

    speedup = reference_s / fused_s
    bench_json("backend", {
        "mc": {
            "grid": {"candidates": N_CANDIDATES, "trials": TRIALS,
                     "resolution_m": RESOLUTION_M,
                     "max_positions": int(max(r.positions_m.size
                                              for r in profiles))},
            "reference_s": reference_s,
            "fused_s": fused_s,
            "speedup": speedup,
            "threshold": MC_THRESHOLD,
        },
    })
    if os.environ.get("CI"):
        print(f"fused mc backend speedup: {speedup:.1f}x (threshold not "
              "enforced under CI)")
    else:
        assert speedup >= MC_THRESHOLD, \
            f"fused mc kernel only {speedup:.1f}x faster"


def bench_backend_solar_year(benchmark, bench_json):
    systems = _solar_systems()
    assert len(systems) == 200
    cache = WeatherCache()

    # Warm the weather cache: synthesis is backend-independent (the cache is
    # content-keyed) and must not count against either backend.
    simulate_systems(systems, weather_cache=cache, backend="reference")
    benchmark.pedantic(
        lambda: simulate_systems(systems, weather_cache=cache,
                                 backend="numpy"),
        rounds=1, iterations=1)

    reference_s, reference = _best_of(
        lambda: simulate_systems(systems, weather_cache=cache,
                                 backend="reference"))
    fused_s, fused = _best_of(
        lambda: simulate_systems(systems, weather_cache=cache,
                                 backend="numpy"))

    # Parity inside the gate run: integer counts, metadata, and the
    # hour-order PV sums are exact; the SoC-dependent floats come from the
    # SoC-space recurrence and are pinned at 1e-9.
    soc_dependent = {"unmet_wh", "min_soc", "annual_load_kwh"}
    for fused_result, reference_result in zip(fused, reference):
        for name in RESULT_FIELDS:
            got = getattr(fused_result, name)
            want = getattr(reference_result, name)
            if name in soc_dependent:
                np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9,
                                           err_msg=name)
            else:
                assert got == want, name

    speedup = reference_s / fused_s
    bench_json("backend_solar", {
        "solar": {
            "grid": {"locations": 4, "candidates": len(systems)},
            "reference_s": reference_s,
            "fused_s": fused_s,
            "speedup": speedup,
            "threshold": SOLAR_THRESHOLD,
        },
    })
    if os.environ.get("CI"):
        print(f"fused solar backend speedup: {speedup:.1f}x (threshold not "
              "enforced under CI)")
    else:
        assert speedup >= SOLAR_THRESHOLD, \
            f"fused solar kernel only {speedup:.1f}x faster"

#!/usr/bin/env python3
"""Repeater-noise model study: why the paper's ISD list bends.

The paper's registered maximum ISDs grow by less than the 200 m node spacing
per added repeater — diminishing returns the literal Eq. (2) noise term
cannot produce (it makes repeater noise negligible).  This script compares
the maximum-ISD list under three noise models:

* ``paper``           — the literal Eq. (2) formula,
* ``fronthaul_star``  — amplify-and-forward noise, donor feeds each node
                        directly over the mmWave fronthaul,
* ``fronthaul_chain`` — nodes daisy-chain the fronthaul.

and prints the worst-case-SNR penalty each model sees at the paper's N = 10
operating point.

Run:  python examples/noise_models.py     (takes ~2 min, coarse grid)
"""

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.optimize.isd import sweep_max_isd
from repro.radio.link import LinkParams, compute_snr_profile
from repro.radio.noise import RepeaterNoiseModel
from repro.reporting.tables import format_table

MODELS = (RepeaterNoiseModel.PAPER, RepeaterNoiseModel.FRONTHAUL_STAR,
          RepeaterNoiseModel.FRONTHAUL_CHAIN)


def main() -> None:
    # --- max-ISD list under each noise model ----------------------------------
    lists = {}
    for model in MODELS:
        link = LinkParams(repeater_noise_model=model)
        sweep = sweep_max_isd(n_max=10, link=link, include_zero=False,
                              resolution_m=8.0)
        lists[model] = sweep.as_list()

    rows = []
    for i in range(10):
        rows.append([i + 1]
                    + [lists[m][i] for m in MODELS]
                    + [constants.PAPER_MAX_ISD_M[i]])
    print(format_table(
        ["N", "literal Eq.(2)", "fronthaul star", "fronthaul chain", "paper"],
        rows, title="Maximum ISD [m] per repeater-noise model"))

    for model in MODELS:
        err = sum(abs(a - b) for a, b in zip(lists[model], constants.PAPER_MAX_ISD_M))
        print(f"  total |error| vs paper, {model.value:15s}: {err:5.0f} m")

    # --- SNR penalty at the N = 10 operating point ----------------------------
    layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
    print(f"\nWorst-case SNR at ISD 2650 m, N = 10:")
    for model in MODELS:
        link = LinkParams(repeater_noise_model=model)
        profile = compute_snr_profile(layout, link, resolution_m=2.0)
        print(f"  {model.value:15s}: min SNR {profile.min_snr_db:6.2f} dB")
    print("\nThe fronthaul models reproduce the diminishing-returns tail the "
          "literal formula misses (DESIGN.md section 4.1).")


if __name__ == "__main__":
    main()

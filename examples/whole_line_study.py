#!/usr/bin/env python3
"""Whole-line study: heterogeneous sections, real demand, cell borders.

A realistic planning exercise on a 106 km line with three intermediate
stations:

1. station zones keep the conventional 500 m layout; the open track uses the
   paper's N = 10 repeater segments — a :class:`LinePlan` aggregates energy
   and equipment across the mix,
2. the full-buffer assumption is relaxed: a demand model (passengers x usage)
   drives the EARTH load term, quantifying the extra saving real traffic
   brings, and
3. the line is partitioned into BBU cells; the SINR dip at each cell border
   tells us how much track runs below peak rate and why borders belong at
   stations.

Run:  python examples/whole_line_study.py
"""

from repro.corridor.multisegment import LinePlan
from repro.power.profiles import HP_RRH_PROFILE, LP_REPEATER_PROFILE
from repro.radio.interference import cell_border_sinr, peak_outage_span_m
from repro.reporting.tables import format_table
from repro.traffic.loadmodel import (
    DemandModel,
    average_power_with_demand_w,
    demand_load_fraction,
)


def main() -> None:
    # --- 1. the line plan -----------------------------------------------------
    plan = LinePlan.mixed_line(open_track_km=100.0, station_zones=3)
    counts = plan.equipment_counts()
    print(f"Line: {plan.length_km:.0f} km, "
          f"{len(plan.sections)} sections "
          f"({counts['hp_masts']} HP masts, {counts['service_nodes']} service "
          f"nodes, {counts['donor_nodes']} donors)")
    print(f"  average power : {plan.average_w_per_km():.1f} W/km")
    print(f"  annual energy : {plan.annual_energy_mwh():.0f} MWh")
    print(f"  saving vs all-conventional: "
          f"{100 * plan.savings_vs_conventional():.1f} %\n")

    # --- 2. demand-driven load -------------------------------------------------
    scenarios = {
        "full buffer (paper)": DemandModel(rate_per_active_bps=100e6),
        "busy commuter train": DemandModel(),
        "off-peak train": DemandModel(occupancy=0.25, active_share=0.25),
    }
    rows = []
    for name, demand in scenarios.items():
        chi = demand_load_fraction(demand)
        hp = average_power_with_demand_w(2650.0, HP_RRH_PROFILE.model, demand)
        lp = average_power_with_demand_w(200.0, LP_REPEATER_PROFILE.model, demand)
        rows.append([name, chi, hp, lp])
    print(format_table(
        ["demand scenario", "load chi", "HP RRH avg [W]", "LP node avg [W]"],
        rows, title="Demand-driven load (N=10 segment sections)"))
    print("(the paper's numbers are the chi = 1 row; real demand saves more)\n")

    # --- 3. cell borders ---------------------------------------------------------
    profile = cell_border_sinr()
    outage = peak_outage_span_m()
    print("Cell borders (adjacent BBU cells on the same carrier):")
    print(f"  SINR at the border      : {profile.border_sinr_db:.2f} dB")
    print(f"  below-peak track per side: {outage:.0f} m")
    print(f"  with 10 km BBU cells, {2 * outage / 10_000 * 100:.1f} % of the "
          "line runs below peak at borders —")
    print("  placing borders inside station zones (trains slow, handover "
          "expected) removes the cost entirely.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Corridor planning study: dimension a whole high-speed line.

The scenario the paper's introduction motivates: a 120 km high-speed railway
corridor needs gigabit connectivity.  This script walks the full planning
pipeline:

1. run the max-ISD sweep to find, for each repeater count, how far apart the
   high-power masts can be while preserving peak throughput in the train,
2. translate each option into equipment counts and yearly energy for the
   whole line,
3. pick the design the paper recommends (largest feasible repeater count)
   and report what it saves against the conventional 500 m corridor —
   including the legacy onboard-relay alternative for context.

Run:  python examples/corridor_planning.py        (takes ~1 min)
"""

from repro import CorridorLayout, OperatingMode, compare_deployments
from repro.baselines.onboard_relay import OnboardRelayFleet
from repro.corridor.deployment import CorridorDeployment
from repro.optimize.isd import sweep_max_isd
from repro.reporting.tables import format_table

CORRIDOR_KM = 120.0
TRAINSETS_ON_LINE = 30


def main() -> None:
    print(f"Planning a {CORRIDOR_KM:.0f} km corridor "
          f"(coarse 8 m grid for speed)\n")

    # --- 1. capacity-feasible ISDs per repeater count -----------------------
    sweep = sweep_max_isd(n_max=10, resolution_m=8.0, include_zero=False)

    # --- 2. per-option deployment economics ---------------------------------
    rows = []
    options = {}
    for n, isd in sorted(sweep.max_isd_by_n.items()):
        layout = CorridorLayout.with_uniform_repeaters(isd, n)
        deployment = CorridorDeployment.with_repeaters(isd, n)
        comparison = compare_deployments(layout, OperatingMode.SLEEP, CORRIDOR_KM)
        masts = deployment.segments_for_length(CORRIDOR_KM)
        options[n] = (layout, comparison)
        rows.append([
            n, isd, masts,
            round(deployment.lp_nodes_per_km * CORRIDOR_KM),
            comparison.proposed_w_per_km,
            comparison.proposed_mwh_per_year,
            100.0 * comparison.savings_fraction,
        ])

    conventional_masts = CorridorDeployment.conventional().segments_for_length(CORRIDOR_KM)
    baseline = options[1][1].baseline_mwh_per_year
    print(format_table(
        ["N", "ISD [m]", "HP masts", "LP nodes", "W/km", "MWh/yr", "saving %"],
        rows,
        title=(f"Deployment options ({conventional_masts} HP masts and "
               f"{baseline:.0f} MWh/yr conventional)")))

    # --- 3. recommendation ---------------------------------------------------
    best_n = max(options)
    layout, comparison = options[best_n]
    print(f"\nRecommended: N = {best_n} repeaters per segment at "
          f"ISD {layout.isd_m:.0f} m")
    print(f"  HP masts: {conventional_masts} -> "
          f"{CorridorDeployment.with_repeaters(layout.isd_m, best_n).segments_for_length(CORRIDOR_KM)}")
    print(f"  energy:   {comparison.baseline_mwh_per_year:.0f} -> "
          f"{comparison.proposed_mwh_per_year:.0f} MWh/yr "
          f"({100 * comparison.savings_fraction:.0f} % saved)")

    # --- context: the legacy onboard-relay approach --------------------------
    fleet = OnboardRelayFleet()
    relay_mwh = fleet.annual_energy_mwh(TRAINSETS_ON_LINE)
    print(f"\nFor context, onboard relays on {TRAINSETS_ON_LINE} trainsets "
          f"would add {relay_mwh:.0f} MWh/yr on top of the corridor — "
          "the repeater corridor removes that burden entirely.")


if __name__ == "__main__":
    main()

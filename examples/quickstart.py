#!/usr/bin/env python3
"""Quickstart: one corridor segment from layout to energy savings.

Builds the paper's Fig. 3 scenario (two high-power masts 2400 m apart with
eight low-power repeater nodes in between), checks that it still delivers
peak 5G NR throughput everywhere inside the train, and compares its energy
consumption against the conventional 500 m corridor under the three
operating policies of Fig. 4.

Run:  python examples/quickstart.py
"""

from repro import (
    CorridorLayout,
    OperatingMode,
    compute_snr_profile,
    conventional_reference_w_per_km,
    segment_energy,
    throughput_profile,
    validate_layout,
)


def main() -> None:
    # 1. Geometry: 8 repeater nodes, 200 m apart, centered between HP masts.
    layout = CorridorLayout.with_uniform_repeaters(isd_m=2400.0, n_repeaters=8)
    print(f"Layout: ISD {layout.isd_m:.0f} m, {layout.n_repeaters} service nodes "
          f"+ {layout.n_donor_nodes} donor nodes")
    print(f"  repeaters at: {[f'{p:.0f}' for p in layout.repeater_positions_m]} m")

    report = validate_layout(layout)
    print(f"  installable on the 50 m catenary grid: {report.ok}")

    # 2. Radio: Eq. (1)/(2) SNR profile along the track.
    profile = compute_snr_profile(layout)
    print(f"\nSNR along the track: min {profile.min_snr_db:.2f} dB, "
          f"mean {profile.mean_snr_db:.2f} dB")

    # 3. Capacity: truncated Shannon bound (TR 36.942, alpha=0.6, 5.84 bps/Hz).
    thr = throughput_profile(profile)
    print(f"Throughput: min {thr.min_bps / 1e6:.0f} Mbit/s "
          f"(peak {thr.peak_bps / 1e6:.0f} Mbit/s), "
          f"peak sustained everywhere: {thr.sustains_peak_everywhere}")

    # 4. Energy: the three Fig. 4 operating policies vs. the 500 m baseline.
    reference = conventional_reference_w_per_km()
    print(f"\nConventional corridor reference: {reference:.1f} W/km")
    for mode in OperatingMode:
        energy = segment_energy(layout, mode)
        saving = 100.0 * (1.0 - energy.w_per_km / reference)
        print(f"  {mode.value:11s}: {energy.w_per_km:6.1f} W/km "
              f"(saves {saving:4.1f} %)")

    print("\nBreakdown (sleep mode):")
    sleep = segment_energy(layout, OperatingMode.SLEEP)
    print(f"  HP mast   : {sleep.hp_w:7.1f} W per segment")
    print(f"  service   : {sleep.service_w:7.1f} W per segment")
    print(f"  donors    : {sleep.donor_w:7.1f} W per segment")


if __name__ == "__main__":
    main()

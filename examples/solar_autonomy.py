#!/usr/bin/env python3
"""Solar autonomy study: dimension off-grid PV for sleeping repeater nodes.

Reproduces the paper's Section IV/V-B analysis: a repeater that sleeps
between trains averages only 5.17 W (124.1 Wh/day), small enough for
catenary-mast-mounted PV modules.  The script sizes the PV + battery system
at the four studied locations, shows the monthly energy balance that drives
the sizing, and then answers a what-if the paper leaves open: how much
headroom does the system have for a second repeater node on the same mast?

Run:  python examples/solar_autonomy.py      (takes ~30 s)
"""

from repro.energy.duty import lp_node_average_power_w
from repro.reporting.tables import format_table
from repro.solar.battery import Battery
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import LoadProfile, OffGridSystem, repeater_load_profile
from repro.solar.pv import PvArray
from repro.solar.sizing import find_minimal_system

MONTHS = "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec".split()


def main() -> None:
    load = repeater_load_profile()
    print(f"Repeater load profile: {load.daily_wh:.1f} Wh/day "
          f"(average {lp_node_average_power_w():.2f} W)\n")

    # --- Table IV: sizing per location ---------------------------------------
    rows = []
    sizings = {}
    for key in ("madrid", "lyon", "vienna", "berlin"):
        sizing = find_minimal_system(LOCATIONS[key])
        sizings[key] = sizing
        rows.append([
            sizing.location_name,
            sizing.pv_peak_w,
            sizing.battery_capacity_wh,
            sizing.result.full_battery_days_pct,
            "yes" if sizing.needed_upsizing else "no",
        ])
    print(format_table(
        ["location", "PV [Wp]", "battery [Wh]", "full days [%]", "upsized"],
        rows, title="Zero-downtime off-grid sizing (Table IV)"))

    # --- monthly balance at the toughest location ----------------------------
    berlin = sizings["berlin"]
    print(f"\nMonthly PV yield in {berlin.location_name} "
          f"({berlin.pv_peak_w:.0f} Wp vertical, south-facing):")
    monthly_load = [load.daily_wh * d / 1000.0
                    for d in (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)]
    for m in range(12):
        pv = berlin.result.monthly_pv_kwh[m]
        bar = "#" * int(round(4 * pv / max(berlin.result.monthly_pv_kwh)))
        flag = "  <-- below load!" if pv < monthly_load[m] else ""
        print(f"  {MONTHS[m]}: {pv:6.2f} kWh vs load {monthly_load[m]:.2f} kWh "
              f"{bar}{flag}")
    print("  (winter deficits are bridged by the doubled battery)")

    # --- what-if: two repeater nodes on one mast ------------------------------
    double_load = LoadProfile(hourly_w=tuple(2 * w for w in load.hourly_w))
    print("\nWhat-if: powering TWO repeater nodes from one mast's PV system:")
    for key in ("madrid", "berlin"):
        sizing = sizings[key]
        system = OffGridSystem(
            LOCATIONS[key],
            pv=PvArray(peak_w=sizing.pv_peak_w),
            battery=Battery(capacity_wh=sizing.battery_capacity_wh),
            load=double_load)
        result = system.simulate_year()
        verdict = "still zero downtime" if result.zero_downtime \
            else f"{result.unmet_hours} h downtime"
        print(f"  {LOCATIONS[key].name:8s}: {verdict}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""EMF siting and deployment economics: the operator's view.

The paper motivates short ISDs with "stringent EMF limits enforced in certain
countries" and argues sustainability.  This script makes both concrete:

1. compliance distances of the 64 dBm high-power antennas vs. the 40 dBm
   repeaters under ICNIRP and the strict national installation limits
   (Switzerland/Italy/Poland),
2. a 10-year total-cost comparison of the three deployment strategies on a
   100 km corridor, with a sensitivity sweep over the electricity price, and
3. the payback period if repeaters carried a heavy price premium.

Run:  python examples/emf_and_economics.py
"""

from repro import constants
from repro.corridor.deployment import CorridorDeployment
from repro.economics.costmodel import (
    CostAssumptions,
    corridor_cost,
    retrofit_payback_years,
)
from repro.energy.scenario import OperatingMode
from repro.experiments.extensions import run_economics, run_emf
from repro.reporting.tables import format_table


def main() -> None:
    # --- 1. EMF: why repeaters can live on catenary masts ---------------------
    emf = run_emf()
    print(emf.table())
    print("\nThe HP antenna needs ~45 m of clearance under the strict national"
          "\nlimits — the EMF-driven siting problem behind the paper's short"
          "\nISDs — while the 10 W repeater complies within 3 m of the mast.\n")

    # --- 2. 10-year cost of the three strategies ------------------------------
    econ = run_economics()
    print(econ.table())

    # sensitivity: electricity price
    rows = []
    for price in (0.10, 0.25, 0.40, 0.60):
        assumptions = CostAssumptions(energy_price_per_kwh=price)
        conventional = corridor_cost(CorridorDeployment.conventional(),
                                     OperatingMode.SLEEP, 100.0, 10.0, assumptions)
        sleep = corridor_cost(CorridorDeployment.with_repeaters(2650.0, 10),
                              OperatingMode.SLEEP, 100.0, 10.0, assumptions)
        rows.append([price, conventional.total / 1e6, sleep.total / 1e6,
                     100 * (1 - sleep.total / conventional.total)])
    print()
    print(format_table(
        ["EUR/kWh", "conventional [MEUR]", "repeaters [MEUR]", "saving %"],
        rows, title="Sensitivity: electricity price (100 km, 10 years)"))

    # --- 3. payback under a repeater price premium -----------------------------
    print("\nPayback period of the repeater corridor if repeater hardware were"
          " more expensive:")
    for premium in (8_000.0, 30_000.0, 50_000.0, 80_000.0):
        assumptions = CostAssumptions(repeater_capex=premium, donor_capex=premium)
        payback = retrofit_payback_years(
            CorridorDeployment.with_repeaters(2650.0, 10),
            assumptions=assumptions)
        label = "immediate (cheaper to build)" if payback == 0.0 else (
            f"{payback:.1f} years" if payback != float("inf") else "never")
        print(f"  {premium / 1000:5.0f} kEUR per LP node: {label}")


if __name__ == "__main__":
    main()

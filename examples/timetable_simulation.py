#!/usr/bin/env python3
"""Event-driven simulation of a corridor day, with irregular traffic.

The analytic model of the paper assumes perfectly regular train headways.
This script runs the discrete-event simulator over both a deterministic and
a stochastic (Poisson-headway) timetable, shows the per-device energy
breakdown, and quantifies the effect of the photoelectric barrier's wake
latency — the non-ideality the paper assumes away as "a few hundred
milliseconds".

Run:  python examples/timetable_simulation.py     (takes ~20 s)
"""

from repro import CorridorLayout, OperatingMode
from repro.energy.scenario import segment_energy
from repro.reporting.tables import format_table
from repro.simulation.corridor_sim import CorridorSimulation
from repro.traffic.timetable import generate_timetable
from repro.traffic.trains import TrafficParams


def main() -> None:
    layout = CorridorLayout.with_uniform_repeaters(isd_m=2650.0, n_repeaters=10)
    analytic = segment_energy(layout, OperatingMode.SLEEP)
    print(f"Segment: ISD {layout.isd_m:.0f} m, {layout.n_repeaters} repeaters; "
          f"analytic sleep-mode average {analytic.w_per_km:.1f} W/km\n")

    # --- deterministic vs stochastic timetables ------------------------------
    rows = []
    det = CorridorSimulation(layout, mode=OperatingMode.SLEEP).run()
    rows.append(["deterministic (8/h)", det.hp_wh, det.service_wh, det.donor_wh,
                 det.avg_w_per_km])
    for seed in (1, 2, 3):
        timetable = generate_timetable(TrafficParams(), stochastic=True,
                                       seed=seed, segment_length_m=layout.isd_m)
        sim = CorridorSimulation(layout, mode=OperatingMode.SLEEP,
                                 timetable=timetable).run()
        rows.append([f"stochastic seed={seed} ({len(timetable)} trains)",
                     sim.hp_wh, sim.service_wh, sim.donor_wh, sim.avg_w_per_km])
    print(format_table(
        ["timetable", "HP [Wh/d]", "service [Wh/d]", "donor [Wh/d]", "W/km"],
        rows, title="24 h event-driven energy, sleep mode"))
    print(f"(analytic reference: {analytic.w_per_km:.1f} W/km)\n")

    # --- wake-latency sensitivity --------------------------------------------
    rows = []
    for transition_s, lead_m in ((0.0, 0.0), (0.3, 50.0), (1.0, 100.0),
                                 (5.0, 300.0), (30.0, 1700.0)):
        sim = CorridorSimulation(layout, mode=OperatingMode.SLEEP,
                                 transition_s=transition_s,
                                 wake_lead_m=lead_m).run()
        rows.append([transition_s, lead_m, sim.avg_w_per_km])
    print(format_table(
        ["transition [s]", "wake lead [m]", "W/km"],
        rows, title="Wake-latency sensitivity"))
    print("\nThe paper's 'few hundred milliseconds' assumption costs well "
          "under 1 % — even 30 s transitions (with a correspondingly long "
          "detection lead) stay within a few percent.")


if __name__ == "__main__":
    main()

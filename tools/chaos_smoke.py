#!/usr/bin/env python
"""CI chaos smoke: run a shipped study under injected faults, assert parity.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py [--study studies/sim_grid.yaml]

Three subprocess legs through the real ``repro study run`` CLI:

1. **clean** — the study as shipped, ``--jobs 2`` (exit 0, reference rows);
2. **chaos** — the same study with an injected hard-crash and a hang fault,
   ``--retries 3 --shard-timeout 5`` (exit 0; the supervisor must recover
   and the merged rows must be byte-identical to the clean leg);
3. **quarantine** — an unrecoverable fault plan under ``--keep-going``
   (exit 4: completed with failed shards).

When ``BENCH_JSON_DIR`` is set, the chaos leg's ``run.jsonl`` journal is
copied there and a ``BENCH_chaos.json`` record (exit codes, wall times,
retry/timeout event counts, parity verdict) is written, so the recovery
evidence rides the same CI artifact as the perf records.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.study import read_journal  # noqa: E402


def run_cli(args: list[str], label: str) -> tuple[int, float]:
    """Run ``repro study run`` in a subprocess; return (exit code, wall s)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    command = [sys.executable, "-m", "repro", "study", "run", *args]
    print(f"[chaos-smoke] {label}: {' '.join(command[3:])}")
    t0 = time.perf_counter()
    proc = subprocess.run(command, cwd=REPO, env=env)
    wall_s = time.perf_counter() - t0
    print(f"[chaos-smoke] {label}: exit {proc.returncode} in {wall_s:.1f}s")
    return proc.returncode, wall_s


def load_rows(path: Path) -> list[dict]:
    return json.loads(path.read_text())["rows"]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--study", default=str(REPO / "studies/sim_grid.yaml"),
                        help="study document to run (default: sim_grid.yaml)")
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args(argv)

    work = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    store_dir = work / "store"
    record: dict = {"study": args.study, "shards": args.shards}
    try:
        # Leg 1: clean reference.
        clean_json = work / "clean.json"
        code, record["clean_s"] = run_cli(
            [args.study, "--quiet", "--jobs", "2",
             "--shards", str(args.shards), "--json", str(clean_json)],
            "clean")
        if code != 0:
            print(f"[chaos-smoke] FAIL: clean run exited {code}")
            return 1

        # Leg 2: crash + hang faults; the supervisor must converge to the
        # same rows.  The hang is cut short by --shard-timeout.
        plan = work / "plan.json"
        plan.write_text(json.dumps({"faults": [
            {"shard": 0, "attempt": 1, "action": "crash"},
            {"shard": 2, "attempt": 1, "action": "hang", "hang_s": 600.0},
        ]}))
        chaos_json = work / "chaos.json"
        code, record["chaos_s"] = run_cli(
            [args.study, "--quiet", "--jobs", "2",
             "--shards", str(args.shards), "--retries", "3",
             "--shard-timeout", "5", "--fault-plan", str(plan),
             "--store", str(store_dir), "--json", str(chaos_json)],
            "chaos")
        if code != 0:
            print(f"[chaos-smoke] FAIL: chaos run exited {code}, expected 0")
            return 1
        parity = load_rows(chaos_json) == load_rows(clean_json)
        record["rows_identical"] = parity
        if not parity:
            print("[chaos-smoke] FAIL: recovered rows differ from clean run")
            return 1

        journal = store_dir / "run.jsonl"
        events = read_journal(journal)
        counts = {kind: sum(1 for e in events if e["event"] == kind)
                  for kind in ("retry", "timeout", "pool_broken", "finish")}
        record["journal_events"] = counts
        if counts["retry"] < 2 or counts["timeout"] < 1 \
                or counts["pool_broken"] < 1:
            print(f"[chaos-smoke] FAIL: journal missing recovery evidence "
                  f"({counts})")
            return 1

        # Leg 3: unrecoverable fault under --keep-going -> exit 4.
        doomed = work / "doomed.json"
        doomed.write_text(json.dumps({"faults": [
            {"shard": 1, "attempt": attempt, "action": "raise"}
            for attempt in range(1, 4)
        ]}))
        code, record["quarantine_s"] = run_cli(
            [args.study, "--quiet", "--shards", str(args.shards),
             "--retries", "2", "--keep-going", "--fault-plan", str(doomed)],
            "quarantine")
        record["quarantine_exit"] = code
        if code != 4:
            print(f"[chaos-smoke] FAIL: quarantine run exited {code}, "
                  "expected 4")
            return 1

        out_dir = os.environ.get("BENCH_JSON_DIR")
        if out_dir:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            shutil.copy(journal, out / "chaos_run.jsonl")
            (out / "BENCH_chaos.json").write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
        print("[chaos-smoke] PASS: recovered table identical, exit codes "
              "0/0/4, journal has retry+timeout+pool_broken evidence")
        return 0
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""CI distributed smoke: shard a study across workers, merge, assert parity.

Usage::

    PYTHONPATH=src python tools/dist_smoke.py \\
        [--study studies/national_network.yaml]

Subprocess legs through the real ``repro study`` CLI:

1. **clean** — the study as one single-process run (exit 0, reference rows);
2. **shards** — the same study as three independent ``repro study shard``
   invocations (worker K of 3, each with its own store and manifest); one
   worker runs under an injected hard-crash fault plan with ``--retries``,
   so the supervisor's recovery machinery is exercised inside a slice
   (all exit 0);
3. **merge** — ``repro study merge`` over the three manifests (exit 0);
   the merged rows must be byte-identical to the clean leg;
4. **tamper** — the merge re-run against a hand-corrupted manifest must be
   rejected with exit 4 (structured validation, not a quiet wrong table).

When ``BENCH_JSON_DIR`` is set, a ``BENCH_dist.json`` record (exit codes,
wall times, retry evidence, parity verdict) is written so the distributed
evidence rides the same CI artifact as the perf records.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.study import read_journal  # noqa: E402

WORKERS = 3


def run_cli(args: list[str], label: str) -> tuple[int, float]:
    """Run a ``repro study`` subcommand; return (exit code, wall seconds)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    command = [sys.executable, "-m", "repro", "study", *args]
    print(f"[dist-smoke] {label}: {' '.join(command[3:])}")
    t0 = time.perf_counter()
    proc = subprocess.run(command, cwd=REPO, env=env)
    wall_s = time.perf_counter() - t0
    print(f"[dist-smoke] {label}: exit {proc.returncode} in {wall_s:.1f}s")
    return proc.returncode, wall_s


def load_rows(path: Path) -> list[dict]:
    return json.loads(path.read_text())["rows"]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--study", default=str(REPO / "studies/national_network.yaml"),
        help="study document to run (default: national_network.yaml)")
    parser.add_argument("--shards", type=int, default=6,
                        help="global shard count shared by all workers")
    args = parser.parse_args(argv)

    work = Path(tempfile.mkdtemp(prefix="dist-smoke-"))
    record: dict = {"study": args.study, "shards": args.shards,
                    "workers": WORKERS}
    try:
        # Leg 1: clean single-process reference.
        clean_json = work / "clean.json"
        code, record["clean_s"] = run_cli(
            ["run", args.study, "--quiet", "--shards", str(args.shards),
             "--json", str(clean_json)], "clean")
        if code != 0:
            print(f"[dist-smoke] FAIL: clean run exited {code}")
            return 1

        # Leg 2: three independent shard slices.  Worker 1 runs under an
        # injected hard-crash on the first attempt of one of its shards
        # (round-robin: worker 1 of 3 owns global shards 1, 4, ...) and
        # must recover via --retries.
        manifests: list[Path] = []
        record["worker_s"] = []
        for worker in range(WORKERS):
            store = work / f"worker{worker}"
            manifest = store / f"manifest-w{worker}.json"
            cli = ["shard", args.study, "--quiet",
                   "--index", str(worker), "--of", str(WORKERS),
                   "--shards", str(args.shards), "--store", str(store),
                   "--manifest", str(manifest)]
            if worker == 1:
                plan = work / "plan.json"
                plan.write_text(json.dumps({"faults": [
                    {"shard": 1, "attempt": 1, "action": "crash"},
                ]}))
                cli += ["--jobs", "2", "--retries", "2",
                        "--fault-plan", str(plan)]
            code, wall_s = run_cli(cli, f"worker {worker}/{WORKERS}")
            record["worker_s"].append(wall_s)
            if code != 0:
                print(f"[dist-smoke] FAIL: worker {worker} exited {code}")
                return 1
            manifests.append(manifest)

        faulted = read_journal(work / "worker1" / "run.jsonl")
        retries = sum(1 for e in faulted if e["event"] == "retry")
        record["worker1_retries"] = retries
        if retries < 1:
            print("[dist-smoke] FAIL: faulted worker journal shows no retry")
            return 1

        # Leg 3: merge the three manifests; rows must be byte-identical
        # to the clean single-process run.
        merged_json = work / "merged.json"
        merged_store = work / "merged"
        code, record["merge_s"] = run_cli(
            ["merge", args.study, *[str(p) for p in manifests],
             "--out-store", str(merged_store), "--quiet",
             "--json", str(merged_json)], "merge")
        record["merge_exit"] = code
        if code != 0:
            print(f"[dist-smoke] FAIL: merge exited {code}, expected 0")
            return 1
        parity = load_rows(merged_json) == load_rows(clean_json)
        record["rows_identical"] = parity
        if not parity:
            print("[dist-smoke] FAIL: merged rows differ from clean run")
            return 1

        # Leg 4: a tampered manifest must be rejected with exit 4.
        document = json.loads(manifests[2].read_text())
        document["manifest"]["shards"][0]["checksum"] = "0" * 64
        manifests[2].write_text(json.dumps(document))
        code, record["tamper_s"] = run_cli(
            ["merge", args.study, *[str(p) for p in manifests],
             "--quiet"], "tamper")
        record["tamper_exit"] = code
        if code != 4:
            print(f"[dist-smoke] FAIL: tampered merge exited {code}, "
                  "expected 4")
            return 1

        out_dir = os.environ.get("BENCH_JSON_DIR")
        if out_dir:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / "BENCH_dist.json").write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"[dist-smoke] PASS: {WORKERS}-worker merge identical to "
              "clean run, faulted worker recovered, tampered manifest "
              "rejected (exit 4)")
        return 0
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

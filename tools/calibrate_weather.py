#!/usr/bin/env python3
"""Calibration pass for the synthetic-weather parameters (DESIGN.md §3).

The PVGIS substitution has, per location, four calibrated quantities:
``sigma_kt`` / ``rho`` / ``kt_min`` (the AR(1) daily clearness process) and
``winter_reliability_derate``.  They were chosen so that the paper's Table IV
sizing outcome emerges from the zero-downtime requirement at seed 2022:

* Madrid, Lyon: the standard 540 Wp / 720 Wh system has zero downtime,
* Vienna: the standard system fails, 540 Wp / 1440 Wh recovers,
* Berlin: both 540 Wp configs fail, 600 Wp / 1440 Wh recovers,

with the published "days with full battery" ordering.  This script evaluates
the shipped parameters and prints the margin of each constraint, so a change
to the weather model can be re-validated at a glance.

Run:  python tools/calibrate_weather.py     (takes ~1 min)
"""

from repro import constants
from repro.reporting.tables import format_table
from repro.solar.battery import Battery
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import OffGridSystem
from repro.solar.pv import PvArray

#: (location, pv W, battery Wh, expect zero downtime?)
CONSTRAINTS = (
    ("madrid", 540.0, 720.0, True),
    ("lyon", 540.0, 720.0, True),
    ("vienna", 540.0, 720.0, False),
    ("vienna", 540.0, 1440.0, True),
    ("berlin", 540.0, 720.0, False),
    ("berlin", 540.0, 1440.0, False),
    ("berlin", 600.0, 1440.0, True),
)


def main() -> None:
    rows = []
    all_ok = True
    for key, pv, battery, expect_zero in CONSTRAINTS:
        system = OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv),
                               battery=Battery(capacity_wh=battery))
        result = system.simulate_year()
        ok = result.zero_downtime == expect_zero
        all_ok &= ok
        rows.append([
            LOCATIONS[key].name, pv, battery,
            "zero" if expect_zero else "downtime",
            result.unmet_hours,
            result.full_battery_days_pct,
            "OK" if ok else "VIOLATED",
        ])
    print(format_table(
        ["location", "PV [Wp]", "battery [Wh]", "expected", "unmet [h]",
         "full days [%]", "status"],
        rows, title="Table IV calibration constraints (seed 2022)"))

    print("\nfull-battery-days vs paper (at the final configurations):")
    finals = {"madrid": (540.0, 720.0), "lyon": (540.0, 720.0),
              "vienna": (540.0, 1440.0), "berlin": (600.0, 1440.0)}
    for key, (pv, battery) in finals.items():
        system = OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv),
                               battery=Battery(capacity_wh=battery))
        measured = system.simulate_year().full_battery_days_pct
        paper = constants.PAPER_FULL_BATTERY_DAYS_PCT[key]
        print(f"  {LOCATIONS[key].name:8s}: measured {measured:6.2f} %  "
              f"paper {paper:6.2f} %  (delta {measured - paper:+.2f} pp)")

    print("\nall constraints satisfied" if all_ok else "\nCALIBRATION BROKEN")


if __name__ == "__main__":
    main()

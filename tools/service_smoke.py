#!/usr/bin/env python
"""CI service smoke: drive ``repro serve`` end to end, then kill -9 it.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--study studies/sim_grid.yaml]

Two subprocess legs through the real ``repro serve`` CLI:

1. **clean** — start the service on a loopback port, submit the study over
   HTTP, poll the job to completion, then submit the *identical* request
   again and assert it coalesces (HTTP 200, same job id, exactly one
   ``job_submitted`` line in ``jobs.jsonl`` — served from the store, not
   recomputed).  SIGTERM must drain cleanly: exit code 0.
2. **chaos** — fresh store: submit, wait until the job is mid-run, SIGKILL
   the server, restart against the same ``--store`` and assert the job is
   recovered under its original id (``job_requeued`` journaled), resumes
   from its stored shards and finishes with rows **bit-identical** to the
   clean leg's — the CRN invariance contract extended to the service layer.

When ``BENCH_JSON_DIR`` is set, each leg's ``jobs.jsonl`` is copied there
and a ``BENCH_service.json`` record (wall times, dedup/recovery verdicts,
journal event counts) is written alongside the perf records.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.study import load_study, scan_journal  # noqa: E402


def load_document(path: str) -> dict:
    """The raw study mapping of a YAML/TOML file (validated before use)."""
    load_study(path)  # fail fast on an invalid document
    text = Path(path).read_text()
    if path.endswith(".toml"):
        import tomllib
        return tomllib.loads(text)
    import yaml
    return yaml.safe_load(text)

POLL_S = 0.2
STARTUP_TIMEOUT_S = 30.0
JOB_TIMEOUT_S = 600.0


def start_server(store: Path, label: str, workers: int = 2):
    """Start ``repro serve`` on a free loopback port; return (proc, base_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    command = [sys.executable, "-m", "repro", "serve", "--port", "0",
               "--store", str(store), "--workers", str(workers)]
    print(f"[service-smoke] {label}: {' '.join(command[3:])}")
    proc = subprocess.Popen(command, cwd=REPO, env=env,
                            stderr=subprocess.PIPE, text=True)
    banner = proc.stderr.readline()  # "serving on http://host:port  (...)"
    if "serving on" not in banner:
        raise RuntimeError(f"unexpected server banner: {banner!r}")
    base = banner.split()[2]
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    while time.monotonic() < deadline:
        status, _ = request("GET", base + "/healthz")
        if status == 200:
            return proc, base
        time.sleep(POLL_S)
    raise RuntimeError("service did not become healthy")


def request(method: str, url: str, payload: dict | None = None):
    """One JSON request; returns (status, body) and never raises on HTTP."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"X-Client-Id": "service-smoke"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    except (urllib.error.URLError, OSError):
        return 0, {}


def wait_result(base: str, job_id: str, timeout_s: float = JOB_TIMEOUT_S):
    """Poll ``/jobs/{id}/result`` until terminal; return (status, body)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body = request("GET", f"{base}/jobs/{job_id}/result")
        if status not in (0, 202):
            return status, body
        time.sleep(POLL_S)
    raise RuntimeError(f"job {job_id} did not finish in {timeout_s:.0f}s")


def journal_counts(store: Path) -> dict:
    events, skipped = scan_journal(store / "jobs.jsonl")
    counts = {kind: sum(1 for e in events if e["event"] == kind)
              for kind in ("job_submitted", "job_started", "job_finished",
                           "job_requeued", "service_start", "service_stop")}
    counts["skipped"] = skipped
    return counts


def stop(proc: subprocess.Popen, sig: int, timeout_s: float = 60.0) -> int:
    proc.send_signal(sig)
    try:
        code = proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise RuntimeError("server did not stop in time")
    proc.stderr.close()
    return code


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--study",
                        default=str(REPO / "studies/sim_grid.yaml"),
                        help="study document to submit "
                             "(default: sim_grid.yaml)")
    parser.add_argument("--shards", type=int, default=8)
    args = parser.parse_args(argv)

    # The raw document travels in the request body, exactly as a client
    # would send it.
    document = load_document(args.study)
    payload = {"study": document, "shards": args.shards}

    work = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    record: dict = {"study": args.study, "shards": args.shards}
    try:
        # -- Leg 1: clean lifecycle + idempotent dedup + SIGTERM drain ----
        store_a = work / "store-a"
        proc, base = start_server(store_a, "clean")
        t0 = time.perf_counter()
        status, body = request("POST", base + "/jobs", payload)
        if status != 201:
            print(f"[service-smoke] FAIL: submit returned {status}: {body}")
            return 1
        job_id = body["job"]["job"]
        status, body = wait_result(base, job_id)
        record["clean_s"] = time.perf_counter() - t0
        if status != 200:
            print(f"[service-smoke] FAIL: result returned {status}: "
                  f"{body.get('error')}")
            return 1
        reference_rows = body["result"]["rows"]

        # Identical second submission: coalesces onto the finished job and
        # serves from the store — no second computation.
        t0 = time.perf_counter()
        status, body = request("POST", base + "/jobs", payload)
        cached_ok = (status == 200 and not body["created"]
                     and body["job"]["job"] == job_id)
        status, body = request("GET", f"{base}/jobs/{job_id}/result")
        cached_ok = cached_ok and status == 200 \
            and body["result"]["rows"] == reference_rows
        record["cached_resubmit_s"] = time.perf_counter() - t0
        record["cached_resubmit"] = cached_ok
        if not cached_ok:
            print("[service-smoke] FAIL: identical resubmission did not "
                  "coalesce onto the finished job")
            return 1

        code = stop(proc, signal.SIGTERM)
        record["clean_exit"] = code
        counts_a = journal_counts(store_a)
        record["clean_journal"] = counts_a
        if code != 0:
            print(f"[service-smoke] FAIL: SIGTERM drain exited {code}, "
                  "expected 0")
            return 1
        if counts_a["job_submitted"] != 1:
            print(f"[service-smoke] FAIL: expected exactly 1 job_submitted "
                  f"after dedup, journal has {counts_a['job_submitted']}")
            return 1
        if counts_a["service_stop"] != 1 or counts_a["skipped"] != 0:
            print(f"[service-smoke] FAIL: clean journal malformed "
                  f"({counts_a})")
            return 1

        # -- Leg 2: SIGKILL mid-run, restart, resume bit-identically ------
        store_b = work / "store-b"
        proc, base = start_server(store_b, "chaos", workers=1)
        t0 = time.perf_counter()
        status, body = request("POST", base + "/jobs", payload)
        if status != 201:
            print(f"[service-smoke] FAIL: chaos submit returned {status}")
            return 1
        job_id = body["job"]["job"]
        # Wait until the job is genuinely mid-run (some but not all shards
        # done), then kill -9 — no drain, no checkpointing, torn state.
        deadline = time.monotonic() + JOB_TIMEOUT_S
        while time.monotonic() < deadline:
            status, body = request("GET", f"{base}/jobs/{job_id}")
            view = body.get("job", {})
            if view.get("state") == "running" \
                    and 1 <= view.get("progress_done", 0) < args.shards:
                break
            if view.get("state") in ("done", "partial", "failed"):
                break
            time.sleep(0.05)
        record["killed_at_progress"] = view.get("progress_done")
        proc.kill()
        proc.wait(timeout=30)
        proc.stderr.close()
        print(f"[service-smoke] chaos: SIGKILL at progress "
              f"{view.get('progress_done')}/{view.get('progress_total')}")

        proc, base = start_server(store_b, "chaos-restart", workers=1)
        status, body = request("GET", f"{base}/jobs/{job_id}")
        if status != 200:
            print(f"[service-smoke] FAIL: restarted server lost job "
                  f"{job_id} ({status})")
            return 1
        status, body = wait_result(base, job_id)
        record["chaos_s"] = time.perf_counter() - t0
        if status != 200:
            print(f"[service-smoke] FAIL: recovered job finished with "
                  f"{status}: {body.get('error')}")
            return 1
        parity = body["result"]["rows"] == reference_rows
        record["rows_identical"] = parity
        if not parity:
            print("[service-smoke] FAIL: recovered rows differ from the "
                  "uninterrupted reference")
            return 1
        code = stop(proc, signal.SIGTERM)
        record["chaos_exit"] = code
        counts_b = journal_counts(store_b)
        record["chaos_journal"] = counts_b
        if code != 0:
            print(f"[service-smoke] FAIL: post-recovery drain exited {code}")
            return 1
        if counts_b["job_requeued"] != 1 or counts_b["service_start"] != 2:
            print(f"[service-smoke] FAIL: restart journal missing recovery "
                  f"evidence ({counts_b})")
            return 1

        out_dir = os.environ.get("BENCH_JSON_DIR")
        if out_dir:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            shutil.copy(store_a / "jobs.jsonl", out / "service_jobs.jsonl")
            shutil.copy(store_b / "jobs.jsonl",
                        out / "service_jobs_chaos.jsonl")
            (out / "BENCH_service.json").write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
        print("[service-smoke] PASS: lifecycle + dedup-from-store + clean "
              "drain + kill-9/restart resume with bit-identical rows")
        return 0
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Regenerate (or verify) the generated API reference pages.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py           # rewrite docs/api/*.md
    PYTHONPATH=src python tools/gen_api_docs.py --check   # fail on drift (CI)

Thin wrapper around ``repro docs api`` so the workflow mirrors
``tools/refresh_golden.py`` (the golden-snapshot refresher).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.docs.cli import docs_command  # noqa: E402


def main(argv: list[str]) -> int:
    args = ["api"]
    if "--check" in argv:
        args.append("--check")
        argv = [a for a in argv if a != "--check"]
    if argv:
        print(f"unknown arguments: {argv} (only --check is supported)",
              file=sys.stderr)
        return 2
    return docs_command(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Regenerate the golden-regression snapshots under tests/golden/.

Usage (from the repository root)::

    PYTHONPATH=src python tools/refresh_golden.py            # refresh all
    PYTHONPATH=src python tools/refresh_golden.py --only fig4
    PYTHONPATH=src python tools/refresh_golden.py --check    # diff, no write

``--check`` exits non-zero when any current run drifts from its snapshot —
the same comparison ``tests/test_golden_regression.py`` runs in CI.  Refresh
snapshots only for *intended* result changes, and say why in the commit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.reporting.golden import (  # noqa: E402  (path bootstrap above)
    GOLDEN_SPECS,
    compare_series,
    compute_series,
    load_snapshot,
    save_snapshot,
)

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "tests" / "golden"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", metavar="ID", action="append", default=None,
                        help="refresh only this experiment id (repeatable)")
    parser.add_argument("--check", action="store_true",
                        help="compare against existing snapshots, write nothing")
    parser.add_argument("--dir", default=GOLDEN_DIR, type=Path,
                        help=f"snapshot directory (default {GOLDEN_DIR})")
    args = parser.parse_args(argv)

    specs = [s for s in GOLDEN_SPECS
             if args.only is None or s.experiment_id in args.only]
    if args.only:
        known = {s.experiment_id for s in GOLDEN_SPECS}
        unknown = set(args.only) - known
        if unknown:
            parser.error(f"unknown experiment id(s) {sorted(unknown)}; "
                         f"golden set: {sorted(known)}")

    drifted = 0
    for spec in specs:
        if args.check:
            problems = compare_series(spec, compute_series(spec),
                                      load_snapshot(spec, args.dir))
            status = "ok" if not problems else "DRIFTED"
            print(f"[{status}] {spec.experiment_id}")
            for problem in problems:
                print(f"    {problem}")
            drifted += bool(problems)
        else:
            path = save_snapshot(spec, args.dir)
            print(f"[written] {path}")
    return 1 if drifted else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Merge a benchmark run's ``BENCH_*.json`` records into one summary.

Usage::

    PYTHONPATH=src python tools/bench_summary.py BENCH_DIR [-o OUT.json]

Folds every ``BENCH_<name>.json`` the benchmark suite wrote (see
``benchmarks/conftest.py``) into a deterministic ``BENCH_summary.json`` and
prints the gate table.  Exits non-zero when any speedup gate is below its
threshold, so CI can surface regressions from the artifact alone.  Thin
wrapper around :mod:`repro.reporting.bench`, mirroring
``tools/refresh_golden.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.reporting.bench import summarize_directory  # noqa: E402


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory",
                        help="directory the run pointed BENCH_JSON_DIR at")
    parser.add_argument("-o", "--output", default=None,
                        help="summary file (default: DIR/BENCH_summary.json)")
    args = parser.parse_args(argv)

    try:
        path = summarize_directory(args.directory, output=args.output)
    except ReproError as exc:
        print(f"bench summary failed: {exc}", file=sys.stderr)
        return 2

    summary = json.loads(path.read_text())
    failed = 0
    for gate in summary["gates"]:
        if not gate["enforced"]:
            tag = "advisory"
        elif gate["passed"]:
            tag = "ok"
        else:
            tag = "FAIL"
            failed += 1
        print(f"[{tag}] {gate['gate']}: "
              f"{gate['speedup']:.2f}x (threshold {gate['threshold']:.1f}x)")
    print(f"wrote {path} ({len(summary['benchmarks'])} records, "
          f"{len(summary['gates'])} gates)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

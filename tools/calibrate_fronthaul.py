#!/usr/bin/env python3
"""Calibration pass for the fronthaul-noise parameter (DESIGN.md #4.1).

The amplify-and-forward repeater-noise models have one free parameter: the
fronthaul SNR at 1 km donor-service separation (``FronthaulParams.
snr_at_1km_db``).  This script reruns the fit that produced the shipped
default (33 dB): sweep the parameter, compute the max-ISD list under the
paper's stated 29 dB criterion, and report the total absolute error against
the registered list.

Run:  python tools/calibrate_fronthaul.py      (takes several minutes)
"""

import numpy as np

from repro import constants
from repro.errors import InfeasibleError
from repro.optimize.isd import sweep_max_isd
from repro.propagation.fronthaul import FronthaulParams, FronthaulTopology
from repro.radio.link import LinkParams
from repro.radio.noise import RepeaterNoiseModel

PAPER = list(constants.PAPER_MAX_ISD_M)


def fit(model: RepeaterNoiseModel, s0_values, resolution_m: float = 8.0):
    """Return (best_s0, best_error, best_list) over the candidate grid."""
    topology = (FronthaulTopology.CHAIN
                if model is RepeaterNoiseModel.FRONTHAUL_CHAIN
                else FronthaulTopology.STAR)
    best = None
    for s0 in s0_values:
        link = LinkParams(
            repeater_noise_model=model,
            fronthaul=FronthaulParams(snr_at_1km_db=float(s0), topology=topology))
        try:
            sweep = sweep_max_isd(n_max=10, link=link, include_zero=False,
                                  resolution_m=resolution_m)
        except InfeasibleError:
            print(f"  S0 = {s0:5.1f} dB: infeasible (noise too strong)")
            continue
        error = sum(abs(a - b) for a, b in zip(sweep.as_list(), PAPER))
        print(f"  S0 = {s0:5.1f} dB: total |error| = {error:6.0f} m  "
              f"{[int(x) for x in sweep.as_list()]}")
        if best is None or error < best[1]:
            best = (float(s0), error, sweep.as_list())
    return best


def main() -> None:
    print(f"paper list: {[int(x) for x in PAPER]}")
    baseline = sweep_max_isd(n_max=10, include_zero=False, resolution_m=8.0)
    base_err = sum(abs(a - b) for a, b in zip(baseline.as_list(), PAPER))
    print(f"literal Eq. (2) model: total |error| = {base_err:.0f} m\n")

    for model in (RepeaterNoiseModel.FRONTHAUL_STAR,
                  RepeaterNoiseModel.FRONTHAUL_CHAIN):
        print(f"fitting {model.value}:")
        best = fit(model, np.arange(29.0, 40.0, 1.0))
        if best:
            s0, error, _ = best
            print(f"  -> best S0 = {s0:.0f} dB (total |error| {error:.0f} m)\n")


if __name__ == "__main__":
    main()

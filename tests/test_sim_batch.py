"""Tests for the vectorized day-simulation engine and its consumers.

Cross-engine equality lives in tests/test_engine_parity.py; this module
covers the batch engine's own semantics: CRN timetable fleets, result
accounting, validation, the sleep-policy comparison in repro.energy, and the
sim-grid experiment.
"""

import math

import numpy as np
import pytest

from repro.corridor.layout import CorridorLayout
from repro.energy.analysis import simulated_policy_comparison
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError
from repro.experiments.simgrid import run_sim_grid
from repro.simulation.batch import simulate_days
from repro.simulation.elements import ElementSpec, corridor_elements
from repro.traffic.timetable import Timetable, TrainRun, day_timetables, generate_timetable
from repro.traffic.trains import TrafficParams

LAYOUT = CorridorLayout.with_uniform_repeaters(2400.0, 8)


class TestElementSpecs:
    def test_element_roster_matches_layout(self):
        specs = corridor_elements(LAYOUT, OperatingMode.SLEEP)
        names = [s.name for s in specs]
        assert names[0] == "hp/mast"
        assert sum(n.startswith("service/") for n in names) == 8
        assert sum(n.startswith("donor/") for n in names) == 2
        assert specs[0].section_start_m == 0.0
        assert specs[0].section_end_m == LAYOUT.isd_m

    def test_continuous_mode_disables_lp_sleep(self):
        specs = corridor_elements(LAYOUT, OperatingMode.CONTINUOUS)
        by_kind = {s.kind: s for s in specs}
        assert by_kind["hp"].sleep_capable
        assert not by_kind["service"].sleep_capable
        assert not by_kind["donor"].sleep_capable

    def test_single_repeater_gets_one_donor(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        kinds = [s.kind for s in corridor_elements(layout)]
        assert kinds.count("donor") == 1

    def test_bad_power_ordering_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            ElementSpec("x", "hp", full_load_w=1.0, no_load_w=2.0, sleep_w=3.0,
                        sleep_capable=True, section_start_m=0.0,
                        section_end_m=10.0)

    def test_inverted_section_rejected(self):
        with pytest.raises(ConfigurationError):
            ElementSpec("x", "hp", full_load_w=3.0, no_load_w=2.0, sleep_w=1.0,
                        sleep_capable=True, section_start_m=10.0,
                        section_end_m=10.0)


class TestDayTimetables:
    def test_crn_convention_is_pure_function_of_seed_and_index(self):
        fleet_a = day_timetables(realizations=3, seed=5)
        fleet_b = day_timetables(realizations=5, seed=5)
        for a, b in zip(fleet_a, fleet_b):
            assert [r.t0_s for r in a] == [r.t0_s for r in b]

    def test_distinct_seeds_distinct_days(self):
        a, = day_timetables(realizations=1, seed=0)
        b, = day_timetables(realizations=1, seed=1)
        assert [r.t0_s for r in a] != [r.t0_s for r in b]

    def test_rejects_zero_realizations(self):
        with pytest.raises(ConfigurationError):
            day_timetables(realizations=0)


class TestSimulateDays:
    def test_deterministic_matches_analytic(self):
        result = simulate_days(LAYOUT, mode=OperatingMode.SLEEP)
        analytic = segment_energy(LAYOUT, OperatingMode.SLEEP).w_per_km
        assert result.avg_w_per_km[0] == pytest.approx(analytic, rel=0.02)

    def test_active_seconds_reproduce_duty_cycle(self):
        # The deterministic timetable reproduces the analytic duty cycle of
        # every element section exactly (the Table III cross-check).
        from repro.traffic.occupancy import occupancy_seconds_per_day

        result = simulate_days(LAYOUT, mode=OperatingMode.SLEEP)
        specs = corridor_elements(LAYOUT, OperatingMode.SLEEP)
        for e, spec in enumerate(specs):
            expected = occupancy_seconds_per_day(
                spec.section_end_m - spec.section_start_m)
            assert result.active_s[0, e] == pytest.approx(expected, rel=1e-9)

    def test_solar_mains_counts_only_hp(self):
        result = simulate_days(LAYOUT, mode=OperatingMode.SOLAR)
        assert np.array_equal(result.total_mains_wh, result.hp_wh)
        assert result.service_wh[0] > 0.0

    def test_empty_timetable_everything_sleeps(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        params = EnergyParams(traffic=TrafficParams(trains_per_hour=0.0))
        result = simulate_days(layout, params=params)
        assert np.all(result.active_s == 0.0)
        assert np.all(result.awake_s == 0.0)
        expected = (224.0 + 2 * 4.72) * 24.0
        assert result.total_mains_wh[0] == pytest.approx(expected, rel=1e-6)

    def test_result_arrays_read_only(self):
        result = simulate_days(LAYOUT)
        with pytest.raises(ValueError):
            result.energy_wh[0, 0] = 0.0

    def test_fleet_statistics(self):
        result = simulate_days(LAYOUT, stochastic=True, realizations=8, seed=2)
        assert result.realizations == 8
        low, high = result.ci95_w_per_km()
        assert low < result.mean_w_per_km() < high
        assert result.std_w_per_km() > 0.0

    def test_single_realization_has_zero_std(self):
        result = simulate_days(LAYOUT)
        assert result.std_w_per_km() == 0.0
        low, high = result.ci95_w_per_km()
        assert low == high == result.mean_w_per_km()

    def test_slower_transition_costs_energy(self):
        fast = simulate_days(LAYOUT, transition_s=0.0, wake_lead_m=0.0)
        slow = simulate_days(LAYOUT, transition_s=5.0, wake_lead_m=300.0)
        assert slow.total_mains_wh[0] > fast.total_mains_wh[0]

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            simulate_days(LAYOUT, engine="gpu")

    def test_rejects_negative_transition_and_lead(self):
        with pytest.raises(ConfigurationError):
            simulate_days(LAYOUT, transition_s=-1.0)
        with pytest.raises(ConfigurationError):
            simulate_days(LAYOUT, wake_lead_m=-1.0)

    def test_rejects_mismatched_horizons(self):
        mixed = (generate_timetable(days=1.0), generate_timetable(days=2.0))
        with pytest.raises(ConfigurationError):
            simulate_days(LAYOUT, timetables=mixed)

    def test_rejects_conflicting_realizations(self):
        tts = (generate_timetable(),)
        with pytest.raises(ConfigurationError):
            simulate_days(LAYOUT, timetables=tts, realizations=3)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            simulate_days(LAYOUT, timetables=())

    def test_run_entirely_before_horizon_boundary(self):
        # A run whose section entry lies beyond the horizon: the barrier
        # still wakes the element, which then idles to the end of the day.
        tt = Timetable(runs=(TrainRun(t0_s=3599.0),), horizon_s=3600.0)
        result = simulate_days(LAYOUT, timetables=(tt,))
        hp = result.element_names.index("hp/mast")
        assert result.active_s[0, hp] == pytest.approx(1.0, abs=1e-6)


class TestPolicyComparison:
    def test_policies_share_common_random_days(self):
        comparison = simulated_policy_comparison(LAYOUT, realizations=5, seed=3)
        assert set(comparison) == set(OperatingMode)
        sleep = comparison[OperatingMode.SLEEP]
        cont = comparison[OperatingMode.CONTINUOUS]
        assert sleep.mean_w_per_km < cont.mean_w_per_km
        assert comparison[OperatingMode.SOLAR].mean_w_per_km < sleep.mean_w_per_km
        for policy in comparison.values():
            assert policy.realizations == 5
            assert abs(policy.simulated_minus_analytic_pct) < 5.0
            assert policy.ci95_w_per_km[0] <= policy.mean_w_per_km \
                <= policy.ci95_w_per_km[1]

    def test_deterministic_mode_matches_analytic_tightly(self):
        comparison = simulated_policy_comparison(LAYOUT, realizations=1,
                                                 stochastic=False)
        for policy in comparison.values():
            assert policy.mean_w_per_km == pytest.approx(
                policy.analytic_w_per_km, rel=0.02)


class TestSimGridExperiment:
    def test_grid_shape_and_feasibility(self):
        result = run_sim_grid(headways=(450.0, 900.0), trains_per_day=(76.0, 152.0),
                              realizations=3, seed=0)
        assert len(result.rows) == 2 * 2 * 3
        infeasible = [r for r in result.rows if not r.feasible]
        # 152 trains at 900 s needs 38 service hours — unschedulable.
        assert {(r.headway_s, r.trains_per_day) for r in infeasible} \
            == {(900.0, 152.0)}
        for row in result.rows:
            if row.feasible:
                assert row.mean_w_per_km == pytest.approx(
                    row.analytic_w_per_km, rel=0.05)
                assert row.realizations == 3
            else:
                assert math.isnan(row.analytic_w_per_km)

    def test_series_and_table_cover_all_rows(self):
        result = run_sim_grid(headways=(450.0,), trains_per_day=(152.0,),
                              realizations=2)
        series = result.series()
        assert len(series["mode"]) == 3
        assert "sim-grid" in result.table()

    def test_engines_agree_cell_for_cell(self):
        kwargs = dict(headways=(450.0,), trains_per_day=(152.0,),
                      realizations=2, seed=4)
        batch = run_sim_grid(engine="batch", **kwargs)
        event = run_sim_grid(engine="event", **kwargs)
        for b, e in zip(batch.rows, event.rows):
            assert b.mean_w_per_km == pytest.approx(e.mean_w_per_km, rel=1e-9)
            assert b.std_w_per_km == pytest.approx(e.std_w_per_km, rel=1e-6)

    def test_rejects_bad_axes(self):
        with pytest.raises(ConfigurationError):
            run_sim_grid(headways=())
        with pytest.raises(ConfigurationError):
            run_sim_grid(trains_per_day=(0.0,))
        with pytest.raises(ConfigurationError):
            run_sim_grid(realizations=0)


class TestCorridorSimulationRouting:
    def test_default_routes_through_batch_engine(self):
        sim = __import__("repro.simulation.corridor_sim",
                         fromlist=["CorridorSimulation"])
        result = sim.CorridorSimulation(LAYOUT).run()
        assert result.events_processed == 0  # no event queue in batch mode

    def test_event_engine_escape_hatch(self):
        sim = __import__("repro.simulation.corridor_sim",
                         fromlist=["CorridorSimulation"])
        batch = sim.CorridorSimulation(LAYOUT).run()
        event = sim.CorridorSimulation(LAYOUT).run(engine="event")
        assert event.events_processed > 1000
        assert batch.total_mains_wh == pytest.approx(event.total_mains_wh,
                                                     rel=1e-9)

"""Tests for Monte-Carlo shadowing robustness and battery-aging projection."""

import pytest

from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.optimize.robustness import outage_probability, robust_max_isd
from repro.propagation.fading import LogNormalShadowing
from repro.solar.climates import LOCATIONS
from repro.solar.degradation import AgingParams, project_lifetime


class TestOutage:
    def test_comfortable_layout_low_outage(self):
        # At 500 m the margin is ~5 dB: mild shadowing rarely breaks it.
        layout = CorridorLayout.conventional()
        result = outage_probability(layout, LogNormalShadowing(sigma_db=2.0),
                                    trials=100, resolution_m=10.0)
        assert result.outage_probability < 0.2

    def test_marginal_layout_high_outage(self):
        # The registered maximum ISD has near-zero margin by construction:
        # any shadowing causes frequent outage.
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        result = outage_probability(layout, LogNormalShadowing(sigma_db=4.0),
                                    trials=100, resolution_m=10.0)
        assert result.outage_probability > 0.5

    def test_stronger_shadowing_more_outage(self):
        layout = CorridorLayout.conventional()
        mild = outage_probability(layout, LogNormalShadowing(sigma_db=1.0),
                                  trials=100, resolution_m=10.0)
        harsh = outage_probability(layout, LogNormalShadowing(sigma_db=6.0),
                                   trials=100, resolution_m=10.0)
        assert harsh.outage_probability >= mild.outage_probability

    def test_deterministic_given_seed(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        a = outage_probability(layout, trials=50, resolution_m=10.0, seed=3)
        b = outage_probability(layout, trials=50, resolution_m=10.0, seed=3)
        assert a.outages == b.outages

    def test_zero_sigma_matches_deterministic(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        result = outage_probability(layout, LogNormalShadowing(sigma_db=0.0),
                                    trials=10, resolution_m=5.0)
        # Deterministic min SNR is above the 29 dB criterion: no outage.
        assert result.outage_probability == 0.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            outage_probability(CorridorLayout.conventional(), trials=0)


class TestRobustIsd:
    def test_robust_isd_below_deterministic(self):
        from repro.optimize.isd import max_isd_for_n
        deterministic, _ = max_isd_for_n(1, resolution_m=5.0)
        robust, outage = robust_max_isd(
            1, target_outage=0.1, shadowing=LogNormalShadowing(sigma_db=4.0),
            trials=40, resolution_m=10.0, isd_max_m=1500.0)
        assert robust < deterministic
        assert outage <= 0.1

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            robust_max_isd(1, target_outage=0.0)


class TestDegradation:
    def test_madrid_survives_ten_years(self):
        result = project_lifetime(LOCATIONS["madrid"], pv_peak_w=540.0,
                                  battery_capacity_wh=720.0, service_years=10)
        assert result.survives(10)
        assert result.first_downtime_year is None

    def test_capacities_fade_monotonically(self):
        result = project_lifetime(LOCATIONS["madrid"], 540.0, 720.0,
                                  service_years=5)
        batteries = [y.battery_capacity_wh for y in result.years]
        pvs = [y.pv_peak_w for y in result.years]
        assert all(b2 < b1 for b1, b2 in zip(batteries, batteries[1:]))
        assert all(p2 < p1 for p1, p2 in zip(pvs, pvs[1:]))

    def test_berlin_tight_system_eventually_fails(self):
        # Berlin's Table IV config is sized at the margin; with aggressive
        # fade it develops downtime within the horizon.
        aggressive = AgingParams(calendar_fade_per_year=0.05,
                                 cycle_fade_per_efc=0.001,
                                 pv_fade_per_year=0.02)
        result = project_lifetime(LOCATIONS["berlin"], 600.0, 1440.0,
                                  service_years=10, aging=aggressive)
        assert result.first_downtime_year is not None
        assert result.total_unmet_hours > 0

    def test_efc_accumulates(self):
        result = project_lifetime(LOCATIONS["vienna"], 540.0, 1440.0,
                                  service_years=3)
        for year in result.years:
            assert year.equivalent_full_cycles > 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            project_lifetime(LOCATIONS["madrid"], 540.0, 720.0, service_years=0)
        with pytest.raises(ConfigurationError):
            project_lifetime(LOCATIONS["madrid"], 0.0, 720.0)
        with pytest.raises(ConfigurationError):
            AgingParams(calendar_fade_per_year=0.5)

"""Tests for the calibrated Friis attenuation (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.errors import ConfigurationError
from repro.propagation.friis import (
    CalibratedFriis,
    free_space_path_loss_db,
    friis_constant_db,
)


class TestFriisConstant:
    def test_3_5_ghz_value(self):
        # 20 log10(4 pi / lambda) at 3.5 GHz.
        assert friis_constant_db(3.5e9) == pytest.approx(43.33, abs=0.02)

    def test_doubling_frequency_adds_6db(self):
        assert friis_constant_db(7.0e9) - friis_constant_db(3.5e9) == pytest.approx(
            6.02, abs=0.01)


class TestFreeSpacePathLoss:
    def test_known_value_100m(self):
        # FSPL(100 m, 3.5 GHz) = 43.33 + 40 = 83.33 dB
        assert free_space_path_loss_db(100.0, 3.5e9) == pytest.approx(83.33, abs=0.05)

    def test_distance_clamped_below_1m(self):
        assert free_space_path_loss_db(0.001, 3.5e9) == free_space_path_loss_db(1.0, 3.5e9)

    def test_inverse_square_law(self):
        l1 = free_space_path_loss_db(200.0, 3.5e9)
        l2 = free_space_path_loss_db(400.0, 3.5e9)
        assert l2 - l1 == pytest.approx(6.02, abs=0.01)

    def test_array_input(self):
        out = free_space_path_loss_db(np.array([10.0, 100.0, 1000.0]), 3.5e9)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    @given(st.floats(min_value=1.0, max_value=1e5),
           st.floats(min_value=2.0, max_value=4.0))
    def test_monotone_in_distance(self, d, factor):
        assert free_space_path_loss_db(d * factor, 3.5e9) > free_space_path_loss_db(d, 3.5e9)


class TestCalibratedFriis:
    def test_adds_calibration(self):
        plain = CalibratedFriis(3.5e9, 0.0)
        calibrated = CalibratedFriis(3.5e9, constants.HP_CALIBRATION_DB)
        assert calibrated.attenuation_db(500.0) - plain.attenuation_db(500.0) == pytest.approx(33.0)

    def test_received_power(self):
        model = CalibratedFriis(3.5e9, 33.0)
        rstp = 28.81  # HP per-subcarrier RSTP
        rx = model.received_power_dbm(rstp, 250.0)
        # Matches the hand calculation used to validate the model.
        assert rx == pytest.approx(-95.5, abs=0.3)

    def test_attenuation_linear_matches_db(self):
        model = CalibratedFriis(3.5e9, 20.0)
        att_db = model.attenuation_db(777.0)
        assert 10 * np.log10(model.attenuation_linear(777.0)) == pytest.approx(att_db)

    def test_rejects_negative_calibration(self):
        with pytest.raises(ConfigurationError):
            CalibratedFriis(3.5e9, -1.0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ConfigurationError):
            CalibratedFriis(0.0, 33.0)

    def test_vectorized_distances(self):
        model = CalibratedFriis(3.5e9, 33.0)
        d = np.linspace(1, 2500, 100)
        att = model.attenuation_db(d)
        assert att.shape == d.shape
        assert np.all(np.diff(att) > 0)

    @given(st.floats(min_value=1.0, max_value=5000.0))
    def test_attenuation_at_least_free_space(self, d):
        model = CalibratedFriis(3.5e9, 20.0)
        assert model.attenuation_db(d) >= free_space_path_loss_db(d, 3.5e9)

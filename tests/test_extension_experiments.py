"""Tests for the extension experiments (EMF, uplink, traversal, economics,
robustness, lifetime) and their registry entries."""

import pytest

from repro.experiments.extensions import (
    run_economics,
    run_emf,
    run_lifetime,
    run_robustness,
    run_traversal,
    run_uplink,
)
from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment


class TestEmfExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_emf()

    def test_hp_needs_tens_of_metres_under_strict_limits(self, result):
        assert result.hp["switzerland"] > 40.0
        assert result.hp["icnirp"] < 6.0

    def test_lp_mountable_anywhere(self, result):
        # The paper's implicit EMF argument for the repeaters.
        assert all(d < 3.5 for d in result.lp.values())

    def test_table_and_series(self, result):
        assert "EMF" in result.table()
        series = result.series()
        assert len(series["regime"]) == len(series["hp_distance_m"])


class TestUplinkExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_uplink(resolution_m=5.0)

    def test_all_operating_points_close(self, result):
        for n, isd, ul, _ in result.rows:
            assert ul > 0.0, f"uplink does not close at N={n}, ISD={isd}"

    def test_downlink_stronger_than_uplink(self, result):
        for _, _, ul, dl in result.rows:
            assert dl > ul


class TestTraversalExperiment:
    def test_capacity_per_km_uniform(self):
        result = run_traversal()
        per_km = [r[3] for r in result.rows]
        # "maintaining the same data capacity": within a few percent per km.
        assert max(per_km) / min(per_km) < 1.05

    def test_longer_segment_more_volume(self):
        result = run_traversal()
        volumes = {r[0]: r[2] for r in result.rows}
        assert volumes["N=10 @ 2650 m"] > volumes["conventional 500 m"]


class TestEconomicsExperiment:
    def test_repeaters_cheaper_over_ten_years(self):
        result = run_economics()
        totals = {r[0]: r[4] for r in result.rows}
        assert totals["repeaters, sleep"] < totals["conventional"]
        assert totals["repeaters, solar"] < totals["conventional"]

    def test_solar_trades_capex_for_opex(self):
        result = run_economics()
        rows = {r[0]: r for r in result.rows}
        assert rows["repeaters, solar"][1] > rows["repeaters, sleep"][1]   # CAPEX
        assert rows["repeaters, solar"][2] < rows["repeaters, sleep"][2]   # energy


class TestRobustnessExperiment:
    def test_registered_isds_are_fragile(self):
        # The registered maxima have no margin: real shadowing breaks them.
        result = run_robustness(sigma_db=4.0, trials=30, counts=(1, 10))
        for _, _, outage, ci_low, ci_high in result.rows:
            assert outage > 0.3
            assert ci_low <= outage <= ci_high

    def test_mild_shadowing_less_outage(self):
        harsh = run_robustness(sigma_db=6.0, trials=30, counts=(1,))
        mild = run_robustness(sigma_db=1.0, trials=30, counts=(1,))
        assert mild.rows[0][2] <= harsh.rows[0][2]


class TestLifetimeExperiment:
    def test_all_locations_reported(self):
        result = run_lifetime(service_years=3)
        assert len(result.rows) == 4
        assert {r[0] for r in result.rows} == {"Madrid", "Lyon", "Vienna", "Berlin"}

    def test_madrid_robust_over_life(self):
        result = run_lifetime(service_years=5)
        outcome = {r[0]: r[3] for r in result.rows}
        assert outcome["Madrid"] == "zero downtime"


class TestDemandExperiment:
    def test_chi_ordering(self):
        from repro.experiments.extensions import run_demand
        result = run_demand()
        chis = [r[1] for r in result.rows]
        assert chis[0] == 1.0                    # full buffer
        assert chis[0] > chis[1] > chis[2]       # demand lowers chi

    def test_power_tracks_chi(self):
        from repro.experiments.extensions import run_demand
        result = run_demand()
        hp_powers = [r[2] for r in result.rows]
        assert hp_powers[0] > hp_powers[1] > hp_powers[2]


class TestCellBorderExperiment:
    def test_border_dip(self):
        from repro.experiments.extensions import run_cell_border
        result = run_cell_border()
        assert abs(result.border_sinr_db) < 0.2
        assert result.outage_span_10db_m < result.outage_span_29db_m

    def test_peak_unreachable_near_reuse1_border(self):
        # The key planning finding: 29 dB SIR is unattainable for a long
        # stretch around a same-carrier border.
        from repro.experiments.extensions import run_cell_border
        result = run_cell_border()
        assert result.outage_span_29db_m > 500.0


class TestRegistry:
    def test_extensions_registered(self):
        for eid in ("ext-emf", "ext-uplink", "ext-traversal", "ext-econ",
                    "ext-robust", "ext-lifetime", "ext-demand", "ext-border"):
            assert eid in ALL_EXPERIMENTS

    def test_run_via_registry_with_csv(self, tmp_path):
        run_experiment("ext-emf", output_dir=tmp_path)
        assert (tmp_path / "ext-emf.csv").exists()

    def test_border_experiment_via_registry(self, tmp_path):
        run_experiment("ext-border", output_dir=tmp_path)
        assert (tmp_path / "ext-border.csv").exists()

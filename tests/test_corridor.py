"""Tests for corridor geometry, layouts, deployments and validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.corridor.deployment import CorridorDeployment, DeploymentKind
from repro.corridor.geometry import CatenaryGrid, TrackSegment
from repro.corridor.layout import CorridorLayout, donor_node_count
from repro.corridor.validation import validate_layout
from repro.errors import GeometryError


class TestTrackSegment:
    def test_length(self):
        assert TrackSegment(100.0, 600.0).length_m == 500.0

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            TrackSegment(600.0, 100.0)

    def test_contains(self):
        seg = TrackSegment(0.0, 500.0)
        assert seg.contains(0.0) and seg.contains(500.0) and seg.contains(250.0)
        assert not seg.contains(-1.0) and not seg.contains(501.0)

    def test_overlap(self):
        a = TrackSegment(0.0, 500.0)
        assert a.overlap_m(TrackSegment(400.0, 900.0)) == 100.0
        assert a.overlap_m(TrackSegment(600.0, 900.0)) == 0.0


class TestCatenaryGrid:
    def test_snap(self):
        grid = CatenaryGrid()
        assert grid.snap(123.0) == 100.0
        assert grid.snap(130.0) == 150.0

    def test_snap_all(self):
        grid = CatenaryGrid()
        out = grid.snap_all([12.0, 88.0, 625.0])
        assert list(out) == [0.0, 100.0, 600.0]

    def test_is_on_grid(self):
        grid = CatenaryGrid()
        assert grid.is_on_grid(250.0)
        assert not grid.is_on_grid(275.0)

    def test_offset_grid(self):
        grid = CatenaryGrid(offset_m=25.0)
        assert grid.snap(50.0) == pytest.approx(25.0)  # nearest of 25/75 (round-half-even)

    def test_masts_in_segment(self):
        grid = CatenaryGrid()
        masts = grid.masts_in(TrackSegment(90.0, 260.0))
        assert list(masts) == [100.0, 150.0, 200.0, 250.0]

    def test_masts_in_empty(self):
        grid = CatenaryGrid()
        assert grid.masts_in(TrackSegment(101.0, 149.0)).size == 0

    def test_rejects_bad_spacing(self):
        with pytest.raises(GeometryError):
            CatenaryGrid(spacing_m=0.0)


class TestDonorCount:
    def test_paper_counting_rule(self):
        # Section V-A: 0 -> 0, 1 -> 1, >= 2 -> 2.
        assert donor_node_count(0) == 0
        assert donor_node_count(1) == 1
        assert donor_node_count(2) == 2
        assert donor_node_count(10) == 2

    def test_rejects_negative(self):
        with pytest.raises(GeometryError):
            donor_node_count(-1)


class TestCorridorLayout:
    def test_conventional_has_no_repeaters(self):
        layout = CorridorLayout.conventional()
        assert layout.n_repeaters == 0
        assert layout.isd_m == 500.0
        assert layout.n_donor_nodes == 0

    def test_uniform_centered(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        assert layout.n_repeaters == 8
        assert layout.repeater_positions_m[0] == pytest.approx(500.0)
        assert layout.repeater_positions_m[-1] == pytest.approx(1900.0)
        assert layout.edge_gap_m == pytest.approx(500.0)
        assert layout.min_repeater_spacing_m() == pytest.approx(200.0)

    def test_single_node_centered(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        assert layout.repeater_positions_m == (625.0,)
        assert layout.repeater_span_m == 0.0

    def test_equal_division(self):
        layout = CorridorLayout.with_equally_divided_repeaters(1200.0, 2)
        assert layout.repeater_positions_m == (400.0, 800.0)

    def test_span(self):
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        assert layout.repeater_span_m == pytest.approx(1800.0)

    def test_sections(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        (start, end), = layout.repeater_sections()
        assert (start, end) == (525.0, 725.0)

    def test_scaled(self):
        layout = CorridorLayout.with_uniform_repeaters(1000.0, 2)
        scaled = layout.scaled_to(2000.0)
        assert scaled.isd_m == 2000.0
        assert scaled.repeater_positions_m == (800.0, 1200.0)

    def test_rejects_field_too_wide(self):
        with pytest.raises(GeometryError):
            CorridorLayout.with_uniform_repeaters(1700.0, 10)  # span 1800 > 1700

    def test_rejects_zero_isd(self):
        with pytest.raises(GeometryError):
            CorridorLayout(isd_m=0.0)

    def test_rejects_outside_positions(self):
        with pytest.raises(GeometryError):
            CorridorLayout(isd_m=1000.0, repeater_positions_m=(1000.0,))
        with pytest.raises(GeometryError):
            CorridorLayout(isd_m=1000.0, repeater_positions_m=(0.0,))

    def test_rejects_duplicates(self):
        with pytest.raises(GeometryError):
            CorridorLayout(isd_m=1000.0, repeater_positions_m=(300.0, 300.0))

    def test_rejects_unsorted(self):
        with pytest.raises(GeometryError):
            CorridorLayout(isd_m=1000.0, repeater_positions_m=(600.0, 300.0))

    def test_rejects_negative_count(self):
        with pytest.raises(GeometryError):
            CorridorLayout.with_uniform_repeaters(1000.0, -1)

    @given(st.integers(min_value=1, max_value=10),
           st.floats(min_value=600.0, max_value=4000.0))
    def test_uniform_layout_invariants(self, n, isd):
        span = (n - 1) * 200.0
        if isd <= span:
            with pytest.raises(GeometryError):
                CorridorLayout.with_uniform_repeaters(isd, n)
            return
        layout = CorridorLayout.with_uniform_repeaters(isd, n)
        # centered: equal gaps both sides
        left = layout.repeater_positions_m[0]
        right = isd - layout.repeater_positions_m[-1]
        assert left == pytest.approx(right)
        assert layout.n_donor_nodes == donor_node_count(n)

    @given(st.integers(min_value=0, max_value=12), st.floats(min_value=500.0, max_value=3000.0))
    def test_equal_division_gaps(self, n, isd):
        layout = CorridorLayout.with_equally_divided_repeaters(isd, n)
        positions = (0.0,) + layout.repeater_positions_m + (isd,)
        gaps = np.diff(positions)
        assert np.allclose(gaps, gaps[0])


class TestDeployment:
    def test_conventional_densities(self):
        dep = CorridorDeployment.conventional()
        assert dep.kind is DeploymentKind.CONVENTIONAL
        assert dep.masts_per_km == pytest.approx(2.0)
        assert dep.rrhs_per_km == pytest.approx(4.0)
        assert dep.lp_nodes_per_km == 0.0

    def test_repeater_deployment_densities(self):
        dep = CorridorDeployment.with_repeaters(2650.0, 10)
        assert dep.masts_per_km == pytest.approx(1000.0 / 2650.0)
        assert dep.service_nodes_per_km == pytest.approx(10 * 1000.0 / 2650.0)
        assert dep.donor_nodes_per_km == pytest.approx(2 * 1000.0 / 2650.0)

    def test_segments_for_length(self):
        dep = CorridorDeployment.with_repeaters(2000.0, 4)
        assert dep.segments_for_length(10.0) == 5
        assert dep.segments_for_length(10.1) == 6

    def test_segments_rejects_zero_length(self):
        with pytest.raises(GeometryError):
            CorridorDeployment.conventional().segments_for_length(0.0)


class TestValidation:
    def test_paper_layout_valid(self):
        report = validate_layout(CorridorLayout.with_uniform_repeaters(2400.0, 8))
        assert report.ok
        assert bool(report)
        assert report.issues == ()

    def test_single_node_625_within_tolerance(self):
        # 625 m is 25 m from the nearest 50 m mast: at the tolerance boundary.
        report = validate_layout(CorridorLayout.with_uniform_repeaters(1250.0, 1))
        assert report.ok

    def test_off_grid_flagged(self):
        layout = CorridorLayout(isd_m=1000.0, repeater_positions_m=(333.0,))
        report = validate_layout(layout, grid_tolerance_m=10.0)
        assert not report.ok
        assert report.off_grid_positions_m == (333.0,)

    def test_close_spacing_flagged(self):
        layout = CorridorLayout(isd_m=1000.0, repeater_positions_m=(500.0, 530.0))
        report = validate_layout(layout, grid_tolerance_m=30.0)
        assert not report.ok
        assert any("closer" in issue for issue in report.issues)

    def test_eirp_limit_flagged(self):
        layout = CorridorLayout.conventional()
        report = validate_layout(layout, hp_eirp_dbm=70.0)
        assert not report.ok
        assert any("EIRP" in issue for issue in report.issues)

    def test_node_too_close_to_mast_flagged(self):
        layout = CorridorLayout(isd_m=1000.0, repeater_positions_m=(30.0,))
        report = validate_layout(layout, grid_tolerance_m=40.0)
        assert not report.ok

"""Tests for the vectorized Monte-Carlo shadowing engine.

The contract mirrors the radio and solar batch layers: the batched engine
under ``backend="reference"`` is trial-for-trial **bit-identical** to the
scalar reference (same generator seeding, same draw order,
elementwise-identical arithmetic), across uniform and irregular position
grids, zero sigma, and single-position profiles.  The fused default backend
matches within 1e-9 while preserving the CRN prefix properties bitwise
(kernel-level coverage lives in ``tests/test_kernels.py``).
"""

import numpy as np
import pytest

from repro.backend import available_backends
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.optimize.mc import (
    outage_matrix,
    trial_generators,
    wilson_interval,
)
from repro.optimize.robustness import outage_probability, robust_max_isd
from repro.propagation.fading import LogNormalShadowing
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import SnrProfile
from repro.scenario.spec import Scenario


def _profiles(isds_n=((1250.0, 1), (2400.0, 8), (500.0, 0)), resolution_m=10.0):
    layouts = [CorridorLayout.with_uniform_repeaters(isd, n) if n
               else CorridorLayout.conventional() for isd, n in isds_n]
    return evaluate_scenarios(
        [Scenario(layout=lo, resolution_m=resolution_m) for lo in layouts])


def _synthetic_profile(positions, snr):
    """Profile on an arbitrary (possibly irregular) position grid."""
    positions = np.asarray(positions, dtype=float)
    snr = np.asarray(snr, dtype=float)
    return SnrProfile(positions_m=positions,
                      source_rsrp_dbm=snr[None, :],
                      total_signal_dbm=snr,
                      total_noise_dbm=np.zeros_like(snr),
                      snr_db=snr)


class TestSampleBatch:
    def test_matches_scalar_uniform_grid(self):
        model = LogNormalShadowing(sigma_db=4.0)
        pos = np.arange(0.0, 500.0, 5.0)
        scalar = np.stack([model.sample(pos, rng)
                           for rng in trial_generators(7, 20)])
        reference = model.sample_batch(pos, trial_generators(7, 20),
                                       backend="reference")
        assert np.array_equal(reference, scalar)
        for backend in available_backends():
            batch = model.sample_batch(pos, trial_generators(7, 20),
                                       backend=backend)
            np.testing.assert_allclose(batch, scalar, rtol=0.0, atol=1e-9)

    # (Irregular-grid scalar equality over the shared seed sweep lives in
    # tests/test_engine_parity.py.)

    def test_single_position(self):
        model = LogNormalShadowing(sigma_db=4.0)
        pos = np.array([100.0])
        batch = model.sample_batch(pos, trial_generators(3, 8))
        assert batch.shape == (8, 1)
        for t, rng in enumerate(trial_generators(3, 8)):
            assert np.array_equal(batch[t], model.sample(pos, rng))

    def test_zero_sigma_gives_zeros(self):
        model = LogNormalShadowing(sigma_db=0.0)
        batch = model.sample_batch(np.arange(0.0, 100.0, 10.0),
                                   trial_generators(0, 4))
        assert batch.shape == (4, 10)
        assert np.all(batch == 0.0)

    def test_coefficients_cached_per_spacing_fingerprint(self):
        model = LogNormalShadowing(sigma_db=4.0)
        pos = np.arange(0.0, 400.0, 5.0)
        first = model.coefficients(pos)
        again = model.coefficients(pos)
        assert first[0] is again[0] and first[1] is again[1]
        # Same spacings at a different origin share the entry too.
        shifted = model.coefficients(pos + 123.0)
        assert shifted[0] is first[0]
        # Cached arrays are read-only.
        with pytest.raises(ValueError):
            first[0][0] = 0.0

    def test_trial_generators_are_reproducible(self):
        a = [rng.standard_normal(3) for rng in trial_generators(5, 4)]
        b = [rng.standard_normal(3) for rng in trial_generators(5, 4)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        # Distinct trials get distinct streams.
        assert not np.array_equal(a[0], a[1])


class TestOutageMatrix:
    # Ragged-grid scalar-vs-batched bit-identity over the shared seed sweep
    # lives in tests/test_engine_parity.py.

    def test_irregular_positions_supported(self):
        profiles = [
            _synthetic_profile([0.0, 3.0, 10.0, 200.0], [30.0, 29.5, 31.0, 28.0]),
            _synthetic_profile([0.0, 50.0], [35.0, 27.0]),
            _synthetic_profile([42.0], [29.5]),
        ]
        shadowing = LogNormalShadowing(sigma_db=5.0, decorrelation_m=20.0)
        scalar = outage_matrix(profiles, shadowing, trials=64, seed=9,
                               engine="scalar")
        reference = outage_matrix(profiles, shadowing, trials=64, seed=9,
                                  backend="reference")
        assert np.array_equal(reference.min_snr_db, scalar.min_snr_db)
        for backend in available_backends():
            batched = outage_matrix(profiles, shadowing, trials=64, seed=9,
                                    backend=backend)
            np.testing.assert_allclose(batched.min_snr_db, scalar.min_snr_db,
                                       rtol=0.0, atol=1e-9)

    def test_zero_sigma_reduces_to_deterministic(self):
        profiles = _profiles()
        matrix = outage_matrix(profiles, LogNormalShadowing(sigma_db=0.0),
                               trials=6)
        scalar = outage_matrix(profiles, LogNormalShadowing(sigma_db=0.0),
                               trials=6, engine="scalar")
        assert np.array_equal(matrix.min_snr_db, scalar.min_snr_db)
        for c, profile in enumerate(profiles):
            assert np.all(matrix.min_snr_db[c] == profile.min_snr_db)

    def test_common_random_numbers_prefix_property(self):
        # A candidate's trials do not depend on which other candidates are
        # stacked with it: every candidate consumes a prefix of the same
        # per-trial streams.
        profiles = _profiles()
        joint = outage_matrix(profiles, trials=25, seed=4)
        for c, profile in enumerate(profiles):
            alone = outage_matrix([profile], trials=25, seed=4)
            assert np.array_equal(alone.min_snr_db[0], joint.min_snr_db[c])

    def test_z_cache_prefix_reuse_bit_identical(self):
        # Evaluations at different grid lengths under one (seed, trials)
        # share the memoized standard-normal matrix (prefix views); results
        # must stay bit-identical to the scalar path in any call order.
        profiles = _profiles()
        small_first = outage_matrix([profiles[2]], trials=15, seed=21)
        big = outage_matrix(profiles, trials=15, seed=21)
        scalar = outage_matrix(profiles, trials=15, seed=21, engine="scalar")
        big_ref = outage_matrix(profiles, trials=15, seed=21,
                                backend="reference")
        assert np.array_equal(big_ref.min_snr_db, scalar.min_snr_db)
        np.testing.assert_allclose(big.min_snr_db, scalar.min_snr_db,
                                   rtol=0.0, atol=1e-9)
        # The fused default preserves the prefix property bitwise.
        assert np.array_equal(small_first.min_snr_db[0], big.min_snr_db[2])

    def test_seed_changes_samples(self):
        profiles = _profiles()[:1]
        a = outage_matrix(profiles, trials=10, seed=1)
        b = outage_matrix(profiles, trials=10, seed=2)
        assert not np.array_equal(a.min_snr_db, b.min_snr_db)

    def test_quantile_and_ci(self):
        matrix = outage_matrix(_profiles(), trials=50)
        medians = matrix.quantile(0.5)
        assert medians.shape == (3,)
        low, high = matrix.ci95()
        assert np.all(low >= 0.0) and np.all(high <= 1.0)
        assert np.all(low <= matrix.outage_probability)
        assert np.all(matrix.outage_probability <= high)

    def test_matrix_eq_hash_and_readonly(self):
        profiles = _profiles()[:1]
        a = outage_matrix(profiles, trials=10, seed=1)
        b = outage_matrix(profiles, trials=10, seed=1)
        assert a == b and hash(a) == hash(b)
        assert a != outage_matrix(profiles, trials=10, seed=2)
        with pytest.raises(ValueError):
            a.min_snr_db[0, 0] = 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            outage_matrix([], trials=10)
        with pytest.raises(ConfigurationError):
            outage_matrix(_profiles(), trials=0)
        with pytest.raises(ConfigurationError):
            outage_matrix(_profiles(), trials=10, engine="gpu")
        # An empty position grid must fail on both engines alike.
        empty = _synthetic_profile(np.empty(0), np.empty(0))
        for engine in ("batched", "scalar"):
            with pytest.raises(ConfigurationError):
                outage_matrix([empty], trials=5, engine=engine)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        for k in (0, 1, 25, 49, 50):
            low, high = wilson_interval(k, 50)
            assert low <= k / 50 <= high
            assert 0.0 <= low and high <= 1.0

    def test_bounds_stay_in_unit_interval(self):
        # Float rounding pushes the raw Wilson bounds past [0, 1] for many
        # trial counts; the clamp must hold at both saturated extremes.
        for n in (1, 16, 27, 100, 4999):
            low, high = wilson_interval(n, n)
            assert high <= 1.0 and low >= 0.0
            low, high = wilson_interval(0, n)
            assert low >= 0.0 and high <= 1.0

    def test_tightens_with_trials(self):
        l1, h1 = wilson_interval(5, 20)
        l2, h2 = wilson_interval(50, 200)
        assert h2 - l2 < h1 - l1

    def test_vectorized(self):
        low, high = wilson_interval(np.array([0, 10, 20]), 20)
        assert low.shape == (3,)
        assert np.all(low < high)

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)


class TestOutageResultHelpers:
    def test_samples_are_readonly_ndarray(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        result = outage_probability(layout, trials=20, resolution_m=10.0)
        assert isinstance(result.min_snr_samples_db, np.ndarray)
        assert result.min_snr_samples_db.shape == (20,)
        with pytest.raises(ValueError):
            result.min_snr_samples_db[0] = 0.0

    def test_quantile_and_ci95(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        result = outage_probability(layout, trials=40, resolution_m=10.0)
        assert result.quantile(0.5) == pytest.approx(result.median_min_snr_db)
        assert result.quantile(0.1) <= result.quantile(0.9)
        low, high = result.ci95()
        assert low <= result.outage_probability <= high

    def test_engine_scalar_bit_identical(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        scalar = outage_probability(layout, trials=30, resolution_m=10.0,
                                    engine="scalar")
        reference = outage_probability(layout, trials=30, resolution_m=10.0,
                                       backend="reference")
        assert reference.outages == scalar.outages
        assert np.array_equal(reference.min_snr_samples_db,
                              scalar.min_snr_samples_db)
        batched = outage_probability(layout, trials=30, resolution_m=10.0)
        assert batched.outages == scalar.outages
        np.testing.assert_allclose(batched.min_snr_samples_db,
                                   scalar.min_snr_samples_db,
                                   rtol=0.0, atol=1e-9)


class TestRobustMaxIsdBisection:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("sigma_db", (2.0, 4.0))
    def test_exhaustive_equals_bisection_seed_sweep(self, seed, sigma_db):
        shadowing = LogNormalShadowing(sigma_db=sigma_db)
        kwargs = dict(target_outage=0.1, shadowing=shadowing, trials=40,
                      resolution_m=10.0, isd_max_m=1500.0, seed=seed)
        assert (robust_max_isd(1, **kwargs)
                == robust_max_isd(1, exhaustive=True, **kwargs))

    @pytest.mark.parametrize("seed", range(3))
    def test_exhaustive_equals_bisection_multi_repeater(self, seed):
        kwargs = dict(target_outage=0.3,
                      shadowing=LogNormalShadowing(sigma_db=2.0), trials=30,
                      resolution_m=10.0, isd_max_m=1200.0, seed=seed)
        assert (robust_max_isd(2, **kwargs)
                == robust_max_isd(2, exhaustive=True, **kwargs))

    def test_scalar_engine_equals_batched(self):
        kwargs = dict(target_outage=0.1,
                      shadowing=LogNormalShadowing(sigma_db=4.0), trials=30,
                      resolution_m=10.0, isd_max_m=1500.0, seed=3)
        assert (robust_max_isd(1, engine="scalar", **kwargs)
                == robust_max_isd(1, **kwargs))

    @pytest.mark.parametrize("exhaustive", (False, True))
    def test_infeasible_raises_infeasible_error(self, exhaustive):
        from repro.errors import InfeasibleError

        # N=8 at the registered maxima has no margin; a 1% target under
        # harsh shadowing is unreachable on any candidate.
        with pytest.raises(InfeasibleError):
            robust_max_isd(8, target_outage=0.01,
                           shadowing=LogNormalShadowing(sigma_db=6.0),
                           trials=20, resolution_m=10.0, isd_max_m=1700.0,
                           exhaustive=exhaustive)


class TestRobustnessGridExperiment:
    def test_grid_shape_and_monotone_sigma(self):
        from repro.experiments.extensions import run_robustness_grid

        result = run_robustness_grid(n_repeaters=1, isds_m=(1000.0, 1250.0),
                                     sigmas=(1.0, 4.0), decorrelations_m=(50.0,),
                                     trials=40)
        assert len(result.rows) == 2 * 1 * 2
        by_cell = {(r[0], r[2]): r[3] for r in result.rows}
        # More shadowing, more outage (common random numbers per cell).
        for isd in (1000.0, 1250.0):
            assert by_cell[(1.0, isd)] <= by_cell[(4.0, isd)]
        # Larger ISD, more outage at fixed sigma.
        for sigma in (1.0, 4.0):
            assert by_cell[(sigma, 1000.0)] <= by_cell[(sigma, 1250.0)]
        series = result.series()
        assert len(series["outage_probability"]) == len(result.rows)
        assert "robustness grid" in result.table()

    def test_registered_and_runs_via_registry(self, tmp_path):
        from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment

        assert "robustness-grid" in ALL_EXPERIMENTS
        run_experiment("robustness-grid", output_dir=tmp_path, trials=10,
                       sigmas=(4.0,))
        assert (tmp_path / "robustness-grid.csv").exists()

    def test_noise_ablation_robust_overlay(self):
        from repro.experiments.ablations import run_noise_ablation

        result = run_noise_ablation(n_max=1, resolution_m=10.0, sigmas=(4.0,),
                                    trials=20, robust_target_outage=0.2)
        assert result.robust is not None
        for per_model in result.robust.values():
            # Robust ISD backs off the deterministic maximum.
            assert per_model[4.0] < 1300.0
        assert "Robust max ISD" in result.table()

    def test_noise_ablation_rejects_bad_robust_inputs(self):
        # Parameter errors must propagate, never masquerade as NaN
        # "infeasible" cells (only InfeasibleError is treated as a finding).
        from repro.experiments.ablations import run_noise_ablation

        with pytest.raises(ConfigurationError):
            run_noise_ablation(n_max=1, resolution_m=10.0, sigmas=(-2.0,))
        with pytest.raises(ConfigurationError):
            run_noise_ablation(n_max=1, resolution_m=10.0, sigmas=(4.0,),
                               trials=0)
        with pytest.raises(ConfigurationError):
            run_noise_ablation(n_max=1, resolution_m=10.0, sigmas=(4.0,),
                               robust_target_outage=1.5)

    def test_cli_flags(self, capsys):
        from repro.cli import main

        assert main(["robustness-grid", "--trials", "8", "--sigmas", "4",
                     "--quiet"]) == 0
        with pytest.raises(SystemExit):
            main(["robustness-grid", "--sigmas", "abc"])
        with pytest.raises(SystemExit):
            main(["robustness-grid", "--trials", "0"])

"""Tests for solar geometry and the synthetic irradiance generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.solar.climates import LOCATIONS, MONTH_DAYS, MONTH_FIRST_DOY, Location
from repro.solar.geometry import (
    SolarGeometry,
    declination_rad,
    eccentricity_factor,
    sunset_hour_angle_rad,
)
from repro.solar.irradiance import SyntheticWeather, WeatherParams, erbs_diffuse_fraction


class TestDeclination:
    def test_summer_solstice_near_23_45(self):
        # Around June 21 (doy 172).
        assert np.rad2deg(declination_rad(172)) == pytest.approx(23.45, abs=0.1)

    def test_winter_solstice_near_minus_23_45(self):
        assert np.rad2deg(declination_rad(355)) == pytest.approx(-23.45, abs=0.1)

    def test_equinox_near_zero(self):
        assert abs(np.rad2deg(declination_rad(81))) < 1.0

    def test_eccentricity_range(self):
        days = np.arange(1, 366)
        e0 = eccentricity_factor(days)
        assert np.all(e0 > 0.96) and np.all(e0 < 1.04)


class TestSunset:
    def test_equator_equinox_6pm(self):
        ws = sunset_hour_angle_rad(0.0, 0.0)
        assert np.rad2deg(ws) == pytest.approx(90.0)

    def test_berlin_winter_short_day(self):
        lat = np.deg2rad(52.52)
        ws = sunset_hour_angle_rad(lat, declination_rad(355))
        day_length_h = 2 * np.rad2deg(ws) / 15.0
        assert 7.0 < day_length_h < 8.5

    def test_berlin_summer_long_day(self):
        lat = np.deg2rad(52.52)
        ws = sunset_hour_angle_rad(lat, declination_rad(172))
        day_length_h = 2 * np.rad2deg(ws) / 15.0
        assert 16.0 < day_length_h < 17.5


class TestSolarGeometry:
    def test_noon_zenith_madrid_equinox(self):
        geo = SolarGeometry(40.42)
        cos_z = geo.cos_zenith(81, 0.0)
        # Solar elevation at noon equinox = 90 - latitude.
        assert np.rad2deg(np.arccos(cos_z)) == pytest.approx(40.42, abs=1.0)

    def test_vertical_south_winter_high_incidence(self):
        # Low winter sun shines nearly perpendicular onto a vertical panel.
        geo = SolarGeometry(48.2, tilt_deg=90.0, azimuth_deg=0.0)
        cos_i = geo.cos_incidence(355, 0.0)
        cos_z = geo.cos_zenith(355, 0.0)
        assert cos_i > cos_z  # beam favors the vertical panel in winter

    def test_vertical_south_summer_low_incidence(self):
        geo = SolarGeometry(48.2, tilt_deg=90.0, azimuth_deg=0.0)
        cos_i = geo.cos_incidence(172, 0.0)
        cos_z = geo.cos_zenith(172, 0.0)
        assert cos_i < cos_z  # high summer sun mostly misses the vertical panel

    def test_horizontal_tilt_incidence_equals_zenith(self):
        geo = SolarGeometry(45.0, tilt_deg=0.0)
        for doy in (10, 100, 200, 300):
            w = geo.hour_angles_rad(np.array([9.0, 12.0, 15.0]))
            assert np.allclose(geo.cos_incidence(doy, w), geo.cos_zenith(doy, w), atol=1e-9)

    def test_daily_extraterrestrial_summer_exceeds_winter(self):
        geo = SolarGeometry(48.2)
        assert geo.daily_extraterrestrial_wh_m2(172) > 2.5 * geo.daily_extraterrestrial_wh_m2(355)

    def test_h0_magnitude_sane(self):
        # Mid-latitude summer H0 is ~11-12 kWh/m²/day.
        geo = SolarGeometry(48.2)
        assert 10_000 < geo.daily_extraterrestrial_wh_m2(172) < 13_000

    def test_rejects_bad_latitude(self):
        with pytest.raises(ConfigurationError):
            SolarGeometry(91.0)

    def test_rejects_bad_tilt(self):
        with pytest.raises(ConfigurationError):
            SolarGeometry(45.0, tilt_deg=120.0)


class TestErbs:
    def test_overcast_mostly_diffuse(self):
        assert erbs_diffuse_fraction(0.1) > 0.95

    def test_clear_mostly_beam(self):
        assert erbs_diffuse_fraction(0.85) == pytest.approx(0.165)

    def test_continuous_at_022(self):
        below = erbs_diffuse_fraction(0.2199)
        above = erbs_diffuse_fraction(0.2201)
        assert below == pytest.approx(above, abs=0.01)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_fraction_in_unit_interval(self, kt):
        fd = erbs_diffuse_fraction(kt)
        assert 0.0 <= fd <= 1.0


class TestClimates:
    def test_four_locations(self):
        assert set(LOCATIONS) == {"madrid", "lyon", "vienna", "berlin"}

    def test_annual_ghi_ordering(self):
        ghi = {k: LOCATIONS[k].annual_ghi_kwh_m2 for k in LOCATIONS}
        assert ghi["madrid"] > ghi["lyon"] > ghi["vienna"] > ghi["berlin"]

    def test_annual_ghi_realistic(self):
        assert 1500 < LOCATIONS["madrid"].annual_ghi_kwh_m2 < 2000
        assert 900 < LOCATIONS["berlin"].annual_ghi_kwh_m2 < 1300

    def test_monthly_clearness_in_range(self):
        for loc in LOCATIONS.values():
            for month in range(12):
                kt = loc.monthly_clearness_index(month)
                assert 0.1 < kt < 0.75, f"{loc.name} month {month}: {kt}"

    def test_month_of_day(self):
        loc = LOCATIONS["madrid"]
        assert loc.month_of_day(1) == 0
        assert loc.month_of_day(31) == 0
        assert loc.month_of_day(32) == 1
        assert loc.month_of_day(365) == 11

    def test_month_tables_consistent(self):
        assert sum(MONTH_DAYS) == 365
        for m in range(11):
            assert MONTH_FIRST_DOY[m + 1] == MONTH_FIRST_DOY[m] + MONTH_DAYS[m]

    def test_rejects_wrong_month_count(self):
        with pytest.raises(ConfigurationError):
            Location("X", 45.0, 0.0, monthly_ghi_kwh_m2=(100.0,) * 11)

    def test_is_winter(self):
        loc = LOCATIONS["berlin"]
        assert loc.is_winter(0) and loc.is_winter(11)
        assert not loc.is_winter(5)


class TestSyntheticWeather:
    def test_deterministic_for_seed(self):
        loc = LOCATIONS["lyon"]
        a = SyntheticWeather(loc, seed=5).daily_clearness(100)
        b = SyntheticWeather(loc, seed=5).daily_clearness(100)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        loc = LOCATIONS["lyon"]
        a = SyntheticWeather(loc, seed=5).daily_clearness(100)
        b = SyntheticWeather(loc, seed=6).daily_clearness(100)
        assert not np.allclose(a, b)

    def test_clearness_within_bounds(self):
        loc = LOCATIONS["berlin"]
        weather = SyntheticWeather(loc)
        kt = weather.daily_clearness(365)
        assert np.all(kt >= weather.params.kt_min)
        assert np.all(kt <= weather.params.kt_max)

    def test_day_irradiance_night_zero(self):
        weather = SyntheticWeather(LOCATIONS["madrid"])
        day = weather.day_irradiance(180, 0.6)
        assert day.ghi_w_m2[0] == 0.0  # midnight hours dark
        assert day.ghi_w_m2[23] == 0.0
        assert day.ghi_w_m2[12] > 0.0

    def test_poa_nonnegative(self):
        weather = SyntheticWeather(LOCATIONS["berlin"])
        for doy in (1, 91, 182, 274):
            day = weather.day_irradiance(doy, 0.4)
            assert np.all(day.poa_w_m2 >= 0.0)

    def test_daily_ghi_magnitude(self):
        # Madrid June at KT 0.6: GHI should be several kWh/m²/day.
        weather = SyntheticWeather(LOCATIONS["madrid"])
        day = weather.day_irradiance(172, 0.6)
        assert 5000 < day.daily_ghi_wh_m2 < 9000

    def test_winter_vertical_gain(self):
        # In winter the vertical panel receives more than the horizontal GHI
        # on clear days (low sun, Rb > 1).
        weather = SyntheticWeather(LOCATIONS["madrid"])
        day = weather.day_irradiance(355, 0.6)
        assert day.daily_poa_wh_m2 > day.daily_ghi_wh_m2

    def test_summer_vertical_loss(self):
        weather = SyntheticWeather(LOCATIONS["madrid"])
        day = weather.day_irradiance(172, 0.6)
        assert day.daily_poa_wh_m2 < day.daily_ghi_wh_m2

    def test_year_has_365_days(self):
        weather = SyntheticWeather(LOCATIONS["lyon"])
        days = list(weather.year())
        assert len(days) == 365

    def test_year_start_phase(self):
        weather = SyntheticWeather(LOCATIONS["lyon"])
        days = list(weather.year(days=3, start_day_of_year=274))
        assert [d.day_of_year for d in days] == [274, 275, 276]

    def test_year_wraps(self):
        weather = SyntheticWeather(LOCATIONS["lyon"])
        days = list(weather.year(days=100, start_day_of_year=300))
        assert days[65].day_of_year == 365
        assert days[66].day_of_year == 1

    def test_monthly_poa_sums(self):
        weather = SyntheticWeather(LOCATIONS["madrid"])
        monthly = weather.monthly_poa_kwh_m2()
        assert monthly.shape == (12,)
        assert np.all(monthly > 0)

    def test_rejects_bad_day(self):
        weather = SyntheticWeather(LOCATIONS["madrid"])
        with pytest.raises(ConfigurationError):
            weather.day_irradiance(0, 0.5)
        with pytest.raises(ConfigurationError):
            weather.day_irradiance(366, 0.5)

    def test_weather_params_validation(self):
        with pytest.raises(ConfigurationError):
            WeatherParams(sigma_kt=0.6)
        with pytest.raises(ConfigurationError):
            WeatherParams(rho=1.0)
        with pytest.raises(ConfigurationError):
            WeatherParams(kt_min=0.5, kt_max=0.4)
        with pytest.raises(ConfigurationError):
            WeatherParams(albedo=1.5)

"""Store-damage coverage: the disk cache layer must never raise.

Satellite 3 of ISSUE-7: truncated ``.npz`` bundles, zero-byte files,
wrong-checksum tampering and an unwritable ``cache_dir`` mid-run must each
quarantine/recompute (or degrade to memory-only) instead of raising through
the engine.  Exercised at both layers — :class:`repro.scenario.cache.ArrayCache`
directly, and :class:`repro.study.StudyStore` through a full ``run_study``.
"""

import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.scenario.cache import QUARANTINE_DIR, ArrayCache, ProfileCache
from repro.study import StudyStore, parse_study, run_study

MC_TEXT = """
name: mc-tiny
engine: mc
seed: 7
axes:
  sigma_db: [2.0, 4.0]
  isd_m: [2000.0, 2400.0]
fixed:
  n_repeaters: 8
  trials: 12
  resolution_m: 50.0
"""


class VectorCache(ArrayCache):
    """Minimal concrete cache: values are 1-D float arrays."""

    def _pack(self, value):
        return {"v": np.asarray(value, dtype=np.float64)}

    def _unpack(self, arrays):
        return arrays["v"]


def fresh_cache(tmp_path):
    """A disk-backed cache holding one entry, with the memory layer dropped
    so the next ``get_by_hash`` must go through the disk path."""
    cache = VectorCache(cache_dir=tmp_path)
    cache.put_by_hash("k1", np.arange(5.0))
    cache._memory.clear()
    return cache


def bundle_path(tmp_path) -> Path:
    return tmp_path / "k1.npz"


class TestDamagedBundles:
    def test_clean_round_trip_via_disk(self, tmp_path):
        cache = fresh_cache(tmp_path)
        value = cache.get_by_hash("k1")
        np.testing.assert_array_equal(value, np.arange(5.0))
        assert cache.quarantined == 0

    def test_truncated_npz_is_quarantined(self, tmp_path):
        cache = fresh_cache(tmp_path)
        path = bundle_path(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get_by_hash("k1") is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (tmp_path / QUARANTINE_DIR / "k1.npz").exists()

    def test_zero_byte_file_is_quarantined(self, tmp_path):
        cache = fresh_cache(tmp_path)
        bundle_path(tmp_path).write_bytes(b"")
        assert cache.get_by_hash("k1") is None
        assert cache.quarantined == 1
        assert (tmp_path / QUARANTINE_DIR / "k1.npz").exists()

    def test_wrong_checksum_is_quarantined(self, tmp_path):
        cache = fresh_cache(tmp_path)
        path = bundle_path(tmp_path)
        # Re-pack the bundle with one array bit-flipped but the original
        # checksum entry kept: structurally valid, content tampered.
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["v"] = arrays["v"] + 1.0
        np.savez(path, **arrays)
        assert cache.get_by_hash("k1") is None
        assert cache.quarantined == 1
        assert (tmp_path / QUARANTINE_DIR / "k1.npz").exists()

    def test_legacy_bundle_without_checksum_still_loads(self, tmp_path):
        cache = fresh_cache(tmp_path)
        path = bundle_path(tmp_path)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files
                      if name != "__checksum__"}
        np.savez(path, **arrays)
        np.testing.assert_array_equal(cache.get_by_hash("k1"), np.arange(5.0))
        assert cache.quarantined == 0

    def test_not_a_zip_at_all(self, tmp_path):
        cache = fresh_cache(tmp_path)
        bundle_path(tmp_path).write_bytes(b"PK\x03\x04torn-by-fault-injection")
        assert cache.get_by_hash("k1") is None
        assert cache.quarantined == 1

    def test_recompute_after_quarantine_round_trips(self, tmp_path):
        cache = fresh_cache(tmp_path)
        bundle_path(tmp_path).write_bytes(b"")
        assert cache.get_by_hash("k1") is None
        cache.put_by_hash("k1", np.arange(5.0))
        cache._memory.clear()
        np.testing.assert_array_equal(cache.get_by_hash("k1"), np.arange(5.0))

    def test_bundle_is_checksummed_on_disk(self, tmp_path):
        fresh_cache(tmp_path)
        with np.load(bundle_path(tmp_path)) as data:
            assert "__checksum__" in data.files
            digest = str(data["__checksum__"])
        assert len(digest) == 64


class TestUnwritableCacheDir:
    def test_write_degrades_to_memory_only(self, tmp_path):
        cache = VectorCache(cache_dir=tmp_path)
        # Yank the directory out from under the cache mid-run: subsequent
        # writes hit OSError.  (chmod is ineffective as root, so replace the
        # directory with a regular file instead.)
        cache.cache_dir = tmp_path / "gone" / "deeper"
        cache.put_by_hash("k1", np.arange(3.0))
        assert cache.disk_errors == 1
        np.testing.assert_array_equal(cache.get_by_hash("k1"), np.arange(3.0))

    def test_engine_survives_unwritable_store(self, tmp_path):
        store = StudyStore(cache_dir=tmp_path / "store")
        store.cache_dir = tmp_path / "blocker" / "store"
        (tmp_path / "blocker").write_text("a file where a dir should be")
        spec = parse_study(MC_TEXT)
        report = run_study(spec, shards=2, store=store)
        assert not report.partial
        assert store.disk_errors >= 2  # both shard writes degraded
        assert len(report.table) == 4


class TestStudyStoreDamage:
    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        store = StudyStore(cache_dir=tmp_path)
        run_study(parse_study(MC_TEXT), shards=2, store=store)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert not leftovers

    def test_all_bundles_are_valid_zipfiles(self, tmp_path):
        store = StudyStore(cache_dir=tmp_path)
        run_study(parse_study(MC_TEXT), shards=2, store=store)
        bundles = sorted(tmp_path.glob("*.npz"))
        assert len(bundles) == 2
        for path in bundles:
            assert zipfile.is_zipfile(path)

    def test_damaged_shard_recomputed_not_raised(self, tmp_path):
        spec = parse_study(MC_TEXT)
        run_study(spec, shards=2, store=StudyStore(cache_dir=tmp_path))
        clean = run_study(spec, shards=2,
                          store=StudyStore(cache_dir=tmp_path)).table.long()
        victim = sorted(tmp_path.glob("*.npz"))[0]
        victim.write_bytes(victim.read_bytes()[:100])
        store = StudyStore(cache_dir=tmp_path)
        report = run_study(spec, shards=2, store=store)
        assert report.table.long() == clean
        assert store.quarantined == 1
        assert report.reused_shards == 1 and report.computed_shards == 1


class TestProfileCacheStillWorks:
    """The hardening must not disturb the existing ProfileCache contract."""

    def test_profile_round_trip_with_checksum(self, tmp_path):
        from repro.scenario.spec import Scenario

        cache = ProfileCache(cache_dir=tmp_path)
        scenario = Scenario.uniform(2000.0, 4, resolution_m=100.0)
        profile = cache.get_or_compute(scenario)
        cache._memory.clear()
        again = cache.get(scenario)
        np.testing.assert_array_equal(profile.snr_db, again.snr_db)
        assert cache.quarantined == 0

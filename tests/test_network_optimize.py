"""Property suite for the network optimizer (repro.network).

Seeded, deterministic properties of the Lagrangian assignment:

* **budget monotonicity** — relaxing the energy budget never increases the
  optimal cost (the dual price is non-increasing in the budget);
* **demand monotonicity** — scaling demand up never grows the sleeping set
  (the headway rule is monotone in trains/h);
* **LinePlan subsumption** — a single-corridor graph lifted from a
  :class:`~repro.corridor.multisegment.LinePlan` reproduces the plan's
  energy totals exactly (``==``, not approximately);
* **infeasibility discipline** — budgets below the minimum achievable raise
  :class:`~repro.errors.InfeasibleError` only after the full frontier scan,
  with the true minima attached.
"""

import math

import numpy as np
import pytest

from repro.corridor.multisegment import LinePlan
from repro.errors import ConfigurationError, GeometryError, InfeasibleError
from repro.network import (
    Corridor,
    DemandProfile,
    NetworkGraph,
    NetworkSegment,
    TechnologyCatalog,
    build_graph,
    fixed_options_power_w,
    optimize_network,
    segment_frontiers,
)

SEEDS = (0, 7, 1234)

RESOLUTION_M = 50.0


def _frontiers(scale: float = 1.0, segments: int = 0, graph: str = "demo",
               **kwargs):
    g = build_graph(graph, n_segments=segments, demand_scale=scale)
    return segment_frontiers(g, resolution_m=RESOLUTION_M, **kwargs)


# -- graph validation ---------------------------------------------------------


class TestGraphModel:
    def test_rejects_empty_and_duplicate_names(self):
        seg = NetworkSegment(name="a", length_km=2.0)
        with pytest.raises(ConfigurationError):
            Corridor(name="c", segments=())
        with pytest.raises(ConfigurationError):
            Corridor(name="c", segments=(seg, seg))
        with pytest.raises(ConfigurationError):
            NetworkGraph(corridors=())
        corridor = Corridor(name="c", segments=(seg,))
        with pytest.raises(ConfigurationError):
            NetworkGraph(corridors=(corridor, corridor))

    def test_rejects_bad_segment(self):
        with pytest.raises(GeometryError):
            NetworkSegment(name="a", length_km=0.0)
        with pytest.raises(ConfigurationError):
            NetworkSegment(name="a", length_km=1.0, speed_class="maglev")
        with pytest.raises(ConfigurationError):
            NetworkSegment(name="", length_km=1.0)

    def test_demand_profile_semantics(self):
        d = DemandProfile(trains_per_hour=8.0)
        assert d.headway_s == 450.0
        assert d.scaled(2.0).headway_s == 225.0
        assert DemandProfile(trains_per_hour=0.0).headway_s == math.inf
        with pytest.raises(ConfigurationError):
            d.scaled(-1.0)
        traffic = d.traffic(160.0)
        assert traffic.trains_per_hour == 8.0
        assert traffic.train.speed_kmh == 160.0

    def test_demand_from_timetable(self):
        from repro.traffic.timetable import Timetable, TrainRun
        from repro.traffic.trains import Train

        runs = tuple(TrainRun(t0_s=600.0 * i, train=Train(length_m=200.0))
                     for i in range(6))
        timetable = Timetable(runs=runs, horizon_s=3.0 * 3600.0)
        demand = DemandProfile.from_timetable(timetable)
        assert demand.trains_per_hour == 2.0
        assert demand.night_quiet_hours == 21.0
        assert demand.train_length_m == 200.0
        with pytest.raises(ConfigurationError):
            DemandProfile.from_timetable(Timetable(runs=(), horizon_s=3600.0))

    def test_canonical_order_and_names(self):
        graph = build_graph("demo")
        assert graph.n_segments == 48
        assert len(graph.segments) == 48
        assert graph.segment_names[0] == "c00/s0000"
        assert len(set(graph.segment_names)) == 48

    def test_build_graph_validation(self):
        with pytest.raises(ConfigurationError):
            build_graph("atlantis")
        with pytest.raises(ConfigurationError):
            build_graph("demo", n_segments=-3)
        assert build_graph("national", n_segments=10).n_segments == 10


# -- budget monotonicity ------------------------------------------------------


class TestBudgetMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_relaxing_energy_budget_never_increases_cost(self, seed):
        rng = np.random.default_rng(seed)
        frontiers = _frontiers(scale=float(rng.uniform(0.5, 2.0)))
        lo = frontiers.min_energy_w()
        hi = optimize_network(frontiers=frontiers).total_energy_w
        budgets = np.sort(rng.uniform(lo, 1.5 * hi, size=8))
        costs = [optimize_network(frontiers=frontiers,
                                  energy_budget_w=float(b)).total_cost_eur
                 for b in budgets]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_budget_is_respected(self, seed):
        rng = np.random.default_rng(seed)
        frontiers = _frontiers()
        lo = frontiers.min_energy_w()
        for budget in rng.uniform(lo, 2.0 * lo, size=5):
            plan = optimize_network(frontiers=frontiers,
                                    energy_budget_w=float(budget))
            assert plan.total_energy_w <= budget
            assert plan.energy_budget_w == float(budget)

    def test_cost_budget_swaps_roles(self):
        frontiers = _frontiers()
        cheapest = optimize_network(frontiers=frontiers)
        budget = 1.2 * cheapest.total_cost_eur
        plan = optimize_network(frontiers=frontiers, cost_budget_eur=budget)
        assert plan.total_cost_eur <= budget
        # With cost headroom the optimizer buys energy savings.
        assert plan.total_energy_w <= cheapest.total_energy_w

    def test_both_budgets_checked(self):
        frontiers = _frontiers()
        cheapest = optimize_network(frontiers=frontiers)
        plan = optimize_network(frontiers=frontiers,
                                energy_budget_w=1.1 * cheapest.total_energy_w,
                                cost_budget_eur=1.1 * cheapest.total_cost_eur)
        assert plan.total_cost_eur <= 1.1 * cheapest.total_cost_eur
        with pytest.raises(InfeasibleError) as err:
            optimize_network(frontiers=frontiers,
                             energy_budget_w=frontiers.min_energy_w(),
                             cost_budget_eur=0.5 * cheapest.total_cost_eur)
        assert err.value.minimum > err.value.budget


# -- demand monotonicity ------------------------------------------------------


class TestDemandMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_adding_demand_never_grows_sleeping_set(self, seed):
        rng = np.random.default_rng(seed)
        scales = np.sort(rng.uniform(0.25, 4.0, size=6))
        sleeping = []
        for scale in scales:
            frontiers = _frontiers(scale=float(scale))
            plan = optimize_network(frontiers=frontiers)
            sleeping.append(frozenset(np.flatnonzero(plan.sleeping)))
        for bigger, smaller in zip(sleeping, sleeping[1:]):
            assert smaller <= bigger

    def test_sleep_rule_is_headway_threshold(self):
        catalog = TechnologyCatalog(min_sleep_headway_s=300.0)
        assert catalog.sleep_eligible(DemandProfile(trains_per_hour=8.0))
        assert catalog.sleep_eligible(DemandProfile(trains_per_hour=12.0))
        assert not catalog.sleep_eligible(DemandProfile(trains_per_hour=16.0))

    def test_demand_can_make_options_infeasible(self):
        # Station-class segments at 24 trains/h cannot schedule their
        # traffic on the sparse relay/repeater grids: occupancy exceeds
        # headway, so those options must drop out (not crash).
        calm = _frontiers(scale=1.0)
        dense = _frontiers(scale=3.0)
        assert (~dense.feasible).sum() > (~calm.feasible).sum()
        assert dense.feasible.any(axis=1).all()  # but nothing is stranded


# -- LinePlan subsumption -----------------------------------------------------


class TestLinePlanSubsumption:
    def test_single_corridor_graph_reproduces_line_plan_totals(self):
        plan = LinePlan.mixed_line(open_track_km=120.0, station_zones=6)
        graph = NetworkGraph.from_line_plan(plan)
        assert graph.n_segments == len(plan.sections)
        assert graph.length_km == plan.length_km
        total = fixed_options_power_w(
            graph,
            tuple(s.layout for s in plan.sections),
            tuple(s.mode for s in plan.sections))
        assert total == plan.total_average_power_w()  # exact, not approx

    def test_layout_mode_count_mismatch_raises(self):
        plan = LinePlan.mixed_line(open_track_km=40.0, station_zones=2)
        graph = NetworkGraph.from_line_plan(plan)
        with pytest.raises(ConfigurationError):
            fixed_options_power_w(graph, (), ())


# -- infeasibility discipline -------------------------------------------------


class TestInfeasibility:
    def test_raises_only_after_full_scan_with_minima(self):
        frontiers = _frontiers()
        minimum = frontiers.min_energy_w()
        with pytest.raises(InfeasibleError) as err:
            optimize_network(frontiers=frontiers,
                             energy_budget_w=0.5 * minimum)
        exc = err.value
        assert exc.minimum == minimum
        assert exc.budget == 0.5 * minimum
        # the full [segment, option] grid was scanned before raising
        assert exc.scanned_options == frontiers.scanned_options
        assert exc.scanned_options \
            == frontiers.n_segments * len(frontiers.options)

    def test_budget_at_minimum_is_feasible(self):
        frontiers = _frontiers()
        plan = optimize_network(frontiers=frontiers,
                                energy_budget_w=frontiers.min_energy_w())
        assert plan.total_energy_w <= frontiers.min_energy_w()

    def test_stranded_segment_reports_after_full_scan(self):
        # An unreachable radio criterion leaves a segment with no feasible
        # option at all (the relay exemption is excluded from the catalog).
        catalog = TechnologyCatalog(technologies=("repeater",))
        graph = NetworkGraph(corridors=(Corridor(
            name="c", segments=(NetworkSegment(name="s", length_km=2.0),)),))
        frontiers = segment_frontiers(graph, catalog, threshold_db=1e9,
                                      resolution_m=RESOLUTION_M)
        with pytest.raises(InfeasibleError) as err:
            optimize_network(frontiers=frontiers)
        assert err.value.scanned_options == frontiers.scanned_options

    def test_unknown_inputs_raise_configuration_errors(self):
        graph = build_graph("demo", n_segments=4)
        with pytest.raises(ConfigurationError):
            segment_frontiers(graph, engine="quantum")
        with pytest.raises(ConfigurationError):
            TechnologyCatalog(technologies=("carrier-pigeon",))
        with pytest.raises(ConfigurationError):
            optimize_network()
        with pytest.raises(ConfigurationError):
            optimize_network(frontiers=_frontiers(segments=4),
                             resolution_m=10.0)


# -- assignment surface -------------------------------------------------------


class TestAssignmentSurface:
    def test_rows_table_and_counts_are_consistent(self):
        frontiers = _frontiers(segments=12)
        plan = optimize_network(frontiers=frontiers)
        rows = plan.rows()
        assert len(rows) == 12
        counts = plan.technology_counts()
        assert sum(v for k, v in counts.items() if k != "solar") == 12
        text = plan.table(limit=5)
        assert "network assignment" in text
        assert rows[0][0] in text

    def test_catalog_round_trips_comma_names(self):
        catalog = TechnologyCatalog.from_names("conventional,mobile_relay")
        labels = [o.label for o in catalog.options()]
        assert labels == ["conventional@500", "mobile_relay@2650"]

"""Tests for the declarative study layer (repro.study).

Covers the ISSUE-5 contract: YAML/TOML round-trips and validation errors,
shard-count invariance (1 shard == N shards bit-identical under CRN),
resume-from-partial-results equality, study-vs-experiment parity for the
shipped ``studies/*.yaml`` files, and the ``repro study`` CLI smoke.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.extensions import (
    robustness_grid_study_spec,
    run_robustness_grid,
)
from repro.experiments.network import network_study_spec
from repro.experiments.simgrid import run_sim_grid, sim_grid_study_spec
from repro.experiments.table4 import run_table4_grid, table4_grid_study_spec
from repro.study import (
    STUDY_ENGINES,
    StudySpec,
    StudyStore,
    compile_expression,
    load_study,
    parse_study,
    run_study,
    shard_ranges,
)

STUDIES_DIR = Path(__file__).resolve().parents[1] / "studies"

MC_TEXT = """
name: mc-tiny
engine: mc
seed: 7
axes:
  sigma_db: [2.0, 4.0]
  isd_m: [2000.0, 2400.0]
fixed:
  n_repeaters: 8
  trials: 12
  resolution_m: 50.0
derived:
  outage_pct: 100 * outage_probability
"""


def mc_spec() -> StudySpec:
    return parse_study(MC_TEXT)


# -- spec loading and validation ----------------------------------------------


class TestSpec:
    def test_yaml_round_trip(self):
        spec = mc_spec()
        assert spec.name == "mc-tiny"
        assert spec.engine == "mc"
        assert spec.axis_names == ("sigma_db", "isd_m")
        assert spec.case_count == 4
        assert dict(spec.fixed)["trials"] == 12
        assert spec.derived == (("outage_pct", "100 * outage_probability"),)

    def test_toml_round_trip(self):
        text = """
name = "toml-study"
engine = "radio"
seed = 3

[axes]
isd_m = [2000.0, 2400.0]

[fixed]
n_repeaters = 8
resolution_m = 50.0
"""
        spec = parse_study(text, format="toml")
        assert spec.name == "toml-study"
        assert spec.case_count == 2
        assert spec.seed == 3

    def test_load_study_file(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text(MC_TEXT)
        assert load_study(path).compute_hash == mc_spec().compute_hash

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "s.ini"
        path.write_text(MC_TEXT)
        with pytest.raises(ConfigurationError, match="yaml"):
            load_study(path)

    def test_case_order_is_cartesian_last_axis_fastest(self):
        cases = mc_spec().cases()
        assert [(c["sigma_db"], c["isd_m"]) for c in cases] == [
            (2.0, 2000.0), (2.0, 2400.0), (4.0, 2000.0), (4.0, 2400.0)]
        assert all(c["trials"] == 12 for c in cases)

    @pytest.mark.parametrize("mutation, match", [
        ({"engine": "warp"}, "unknown engine"),
        ({"axes": {}}, "no sweep axes"),
        ({"axes": {"sigma_db": []}}, "is empty"),
        ({"axes": {"bogus_param": [1.0]}}, "does not accept"),
        ({"axes": {"sigma_db": [2.0]}, "fixed": {"sigma_db": 4.0}},
         "both as an axis"),
        ({"metrics": ["nope"]}, "unknown metrics"),
        ({"derived": {"outage_probability": "1 + 1"}}, "collides"),
        ({"derived": {"x": "unknown_metric + 1"}}, "references"),
        ({"derived": {"x": "__import__('os')"}}, "not allowed"),
        ({"derived": {"x": "1 +"}}, "does not parse"),
        ({"seed": "abc"}, "integer"),
        ({"seed_mode": "chaos"}, "seed_mode"),
        ({"frobnicate": 1}, "unknown study keys"),
    ])
    def test_validation_errors(self, mutation, match):
        import yaml

        document = yaml.safe_load(MC_TEXT)
        document.update(mutation)
        with pytest.raises(ConfigurationError, match=match):
            parse_study(yaml.safe_dump(document))

    def test_missing_required_param(self):
        with pytest.raises(ConfigurationError, match="requires"):
            parse_study("""
name: x
engine: sim
axes:
  headway_s: [450.0]
""")

    def test_compute_hash_ignores_derived_and_metrics(self):
        spec = mc_spec()
        assert replace(spec, derived=(), description="other").compute_hash \
            == spec.compute_hash
        assert replace(spec, seed=8).compute_hash != spec.compute_hash
        assert replace(spec, fixed=spec.fixed[:-1]).compute_hash \
            != spec.compute_hash

    def test_case_seed_modes(self):
        shared = mc_spec()
        assert [shared.case_seed(i) for i in range(4)] == [7, 7, 7, 7]
        per_case = replace(shared, seed_mode="per-case")
        seeds = [per_case.case_seed(i) for i in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [per_case.case_seed(i) for i in range(4)]

    def test_with_overrides(self):
        spec = mc_spec().with_overrides(trials=5)
        assert dict(spec.fixed)["trials"] == 5
        assert spec.case_count == 4


class TestExpressions:
    def test_arithmetic_and_functions(self):
        env = {"a": 9.0, "b": 2.0}
        assert compile_expression("sqrt(a) + b ** 2")(env) == 7.0
        assert compile_expression("a if a > b else b")(env) == 9.0
        assert compile_expression("min(a, b) / max(a, b)")(env) == 2.0 / 9.0

    @pytest.mark.parametrize("bad", [
        "__import__('os').system('x')",
        "a.__class__",
        "[x for x in (1,)]",
        "lambda: 1",
        "open('f')",
        "'str' + 'cat'",
        "a @ b",
    ])
    def test_rejects_unsafe_syntax(self, bad):
        with pytest.raises(ConfigurationError):
            compile_expression(bad)

    def test_unknown_name_at_eval(self):
        evaluate = compile_expression("nope + 1")
        with pytest.raises(ConfigurationError, match="unknown name"):
            evaluate({"a": 1.0})


# -- runner: sharding, parallelism, resume ------------------------------------


class TestRunner:
    def test_shard_ranges_balanced(self):
        assert shard_ranges(10, 3) == [(0, 3), (3, 7), (7, 10)]
        assert shard_ranges(2, 5) == [(0, 1), (1, 2)]
        with pytest.raises(ConfigurationError):
            shard_ranges(0, 1)

    def test_shard_count_invariance_bit_identical(self):
        spec = mc_spec()
        tables = [run_study(spec, shards=k).table for k in (1, 2, 4)]
        reference = tables[0].long()
        for table in tables[1:]:
            assert table.long() == reference

    def test_process_pool_matches_inline(self):
        spec = mc_spec()
        inline = run_study(spec, jobs=1, shards=4).table.long()
        pooled = run_study(spec, jobs=2, shards=4).table.long()
        assert pooled == inline

    def test_seed_mode_changes_stochastic_results(self):
        spec = mc_spec()
        shared = run_study(spec).table.wide()
        per_case = run_study(replace(spec, seed_mode="per-case")).table.wide()
        assert shared["outage_probability"] != per_case["outage_probability"]

    def test_resume_from_partial_equals_fresh_run(self, tmp_path):
        spec = mc_spec()
        fresh = run_study(spec, shards=4).table

        store = StudyStore(cache_dir=tmp_path / "store")
        partial = run_study(spec, shards=4, store=store, max_shards=2)
        assert partial.partial
        assert partial.computed_shards == 2
        assert len(partial.table) == 2  # half the cases

        # a new store instance (fresh process equivalent) resumes from disk
        resumed = run_study(spec, shards=4,
                            store=StudyStore(cache_dir=tmp_path / "store"))
        assert not resumed.partial
        assert resumed.reused_shards == 2
        assert resumed.computed_shards == 2
        assert resumed.table.long() == fresh.long()

        # a third run is served entirely from the store, still identical
        replayed = run_study(spec, shards=4,
                             store=StudyStore(cache_dir=tmp_path / "store"))
        assert replayed.reused_shards == 4
        assert replayed.table.long() == fresh.long()

    def test_store_survives_string_axes(self, tmp_path):
        spec = parse_study("""
name: solar-tiny
engine: solar
seed: 2022
axes:
  location: [madrid, berlin]
fixed:
  pv_peak_w: 540.0
  battery_wh: 720.0
""")
        store = StudyStore(cache_dir=tmp_path)
        first = run_study(spec, shards=2, store=store).table
        resumed = run_study(spec, shards=2,
                            store=StudyStore(cache_dir=tmp_path)).table
        assert resumed.long() == first.long()
        assert resumed.wide()["location"] == ["madrid", "berlin"]

    def test_progress_heartbeat(self):
        beats = []
        run_study(mc_spec(), shards=4,
                  progress=lambda k, n, label: beats.append((k, n)))
        assert beats == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_engine_error_propagates(self):
        spec = parse_study("""
name: bad-location
engine: solar
axes:
  location: [atlantis]
fixed:
  pv_peak_w: 540.0
  battery_wh: 720.0
""")
        with pytest.raises(ConfigurationError, match="atlantis"):
            run_study(spec)


# -- results table ------------------------------------------------------------


class TestResults:
    def test_long_and_wide_layouts(self):
        table = run_study(mc_spec()).table
        wide = table.wide()
        long = table.long()
        metrics = list(table.metric_names)
        assert "outage_pct" in metrics  # derived metric lands in the table
        assert len(long["case"]) == len(wide["case"]) * len(metrics)
        assert long["metric"][:len(metrics)] == metrics
        # long rows reconstruct the wide cells
        assert long["value"][metrics.index("outage_pct")] \
            == wide["outage_pct"][0]

    def test_metric_filter(self):
        spec = replace(mc_spec(), metrics=("outage_probability",))
        table = run_study(spec).table
        assert table.metric_names == ("outage_probability", "outage_pct")
        assert set(table.wide()) == {"case", "sigma_db", "isd_m",
                                     "outage_probability", "outage_pct"}

    def test_csv_and_json_writers(self, tmp_path):
        table = run_study(mc_spec()).table
        csv_path = table.write_csv(tmp_path / "out.csv")
        header = csv_path.read_text().splitlines()[0]
        assert header == "case,sigma_db,isd_m,metric,value"
        wide_path = table.write_csv(tmp_path / "wide.csv", layout="wide")
        assert wide_path.read_text().splitlines()[0].startswith(
            "case,sigma_db,isd_m,outage_probability")
        document = json.loads(table.write_json(tmp_path / "o.json").read_text())
        assert document["study"] == "mc-tiny"
        assert len(document["rows"]) == 4
        with pytest.raises(ConfigurationError):
            table.write_csv(tmp_path / "x.csv", layout="diagonal")

    def test_json_metadata_embedded(self, tmp_path):
        table = run_study(mc_spec()).table
        plain = json.loads(table.write_json(tmp_path / "p.json").read_text())
        assert "metadata" not in plain
        tagged = json.loads(table.write_json(
            tmp_path / "t.json",
            metadata={"backend": "reference"}).read_text())
        assert tagged["metadata"] == {"backend": "reference"}
        assert tagged["rows"] == plain["rows"]

    def test_json_nan_becomes_null(self, tmp_path):
        spec = parse_study("""
name: sim-nan
engine: sim
axes:
  policy: [sleep]
fixed:
  isd_m: 2400.0
  headway_s: 900.0
  trains_per_day: 200.0
  realizations: 1
""")
        table = run_study(spec).table
        document = json.loads(table.write_json(tmp_path / "o.json").read_text())
        assert document["rows"][0]["mean_w_per_km"] is None
        assert document["rows"][0]["feasible"] == 0


# -- engine adapters ----------------------------------------------------------


class TestEngines:
    def test_registry_covers_five_engines(self):
        assert set(STUDY_ENGINES) == {"radio", "solar", "mc", "sim",
                                      "network"}
        for adapter in STUDY_ENGINES.values():
            assert adapter.metrics
            assert adapter.required <= set(adapter.params)

    def test_radio_matches_scalar_path(self):
        from repro.corridor.layout import CorridorLayout
        from repro.radio.link import compute_snr_profile

        spec = parse_study("""
name: radio-check
engine: radio
axes:
  isd_m: [2200.0]
fixed:
  n_repeaters: 6
  resolution_m: 10.0
""")
        row = run_study(spec).table.wide()
        profile = compute_snr_profile(
            CorridorLayout.with_uniform_repeaters(2200.0, 6), resolution_m=10.0)
        assert row["min_snr_db"][0] == profile.min_snr_db
        assert row["mean_snr_db"][0] == profile.mean_snr_db

    def test_mc_scalar_engine_hatch_identical(self):
        spec = mc_spec()
        batched = run_study(spec).table.wide()
        scalar = run_study(
            spec.with_overrides(engine="scalar")).table.wide()
        assert scalar["outage_probability"] == batched["outage_probability"]
        assert scalar["median_min_snr_db"] == batched["median_min_snr_db"]

    def test_backend_context_reference_matches_scalar(self):
        # The reference backend routed through the study context reproduces
        # the scalar escape hatch bit for bit; the default fused backend
        # stays inside its 1e-9 parity budget on the same grid.
        spec = mc_spec()
        scalar = run_study(
            spec.with_overrides(engine="scalar")).table.wide()
        reference = run_study(
            spec, context={"backend": "reference"}).table.wide()
        fused = run_study(spec, context={"backend": "numpy"}).table.wide()
        assert reference["outage_probability"] == scalar["outage_probability"]
        assert reference["median_min_snr_db"] == scalar["median_min_snr_db"]
        assert fused["outage_probability"] == scalar["outage_probability"]
        for got, want in zip(fused["median_min_snr_db"],
                             scalar["median_min_snr_db"]):
            assert abs(got - want) <= 1e-9

    def test_backend_context_crosses_process_pool(self):
        spec = mc_spec()
        inline = run_study(spec, context={"backend": "reference"}).table
        pooled = run_study(spec, jobs=2, shards=2,
                           context={"backend": "reference"}).table
        assert pooled.wide() == inline.wide()

    def test_sim_unknown_policy_rejected(self):
        spec = parse_study("""
name: sim-bad
engine: sim
axes:
  policy: [warp-drive]
fixed:
  isd_m: 2400.0
  headway_s: 450.0
  trains_per_day: 76.0
  realizations: 1
""")
        with pytest.raises(ConfigurationError, match="warp-drive"):
            run_study(spec)


# -- parity with the routed experiments ---------------------------------------


class TestExperimentParity:
    def test_sim_grid_routes_through_study(self):
        result = run_sim_grid(headways=(450.0,), trains_per_day=(76.0, 300.0),
                              realizations=3)
        spec = sim_grid_study_spec(headways=(450.0,),
                                   trains_per_day=(76.0, 300.0),
                                   realizations=3)
        table = run_study(spec).table.wide()
        assert [r.mean_w_per_km for r in result.rows if r.feasible] \
            == [v for v in table["mean_w_per_km"] if v == v]
        assert [r.mode.value for r in result.rows] == table["policy"]
        assert [r.service_hours for r in result.rows] == table["service_hours"]

    def test_robustness_grid_routes_through_study(self):
        result = run_robustness_grid(trials=10, sigmas=(2.0,),
                                     decorrelations_m=(50.0,))
        spec = robustness_grid_study_spec(trials=10, sigmas=(2.0,),
                                          decorrelations_m=(50.0,))
        table = run_study(spec).table.wide()
        assert [r[3] for r in result.rows] == table["outage_probability"]
        assert [r[2] for r in result.rows] == table["isd_m"]

    def test_robustness_grid_matches_stacked_outage_matrix(self):
        """Pin the per-case routing against the pre-refactor stacked sweep.

        The old implementation evaluated every ISD candidate in ONE
        outage_matrix call per (sigma, decorrelation) cell; the study route
        evaluates one candidate per case.  CRN seeding makes the two
        bit-identical — this is the regression guard for that property.
        """
        from repro.corridor.layout import CorridorLayout
        from repro.optimize.mc import outage_matrix
        from repro.propagation.fading import LogNormalShadowing
        from repro.radio.batch import evaluate_scenarios
        from repro.scenario.spec import Scenario

        isds = (2000.0, 2200.0, 2400.0)
        sigmas, decorrs, trials, seed = (2.0, 4.0), (50.0,), 15, 2022
        routed = run_robustness_grid(isds_m=isds, sigmas=sigmas,
                                     decorrelations_m=decorrs, trials=trials,
                                     seed=seed)
        profiles = evaluate_scenarios(
            [Scenario(layout=CorridorLayout.with_uniform_repeaters(isd, 8),
                      resolution_m=10.0) for isd in isds])
        stacked = []
        for sigma in sigmas:
            for decorr in decorrs:
                matrix = outage_matrix(
                    profiles, LogNormalShadowing(sigma_db=sigma,
                                                 decorrelation_m=decorr),
                    trials=trials, seed=seed)
                low, high = matrix.ci95()
                median = matrix.quantile(0.5)
                for c, isd in enumerate(isds):
                    stacked.append((sigma, decorr, isd,
                                    float(matrix.outage_probability[c]),
                                    float(low[c]), float(high[c]),
                                    float(median[c])))
        assert routed.rows == stacked

    def test_table4_grid_series_parity(self):
        pv, wh = (540.0,), (720.0, 1440.0)
        series = run_table4_grid(pv_peaks=pv, battery_whs=wh).series()
        spec = table4_grid_study_spec(pv_peaks=pv, battery_whs=wh)
        table = run_study(spec, shards=3).table.wide()
        for column in ("location", "pv_peak_w", "battery_wh", "zero_downtime",
                       "unmet_hours", "full_battery_days_pct",
                       "annual_pv_kwh"):
            assert table[column] == series[column], column

    def test_shipped_yaml_files_load_and_match_helpers(self):
        by_name = {}
        for path in sorted(STUDIES_DIR.glob("*.yaml")):
            spec = load_study(path)
            by_name[spec.name] = spec
        assert set(by_name) == {"sim-grid-demand", "robustness-grid",
                                "table4-grid", "national-network"}
        assert by_name["table4-grid"].compute_hash \
            == table4_grid_study_spec().compute_hash
        # national_network.yaml mirrors the experiment helper exactly (the
        # derived columns are presentation-only and excluded from the hash)
        assert by_name["national-network"].compute_hash \
            == network_study_spec().compute_hash
        # the YAML mirrors the experiment's axes and defaults exactly: once
        # adapter defaults are applied, every case resolves identically
        helper = robustness_grid_study_spec(
            isds_m=dict(by_name["robustness-grid"].axes)["isd_m"])
        yaml_spec = by_name["robustness-grid"]
        assert yaml_spec.axes == helper.axes
        assert yaml_spec.seed == helper.seed
        adapter = STUDY_ENGINES["mc"]
        assert [adapter.resolve(c) for c in yaml_spec.cases()] \
            == [adapter.resolve(c) for c in helper.cases()]

    def test_shipped_sim_yaml_runs_end_to_end(self):
        """Acceptance: the (ISD x trains/day x policy) study end to end."""
        spec = load_study(STUDIES_DIR / "sim_grid.yaml")
        assert spec.axis_names == ("isd_m", "trains_per_day", "policy")
        small = replace(
            spec,
            axes=(("isd_m", (1800.0, 2400.0)),
                  ("trains_per_day", (76.0,)),
                  ("policy", ("continuous", "sleep", "solar"))),
        ).with_overrides(realizations=2)
        one = run_study(small, shards=1).table
        many = run_study(small, shards=5).table
        assert one.long() == many.long()
        assert "bias_pct" in one.metric_names


# -- CLI ----------------------------------------------------------------------


class TestStudyCli:
    def _write(self, tmp_path) -> Path:
        path = tmp_path / "tiny.yaml"
        path.write_text(MC_TEXT)
        return path

    def test_run_smoke_with_outputs(self, tmp_path, capsys):
        path = self._write(tmp_path)
        code = main(["study", "run", str(path),
                     "--csv", str(tmp_path / "out.csv"),
                     "--json", str(tmp_path / "out.json"),
                     "--store", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "mc-tiny" in out
        assert (tmp_path / "out.csv").exists()
        assert json.loads((tmp_path / "out.json").read_text())["engine"] == "mc"

    def test_backend_flag_tags_json_output(self, tmp_path, capsys):
        path = self._write(tmp_path)
        code = main(["study", "run", str(path), "--quiet",
                     "--backend", "reference",
                     "--json", str(tmp_path / "out.json")])
        assert code == 0
        document = json.loads((tmp_path / "out.json").read_text())
        assert document["metadata"] == {"backend": "reference"}

    def test_backend_flag_rejects_unknown(self, tmp_path, capsys):
        path = self._write(tmp_path)
        assert main(["study", "run", str(path), "--quiet",
                     "--backend", "fortran"]) == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_resume_requires_store(self, tmp_path):
        path = self._write(tmp_path)
        with pytest.raises(SystemExit):
            main(["study", "resume", str(path)])

    def test_resume_completes_partial(self, tmp_path, capsys):
        path = self._write(tmp_path)
        store = str(tmp_path / "store")
        code = main(["study", "run", str(path), "--store", store,
                     "--max-shards", "1", "--shards", "4", "--quiet"])
        assert code == 3  # partial
        code = main(["study", "resume", str(path), "--store", store,
                     "--shards", "4"])
        assert code == 0
        err = capsys.readouterr().err
        assert "reused from store" in err
        assert "1 reused, 3 computed" in err

    def test_max_shards_zero_yields_empty_partial_table(self, tmp_path):
        spec = mc_spec()
        report = run_study(spec, shards=4, max_shards=0)
        assert report.partial and report.computed_shards == 0
        assert len(report.table) == 0
        assert report.table.long()["case"] == []
        path = self._write(tmp_path)
        assert main(["study", "run", str(path), "--max-shards", "0",
                     "--quiet", "--csv", str(tmp_path / "e.csv")]) == 3

    def test_list(self, capsys):
        assert main(["study", "list", str(STUDIES_DIR)]) == 0
        out = capsys.readouterr().out
        assert "sim_grid.yaml" in out
        assert "27 cases" in out

    def test_list_empty_dir(self, tmp_path):
        assert main(["study", "list", str(tmp_path)]) == 1

    def test_bad_study_file(self, tmp_path, capsys):
        path = tmp_path / "broken.yaml"
        path.write_text("name: x\nengine: nope\naxes:\n  isd_m: [1.0]\n")
        assert main(["study", "run", str(path)]) == 2
        assert "cannot load" in capsys.readouterr().err


# -- store guards (ISSUE-10 satellites) ---------------------------------------


class TestStoreBackendGuard:
    """A store records the kernel backend that computed it; a resume that
    would compute *new* shards under a different backend must fail loudly
    (mixed-backend stores are only tolerance-equal, never bit-identical)
    instead of being silently accepted."""

    def _seed_store(self, tmp_path):
        spec = mc_spec()
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store)
        return spec, store

    def _drop_one_bundle(self, spec, tmp_path):
        bundle = sorted((tmp_path / "store").glob(
            f"{spec.compute_hash[:40]}-*.npz"))[0]
        bundle.unlink()

    def test_pure_reuse_never_trips_the_guard(self, tmp_path):
        spec, _ = self._seed_store(tmp_path)
        # Nothing pending -> nothing mixes, any backend may read.
        fresh = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        report = run_study(spec, shards=4, store=fresh,
                           context={"backend": "reference"})
        assert report.computed_shards == 0

    def test_resume_with_other_backend_refused(self, tmp_path):
        spec, store = self._seed_store(tmp_path)
        assert store.run_metadata(spec)["backend"] == "numpy"
        self._drop_one_bundle(spec, tmp_path)
        fresh = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        with pytest.raises(ConfigurationError, match="backend"):
            run_study(spec, shards=4, store=fresh,
                      context={"backend": "reference"})

    def test_force_backend_accepts_and_rerecords(self, tmp_path):
        spec, _ = self._seed_store(tmp_path)
        self._drop_one_bundle(spec, tmp_path)
        fresh = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        report = run_study(spec, shards=4, store=fresh,
                           context={"backend": "reference"},
                           force_backend=True)
        assert report.computed_shards == 1
        assert fresh.run_metadata(spec)["backend"] == "reference"

    def test_cli_resume_backend_mismatch(self, tmp_path, capsys):
        path = tmp_path / "study.yaml"
        path.write_text(MC_TEXT)
        store = tmp_path / "store"
        assert main(["study", "run", str(path), "--quiet",
                     "--store", str(store)]) == 0
        spec = mc_spec()
        sorted(store.glob(f"{spec.compute_hash[:40]}-*.npz"))[0].unlink()
        assert main(["study", "resume", str(path), "--quiet",
                     "--store", str(store),
                     "--backend", "reference"]) == 1
        assert "backend" in capsys.readouterr().err
        assert main(["study", "resume", str(path), "--quiet",
                     "--store", str(store), "--backend", "reference",
                     "--force"]) == 0


class TestLayoutMismatchWarning:
    def test_layout_mismatch_warns_once_per_process(self, tmp_path):
        import repro.study.runner as runner_mod

        spec = mc_spec()
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store)
        runner_mod._WARNED_LAYOUTS.clear()
        # Two runs rediscovering the same mismatch (max_shards=0 keeps the
        # store unchanged between them): exactly one warning, naming both
        # layouts -- not one line of spam per call.
        with pytest.warns(RuntimeWarning,
                          match="different shard layout") as record:
            run_study(spec, shards=2, store=store, max_shards=0)
            run_study(spec, shards=2, store=store, max_shards=0)
        layout_warnings = [w for w in record
                           if "different shard layout" in str(w.message)]
        assert len(layout_warnings) == 1
        message = str(layout_warnings[0].message)
        assert "4 shards" in message and "2-shard layout" in message

    def test_matching_layout_never_warns(self, tmp_path, recwarn):
        spec = mc_spec()
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store)
        run_study(spec, shards=4, store=store)
        assert not [w for w in recwarn
                    if issubclass(w.category, RuntimeWarning)]

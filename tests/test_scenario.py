"""Tests for the scenario layer: spec hashing, grid expansion, profile cache."""

import numpy as np
import pytest

from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.link import LinkParams
from repro.radio.noise import RepeaterNoiseModel
from repro.scenario import ProfileCache, Scenario, ScenarioGrid, isd_candidates

PROFILE_FIELDS = ("positions_m", "source_rsrp_dbm", "total_signal_dbm",
                  "total_noise_dbm", "snr_db")


def make_scenario(**kwargs) -> Scenario:
    defaults = dict(isd_m=1200.0, n_repeaters=2, resolution_m=5.0)
    defaults.update(kwargs)
    link = defaults.pop("link", LinkParams())
    return Scenario.uniform(defaults.pop("isd_m"), defaults.pop("n_repeaters"),
                            link=link, resolution_m=defaults.pop("resolution_m"))


class TestScenario:
    def test_hash_is_stable(self):
        assert make_scenario().content_hash == make_scenario().content_hash

    def test_hash_differs_for_every_field(self):
        base = make_scenario()
        variants = [
            make_scenario(isd_m=1250.0),
            make_scenario(n_repeaters=3),
            make_scenario(resolution_m=2.0),
            make_scenario(link=LinkParams(hp_eirp_dbm=65.0)),
            make_scenario(link=LinkParams(lp_eirp_dbm=41.0)),
            make_scenario(link=LinkParams(terminal_noise_figure_db=8.0)),
            make_scenario(link=LinkParams(
                repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR)),
        ]
        hashes = {base.content_hash} | {v.content_hash for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_rejects_nonpositive_resolution(self):
        with pytest.raises(ConfigurationError):
            Scenario(layout=CorridorLayout(1000.0), resolution_m=0.0)

    def test_positions_match_reference_grid(self):
        sc = make_scenario(isd_m=1000.0, resolution_m=1.0)
        positions = sc.positions_m()
        assert positions[0] == 1.0
        assert positions[-1] == 999.0

    def test_evaluate_is_reference_path(self):
        from repro.radio.link import compute_snr_profile

        sc = make_scenario()
        ref = compute_snr_profile(sc.layout, sc.link, resolution_m=sc.resolution_m)
        got = sc.evaluate()
        for name in PROFILE_FIELDS:
            assert np.array_equal(getattr(got, name), getattr(ref, name))


class TestScenarioGrid:
    def test_isd_candidates_match_seed_rule(self):
        cands = isd_candidates(10, isd_step_m=50.0, isd_max_m=4000.0)
        assert cands[0] == 1900.0  # 200 * 9 + 2 * 50
        assert cands[-1] == 4000.0
        assert np.all(np.diff(cands) == 50.0)

    def test_cartesian_expansion(self):
        grid = ScenarioGrid(isd_values_m=(1000.0, 1500.0), n_values=(0, 2),
                            resolution_m=10.0,
                            hp_eirp_offsets_db=(0.0, 3.0))
        scenarios = grid.build()
        assert len(scenarios) == 2 * 2 * 2
        eirps = {sc.link.hp_eirp_dbm for sc in scenarios}
        assert eirps == {LinkParams().hp_eirp_dbm, LinkParams().hp_eirp_dbm + 3.0}

    def test_skips_infeasible_geometries(self):
        # 8 nodes span 1400 m: they do not fit a 1000 m segment.
        grid = ScenarioGrid(isd_values_m=(1000.0, 2000.0), n_values=(8,),
                            resolution_m=10.0)
        scenarios = grid.build()
        assert [sc.layout.isd_m for sc in scenarios] == [2000.0]

    def test_strict_mode_raises_on_infeasible(self):
        from repro.errors import GeometryError

        grid = ScenarioGrid(isd_values_m=(1000.0,), n_values=(8,),
                            skip_infeasible=False)
        with pytest.raises(GeometryError):
            grid.build()

    def test_perturbations_change_hashes(self):
        grid = ScenarioGrid(isd_values_m=(1000.0,), n_values=(1,),
                            resolution_m=10.0,
                            noise_figure_offsets_db=(-1.0, 0.0, 1.0))
        hashes = {sc.content_hash for sc in grid.build()}
        assert len(hashes) == 3

    def test_isd_sweep_matches_candidates(self):
        grid = ScenarioGrid.isd_sweep(3, isd_step_m=50.0, isd_max_m=2000.0,
                                      resolution_m=5.0)
        cands = isd_candidates(3, isd_step_m=50.0, isd_max_m=2000.0)
        assert [sc.layout.isd_m for sc in grid.build()] == list(cands)


class TestProfileCache:
    def test_same_hash_hits(self):
        cache = ProfileCache(maxsize=4)
        sc = make_scenario()
        first = cache.get_or_compute(sc)
        again = cache.get_or_compute(make_scenario())
        assert again is first
        assert cache.hits == 1 and cache.misses == 1

    def test_any_field_change_misses(self):
        cache = ProfileCache(maxsize=16)
        cache.get_or_compute(make_scenario())
        for variant in (
                make_scenario(link=LinkParams(hp_eirp_dbm=65.0)),
                make_scenario(link=LinkParams(
                    repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR)),
                make_scenario(resolution_m=2.5)):
            misses = cache.misses
            cache.get_or_compute(variant)
            assert cache.misses == misses + 1

    def test_cached_results_bit_identical(self, tmp_path):
        cache = ProfileCache(maxsize=4, cache_dir=tmp_path)
        sc = make_scenario()
        fresh = sc.evaluate()
        cache.put(sc, fresh)

        # Drop the memory layer so the lookup must go through disk.
        reloaded_cache = ProfileCache(maxsize=4, cache_dir=tmp_path)
        reloaded = reloaded_cache.get(sc)
        assert reloaded is not None
        for name in PROFILE_FIELDS:
            assert np.array_equal(getattr(reloaded, name), getattr(fresh, name))

    def test_lru_eviction(self):
        cache = ProfileCache(maxsize=2)
        scenarios = [make_scenario(isd_m=isd) for isd in (900.0, 1000.0, 1100.0)]
        for sc in scenarios:
            cache.get_or_compute(sc)
        assert len(cache) == 2
        assert cache.get(scenarios[0]) is None  # evicted
        assert cache.get(scenarios[2]) is not None

    def test_rejects_zero_maxsize(self):
        with pytest.raises(ConfigurationError):
            ProfileCache(maxsize=0)

    def test_rejects_file_as_cache_dir(self, tmp_path):
        target = tmp_path / "notadir"
        target.write_text("")
        with pytest.raises(ConfigurationError):
            ProfileCache(cache_dir=target)

    def test_disk_round_trip_via_get_or_compute(self, tmp_path):
        warm = ProfileCache(maxsize=4, cache_dir=tmp_path)
        sc = make_scenario(n_repeaters=4, isd_m=1600.0)
        first = warm.get_or_compute(sc)

        cold = ProfileCache(maxsize=4, cache_dir=tmp_path)
        second = cold.get_or_compute(sc)
        assert cold.hits == 1 and cold.misses == 0
        assert np.array_equal(first.snr_db, second.snr_db)

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ProfileCache(maxsize=4, cache_dir=tmp_path)
        sc = make_scenario()
        (tmp_path / f"{sc.content_hash}.npz").write_bytes(b"torn write")
        profile = cache.get_or_compute(sc)  # must recompute, not crash
        assert profile is not None
        # The fresh put overwrote the corrupt file with a loadable one.
        cold = ProfileCache(maxsize=4, cache_dir=tmp_path)
        assert cold.get(sc) is not None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ProfileCache(maxsize=4, cache_dir=tmp_path)
        cache.get_or_compute(make_scenario())
        assert not [p for p in tmp_path.iterdir() if p.suffix != ".npz"]


class TestGridLen:
    def test_len_matches_build(self):
        grid = ScenarioGrid(isd_values_m=(1000.0, 2000.0), n_values=(0, 8),
                            resolution_m=10.0, hp_eirp_offsets_db=(0.0, 3.0))
        assert len(grid) == len(grid.build())  # 8 nodes don't fit 1000 m

    def test_len_without_skip(self):
        grid = ScenarioGrid(isd_values_m=(2000.0,), n_values=(0, 1),
                            skip_infeasible=False)
        assert len(grid) == 2

"""Tests for the built-from-source documentation tooling (repro.docs).

The real site (mkdocs.yml + docs/) must strict-build, the generated API
reference must match the live docstrings, and the strict checks must
actually catch the failure modes they exist for (missing nav targets,
orphan pages, broken links and anchors, stale API pages).
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.docs import apigen, build_site, load_config, render, slugify
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


# -- markdown renderer --------------------------------------------------------


class TestMarkdown:
    def test_headings_and_slugs(self):
        page = render("# Top Title\n\n## A `code` Section!\n")
        assert page.title == "Top Title"
        assert page.headings == [(1, "Top Title", "top-title"),
                                 (2, "A code Section!", "a-code-section")]
        assert '<h2 id="a-code-section">' in page.html

    def test_duplicate_headings_get_unique_slugs(self):
        page = render("## Same\n\n## Same\n")
        assert page.anchors == {"same", "same-1"}

    def test_fenced_code_is_escaped_verbatim(self):
        page = render("```python\nx = a < b  # **not bold**\n```\n")
        assert "x = a &lt; b  # **not bold**" in page.html
        assert "<strong>" not in page.html

    def test_inline_markup(self):
        page = render("A **bold** *em* `co_de` [link](other.md#sec) here.\n")
        assert "<strong>bold</strong>" in page.html
        assert "<em>em</em>" in page.html
        assert "<code>co_de</code>" in page.html
        assert '<a href="other.md#sec">link</a>' in page.html
        assert page.links == ["other.md#sec"]

    def test_lists_and_tables(self):
        page = render("- one\n- two\n\n| a | b |\n|---|---|\n| 1 | 2 |\n")
        assert "<ul>" in page.html and "<li>one</li>" in page.html
        assert "<th>a</th>" in page.html and "<td>2</td>" in page.html

    def test_ordered_list(self):
        page = render("1. first\n2. second\n")
        assert "<ol>" in page.html

    def test_slugify(self):
        assert slugify("Reproducing the paper") == "reproducing-the-paper"
        assert slugify("`repro.study` — Engines?") == "reprostudy--engines"


# -- real site ----------------------------------------------------------------


class TestRealSite:
    def test_strict_build_of_repository_docs(self, tmp_path):
        report = build_site(MKDOCS_YML, output_dir=tmp_path, strict=True)
        assert report.ok
        assert report.pages_built == len(load_config(MKDOCS_YML).pages)
        index = (tmp_path / "index.html").read_text()
        assert "Railway" in index
        assert (tmp_path / "api" / "study.html").exists()

    def test_issue_required_pages_present(self):
        pages = {path for _, path in load_config(MKDOCS_YML).pages}
        assert {"index.md", "architecture.md", "reproducing.md",
                "studies.md", "regression.md"} <= pages
        assert {"api/scenario.md", "api/radio-batch.md", "api/solar-batch.md",
                "api/optimize-mc.md", "api/simulation-batch.md",
                "api/study.md"} <= pages

    def test_api_reference_in_sync(self):
        assert apigen.check(REPO_ROOT / "docs") == []

    def test_api_pages_cover_issue_modules(self):
        documented = {m for page in apigen.API_PAGES for m in page.modules}
        assert {"repro.scenario.spec", "repro.radio.batch",
                "repro.solar.batch", "repro.optimize.mc",
                "repro.simulation.batch", "repro.study.spec"} <= documented

    def test_generated_pages_mention_escape_hatches(self):
        mc = (REPO_ROOT / "docs/api/optimize-mc.md").read_text()
        assert "scalar" in mc  # the engine="scalar" audit-path note
        sim = (REPO_ROOT / "docs/api/simulation-batch.md").read_text()
        assert 'engine="event"' in sim or "escape hatch" in sim


# -- strict checks catch real failures ----------------------------------------


def _write_site(tmp_path: Path, pages: dict, nav: list) -> Path:
    docs = tmp_path / "docs"
    docs.mkdir(exist_ok=True)
    for name, body in pages.items():
        target = docs / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(body)
    nav_yaml = "\n".join(f"  - {title}: {path}" for title, path in nav)
    config = tmp_path / "mkdocs.yml"
    config.write_text(f"site_name: t\ndocs_dir: docs\nnav:\n{nav_yaml}\n")
    return config


class TestStrictChecks:
    def test_missing_nav_target_fails(self, tmp_path):
        config = _write_site(tmp_path, {"index.md": "# Hi\n"},
                             [("Home", "index.md"), ("Gone", "gone.md")])
        with pytest.raises(ConfigurationError, match="gone.md"):
            build_site(config, strict=True, check_api=False)

    def test_orphan_page_fails(self, tmp_path):
        config = _write_site(tmp_path,
                             {"index.md": "# Hi\n", "stray.md": "# S\n"},
                             [("Home", "index.md")])
        with pytest.raises(ConfigurationError, match="stray.md"):
            build_site(config, strict=True, check_api=False)

    def test_broken_link_fails(self, tmp_path):
        config = _write_site(tmp_path,
                             {"index.md": "# Hi\n[dead](missing.md)\n"},
                             [("Home", "index.md")])
        with pytest.raises(ConfigurationError, match="broken link"):
            build_site(config, strict=True, check_api=False)

    def test_broken_anchor_fails(self, tmp_path):
        config = _write_site(
            tmp_path,
            {"index.md": "# Hi\n[x](other.md#nope)\n",
             "other.md": "# Other\n\n## Real Section\n"},
            [("Home", "index.md"), ("Other", "other.md")])
        with pytest.raises(ConfigurationError, match="no heading"):
            build_site(config, strict=True, check_api=False)

    def test_valid_anchor_passes(self, tmp_path):
        config = _write_site(
            tmp_path,
            {"index.md": "# Hi\n[x](other.md#real-section)\n",
             "other.md": "# Other\n\n## Real Section\n"},
            [("Home", "index.md"), ("Other", "other.md")])
        report = build_site(config, strict=True, check_api=False)
        assert report.ok and report.internal_links == 1

    def test_external_links_counted_not_fetched(self, tmp_path):
        config = _write_site(
            tmp_path, {"index.md": "# Hi\n[x](https://example.org/nope)\n"},
            [("Home", "index.md")])
        report = build_site(config, strict=True, check_api=False)
        assert report.external_links == 1

    def test_non_strict_reports_instead_of_raising(self, tmp_path):
        config = _write_site(tmp_path, {"index.md": "# Hi\n[d](gone.md)\n"},
                             [("Home", "index.md")])
        report = build_site(config, strict=False, check_api=False)
        assert not report.ok
        assert any("broken link" in p for p in report.problems)

    def test_stale_api_page_detected(self, tmp_path):
        config = _write_site(tmp_path, {"index.md": "# Hi\n"},
                             [("Home", "index.md")])
        docs = tmp_path / "docs"
        apigen.generate(docs)
        target = docs / apigen.API_PAGES[0].filename
        target.write_text(target.read_text() + "\nstale edit\n")
        problems = apigen.check(docs)
        assert len(problems) == 1 and "stale" in problems[0]


# -- docstring coverage enforcement -------------------------------------------


class TestApigen:
    def test_all_documented_modules_render(self):
        for page in apigen.API_PAGES:
            text = apigen.render_page(page)
            assert text.startswith("<!--")
            assert f"# {page.title}" in text

    def test_missing_docstring_is_an_error(self, monkeypatch):
        import repro.study.runner as runner_module

        monkeypatch.delattr(runner_module.run_study, "__doc__")
        with pytest.raises(ConfigurationError, match="no docstring"):
            apigen.render_module("repro.study.runner")

    def test_docstring_to_markdown_sections(self):
        doc = ("Summary line.\n\nArgs:\n    alpha: The first thing.\n"
               "    beta: The second\n        thing continued.\n\n"
               "Returns:\n    The value.\n")
        text = apigen.docstring_to_markdown(doc)
        assert "**Args:**" in text
        assert "- `alpha` — The first thing." in text
        assert "thing continued." in text
        assert "**Returns:**" in text

    def test_docstring_literal_block_fenced(self):
        doc = "Use it::\n\n    x = 1\n    y = 2\n\nDone.\n"
        text = apigen.docstring_to_markdown(doc)
        assert "```python\nx = 1\ny = 2\n```" in text


# -- CLI ----------------------------------------------------------------------


class TestDocsCli:
    def test_build_strict(self, tmp_path, capsys):
        code = main(["docs", "build", "--strict",
                     "--output", str(tmp_path / "site")])
        assert code == 0
        assert "pages" in capsys.readouterr().out
        assert (tmp_path / "site" / "architecture.html").exists()

    def test_api_check(self, capsys):
        assert main(["docs", "api", "--check"]) == 0
        assert "in sync" in capsys.readouterr().out

    def test_build_failure_exit_code(self, tmp_path, capsys):
        config = _write_site(tmp_path, {"index.md": "# Hi\n[d](gone.md)\n"},
                             [("Home", "index.md")])
        code = main(["docs", "build", "--strict", "--config", str(config),
                     "--no-api-check"])
        assert code == 1
        assert "broken link" in capsys.readouterr().err

"""Tests for the batched off-grid engine and the weather-tensor cache.

The central guarantee mirrors ``test_batch.py``: every result out of
:func:`repro.solar.batch.simulate_systems` under the ``"reference"``
kernel backend is bit-identical to the scalar
:meth:`OffGridSystem.simulate_year` on the same system, the weather-year
tensor is bit-identical to stacking the per-day synthesis, and weather is
synthesized exactly once per key.  The default fused backend's tolerance
contract (exact integers/PV sums, 1e-9 SoC-dependent floats) lives in
``tests/test_engine_parity.py``.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solar.batch import (
    WeatherCache,
    WeatherKey,
    candidate_grid,
    simulate_candidates,
    simulate_systems,
    synthesize_weather_year,
)
from repro.solar.battery import Battery
from repro.solar.climates import DOY_MONTH, LOCATIONS, months_of_days
from repro.solar.degradation import project_lifetime
from repro.solar.irradiance import SyntheticWeather
from repro.solar.offgrid import (
    LoadProfile,
    OffGridResult,
    OffGridSystem,
    annual_load_wh,
    repeater_load_profile,
)
from repro.solar.pv import PvArray
from repro.solar.sizing import find_minimal_system

RESULT_FIELDS = tuple(f.name for f in dataclasses.fields(OffGridResult))

ALL_LOCATIONS = tuple(LOCATIONS)


def assert_results_equal(batched, scalar):
    for name in RESULT_FIELDS:
        assert getattr(batched, name) == getattr(scalar, name), name


class TestWeatherTensor:
    @pytest.mark.parametrize("key", ALL_LOCATIONS)
    def test_year_tensor_matches_day_iteration(self, key):
        weather = SyntheticWeather(LOCATIONS[key], seed=11)
        tensor = weather.year_tensor(days=365, start_day_of_year=274)
        for i, day in enumerate(weather.year(365, 274)):
            assert np.array_equal(tensor.ghi_w_m2[i], day.ghi_w_m2)
            assert np.array_equal(tensor.poa_w_m2[i], day.poa_w_m2)
            assert tensor.kt[i] == day.kt
            assert int(tensor.day_of_year[i]) == day.day_of_year

    def test_monthly_poa_matches_per_day_accumulation(self):
        weather = SyntheticWeather(LOCATIONS["vienna"], seed=3)
        sums = np.zeros(12)
        for day in weather.year():
            sums[weather.location.month_of_day(day.day_of_year)] += day.daily_poa_wh_m2 / 1000.0
        assert np.array_equal(weather.monthly_poa_kwh_m2(), sums)

    def test_month_lookup_matches_boundary_scan(self):
        from repro.solar.climates import MONTH_DAYS, MONTH_FIRST_DOY
        loc = LOCATIONS["madrid"]
        for month, (first, length) in enumerate(zip(MONTH_FIRST_DOY, MONTH_DAYS)):
            assert loc.month_of_day(first) == month
            assert loc.month_of_day(first + length - 1) == month
        assert DOY_MONTH.shape == (365,)
        assert np.array_equal(months_of_days(np.arange(1, 366)),
                              [loc.month_of_day(d) for d in range(1, 366)])

    def test_months_of_days_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            months_of_days(np.array([0]))
        with pytest.raises(ConfigurationError):
            months_of_days(np.array([366]))

    def test_tensor_rejects_bad_inputs(self):
        weather = SyntheticWeather(LOCATIONS["madrid"])
        with pytest.raises(ConfigurationError):
            weather.year_tensor(days=0)
        with pytest.raises(ConfigurationError):
            weather.year_tensor(start_day_of_year=0)


class TestBatchBitIdentity:
    # The per-location scalar-vs-batched field equality (seed sweep) lives in
    # tests/test_engine_parity.py; this class keeps the heterogeneous-batch
    # and error behaviours.

    def test_mixed_locations_seeds_and_loads_in_one_batch(self):
        heavy = LoadProfile(hourly_w=(20.0,) * 24)
        systems = [
            OffGridSystem(LOCATIONS["madrid"], seed=1),
            OffGridSystem(LOCATIONS["berlin"], pv=PvArray(peak_w=600.0),
                          battery=Battery(capacity_wh=1440.0), seed=2),
            OffGridSystem(LOCATIONS["lyon"], load=heavy, seed=1),
            OffGridSystem(LOCATIONS["vienna"], seed=3,
                          battery=Battery(capacity_wh=1440.0, charge_efficiency=0.9,
                                          discharge_cutoff=0.3)),
        ]
        for system, result in zip(systems, simulate_systems(
                systems, weather_cache=WeatherCache(), backend="reference")):
            assert_results_equal(result, system.simulate_year())

    def test_partial_year_and_initial_soc(self):
        system = OffGridSystem(LOCATIONS["berlin"], seed=5)
        batched, = simulate_systems([system], days=45, initial_soc=0.6,
                                    weather_cache=WeatherCache(),
                                    backend="reference")
        assert_results_equal(batched, system.simulate_year(days=45, initial_soc=0.6))

    def test_empty_batch(self):
        assert simulate_systems([]) == []

    def test_rejects_bad_inputs(self):
        system = OffGridSystem(LOCATIONS["madrid"])
        with pytest.raises(ConfigurationError):
            simulate_systems([system], days=0)
        with pytest.raises(ConfigurationError):
            simulate_systems([system], initial_soc=1.5)

    def test_candidate_grid_expansion(self):
        grid = candidate_grid((540.0, 600.0), (720.0, 1440.0))
        assert grid == ((540.0, 720.0), (540.0, 1440.0),
                        (600.0, 720.0), (600.0, 1440.0))
        with pytest.raises(ConfigurationError):
            candidate_grid((), (720.0,))


class TestWeatherCache:
    def test_weather_synthesized_once_per_key(self, monkeypatch):
        calls = []
        original = SyntheticWeather.year_tensor

        def counting(self, *args, **kwargs):
            calls.append(self.location.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SyntheticWeather, "year_tensor", counting)
        cache = WeatherCache(maxsize=8)
        systems = [
            OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv))
            for key in ("madrid", "berlin") for pv in (360.0, 540.0, 720.0)
        ]
        simulate_systems(systems, weather_cache=cache)
        # Six systems over two unique (location, params, seed) keys.
        assert sorted(calls) == ["Berlin", "Madrid"]
        assert cache.misses == 2
        simulate_systems(systems, weather_cache=cache)
        assert sorted(calls) == ["Berlin", "Madrid"]
        assert cache.hits >= 2

    def test_same_key_same_object(self):
        cache = WeatherCache(maxsize=4)
        loc = LOCATIONS["lyon"]
        first = synthesize_weather_year(loc, seed=9, cache=cache)
        second = synthesize_weather_year(loc, seed=9, cache=cache)
        assert first is second

    def test_distinct_keys_distinct_weather(self):
        cache = WeatherCache(maxsize=8)
        base = synthesize_weather_year(LOCATIONS["lyon"], seed=9, cache=cache)
        for other in (synthesize_weather_year(LOCATIONS["lyon"], seed=10, cache=cache),
                      synthesize_weather_year(LOCATIONS["vienna"], seed=9, cache=cache),
                      synthesize_weather_year(LOCATIONS["lyon"], seed=9,
                                              start_day_of_year=100, cache=cache)):
            assert not np.array_equal(base.poa_w_m2, other.poa_w_m2)
        assert cache.misses == 4

    def test_disk_roundtrip_bit_identical(self, tmp_path):
        warm = WeatherCache(maxsize=4, cache_dir=tmp_path)
        fresh = synthesize_weather_year(LOCATIONS["berlin"], seed=4, cache=warm)
        cold = WeatherCache(maxsize=4, cache_dir=tmp_path)
        key = WeatherKey.for_weather(
            SyntheticWeather(LOCATIONS["berlin"], seed=4), 365, 1)
        reloaded = cold.get(key)
        assert reloaded is not None
        assert np.array_equal(reloaded.poa_w_m2, fresh.poa_w_m2)
        assert np.array_equal(reloaded.ghi_w_m2, fresh.ghi_w_m2)
        assert np.array_equal(reloaded.kt, fresh.kt)
        assert np.array_equal(reloaded.day_of_year, fresh.day_of_year)
        assert np.array_equal(reloaded.month, fresh.month)
        assert reloaded.start_day_of_year == fresh.start_day_of_year

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = WeatherCache(maxsize=4, cache_dir=tmp_path)
        synthesize_weather_year(LOCATIONS["madrid"], seed=4, cache=cache)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(b"not an npz")
        cold = WeatherCache(maxsize=4, cache_dir=tmp_path)
        key = WeatherKey.for_weather(
            SyntheticWeather(LOCATIONS["madrid"], seed=4), 365, 1)
        assert cold.get(key) is None

    def test_key_hash_stable_and_content_sensitive(self):
        weather = SyntheticWeather(LOCATIONS["madrid"], seed=4)
        a = WeatherKey.for_weather(weather, 365, 274)
        b = WeatherKey.for_weather(SyntheticWeather(LOCATIONS["madrid"], seed=4),
                                   365, 274)
        assert a.content_hash == b.content_hash
        c = WeatherKey.for_weather(SyntheticWeather(LOCATIONS["madrid"], seed=5),
                                   365, 274)
        assert a.content_hash != c.content_hash

    def test_key_covers_geometry_override(self):
        from repro.solar.geometry import SolarGeometry
        default = WeatherKey.for_weather(
            SyntheticWeather(LOCATIONS["madrid"], seed=4), 365, 1)
        overridden = WeatherKey.for_weather(
            SyntheticWeather(LOCATIONS["madrid"], seed=4,
                             geometry=SolarGeometry(52.5)), 365, 1)
        assert default.content_hash != overridden.content_hash


class TestRoutedConsumers:
    @pytest.mark.parametrize("key", ALL_LOCATIONS)
    def test_sizing_engines_agree(self, key):
        batch = find_minimal_system(LOCATIONS[key], weather_cache=WeatherCache(),
                                    backend="reference")
        scalar = find_minimal_system(LOCATIONS[key], engine="scalar")
        assert (batch.pv_peak_w, batch.battery_capacity_wh) == \
            (scalar.pv_peak_w, scalar.battery_capacity_wh)
        assert batch.rejected == scalar.rejected
        assert_results_equal(batch.result, scalar.result)

    def test_sizing_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            find_minimal_system(LOCATIONS["madrid"], engine="magic")

    def test_lifetime_engines_agree(self):
        batch = project_lifetime(LOCATIONS["vienna"], 540.0, 1440.0,
                                 service_years=4, weather_cache=WeatherCache(),
                                 backend="reference")
        scalar = project_lifetime(LOCATIONS["vienna"], 540.0, 1440.0,
                                  service_years=4, engine="scalar")
        assert len(batch.years) == len(scalar.years)
        for b, s in zip(batch.years, scalar.years):
            assert b.year == s.year
            assert b.battery_capacity_wh == s.battery_capacity_wh
            assert b.pv_peak_w == s.pv_peak_w
            assert b.equivalent_full_cycles == s.equivalent_full_cycles
            assert_results_equal(b.result, s.result)

    def test_lifetime_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            project_lifetime(LOCATIONS["vienna"], 540.0, 1440.0, engine="magic")

    def test_annual_load_fold_matches_simulation(self):
        load = repeater_load_profile()
        result = OffGridSystem(LOCATIONS["madrid"], load=load).simulate_year()
        assert annual_load_wh(load) / 1000.0 == result.annual_load_kwh

    def test_simulate_candidates_order_and_identity(self):
        candidates = ((360.0, 720.0), (540.0, 1440.0))
        results = simulate_candidates(LOCATIONS["vienna"], candidates,
                                      weather_cache=WeatherCache(),
                                      backend="reference")
        assert [(r.pv_peak_w, r.battery_capacity_wh) for r in results] == \
            list(candidates)
        for (pv, wh), result in zip(candidates, results):
            system = OffGridSystem(LOCATIONS["vienna"], pv=PvArray(peak_w=pv),
                                   battery=Battery(capacity_wh=wh))
            assert_results_equal(result, system.simulate_year())


class TestTable4Grid:
    def test_grid_experiment_matches_scalar(self):
        from repro.experiments.table4 import run_table4_grid
        grid = run_table4_grid(pv_peaks=(540.0, 600.0),
                               battery_whs=(720.0, 1440.0),
                               weather_cache=WeatherCache(),
                               backend="reference")
        assert set(grid.results) == {"madrid", "lyon", "vienna", "berlin"}
        result = grid.results["berlin"][(600.0, 1440.0)]
        system = OffGridSystem(LOCATIONS["berlin"], pv=PvArray(peak_w=600.0),
                               battery=Battery(capacity_wh=1440.0))
        assert_results_equal(result, system.simulate_year())
        # The paper's outcomes are a cross-section of the grid.
        assert grid.minimal_battery_wh("madrid", 540.0) == 720.0
        assert grid.minimal_battery_wh("vienna", 540.0) == 1440.0
        assert grid.minimal_battery_wh("berlin", 540.0) is None
        assert grid.minimal_battery_wh("berlin", 600.0) == 1440.0

    def test_grid_series_shape(self):
        from repro.experiments.table4 import run_table4_grid
        grid = run_table4_grid(pv_peaks=(540.0,), battery_whs=(720.0, 1440.0),
                               weather_cache=WeatherCache())
        series = grid.series()
        assert len(series["location"]) == 4 * 1 * 2
        assert set(series) >= {"location", "pv_peak_w", "battery_wh",
                               "zero_downtime", "unmet_hours"}
        assert grid.table().startswith("Table IV grid")

    def test_grid_registered_in_runner(self):
        from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment
        assert "table4-grid" in ALL_EXPERIMENTS
        result = run_experiment("table4-grid", pv_peaks=(540.0,),
                                battery_whs=(720.0,),
                                weather_cache=WeatherCache())
        assert set(result.results) == {"madrid", "lyon", "vienna", "berlin"}

"""Tests for the train traffic substrate: trains, timetables, occupancy."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.traffic.occupancy import (
    average_power_w,
    duty_cycle,
    full_load_seconds_per_train,
    occupancy_seconds_per_day,
    trains_per_day,
)
from repro.traffic.timetable import (
    Timetable,
    TrainRun,
    day_timetables,
    generate_timetable,
)
from repro.traffic.trains import TrafficParams, Train


class TestTrain:
    def test_default_speed(self):
        assert Train().speed_ms == pytest.approx(55.5556, rel=1e-4)

    def test_occupancy_500m(self):
        # (500 + 400) / 55.56 = 16.2 s — the paper's lower bound.
        assert Train().occupancy_seconds(500.0) == pytest.approx(16.2, abs=0.01)

    def test_occupancy_2650m(self):
        # (2650 + 400) / 55.56 = 54.9 s — the paper's upper bound.
        assert Train().occupancy_seconds(2650.0) == pytest.approx(54.9, abs=0.01)

    def test_zero_section(self):
        # A point section is occupied for the train's own pass-by time.
        assert Train().occupancy_seconds(0.0) == pytest.approx(7.2, abs=0.01)

    def test_rejects_negative_section(self):
        with pytest.raises(ConfigurationError):
            Train().occupancy_seconds(-1.0)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            Train(length_m=0.0)


class TestTrafficParams:
    def test_service_hours(self):
        assert TrafficParams().service_hours == 19.0

    def test_trains_per_day_152(self):
        assert TrafficParams().trains_per_day == 152.0

    def test_headway(self):
        assert TrafficParams().headway_s == 450.0

    def test_zero_traffic(self):
        params = TrafficParams(trains_per_hour=0.0)
        assert params.headway_s == float("inf")
        assert params.trains_per_day == 0.0

    def test_rejects_bad_night(self):
        with pytest.raises(ConfigurationError):
            TrafficParams(night_quiet_hours=25.0)


class TestOccupancy:
    def test_duty_500m_is_2_85pct(self):
        assert duty_cycle(500.0) == pytest.approx(0.0285, abs=0.0001)

    def test_duty_2650m_is_9_66pct(self):
        assert duty_cycle(2650.0) == pytest.approx(0.0966, abs=0.0001)

    def test_duty_200m_lp_section(self):
        assert duty_cycle(200.0) == pytest.approx(0.019, abs=0.0001)

    def test_daily_seconds(self):
        assert occupancy_seconds_per_day(500.0) == pytest.approx(2462.4, abs=0.5)

    def test_trains_per_day_helper(self):
        assert trains_per_day() == 152.0

    def test_overlapping_sections_rejected(self):
        # A section so long one train hasn't left before the next arrives.
        with pytest.raises(ConfigurationError):
            occupancy_seconds_per_day(30_000.0)

    def test_average_power_lp_sleeping_5_17w(self):
        avg = average_power_w(200.0, full_load_w=28.38, inactive_w=4.72)
        assert avg == pytest.approx(5.17, abs=0.005)

    def test_average_power_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            average_power_w(200.0, full_load_w=-1.0, inactive_w=0.0)

    @given(st.floats(min_value=0.0, max_value=5000.0))
    def test_duty_monotone_in_section(self, section):
        assert duty_cycle(section + 100.0) > duty_cycle(section)

    @given(st.floats(min_value=0.0, max_value=5000.0))
    def test_duty_in_unit_interval(self, section):
        assert 0.0 < duty_cycle(section) < 1.0


class TestTimetable:
    def test_deterministic_count(self):
        tt = generate_timetable()
        # 8 trains/h for 19 h = 152 runs.
        assert len(tt) == 152

    def test_night_gap_respected(self):
        tt = generate_timetable()
        assert min(r.t0_s for r in tt) >= 5 * 3600.0

    def test_directions_alternate(self):
        tt = generate_timetable()
        directions = [r.direction for r in tt]
        assert set(directions) == {1, -1}
        assert directions[0] != directions[1]

    def test_multi_day(self):
        tt = generate_timetable(days=2)
        assert len(tt) == 304
        assert tt.horizon_s == pytest.approx(2 * 86400.0)

    def test_stochastic_reproducible(self):
        a = generate_timetable(stochastic=True, seed=42)
        b = generate_timetable(stochastic=True, seed=42)
        assert [r.t0_s for r in a] == [r.t0_s for r in b]

    def test_stochastic_rate_close_to_deterministic(self):
        tt = generate_timetable(stochastic=True, seed=0, days=20)
        assert len(tt) == pytest.approx(152 * 20, rel=0.1)

    def test_stochastic_respects_night(self):
        tt = generate_timetable(stochastic=True, seed=1)
        for run in tt:
            assert (run.t0_s % 86400.0) >= 5 * 3600.0

    def test_zero_traffic_empty(self):
        tt = generate_timetable(TrafficParams(trains_per_hour=0.0))
        assert len(tt) == 0

    def test_rejects_zero_days(self):
        with pytest.raises(ConfigurationError):
            generate_timetable(days=0.0)

    def test_unsorted_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            Timetable(runs=(TrainRun(t0_s=100.0), TrainRun(t0_s=50.0)))


class TestTimetableProperties:
    """Seeded property tests of the stochastic/deterministic generators."""

    SEEDS = (0, 1, 2, 3, 4)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_poisson_headway_mean_in_ci(self, seed):
        # Within one service window the gaps are iid Exponential(headway_s);
        # over 30 days the sample mean must land inside a z=3.9 CLT interval
        # around 1/rate (exponential sigma == mean).
        params = TrafficParams()
        tt = generate_timetable(params, stochastic=True, seed=seed, days=30)
        starts = [r.t0_s for r in tt]
        gaps = [b - a for a, b in zip(starts, starts[1:])
                if int(a // 86400.0) == int(b // 86400.0)]
        mean = sum(gaps) / len(gaps)
        half = 3.9 * params.headway_s / math.sqrt(len(gaps))
        assert abs(mean - params.headway_s) <= half, (mean, half)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_direction_balance_wilson(self, seed):
        # Directions are fair coin flips: 0.5 must lie in the Wilson 99.99%
        # interval of the up-direction proportion.
        from repro.optimize.mc import wilson_interval

        tt = generate_timetable(stochastic=True, seed=seed, days=30)
        ups = sum(r.direction == 1 for r in tt)
        low, high = wilson_interval(ups, len(tt), z=3.9)
        assert low <= 0.5 <= high, (ups, len(tt))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("days", (1, 3))
    def test_no_run_outside_horizon(self, seed, days):
        tt = generate_timetable(stochastic=True, seed=seed, days=days)
        assert all(0.0 <= r.t0_s < days * 86400.0 for r in tt)
        assert all(a.t0_s <= b.t0_s for a, b in zip(tt, list(tt)[1:]))

    @pytest.mark.parametrize("section_m", (200.0, 500.0, 2400.0))
    def test_deterministic_reproduces_duty_cycle_exactly(self, section_m):
        # Every deterministic run contributes (section + train)/speed busy
        # seconds, so the timetable's total occupancy over a section equals
        # the analytic duty cycle exactly.
        from repro.traffic.occupancy import duty_cycle

        params = TrafficParams()
        tt = generate_timetable(params)
        per_train = params.train.occupancy_seconds(section_m)
        total = len(tt) * per_train
        assert total / 86400.0 == pytest.approx(duty_cycle(section_m),
                                                rel=1e-12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crn_fleet_prefix_property(self, seed):
        # day_timetables realizations are pure functions of (seed, r): a
        # bigger fleet is an extension, never a reshuffle.
        small = day_timetables(realizations=2, seed=seed)
        big = day_timetables(realizations=4, seed=seed)
        for a, b in zip(small, big):
            assert [r.t0_s for r in a] == [r.t0_s for r in b]
            assert [r.direction for r in a] == [r.direction for r in b]


class TestTrainRun:
    def test_forward_interval(self):
        run = TrainRun(t0_s=0.0)
        enter, exit_ = run.interval_over(500.0, 700.0, 2400.0)
        v = run.train.speed_ms
        assert enter == pytest.approx(500.0 / v)
        assert exit_ == pytest.approx((700.0 + 400.0) / v)

    def test_reverse_interval(self):
        run = TrainRun(t0_s=0.0, direction=-1)
        enter, exit_ = run.interval_over(500.0, 700.0, 2400.0)
        v = run.train.speed_ms
        assert enter == pytest.approx((2400.0 - 700.0) / v)
        assert exit_ == pytest.approx((2400.0 - 500.0 + 400.0) / v)

    def test_occupancy_duration_direction_independent(self):
        fwd = TrainRun(t0_s=0.0, direction=1)
        rev = TrainRun(t0_s=0.0, direction=-1)
        f_enter, f_exit = fwd.interval_over(100.0, 300.0, 1000.0)
        r_enter, r_exit = rev.interval_over(100.0, 300.0, 1000.0)
        assert f_exit - f_enter == pytest.approx(r_exit - r_enter)

    def test_nose_position(self):
        run = TrainRun(t0_s=10.0)
        assert run.nose_position_m(10.0, 2400.0) == 0.0
        assert run.nose_position_m(20.0, 2400.0) == pytest.approx(555.56, abs=0.1)

    def test_rejects_bad_direction(self):
        with pytest.raises(ConfigurationError):
            TrainRun(t0_s=0.0, direction=0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ConfigurationError):
            TrainRun(t0_s=0.0).interval_over(700.0, 500.0, 2400.0)

"""Tests for the uplink link budget."""

import numpy as np
import pytest

from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.uplink import (
    UplinkParams,
    compute_uplink_profile,
)


class TestUplinkParams:
    def test_ue_rstp(self):
        params = UplinkParams()
        # 23 dBm over 132 subcarriers = 23 - 21.2 = +1.8 dBm/subcarrier.
        assert params.ue_rstp_dbm == pytest.approx(23.0 - 10 * np.log10(132))

    def test_narrow_allocation_concentrates_power(self):
        wide = UplinkParams(ul_subcarriers=3300)
        narrow = UplinkParams(ul_subcarriers=330)
        assert narrow.ue_rstp_dbm == pytest.approx(wide.ue_rstp_dbm + 10.0)

    def test_rejects_oversized_allocation(self):
        with pytest.raises(ConfigurationError):
            UplinkParams(ul_subcarriers=5000)

    def test_rejects_implausible_ue_power(self):
        with pytest.raises(ConfigurationError):
            UplinkParams(ue_tx_power_dbm=40.0)


class TestUplinkProfile:
    def test_conventional_uplink_closes(self):
        layout = CorridorLayout.conventional()
        profile = compute_uplink_profile(layout)
        # At 500 m ISD a cell-edge allocation closes with positive SNR.
        assert profile.min_snr_db > 0.0

    def test_repeaters_lift_uplink(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        with_rep = compute_uplink_profile(layout)
        without = compute_uplink_profile(CorridorLayout(isd_m=2400.0))
        assert with_rep.min_snr_db > without.min_snr_db + 5.0

    def test_repeater_snr_peaks_at_nodes(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        profile = compute_uplink_profile(layout, resolution_m=2.0)
        idx = np.argmax(profile.snr_repeater_db)
        nearest_node = min(abs(profile.positions_m[idx] - p)
                           for p in layout.repeater_positions_m)
        assert nearest_node < 10.0

    def test_best_is_max_of_receivers(self):
        layout = CorridorLayout.with_uniform_repeaters(1600.0, 3)
        profile = compute_uplink_profile(layout, resolution_m=5.0)
        assert np.all(profile.snr_best_db >= profile.snr_hp_db - 1e-12)
        assert np.all(profile.snr_best_db >= profile.snr_repeater_db - 1e-12)

    def test_no_repeater_means_minus_inf_column(self):
        profile = compute_uplink_profile(CorridorLayout.conventional())
        assert np.all(np.isneginf(profile.snr_repeater_db))

    def test_closes_at_threshold(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        profile = compute_uplink_profile(layout, resolution_m=5.0)
        assert profile.closes_at(profile.min_snr_db - 1.0)
        assert not profile.closes_at(profile.min_snr_db + 1.0)

    def test_symmetry(self):
        layout = CorridorLayout.with_uniform_repeaters(2000.0, 4)
        profile = compute_uplink_profile(layout, resolution_m=1.0)
        assert np.allclose(profile.snr_best_db, profile.snr_best_db[::-1], atol=0.05)

    def test_rejects_zero_resolution(self):
        with pytest.raises(ConfigurationError):
            compute_uplink_profile(CorridorLayout.conventional(), resolution_m=0.0)

    def test_uplink_weaker_than_downlink_budget(self):
        # The UE's 23 dBm cannot match the 64 dBm HP downlink: for the same
        # geometry, uplink SNR at the mast is far below downlink SNR at the UE.
        from repro.radio.link import compute_snr_profile
        layout = CorridorLayout.conventional()
        dl = compute_snr_profile(layout).min_snr_db
        ul = compute_uplink_profile(layout).min_snr_db
        assert ul < dl

"""Tests for the baseline deployments."""

import pytest

from repro.baselines.conventional import ConventionalCorridor
from repro.baselines.inband import InbandFeasibility, inband_isolation_margin_db
from repro.baselines.onboard_relay import OnboardRelayFleet
from repro.errors import ConfigurationError


class TestConventional:
    def test_sustains_peak(self):
        assert ConventionalCorridor().sustains_peak()

    def test_min_snr_comfortable(self):
        # At 500 m ISD the conventional corridor has several dB of margin.
        assert ConventionalCorridor().min_snr_db() > 32.0

    def test_energy_reference(self):
        assert ConventionalCorridor().w_per_km == pytest.approx(467.2, abs=0.5)

    def test_longer_isd_less_power_less_snr(self):
        short = ConventionalCorridor(isd_m=500.0)
        long = ConventionalCorridor(isd_m=900.0)
        assert long.w_per_km < short.w_per_km
        assert long.min_snr_db() < short.min_snr_db()


class TestOnboardRelay:
    def test_average_power_per_train(self):
        fleet = OnboardRelayFleet()
        # 2 relays x 650 W x 1.3 cooling x 19/24 duty = 1338 W.
        assert fleet.average_power_per_train_w == pytest.approx(1337.9, abs=0.5)

    def test_fleet_scaling(self):
        fleet = OnboardRelayFleet()
        assert fleet.fleet_average_power_w(10) == pytest.approx(
            10 * fleet.average_power_per_train_w)

    def test_relays_cost_more_than_repeater_corridor(self):
        # A fleet serving a 100 km corridor (say 25 trainsets) vs. the
        # repeater corridor's ~120 W/km: relays lose clearly.
        fleet = OnboardRelayFleet()
        per_km = fleet.per_km_equivalent_w(n_trains=25, corridor_km=100.0)
        assert per_km > 120.0

    def test_annual_energy(self):
        fleet = OnboardRelayFleet()
        assert fleet.annual_energy_mwh(1) == pytest.approx(
            fleet.average_power_per_train_w * 8760 / 1e6)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            OnboardRelayFleet(relays_per_train=0)
        with pytest.raises(ConfigurationError):
            OnboardRelayFleet(duty=1.5)
        with pytest.raises(ConfigurationError):
            OnboardRelayFleet().fleet_average_power_w(-1)
        with pytest.raises(ConfigurationError):
            OnboardRelayFleet().per_km_equivalent_w(10, 0.0)


class TestInband:
    def test_corridor_gain_requirement_infeasible(self):
        # A corridor node needs ~+4.8 dBm RSTP from a ~-95 dBm donor signal:
        # ~100 dB gain, far beyond outdoor antenna isolation.
        assessment = InbandFeasibility.for_corridor_node(
            donor_rsrp_dbm=-95.0, target_rstp_dbm=4.81)
        assert assessment.required_gain_db == pytest.approx(99.81)
        assert not assessment.feasible
        assert assessment.margin_db < -40.0

    def test_indoor_scenario_feasible(self):
        # Indoor deployments achieve >100 dB isolation at modest gains.
        assessment = InbandFeasibility(required_gain_db=70.0,
                                       achievable_isolation_db=110.0)
        assert assessment.feasible

    def test_max_stable_gain(self):
        assessment = InbandFeasibility(required_gain_db=50.0,
                                       achievable_isolation_db=70.0)
        assert assessment.max_stable_gain_db == pytest.approx(55.0)

    def test_margin_helper(self):
        assert inband_isolation_margin_db(50.0, 70.0) == pytest.approx(5.0)
        assert inband_isolation_margin_db(60.0, 70.0) == pytest.approx(-5.0)

    def test_no_gain_needed_rejected(self):
        with pytest.raises(ConfigurationError):
            InbandFeasibility.for_corridor_node(donor_rsrp_dbm=10.0,
                                                target_rstp_dbm=0.0)

    def test_negative_gain_rejected(self):
        with pytest.raises(ConfigurationError):
            inband_isolation_margin_db(-1.0, 70.0)

"""Tests for the train-traversal mobility layer."""

import numpy as np
import pytest

from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.mobility.traversal import (
    segment_data_volume_gbit,
    simulate_traversal,
)
from repro.traffic.trains import Train


class TestTraversal:
    @pytest.fixture(scope="class")
    def fig3_traversal(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        return simulate_traversal(layout)

    def test_duration_matches_speed(self, fig3_traversal):
        # 2400 m at 200 km/h ~ 43.2 s.
        assert fig3_traversal.duration_s == pytest.approx(43.2, rel=0.02)

    def test_peak_everywhere_in_paper_scenario(self, fig3_traversal):
        assert fig3_traversal.time_at_peak_fraction() == 1.0
        assert fig3_traversal.min_throughput_bps == pytest.approx(584e6)

    def test_data_volume(self, fig3_traversal):
        # 584 Mbit/s for ~43 s ~ 25 Gbit for the whole train.
        volume_gbit = fig3_traversal.data_volume_bit / 1e9
        assert volume_gbit == pytest.approx(0.584 * 43.2, rel=0.03)

    def test_mean_between_min_and_max(self, fig3_traversal):
        assert (fig3_traversal.min_throughput_bps
                <= fig3_traversal.mean_throughput_bps
                <= np.max(fig3_traversal.throughput_bps))

    def test_no_gap_at_peak(self, fig3_traversal):
        assert fig3_traversal.worst_gap_s(100e6) == 0.0

    def test_oversized_segment_has_gaps(self):
        layout = CorridorLayout.with_uniform_repeaters(3600.0, 1)
        result = simulate_traversal(layout)
        assert result.time_at_peak_fraction(584e6) < 1.0
        assert result.worst_gap_s(584e6) > 0.0

    def test_slower_train_longer_traversal_same_volume_rate(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        fast = simulate_traversal(layout, Train(speed_kmh=200.0))
        slow = simulate_traversal(layout, Train(speed_kmh=100.0))
        assert slow.duration_s == pytest.approx(2 * fast.duration_s, rel=0.02)
        # Twice the time at the same rate: twice the data volume.
        assert slow.data_volume_bit == pytest.approx(2 * fast.data_volume_bit, rel=0.03)

    def test_rejects_zero_time_step(self):
        layout = CorridorLayout.conventional()
        with pytest.raises(ConfigurationError):
            simulate_traversal(layout, time_step_s=0.0)

    def test_volume_helper_consistent(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        volume = segment_data_volume_gbit(layout)
        result = simulate_traversal(layout)
        assert volume == pytest.approx(result.data_volume_bit / 1e9)

    def test_conventional_and_extended_equal_per_km_capacity(self):
        # The paper's claim: same capacity with fewer masts.  Volume per km
        # should match between the 500 m baseline and the repeater segment.
        conventional = simulate_traversal(CorridorLayout.conventional())
        extended = simulate_traversal(CorridorLayout.with_uniform_repeaters(2400.0, 8))
        per_km_conv = conventional.data_volume_bit / 0.5
        per_km_ext = extended.data_volume_bit / 2.4
        assert per_km_ext == pytest.approx(per_km_conv, rel=0.02)

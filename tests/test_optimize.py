"""Tests for the max-ISD sweep, placement optimizer, and Pareto frontier."""

import pytest

from repro import constants
from repro.capacity.shannon import TruncatedShannonModel
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError, InfeasibleError
from repro.optimize.isd import max_isd_for_n, sweep_max_isd
from repro.optimize.pareto import energy_capacity_frontier
from repro.optimize.placement import optimize_placement
from repro.radio.link import LinkParams, compute_snr_profile
from repro.radio.noise import RepeaterNoiseModel


class TestMaxIsd:
    def test_n1_matches_paper_1250(self):
        isd, snr = max_isd_for_n(1)
        assert isd == 1250.0
        assert snr >= 29.0

    def test_n2_matches_paper_1450(self):
        isd, _ = max_isd_for_n(2)
        assert isd == 1450.0

    def test_exact_truncation_threshold_is_stricter(self):
        # Using the exact 29.30 dB saturation point instead of the paper's
        # stated 29 dB criterion shrinks the N=1 result by one 50 m step.
        isd, _ = max_isd_for_n(1, capacity=TruncatedShannonModel())
        assert isd == 1200.0

    def test_zero_repeaters_around_900(self):
        # The pure model allows ~900 m without repeaters (the paper adopts
        # 500 m as the deployed baseline).
        isd, _ = max_isd_for_n(0)
        assert 800.0 <= isd <= 1000.0

    def test_coarse_resolution_stable(self):
        fine, _ = max_isd_for_n(1, resolution_m=1.0)
        coarse, _ = max_isd_for_n(1, resolution_m=5.0)
        assert abs(fine - coarse) <= 50.0

    def test_min_snr_at_max_is_feasible_but_tight(self):
        isd, snr = max_isd_for_n(1)
        assert constants.PEAK_SNR_CRITERION_DB <= snr <= constants.PEAK_SNR_CRITERION_DB + 1.0

    def test_infeasible_when_field_does_not_fit(self):
        # 10 nodes span 1800 m; no candidate ISD below the cap fits them.
        with pytest.raises(InfeasibleError):
            max_isd_for_n(10, isd_max_m=1000.0)

    def test_infeasible_threshold(self):
        with pytest.raises(InfeasibleError):
            max_isd_for_n(1, threshold_db=80.0, resolution_m=5.0)

    def test_higher_threshold_shrinks_isd(self):
        strict = TruncatedShannonModel(max_bps_hz=6.5)
        isd_strict, _ = max_isd_for_n(1, capacity=strict, resolution_m=2.0)
        isd_default, _ = max_isd_for_n(1, resolution_m=2.0)
        assert isd_strict < isd_default

    def test_shadowing_margin_shrinks_isd(self):
        base, _ = max_isd_for_n(1, resolution_m=2.0)
        margin, _ = max_isd_for_n(1, resolution_m=2.0, shadowing_margin_db=3.0)
        assert margin < base


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_max_isd(n_max=10, resolution_m=2.0, include_zero=False)

    def test_ten_entries(self, sweep):
        assert len(sweep.as_list()) == 10

    def test_monotone_nondecreasing(self, sweep):
        lst = sweep.as_list()
        assert all(b >= a for a, b in zip(lst, lst[1:]))

    def test_head_matches_paper_exactly(self, sweep):
        # The literal Eq. (2) model with the paper's stated 29 dB criterion
        # reproduces the first four registered ISDs exactly.
        assert sweep.as_list()[:4] == [1250.0, 1450.0, 1600.0, 1800.0]

    def test_within_400m_of_paper(self, sweep):
        for model, paper in zip(sweep.as_list(), constants.PAPER_MAX_ISD_M):
            assert abs(model - paper) <= 400.0

    def test_all_on_isd_grid(self, sweep):
        assert all(isd % 50.0 == 0 for isd in sweep.as_list())

    def test_min_snr_above_threshold(self, sweep):
        for n, snr in sweep.min_snr_by_n.items():
            assert snr >= sweep.threshold_db, f"N={n}"

    def test_fronthaul_model_shows_diminishing_tail(self):
        literal = sweep_max_isd(n_max=10, resolution_m=4.0, include_zero=False)
        fronthaul = sweep_max_isd(
            n_max=10,
            link=LinkParams(repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR),
            resolution_m=4.0, include_zero=False)
        # At N=10 the fronthaul noise must bite: smaller max ISD.
        assert fronthaul.max_isd_by_n[10] < literal.max_isd_by_n[10]

    def test_fronthaul_closer_to_paper_tail(self):
        literal = sweep_max_isd(n_max=10, resolution_m=4.0, include_zero=False)
        fronthaul = sweep_max_isd(
            n_max=10,
            link=LinkParams(repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR),
            resolution_m=4.0, include_zero=False)
        paper_tail = constants.PAPER_MAX_ISD_M[7:]
        lit_err = sum(abs(a - b) for a, b in zip(literal.as_list()[7:], paper_tail))
        fh_err = sum(abs(a - b) for a, b in zip(fronthaul.as_list()[7:], paper_tail))
        assert fh_err < lit_err


class TestPlacement:
    def test_never_worse_than_centered(self):
        result = optimize_placement(2400.0, 4, resolution_m=4.0, max_rounds=5)
        assert result.min_snr_db >= result.baseline_min_snr_db - 0.05

    def test_positions_on_grid(self):
        result = optimize_placement(2400.0, 4, resolution_m=4.0, max_rounds=5)
        for pos in result.layout.repeater_positions_m:
            assert pos % 50.0 == pytest.approx(0.0, abs=1e-9)

    def test_positions_sorted_and_spaced(self):
        result = optimize_placement(2000.0, 5, resolution_m=4.0, max_rounds=5)
        positions = result.layout.repeater_positions_m
        assert list(positions) == sorted(positions)
        assert all(b - a >= 50.0 for a, b in zip(positions, positions[1:]))

    def test_rejects_zero_repeaters(self):
        with pytest.raises(ConfigurationError):
            optimize_placement(1000.0, 0)

    def test_reported_snr_matches_layout(self):
        result = optimize_placement(1800.0, 3, resolution_m=4.0, max_rounds=3)
        check = compute_snr_profile(result.layout, LinkParams(),
                                    resolution_m=4.0).min_snr_db
        assert check == pytest.approx(result.min_snr_db, abs=1e-9)


class TestPareto:
    @pytest.fixture(scope="class")
    def frontier(self):
        return energy_capacity_frontier(
            n_values=range(0, 4), isd_values_m=[500.0, 1000.0, 1500.0, 2000.0],
            resolution_m=10.0)

    def test_nonempty(self, frontier):
        assert frontier
        assert any(p.efficient for p in frontier)

    def test_efficient_points_undominated(self, frontier):
        efficient = [p for p in frontier if p.efficient]
        for p in efficient:
            for q in frontier:
                if q is p:
                    continue
                dominates = (q.w_per_km < p.w_per_km - 1e-9
                             and q.min_throughput_mbps >= p.min_throughput_mbps - 1e-9)
                assert not dominates

    def test_throughput_bounded_by_peak(self, frontier):
        for p in frontier:
            assert p.min_throughput_mbps <= 584.0 + 1e-6
            assert p.mean_throughput_mbps >= p.min_throughput_mbps - 1e-9

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            energy_capacity_frontier(n_values=[-1], isd_values_m=[1000.0])

"""Tests for multi-segment line plans, demand-driven load, border interference."""

import numpy as np
import pytest

from repro.corridor.layout import CorridorLayout
from repro.corridor.multisegment import LinePlan, LineSection
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError, GeometryError
from repro.power.profiles import LP_REPEATER_PROFILE
from repro.radio.interference import cell_border_sinr, peak_outage_span_m
from repro.traffic.loadmodel import (
    DemandModel,
    average_power_with_demand_w,
    demand_load_fraction,
)


class TestLinePlan:
    def _plan(self):
        open_layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        return LinePlan(sections=(
            LineSection("approach", CorridorLayout.conventional(), 3.0),
            LineSection("open", open_layout, 50.0),
            LineSection("terminal", CorridorLayout.conventional(), 2.0),
        ))

    def test_length(self):
        assert self._plan().length_km == pytest.approx(55.0)

    def test_average_between_extremes(self):
        plan = self._plan()
        avg = plan.average_w_per_km()
        assert 120.0 < avg < 467.2  # between pure repeater and pure conventional

    def test_savings_positive_but_below_pure(self):
        plan = self._plan()
        savings = plan.savings_vs_conventional()
        assert 0.0 < savings < 0.743  # diluted by the station zones

    def test_equipment_counts(self):
        plan = self._plan()
        counts = plan.equipment_counts()
        # 3 km + 2 km conventional at 500 m -> 6 + 4 masts; 50 km at 2650 m -> 19.
        assert counts["hp_masts"] == 6 + 19 + 4
        assert counts["service_nodes"] == 19 * 10
        assert counts["donor_nodes"] == 19 * 2

    def test_equipment_counts_donor_rule_and_ceil(self):
        # Pin the 0/1/2 donor rule per layout and the partial-segment ceil:
        # 1.2 km at 1000 m ISD needs 2 segments (ceil), not 1.
        plan = LinePlan(sections=(
            LineSection("conv", CorridorLayout.conventional(1000.0), 1.2),
            LineSection("one", CorridorLayout.with_uniform_repeaters(1250.0, 1),
                        2.5),
            LineSection("chain",
                        CorridorLayout.with_uniform_repeaters(2400.0, 8), 4.8),
        ))
        assert [s.n_segments for s in plan.sections] == [2, 2, 2]
        counts = plan.equipment_counts()
        assert counts["hp_masts"] == 6
        # N=0 -> no donors; N=1 -> a single mid-hop donor; N>=2 -> both ends.
        assert counts["service_nodes"] == 2 * 1 + 2 * 8
        assert counts["donor_nodes"] == 2 * 1 + 2 * 2

    def test_annual_energy(self):
        plan = self._plan()
        expected = plan.total_average_power_w() * 8760 / 1e6
        assert plan.annual_energy_mwh() == pytest.approx(expected)

    def test_mixed_line_builder(self):
        plan = LinePlan.mixed_line(open_track_km=100.0, station_zones=3)
        assert plan.length_km == pytest.approx(106.0)
        names = [s.name for s in plan.sections]
        assert names == ["open/0", "station/0", "open/1", "station/1",
                         "open/2", "station/2", "open/3"]

    def test_mixed_line_saves_energy(self):
        plan = LinePlan.mixed_line(open_track_km=100.0, station_zones=3)
        assert plan.savings_vs_conventional() > 0.6

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            LinePlan(sections=())

    def test_duplicate_names_rejected(self):
        section = LineSection("x", CorridorLayout.conventional(), 1.0)
        with pytest.raises(ConfigurationError):
            LinePlan(sections=(section, section))

    def test_zero_length_section_rejected(self):
        with pytest.raises(GeometryError):
            LineSection("x", CorridorLayout.conventional(), 0.0)

    def test_per_section_modes(self):
        open_layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        sleep = LinePlan(sections=(
            LineSection("a", open_layout, 10.0, OperatingMode.SLEEP),))
        solar = LinePlan(sections=(
            LineSection("a", open_layout, 10.0, OperatingMode.SOLAR),))
        assert solar.total_average_power_w() < sleep.total_average_power_w()


class TestDemandModel:
    def test_default_offered_load(self):
        # 800 x 0.6 x 0.33 x 2 Mbit/s = 316.8 Mbit/s.
        assert DemandModel().offered_bps == pytest.approx(316.8e6)

    def test_load_fraction_default(self):
        # 316.8 / 584 = 0.5425.
        assert demand_load_fraction() == pytest.approx(0.5425, abs=0.001)

    def test_saturates_at_one(self):
        heavy = DemandModel(rate_per_active_bps=20e6)
        assert demand_load_fraction(heavy) == 1.0

    def test_empty_train_zero_load(self):
        empty = DemandModel(occupancy=0.0)
        assert demand_load_fraction(empty) == 0.0

    def test_partial_load_cuts_average_power(self):
        model = LP_REPEATER_PROFILE.model
        full = average_power_with_demand_w(
            200.0, model, DemandModel(rate_per_active_bps=100e6))
        partial = average_power_with_demand_w(200.0, model, DemandModel())
        assert partial < full
        # Paper's full-buffer assumption recovered at chi = 1 (EARTH figure).
        assert full == pytest.approx(0.019 * model.full_load_w
                                     + 0.981 * model.p_sleep_w, abs=0.01)

    def test_awake_idle_variant(self):
        model = LP_REPEATER_PROFILE.model
        sleeping = average_power_with_demand_w(200.0, model, sleeping=True)
        awake = average_power_with_demand_w(200.0, model, sleeping=False)
        assert awake > sleeping

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DemandModel(seats=0)
        with pytest.raises(ConfigurationError):
            DemandModel(occupancy=1.5)


class TestBorderInterference:
    def test_border_sinr_near_zero_db(self):
        # Equal serving and interfering signal at the border: SINR ~ 0 dB.
        profile = cell_border_sinr()
        assert abs(profile.border_sinr_db) < 0.2

    def test_sinr_improves_away_from_border(self):
        profile = cell_border_sinr(span_m=1000.0)
        assert profile.sinr_db[0] > profile.sinr_db[-1]
        assert profile.min_sinr_db == profile.border_sinr_db

    def test_interference_only_hurts(self):
        profile = cell_border_sinr()
        assert np.all(profile.sinr_db < profile.snr_no_interference_db)

    def test_outage_span_reasonable(self):
        # Peak throughput needs 29 dB SIR: with the interferer mirrored at the
        # border, the sub-peak stretch is several hundred metres per side.
        span = peak_outage_span_m()
        assert 200.0 < span < 2000.0

    def test_outage_span_shrinks_with_lower_threshold(self):
        strict = peak_outage_span_m(threshold_db=29.0)
        lenient = peak_outage_span_m(threshold_db=10.0)
        assert lenient < strict

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            cell_border_sinr(edge_offset_m=0.0)
        with pytest.raises(ConfigurationError):
            cell_border_sinr(span_m=-1.0)

"""Integration tests: every number the paper publishes, checked end to end.

This is the reproduction's contract.  Each test quotes the paper's claim it
verifies.  See EXPERIMENTS.md for the full paper-vs-measured index.
"""

import numpy as np
import pytest

from repro import constants
from repro.capacity.shannon import peak_snr_threshold_db
from repro.corridor.layout import CorridorLayout
from repro.energy.analysis import conventional_reference_w_per_km, fig4_rows
from repro.energy.duty import lp_node_average_power_w
from repro.energy.scenario import OperatingMode, segment_energy
from repro.optimize.isd import sweep_max_isd
from repro.radio.link import LinkParams, compute_snr_profile
from repro.simulation.corridor_sim import CorridorSimulation
from repro.solar.sizing import find_minimal_system
from repro.solar.climates import LOCATIONS
from repro.traffic.occupancy import duty_cycle, full_load_seconds_per_train


class TestSectionI:
    def test_corridor_power_per_km_quote(self):
        """'with two RRHs required per site and an ISD of 500 m, the power
        consumption rises to 1200 W per kilometer of installation' (at full
        RRH power 300 W)."""
        per_km = 2 * 300.0 * (1000.0 / 500.0)
        assert per_km == constants.CORRIDOR_POWER_PER_KM_QUOTED_W

    def test_europe_energy_estimate_consistent(self):
        """1.24 TWh/yr over 118,000 km implies ~1200 W/km around the clock."""
        implied_w_per_km = (constants.EUROPE_CORRIDOR_ENERGY_TWH * 1e12
                            / 8760.0 / constants.EUROPE_ELECTRIFIED_TRACK_KM)
        assert implied_w_per_km == pytest.approx(1200.0, rel=0.01)

    def test_repeater_five_percent_claim(self):
        """'these repeaters consume only 5 % of the energy of a regular cell
        site' — 28.4 W vs. a 560 W corridor site."""
        assert constants.LP_REPEATER_FULL_LOAD_W / constants.HP_SITE_FULL_LOAD_W \
            == pytest.approx(0.05, abs=0.002)


class TestSectionIIIA:
    def test_peak_snr_threshold(self):
        """'the peak throughput of 5G NR at an SNR > 29 dB'."""
        assert peak_snr_threshold_db() == pytest.approx(29.30, abs=0.01)

    def test_rstp_accounting(self):
        """'a 5G NR carrier of 100 MHz with 3300 subcarriers'; 2500 W EIRP."""
        link = LinkParams()
        assert link.hp_rstp_dbm == pytest.approx(64.0 - 10 * np.log10(3300), abs=1e-9)
        assert link.lp_rstp_dbm == pytest.approx(40.0 - 10 * np.log10(3300), abs=1e-9)

    def test_fig3_scenario_holds_peak_and_signal_level(self):
        """Fig. 3: with d_ISD = 2400 m and N = 8 'the signal power can be kept
        above -100 dBm'."""
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        profile = compute_snr_profile(layout)
        assert np.min(profile.total_signal_dbm) > -100.0
        assert profile.min_snr_db > 29.30

    def test_noise_floor(self):
        """Thermal floor -132 dBm/subcarrier x terminal NF 5 dB."""
        assert LinkParams().terminal_noise_dbm == pytest.approx(-127.0)


class TestSectionIIIB:
    def test_site_powers(self):
        """'a high-power site consumes ... 560 W under full traffic load ...
        336 W under no load, and 224 W in sleep-mode'."""
        from repro.power.earth_model import PowerState
        from repro.power.profiles import hp_site_power_w
        assert hp_site_power_w(PowerState.FULL_LOAD) == 560.0
        assert hp_site_power_w(PowerState.NO_LOAD) == 336.0
        assert hp_site_power_w(PowerState.SLEEP) == 224.0

    def test_repeater_totals(self):
        """'the total power consumption amounts to 28.4 W ... no data traffic
        ... 24.3 W'; Table I sleep 4.72 W."""
        from repro.power.components import repeater_prototype_bill
        bill = repeater_prototype_bill()
        assert bill.no_load_w() == pytest.approx(24.26, abs=0.01)
        assert bill.sleep_w() == pytest.approx(4.72)
        assert bill.full_load_tdd_w() == pytest.approx(28.4, abs=0.4)


class TestSectionV:
    def test_max_isd_list_shape(self):
        """'The resulting maximum ISDs for one to ten nodes are: {1250, 1450,
        1600, 1800, 1950, 2100, 2250, 2400, 2500, 2650} m.'  The literal
        Eq. (2) model with the stated 29 dB criterion reproduces N = 1..4
        exactly and stays within 400 m over the tail."""
        sweep = sweep_max_isd(n_max=10, resolution_m=2.0, include_zero=False)
        model = sweep.as_list()
        assert model[:4] == [1250.0, 1450.0, 1600.0, 1800.0]
        for m, p in zip(model, constants.PAPER_MAX_ISD_M):
            assert abs(m - p) <= 400.0
        assert all(b >= a for a, b in zip(model, model[1:]))

    def test_full_load_seconds_16_to_55(self):
        """Table III: 'Operation under full load per train 16 s - 55 s'."""
        assert full_load_seconds_per_train(500.0) == pytest.approx(16.2, abs=0.1)
        assert full_load_seconds_per_train(2650.0) == pytest.approx(54.9, abs=0.1)

    def test_duty_cycles(self):
        """'full load operation on a 24-hour average for 2.85 % of the time at
        a 500 m ... ISD and 9.66 % at a 2650 m ... ISD'."""
        assert 100 * duty_cycle(500.0) == pytest.approx(2.85, abs=0.01)
        assert 100 * duty_cycle(2650.0) == pytest.approx(9.66, abs=0.01)

    def test_sleeping_repeater_5_17_w(self):
        """'One low-power repeater node then only consumes an average power of
        5.17 W (124.1 Wh per day)'."""
        avg = lp_node_average_power_w(sleeping=True)
        assert avg == pytest.approx(5.17, abs=0.005)
        assert avg * 24 == pytest.approx(124.1, abs=0.1)

    def test_continuous_below_50pct_from_three_nodes(self):
        """'The use of at least three low-power repeater nodes extends the
        high-power ISD to a minimum of 1600 m which reduces the average energy
        consumption per hour and kilometer to below 50 %'."""
        rows = {r.n_repeaters: r for r in fig4_rows()}
        for n in range(3, 11):
            assert rows[n].continuous_savings > 0.50

    def test_sleep_savings_57_and_74(self):
        """'a single repeater node ... yielding energy savings of 57 %. With
        ten low-power repeater nodes ... 74 % of energy reduction.'"""
        rows = {r.n_repeaters: r for r in fig4_rows()}
        assert 100 * rows[1].sleep_savings == pytest.approx(57.0, abs=0.5)
        assert 100 * rows[10].sleep_savings == pytest.approx(74.0, abs=0.5)

    def test_solar_savings_59_and_79(self):
        """'With just one intermediate low-power repeater node, 59 % less
        energy is consumed, and with ten ... 79 % less energy'."""
        rows = {r.n_repeaters: r for r in fig4_rows()}
        assert 100 * rows[1].solar_savings == pytest.approx(59.0, abs=0.7)
        assert 100 * rows[10].solar_savings == pytest.approx(79.0, abs=0.5)

    def test_abstract_savings_range_50_to_79(self):
        """Abstract: 'cut the average energy consumption by 50 % to 79 %'."""
        rows = [r for r in fig4_rows() if r.n_repeaters >= 1]
        all_savings = ([r.continuous_savings for r in rows]
                       + [r.sleep_savings for r in rows]
                       + [r.solar_savings for r in rows])
        assert min(all_savings) == pytest.approx(0.50, abs=0.01)
        assert max(all_savings) == pytest.approx(0.79, abs=0.01)


class TestSectionIVAndTableIV:
    def test_sizing_outcome(self):
        """Table IV: Madrid/Lyon standard system; 'doubling the battery
        capacity in Vienna and Berlin, and slightly larger PV modules for
        Berlin'."""
        expected = {"madrid": (540.0, 720.0), "lyon": (540.0, 720.0),
                    "vienna": (540.0, 1440.0), "berlin": (600.0, 1440.0)}
        for key, (pv, batt) in expected.items():
            sizing = find_minimal_system(LOCATIONS[key])
            assert (sizing.pv_peak_w, sizing.battery_capacity_wh) == (pv, batt), key
            assert sizing.result.zero_downtime

    def test_full_battery_days_ordering_and_levels(self):
        """Table IV 'Days with full battery [%]': 98.13 / 95.15 / 93.73 / 88.0
        — ordering must hold, absolute values within ~2.5 pp."""
        pcts = {}
        for key in ("madrid", "lyon", "vienna", "berlin"):
            sizing = find_minimal_system(LOCATIONS[key])
            pcts[key] = sizing.result.full_battery_days_pct
            assert pcts[key] == pytest.approx(
                constants.PAPER_FULL_BATTERY_DAYS_PCT[key], abs=2.5), key
        assert pcts["madrid"] > pcts["lyon"] > pcts["vienna"] > pcts["berlin"]


class TestCrossValidation:
    def test_des_confirms_analytic_fig4_point(self):
        """The event-driven simulation independently reproduces the analytic
        N=10 sleep-mode figure within 2 %."""
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        analytic = segment_energy(layout, OperatingMode.SLEEP).w_per_km
        simulated = CorridorSimulation(layout, mode=OperatingMode.SLEEP).run()
        assert simulated.avg_w_per_km == pytest.approx(analytic, rel=0.02)

    def test_conventional_reference_consistent_everywhere(self):
        analytic = conventional_reference_w_per_km()
        simulated = CorridorSimulation(CorridorLayout.conventional()).run()
        assert simulated.avg_w_per_km == pytest.approx(analytic, rel=0.02)

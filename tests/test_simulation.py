"""Tests for the discrete-event simulation substrate."""

import pytest

from repro.corridor.layout import CorridorLayout
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError, SimulationError
from repro.simulation.corridor_sim import CorridorSimulation
from repro.simulation.detectors import PhotoelectricBarrier
from repro.simulation.engine import Simulator
from repro.simulation.recorder import EnergyRecorder
from repro.simulation.statemachine import NodeState, PowerStateMachine
from repro.traffic.timetable import Timetable, TrainRun, generate_timetable
from repro.traffic.trains import TrafficParams


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_run_until_clamps_clock(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0
        assert sim.pending == 1

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_callback_can_schedule(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(1.0, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [1.0, 2.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_process_generator(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield 2.0
            log.append(sim.now)
            yield 3.0
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0.0, 2.0, 5.0]

    def test_processed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed == 5

    def test_runaway_protection(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.001, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(until=1e9, max_events=1000)

    def test_processed_counts_fired_callbacks_only(self):
        # Lazily-cancelled events are discarded without firing and must not
        # count toward `processed`.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b")).cancel()
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "c"]
        assert sim.processed == 2

    def test_processed_excludes_same_time_mid_run_cancel(self):
        # A callback cancelling a later event scheduled at the same instant:
        # the victim is skipped at the queue head and never counted.
        sim = Simulator()
        fired = []
        victim = sim.schedule(1.0, lambda: fired.append("victim"))
        sim.schedule(0.5, victim.cancel)
        sim.schedule(1.0, lambda: fired.append("survivor"))
        sim.run()
        assert fired == ["survivor"]
        assert sim.processed == 2  # the canceller and the survivor

    def test_cancelled_event_beyond_until_stays_pending(self):
        # run(until=...) must not reach past its horizon, not even to discard
        # dead events — they are cleaned up lazily by a later run.
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        late = sim.schedule(100.0, lambda: None)
        late.cancel()
        sim.run(until=50.0)
        assert sim.processed == 1
        assert sim.pending == 1
        sim.run()
        assert sim.processed == 1
        assert sim.pending == 0

    def test_step_skips_cancelled_without_counting(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.step() is True
        assert sim.processed == 1
        assert sim.now == 2.0


class TestRecorder:
    def test_constant_power_integration(self):
        rec = EnergyRecorder()
        rec.register("x", 100.0, 0.0)
        rec.finalize(3600.0)
        assert rec.energy_wh("x") == pytest.approx(100.0)

    def test_power_change(self):
        rec = EnergyRecorder()
        rec.register("x", 100.0, 0.0)
        rec.update("x", 0.0, 1800.0)
        rec.finalize(3600.0)
        assert rec.energy_wh("x") == pytest.approx(50.0)

    def test_total_with_prefix(self):
        rec = EnergyRecorder()
        rec.register("a/1", 10.0, 0.0)
        rec.register("a/2", 10.0, 0.0)
        rec.register("b/1", 10.0, 0.0)
        rec.finalize(3600.0)
        assert rec.total_wh("a/") == pytest.approx(20.0)
        assert rec.total_wh() == pytest.approx(30.0)

    def test_double_registration_rejected(self):
        rec = EnergyRecorder()
        rec.register("x", 1.0, 0.0)
        with pytest.raises(SimulationError):
            rec.register("x", 1.0, 0.0)

    def test_unknown_unit_rejected(self):
        rec = EnergyRecorder()
        with pytest.raises(SimulationError):
            rec.update("ghost", 1.0, 0.0)

    def test_time_backwards_rejected(self):
        rec = EnergyRecorder()
        rec.register("x", 1.0, 100.0)
        with pytest.raises(SimulationError):
            rec.update("x", 2.0, 50.0)


class TestStateMachine:
    def _machine(self, sim, sleep_capable=True, transition=0.3):
        machine = PowerStateMachine(
            name="n", full_load_w=28.38, no_load_w=24.26, sleep_w=4.72,
            sleep_capable=sleep_capable, transition_s=transition)
        rec = EnergyRecorder()
        machine.attach(rec, sim)
        return machine, rec

    def test_starts_asleep(self):
        sim = Simulator()
        machine, _ = self._machine(sim)
        assert machine.state is NodeState.SLEEP
        assert machine.power_w == pytest.approx(4.72)

    def test_sleep_incapable_starts_idle(self):
        sim = Simulator()
        machine, _ = self._machine(sim, sleep_capable=False)
        assert machine.state is NodeState.NO_LOAD

    def test_wake_transition(self):
        sim = Simulator()
        machine, _ = self._machine(sim)
        machine.wake()
        assert machine.state is NodeState.WAKING
        sim.run()
        assert machine.state is NodeState.NO_LOAD

    def test_wake_into_full_load(self):
        sim = Simulator()
        machine, _ = self._machine(sim)
        machine.wake()
        machine.train_enter()
        sim.run()
        assert machine.state is NodeState.FULL_LOAD

    def test_exit_returns_to_sleep(self):
        sim = Simulator()
        machine, _ = self._machine(sim, transition=0.0)
        machine.wake()
        machine.train_enter()
        machine.train_exit()
        assert machine.state is NodeState.SLEEP

    def test_exit_sleep_incapable_returns_to_idle(self):
        sim = Simulator()
        machine, _ = self._machine(sim, sleep_capable=False)
        machine.train_enter()
        assert machine.state is NodeState.FULL_LOAD
        machine.train_exit()
        assert machine.state is NodeState.NO_LOAD

    def test_occupancy_counting(self):
        sim = Simulator()
        machine, _ = self._machine(sim, transition=0.0)
        machine.wake()
        machine.train_enter()
        machine.train_enter()
        machine.train_exit()
        assert machine.state is NodeState.FULL_LOAD  # second train still inside
        machine.train_exit()
        assert machine.state is NodeState.SLEEP

    def test_exit_without_enter_rejected(self):
        sim = Simulator()
        machine, _ = self._machine(sim)
        with pytest.raises(SimulationError):
            machine.train_exit()

    def test_enter_while_asleep_triggers_late_wake(self):
        sim = Simulator()
        machine, _ = self._machine(sim)
        machine.train_enter()  # no detector fired
        assert machine.state is NodeState.WAKING
        sim.run()
        assert machine.state is NodeState.FULL_LOAD

    def test_bad_power_ordering_rejected(self):
        with pytest.raises(SimulationError):
            PowerStateMachine(name="bad", full_load_w=1.0, no_load_w=2.0, sleep_w=3.0)

    def test_energy_accounting(self):
        sim = Simulator()
        machine, rec = self._machine(sim, transition=0.0)
        sim.schedule(3600.0, machine.wake)
        sim.schedule(3600.0, machine.train_enter)
        sim.schedule(7200.0, machine.train_exit)
        sim.run(until=10800.0)
        rec.finalize(10800.0)
        # 1 h sleep + 1 h full + 1 h sleep.
        assert rec.energy_wh("n") == pytest.approx(4.72 + 28.38 + 4.72, abs=0.01)


class TestBarrier:
    def test_events_ordering(self):
        barrier = PhotoelectricBarrier(500.0, 700.0, wake_lead_m=50.0)
        run = TrainRun(t0_s=0.0)
        wake, enter, exit_ = barrier.events_for(run, 2400.0)
        assert wake < enter < exit_

    def test_lead_time(self):
        barrier = PhotoelectricBarrier(500.0, 700.0, wake_lead_m=55.556)
        run = TrainRun(t0_s=0.0)
        wake, enter, _ = barrier.events_for(run, 2400.0)
        assert enter - wake == pytest.approx(1.0, abs=0.01)

    def test_reverse_direction(self):
        barrier = PhotoelectricBarrier(500.0, 700.0)
        run = TrainRun(t0_s=0.0, direction=-1)
        wake, enter, exit_ = barrier.events_for(run, 2400.0)
        assert wake < enter < exit_

    def test_rejects_inverted_section(self):
        with pytest.raises(ConfigurationError):
            PhotoelectricBarrier(700.0, 500.0)

    def test_lead_seconds(self):
        barrier = PhotoelectricBarrier(0.0, 100.0, wake_lead_m=100.0)
        assert barrier.lead_seconds(50.0) == pytest.approx(2.0)


class TestCorridorSimulation:
    def test_matches_analytic_sleep(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        analytic = segment_energy(layout, OperatingMode.SLEEP).w_per_km
        sim = CorridorSimulation(layout, mode=OperatingMode.SLEEP).run()
        assert sim.avg_w_per_km == pytest.approx(analytic, rel=0.02)

    def test_matches_analytic_continuous(self):
        layout = CorridorLayout.with_uniform_repeaters(1600.0, 3)
        analytic = segment_energy(layout, OperatingMode.CONTINUOUS).w_per_km
        sim = CorridorSimulation(layout, mode=OperatingMode.CONTINUOUS).run()
        assert sim.avg_w_per_km == pytest.approx(analytic, rel=0.02)

    def test_matches_analytic_conventional(self):
        layout = CorridorLayout.conventional()
        analytic = segment_energy(layout, OperatingMode.SLEEP).w_per_km
        sim = CorridorSimulation(layout).run()
        assert sim.avg_w_per_km == pytest.approx(analytic, rel=0.02)

    def test_solar_counts_only_hp(self):
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        sim = CorridorSimulation(layout, mode=OperatingMode.SOLAR).run()
        assert sim.total_mains_wh == sim.hp_wh
        assert sim.service_wh > 0  # still consumed, just off-grid

    def test_slower_transition_costs_energy(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        fast = CorridorSimulation(layout, transition_s=0.0, wake_lead_m=0.0).run()
        slow = CorridorSimulation(layout, transition_s=5.0, wake_lead_m=300.0).run()
        assert slow.total_mains_wh > fast.total_mains_wh

    def test_empty_timetable_all_sleep(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        empty = generate_timetable(TrafficParams(trains_per_hour=0.0))
        sim = CorridorSimulation(layout, timetable=empty).run()
        # Everything asleep all day: mast 224 W + 2 nodes at 4.72 W.
        expected_wh = (224.0 + 2 * 4.72) * 24.0
        assert sim.total_mains_wh == pytest.approx(expected_wh, rel=1e-6)

    def test_stochastic_timetable_close_to_deterministic(self):
        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        det = CorridorSimulation(layout).run()
        sto = CorridorSimulation(
            layout,
            timetable=generate_timetable(stochastic=True, seed=3,
                                         segment_length_m=layout.isd_m)).run()
        assert sto.avg_w_per_km == pytest.approx(det.avg_w_per_km, rel=0.05)

    def test_multi_day_scales_linearly(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        one = CorridorSimulation(layout).run()
        two = CorridorSimulation(
            layout, timetable=generate_timetable(days=2)).run()
        assert two.total_mains_wh == pytest.approx(2 * one.total_mains_wh, rel=0.001)
        assert two.avg_w_per_km == pytest.approx(one.avg_w_per_km, rel=0.001)

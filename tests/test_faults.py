"""Fault-injection matrix for the supervised study runner.

The ISSUE-7 contract: under injected raise / hang / hard-crash /
corrupt-store faults the supervisor converges to a merged StudyTable
**bit-identical** to the fault-free run (the CRN shard-layout-independence
contract survives retries, pool rebuilds and resume-after-corruption),
exit codes 0/3/4 are pinned by CLI tests, and every recovery is traceable
in the ``run.jsonl`` journal.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.faults import FaultInjected, FaultPlan, FaultSpec, load_fault_plan
from repro.study import (
    StudyStore,
    parse_study,
    read_journal,
    retry_delay,
    run_study,
)

MC_TEXT = """
name: mc-tiny
engine: mc
seed: 7
axes:
  sigma_db: [2.0, 4.0]
  isd_m: [2000.0, 2400.0]
fixed:
  n_repeaters: 8
  trials: 12
  resolution_m: 50.0
"""


def mc_spec():
    return parse_study(MC_TEXT)


@pytest.fixture(scope="module")
def clean_table():
    """The fault-free reference run every recovery must reproduce."""
    return run_study(mc_spec(), shards=4).table.long()


def fault_context(*faults, store_dir=None):
    plan = FaultPlan(faults=tuple(faults), store_dir=store_dir)
    return {"fault_plan": plan.to_context()}


# -- the fault plan itself ----------------------------------------------------


class TestFaultPlan:
    def test_round_trip_through_context(self):
        plan = FaultPlan(faults=(FaultSpec(shard=2, attempt=3, action="hang",
                                           hang_s=9.0),))
        rebuilt = FaultPlan.from_context({"fault_plan": plan.to_context()})
        assert rebuilt == plan
        assert FaultPlan.from_context({}) is None

    def test_find_matches_shard_and_attempt(self):
        plan = FaultPlan(faults=(FaultSpec(shard=1, attempt=2),))
        assert plan.find(1, 2) is not None
        assert plan.find(1, 1) is None
        assert plan.find(0, 2) is None

    def test_execute_noop_without_matching_fault(self):
        FaultPlan(faults=(FaultSpec(shard=1),)).execute(0, 1)

    def test_raise_action(self):
        plan = FaultPlan(faults=(FaultSpec(shard=0, action="raise"),))
        with pytest.raises(FaultInjected, match="shard 0 attempt 1"):
            plan.execute(0, 1)

    @pytest.mark.parametrize("mutation, match", [
        ({"action": "melt"}, "unknown fault action"),
        ({"shard": -1}, "shard index"),
        ({"attempt": 0}, "attempt"),
        ({"hang_s": -1.0}, "hang_s"),
    ])
    def test_spec_validation(self, mutation, match):
        fields = {"shard": 0}
        fields.update(mutation)
        with pytest.raises(ConfigurationError, match=match):
            FaultSpec(**fields)

    def test_corrupt_requires_store_dir(self):
        with pytest.raises(ConfigurationError, match="store_dir"):
            FaultPlan(faults=(FaultSpec(shard=0, action="corrupt"),))

    def test_load_fault_plan_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "store_dir": str(tmp_path),
            "faults": [{"shard": 1, "attempt": 2, "action": "corrupt"}],
        }))
        plan = load_fault_plan(path)
        assert plan.faults[0].action == "corrupt"
        assert plan.store_dir == str(tmp_path)

    @pytest.mark.parametrize("text, match", [
        ("[1, 2]", "must be a mapping"),
        ('{"frobnicate": []}', "unknown fault-plan keys"),
        ('{"faults": 3}', "must be a list"),
        ('{"faults": [4]}', "each fault must be a mapping"),
        ('{"faults": [{"shard": 0, "when": "now"}]}', "unknown fault keys"),
        ("not json", "not valid JSON"),
    ])
    def test_load_fault_plan_rejects(self, tmp_path, text, match):
        path = tmp_path / "plan.json"
        path.write_text(text)
        with pytest.raises(ConfigurationError, match=match):
            load_fault_plan(path)


class TestRetryDelay:
    def test_deterministic_and_capped(self):
        a = retry_delay(7, 2, 3, base=0.5, cap=4.0)
        assert a == retry_delay(7, 2, 3, base=0.5, cap=4.0)
        assert 0.0 < a <= 4.0
        assert retry_delay(7, 2, 10, base=0.5, cap=4.0) <= 4.0
        assert retry_delay(7, 2, 1, base=0.0) == 0.0

    def test_varies_with_seed_and_attempt(self):
        delays = {retry_delay(seed, 0, attempt, base=1.0)
                  for seed in (1, 2) for attempt in (1, 2)}
        assert len(delays) == 4


# -- recovery matrix: bit-identical tables under every fault ------------------


class TestRecoveryMatrix:
    def test_raise_fault_retried_inline(self, clean_table):
        report = run_study(mc_spec(), shards=4, retries=2, backoff_base=0.0,
                           context=fault_context(FaultSpec(shard=1)))
        assert report.table.long() == clean_table
        assert report.shard_attempts[1] == 2
        assert not report.partial and not report.failed_shards

    def test_raise_fault_retried_in_pool(self, clean_table, tmp_path):
        journal = tmp_path / "run.jsonl"
        report = run_study(mc_spec(), jobs=2, shards=4, retries=2,
                           backoff_base=0.0, journal=journal,
                           context=fault_context(FaultSpec(shard=2)))
        assert report.table.long() == clean_table
        events = read_journal(journal)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        retry, = (e for e in events if e["event"] == "retry")
        assert retry["shard"] == 2 and "FaultInjected" in retry["error"]
        finishes = [e for e in events if e["event"] == "finish"]
        assert len(finishes) == 4

    def test_crash_fault_rebuilds_pool(self, clean_table, tmp_path):
        journal = tmp_path / "run.jsonl"
        report = run_study(mc_spec(), jobs=2, shards=4, retries=2,
                           backoff_base=0.0, journal=journal,
                           context=fault_context(
                               FaultSpec(shard=0, action="crash")))
        assert report.table.long() == clean_table
        events = read_journal(journal)
        assert any(e["event"] == "pool_broken" for e in events)
        assert any(e["event"] == "retry" and e["kind"] == "crash"
                   for e in events)

    def test_hang_fault_hits_shard_timeout(self, clean_table, tmp_path):
        journal = tmp_path / "run.jsonl"
        report = run_study(mc_spec(), jobs=2, shards=4, retries=1,
                           backoff_base=0.0, shard_timeout=2.0,
                           journal=journal,
                           context=fault_context(
                               FaultSpec(shard=3, action="hang", hang_s=60.0)))
        assert report.table.long() == clean_table
        events = read_journal(journal)
        timeout, = (e for e in events if e["event"] == "timeout")
        assert timeout["shard"] == 3 and timeout["timeout_s"] == 2.0

    def test_corrupt_fault_repaired_by_retry(self, clean_table, tmp_path):
        store_dir = tmp_path / "store"
        store = StudyStore(cache_dir=store_dir)
        report = run_study(mc_spec(), shards=4, retries=1, backoff_base=0.0,
                           store=store,
                           context=fault_context(
                               FaultSpec(shard=1, action="corrupt"),
                               store_dir=str(store_dir)))
        assert report.table.long() == clean_table
        # the torn file was rewritten atomically; a fresh store resumes all 4
        resumed = run_study(mc_spec(), shards=4,
                            store=StudyStore(cache_dir=store_dir))
        assert resumed.reused_shards == 4
        assert resumed.table.long() == clean_table

    def test_resume_after_store_corruption(self, clean_table, tmp_path):
        store_dir = tmp_path / "store"
        run_study(mc_spec(), shards=4, store=StudyStore(cache_dir=store_dir))
        victim = sorted(store_dir.glob("*.npz"))[2]
        victim.write_bytes(b"\x00" * 64)  # torn by a killed writer
        store = StudyStore(cache_dir=store_dir)
        report = run_study(mc_spec(), shards=4, store=store)
        assert report.table.long() == clean_table
        assert report.reused_shards == 3 and report.computed_shards == 1
        assert store.quarantined == 1
        assert list((store_dir / "quarantine").iterdir())
        events = read_journal(store_dir / "run.jsonl")
        assert sum(1 for e in events if e["event"] == "reused") == 3

    def test_multi_fault_storm_still_bit_identical(self, clean_table):
        report = run_study(
            mc_spec(), jobs=2, shards=4, retries=3, backoff_base=0.0,
            shard_timeout=2.0,
            context=fault_context(
                FaultSpec(shard=0, attempt=1, action="raise"),
                FaultSpec(shard=1, attempt=1, action="crash"),
                FaultSpec(shard=2, attempt=1, action="hang", hang_s=60.0),
                FaultSpec(shard=0, attempt=2, action="raise")))
        assert report.table.long() == clean_table
        assert not report.failed_shards


# -- exhaustion: quarantine vs. abort -----------------------------------------


class TestExhaustion:
    def test_keep_going_quarantines_with_provenance(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        report = run_study(mc_spec(), shards=4, retries=1, backoff_base=0.0,
                           keep_going=True, journal=journal,
                           context=fault_context(
                               FaultSpec(shard=3, attempt=1),
                               FaultSpec(shard=3, attempt=2)))
        assert report.partial
        shard, = report.failed_shards
        assert (shard.index, shard.attempts, shard.kind) == (3, 2, "error")
        assert "FaultInjected" in shard.error
        assert len(report.table) == 3  # the other shards' cases survive
        failure, = (e for e in read_journal(journal)
                    if e["event"] == "failure")
        assert failure["attempts"] == 2

    def test_abort_reraises_engine_exception(self):
        with pytest.raises(FaultInjected):
            run_study(mc_spec(), shards=4, retries=1, backoff_base=0.0,
                      context=fault_context(FaultSpec(shard=0, attempt=1),
                                            FaultSpec(shard=0, attempt=2)))

    def test_abort_persists_completed_shards(self, tmp_path):
        store_dir = tmp_path / "store"
        with pytest.raises(FaultInjected):
            run_study(mc_spec(), shards=4, backoff_base=0.0,
                      store=StudyStore(cache_dir=store_dir),
                      context=fault_context(FaultSpec(shard=3)))
        # shards 0-2 completed before the abort and are resumable
        resumed = run_study(mc_spec(), shards=4,
                            store=StudyStore(cache_dir=store_dir))
        assert resumed.reused_shards == 3

    def test_keyboard_interrupt_returns_partial_report(self, tmp_path):
        calls = []

        def explode(done, total, label):
            calls.append(done)
            if done == 2:
                raise KeyboardInterrupt

        store_dir = tmp_path / "store"
        report = run_study(mc_spec(), shards=4, progress=explode,
                           store=StudyStore(cache_dir=store_dir))
        assert report.interrupted and report.partial
        assert report.computed_shards == 2
        assert len(report.table) == 2
        events = read_journal(store_dir / "run.jsonl")
        assert any(e["event"] == "interrupt" for e in events)
        assert events[-1]["event"] == "run_end" and events[-1]["interrupted"]
        # completed shards were persisted; a resume finishes the run
        resumed = run_study(mc_spec(), shards=4,
                            store=StudyStore(cache_dir=store_dir))
        assert resumed.reused_shards == 2 and not resumed.partial


# -- shard-layout mismatch on resume ------------------------------------------


class TestLayoutMismatch:
    def test_resume_with_different_layout_warns(self, tmp_path):
        store_dir = tmp_path / "store"
        run_study(mc_spec(), shards=4, store=StudyStore(cache_dir=store_dir))
        with pytest.warns(RuntimeWarning, match="different.*shard layout"):
            report = run_study(mc_spec(), shards=2,
                               store=StudyStore(cache_dir=store_dir))
        assert report.reused_shards == 0  # nothing matched the new layout
        events = read_journal(store_dir / "run.jsonl")
        mismatch = [e for e in events if e["event"] == "layout_mismatch"]
        assert mismatch and len(mismatch[-1]["stored"]) == 4
        assert len(mismatch[-1]["current"]) == 2

    def test_matching_layout_does_not_warn(self, tmp_path, recwarn):
        store_dir = tmp_path / "store"
        run_study(mc_spec(), shards=4, store=StudyStore(cache_dir=store_dir))
        run_study(mc_spec(), shards=4, store=StudyStore(cache_dir=store_dir))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]

    def test_stored_ranges_lists_spec_shards_only(self, tmp_path):
        store = StudyStore(cache_dir=tmp_path)
        run_study(mc_spec(), shards=2, store=store)
        assert store.stored_ranges(mc_spec()) == [(0, 2), (2, 4)]
        other = parse_study(MC_TEXT.replace("seed: 7", "seed: 8"))
        assert store.stored_ranges(other) == []


# -- CLI: exit codes 0/3/4 and the fault-plan flag ----------------------------


class TestSupervisedCli:
    def _write_study(self, tmp_path) -> Path:
        path = tmp_path / "tiny.yaml"
        path.write_text(MC_TEXT)
        return path

    def _write_plan(self, tmp_path, document) -> Path:
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(document))
        return path

    def test_exit_0_recovered_run_parity(self, tmp_path, capsys):
        study = self._write_study(tmp_path)
        code = main(["study", "run", str(study), "--quiet",
                     "--json", str(tmp_path / "clean.json")])
        assert code == 0
        plan = self._write_plan(tmp_path, {
            "faults": [{"shard": 0, "attempt": 1, "action": "raise"}]})
        code = main(["study", "run", str(study), "--quiet",
                     "--retries", "2", "--fault-plan", str(plan),
                     "--store", str(tmp_path / "store"),
                     "--json", str(tmp_path / "faulted.json")])
        assert code == 0
        clean = json.loads((tmp_path / "clean.json").read_text())
        faulted = json.loads((tmp_path / "faulted.json").read_text())
        assert faulted["rows"] == clean["rows"]
        assert (tmp_path / "store" / "run.jsonl").exists()

    def test_exit_3_partial(self, tmp_path):
        study = self._write_study(tmp_path)
        code = main(["study", "run", str(study), "--quiet",
                     "--store", str(tmp_path / "store"),
                     "--shards", "4", "--max-shards", "1"])
        assert code == 3

    def test_exit_4_completed_with_failed_shards(self, tmp_path, capsys):
        study = self._write_study(tmp_path)
        plan = self._write_plan(tmp_path, {
            "faults": [{"shard": 1, "attempt": 1, "action": "raise"},
                       {"shard": 1, "attempt": 2, "action": "raise"}]})
        code = main(["study", "run", str(study), "--quiet", "--shards", "4",
                     "--retries", "1", "--keep-going",
                     "--fault-plan", str(plan)])
        assert code == 4
        err = capsys.readouterr().err
        assert "failed shard 1" in err
        assert "FaultInjected" in err

    def test_exit_1_abort_without_keep_going(self, tmp_path, capsys):
        study = self._write_study(tmp_path)
        plan = self._write_plan(tmp_path, {
            "faults": [{"shard": 1, "attempt": 1, "action": "raise"}]})
        code = main(["study", "run", str(study), "--quiet", "--shards", "4",
                     "--fault-plan", str(plan)])
        assert code == 1
        assert "injected raise" in capsys.readouterr().err

    def test_bad_fault_plan_rejected(self, tmp_path, capsys):
        study = self._write_study(tmp_path)
        plan = self._write_plan(tmp_path, {"faults": [{"shard": 0,
                                                       "action": "melt"}]})
        code = main(["study", "run", str(study), "--quiet",
                     "--fault-plan", str(plan)])
        assert code == 1
        assert "unknown fault action" in capsys.readouterr().err

    def test_negative_retries_rejected(self, tmp_path):
        study = self._write_study(tmp_path)
        with pytest.raises(SystemExit):
            main(["study", "run", str(study), "--retries", "-1"])

"""Tests for the batched Eq. (2) engine and its consumers.

The central guarantee: every profile out of :func:`evaluate_scenarios` is
bit-identical to the scalar :func:`compute_snr_profile` on the same scenario,
and the refactored sweep reproduces the original (seed) implementation
exactly.
"""

import numpy as np
import pytest

from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError, InfeasibleError
from repro.optimize.isd import max_isd_for_n, sweep_max_isd
from repro.radio.batch import evaluate_scenarios, min_snr_batch
from repro.radio.link import LinkParams, compute_snr_profile
from repro.radio.noise import RepeaterNoiseModel
from repro.scenario import ProfileCache, Scenario, ScenarioGrid

PROFILE_FIELDS = ("positions_m", "source_rsrp_dbm", "total_signal_dbm",
                  "total_noise_dbm", "snr_db")

#: Seed-implementation output of sweep_max_isd(n_max=10, resolution_m=1.0):
#: the acceptance reference for the batched engine.
SEED_MAX_ISD_BY_N = {0: 900.0, 1: 1250.0, 2: 1450.0, 3: 1600.0, 4: 1800.0,
                     5: 2000.0, 6: 2200.0, 7: 2400.0, 8: 2600.0, 9: 2800.0,
                     10: 3000.0}


def assert_profiles_equal(a, b):
    for name in PROFILE_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.shape == y.shape, name
        assert np.array_equal(x, y), name


class TestBatchBitIdentity:
    # The scalar-vs-batched bit-identity matrix (all noise models, mixed
    # grids) lives in tests/test_engine_parity.py alongside the other three
    # engines; this class keeps the engine-specific behaviours.

    def test_eirp_perturbations_share_geometry(self):
        grid = ScenarioGrid(isd_values_m=(1800.0,), n_values=(4,),
                            resolution_m=2.0,
                            hp_eirp_offsets_db=(-3.0, 0.0, 3.0),
                            lp_eirp_offsets_db=(0.0, 1.0))
        scenarios = grid.build()
        assert len(scenarios) == 6
        for sc, batch in zip(scenarios, evaluate_scenarios(scenarios)):
            ref = compute_snr_profile(sc.layout, sc.link, resolution_m=2.0)
            assert_profiles_equal(batch, ref)

    def test_duplicate_scenarios_share_result(self):
        sc = Scenario.uniform(1200.0, 2, resolution_m=5.0)
        twin = Scenario.uniform(1200.0, 2, resolution_m=5.0)
        profiles = evaluate_scenarios([sc, twin])
        assert profiles[0] is profiles[1]

    def test_jobs_sharding_identical(self):
        grid = ScenarioGrid.isd_sweep(2, isd_step_m=100.0, isd_max_m=2000.0,
                                      resolution_m=5.0)
        scenarios = grid.build()
        serial = evaluate_scenarios(scenarios)
        sharded = evaluate_scenarios(scenarios, jobs=4)
        for a, b in zip(serial, sharded):
            assert_profiles_equal(a, b)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            evaluate_scenarios([Scenario.uniform(1000.0, 0)], jobs=0)

    def test_empty_batch(self):
        assert evaluate_scenarios([]) == []

    def test_cache_integration(self):
        cache = ProfileCache(maxsize=32)
        scenarios = ScenarioGrid(isd_values_m=(1000.0, 1200.0), n_values=(1,),
                                 resolution_m=5.0).build()
        first = evaluate_scenarios(scenarios, cache=cache)
        assert cache.misses == len(scenarios)
        second = evaluate_scenarios(scenarios, cache=cache)
        for a, b in zip(first, second):
            assert a is b
        assert cache.hits == len(scenarios)

    def test_min_snr_batch_matches_profiles(self):
        scenarios = ScenarioGrid(isd_values_m=(1000.0, 2000.0),
                                 n_values=(0, 4), resolution_m=5.0).build()
        snrs = min_snr_batch(scenarios)
        profiles = evaluate_scenarios(scenarios)
        assert snrs.tolist() == [p.min_snr_db for p in profiles]


class TestSweepSeedEquality:
    """Acceptance: the batched engine reproduces the seed sweep exactly."""

    @pytest.fixture(scope="class")
    def default_sweep(self):
        return sweep_max_isd(n_max=10, resolution_m=1.0)

    @pytest.fixture(scope="class")
    def exhaustive_sweep(self):
        return sweep_max_isd(n_max=10, resolution_m=1.0, exhaustive=True)

    def test_default_matches_seed_isds(self, default_sweep):
        assert default_sweep.max_isd_by_n == SEED_MAX_ISD_BY_N

    def test_default_equals_exhaustive(self, default_sweep, exhaustive_sweep):
        assert default_sweep.max_isd_by_n == exhaustive_sweep.max_isd_by_n
        assert default_sweep.min_snr_by_n == exhaustive_sweep.min_snr_by_n

    def test_min_snr_matches_scalar_recomputation(self, default_sweep):
        for n, isd in default_sweep.max_isd_by_n.items():
            layout = CorridorLayout.with_uniform_repeaters(isd, n)
            ref = compute_snr_profile(layout, default_sweep.link).min_snr_db
            assert default_sweep.min_snr_by_n[n] == ref

    def test_fronthaul_default_equals_exhaustive(self):
        link = LinkParams(repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR)
        fast = sweep_max_isd(n_max=6, link=link, resolution_m=4.0,
                             include_zero=False)
        slow = sweep_max_isd(n_max=6, link=link, resolution_m=4.0,
                             include_zero=False, exhaustive=True)
        assert fast.max_isd_by_n == slow.max_isd_by_n
        assert fast.min_snr_by_n == slow.min_snr_by_n

    def test_single_n_bisection_equals_exhaustive(self):
        fast = max_isd_for_n(3, resolution_m=2.0, shadowing_margin_db=2.0)
        slow = max_isd_for_n(3, resolution_m=2.0, shadowing_margin_db=2.0,
                             exhaustive=True)
        assert fast == slow

    def test_exhaustive_infeasible(self):
        with pytest.raises(InfeasibleError):
            max_isd_for_n(1, threshold_db=80.0, resolution_m=5.0,
                          exhaustive=True)

    def test_bisection_infeasible(self):
        with pytest.raises(InfeasibleError):
            max_isd_for_n(1, threshold_db=80.0, resolution_m=5.0)

    def test_jobs_sweep_identical(self, default_sweep):
        parallel = sweep_max_isd(n_max=10, resolution_m=1.0, jobs=4)
        assert parallel.max_isd_by_n == default_sweep.max_isd_by_n
        assert parallel.min_snr_by_n == default_sweep.min_snr_by_n

    def test_cached_sweep_identical(self, default_sweep):
        cache = ProfileCache(maxsize=512)
        cold = sweep_max_isd(n_max=10, resolution_m=1.0, cache=cache)
        warm = sweep_max_isd(n_max=10, resolution_m=1.0, cache=cache)
        assert cold.min_snr_by_n == default_sweep.min_snr_by_n
        assert warm.min_snr_by_n == default_sweep.min_snr_by_n
        assert cache.hits > 0

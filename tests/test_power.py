"""Tests for the EARTH power model, component bill, and profiles."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.errors import ConfigurationError
from repro.power.components import ComponentMode, repeater_prototype_bill
from repro.power.earth_model import EarthPowerModel, PowerState
from repro.power.profiles import HP_RRH_PROFILE, LP_REPEATER_PROFILE, hp_site_power_w


class TestEarthModel:
    def test_hp_rrh_full_load_280w(self):
        model = HP_RRH_PROFILE.model
        assert model.full_load_w == pytest.approx(280.0)

    def test_hp_rrh_no_load(self):
        assert HP_RRH_PROFILE.model.no_load_w == pytest.approx(168.0)

    def test_hp_rrh_sleep(self):
        assert HP_RRH_PROFILE.model.state_power_w(PowerState.SLEEP) == pytest.approx(112.0)

    def test_lp_full_load_earth(self):
        # 24.26 + 4.0 * 1 = 28.26 W (Table II), paper's Table I shows 28.38.
        assert LP_REPEATER_PROFILE.model.full_load_w == pytest.approx(28.26)

    def test_linear_in_load(self):
        model = HP_RRH_PROFILE.model
        half = model.input_power_w(0.5)
        assert half == pytest.approx((model.full_load_w + model.no_load_w) / 2)

    def test_sleeping_power(self):
        model = HP_RRH_PROFILE.model
        assert model.input_power_w(0.0, sleeping=True) == pytest.approx(112.0)

    def test_sleeping_with_load_rejected(self):
        with pytest.raises(ConfigurationError):
            HP_RRH_PROFILE.model.input_power_w(0.5, sleeping=True)

    def test_load_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            HP_RRH_PROFILE.model.input_power_w(1.5)
        with pytest.raises(ConfigurationError):
            HP_RRH_PROFILE.model.input_power_w(-0.1)

    def test_array_load(self):
        model = HP_RRH_PROFILE.model
        out = model.input_power_w(np.array([0.0, 0.5, 1.0]))
        assert out[0] == pytest.approx(168.0)
        assert out[2] == pytest.approx(280.0)

    def test_average_power_pure_states(self):
        model = HP_RRH_PROFILE.model
        assert model.average_power_w(1.0) == pytest.approx(280.0)
        assert model.average_power_w(0.0, sleep_fraction=1.0) == pytest.approx(112.0)
        assert model.average_power_w(0.0, sleep_fraction=0.0) == pytest.approx(168.0)

    def test_average_power_paper_duty(self):
        # 2.85 % full load + 97.15 % sleep -> the conventional RRH average.
        model = HP_RRH_PROFILE.model
        avg = model.average_power_w(0.0285, sleep_fraction=0.9715)
        assert avg == pytest.approx(116.8, abs=0.1)

    def test_average_power_rejects_over_100pct(self):
        with pytest.raises(ConfigurationError):
            HP_RRH_PROFILE.model.average_power_w(0.7, sleep_fraction=0.5)

    def test_rejects_sleep_above_p0(self):
        with pytest.raises(ConfigurationError):
            EarthPowerModel(p_max_w=1.0, p0_w=10.0, delta_p=1.0, p_sleep_w=11.0)

    def test_rejects_nonpositive_params(self):
        with pytest.raises(ConfigurationError):
            EarthPowerModel(p_max_w=0.0, p0_w=10.0, delta_p=1.0, p_sleep_w=1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_power_between_no_load_and_full(self, chi):
        model = LP_REPEATER_PROFILE.model
        p = model.input_power_w(chi)
        assert model.no_load_w - 1e-9 <= p <= model.full_load_w + 1e-9

    @given(st.floats(min_value=0.0, max_value=0.5), st.floats(min_value=0.0, max_value=0.5))
    def test_average_power_bounds(self, full, sleep):
        model = LP_REPEATER_PROFILE.model
        avg = model.average_power_w(full, sleep)
        assert model.p_sleep_w - 1e-9 <= avg <= model.full_load_w + 1e-9


class TestComponentBill:
    def test_sleep_total_4_72(self):
        # Table I last column: 2 + 2.22 + 0.5 = 4.72 W.
        assert repeater_prototype_bill().sleep_w() == pytest.approx(4.72)

    def test_no_load_total_24_26(self):
        # Matches Table II's P0 exactly by construction of the PA quiescent.
        assert repeater_prototype_bill().no_load_w() == pytest.approx(24.26, abs=0.01)

    def test_full_load_simultaneous_31_9(self):
        assert repeater_prototype_bill().full_load_simultaneous_w() == pytest.approx(31.9, abs=0.05)

    def test_full_load_tdd_near_paper_value(self):
        bill = repeater_prototype_bill()
        assert bill.full_load_tdd_w() == pytest.approx(
            constants.LP_REPEATER_FULL_LOAD_W, abs=0.4)

    def test_tdd_direction_symmetric_totals(self):
        bill = repeater_prototype_bill()
        dl = bill.full_load_tdd_w(downlink_active=True)
        ul = bill.full_load_tdd_w(downlink_active=False)
        # DL and UL paths differ slightly in LNA power only.
        assert dl == pytest.approx(ul, abs=1.2)

    def test_orderings(self):
        bill = repeater_prototype_bill()
        assert bill.sleep_w() < bill.no_load_w() < bill.full_load_tdd_w() \
            <= bill.full_load_simultaneous_w()

    def test_component_modes_present(self):
        bill = repeater_prototype_bill()
        assert bill.by_mode(ComponentMode.COMMON)
        assert bill.by_mode(ComponentMode.DOWNLINK)
        assert bill.by_mode(ComponentMode.UPLINK)

    def test_common_sleep_only_controller_docxo_lo(self):
        bill = repeater_prototype_bill()
        sleepers = [c for c in bill.components if c.total_sleep_w() > 0]
        assert sorted(c.name for c in sleepers) == [
            "Controller", "GNSS DOCXO", "Local Oscillator"]

    def test_dl_ul_paths_doubled(self):
        bill = repeater_prototype_bill()
        for comp in bill.by_mode(ComponentMode.DOWNLINK):
            assert comp.count == 2
        for comp in bill.by_mode(ComponentMode.UPLINK):
            assert comp.count == 2


class TestProfilesAndSite:
    def test_site_powers(self):
        assert hp_site_power_w(PowerState.FULL_LOAD) == pytest.approx(560.0)
        assert hp_site_power_w(PowerState.NO_LOAD) == pytest.approx(336.0)
        assert hp_site_power_w(PowerState.SLEEP) == pytest.approx(224.0)

    def test_site_rejects_zero_rrh(self):
        with pytest.raises(ConfigurationError):
            hp_site_power_w(PowerState.SLEEP, rrh_per_mast=0)

    def test_profile_names(self):
        assert "High-Power" in HP_RRH_PROFILE.name
        assert "Low-Power" in LP_REPEATER_PROFILE.name

"""Kernel property suite — fused backends vs. the reference step loops.

The parity matrix (``test_engine_parity.py``) compares whole engines; this
module attacks the kernels directly on adversarial inputs the engines never
quite produce in one run:

* chunk-boundary edges of the blocked AR(1) scan (``p`` below / exactly at /
  just past the chunk-length cap, ``p == 1``),
* irregular grids and zero spacings (``rho == 1`` / ``innovation == 0``),
* coefficient underflow forcing mid-block subdivision,
* bitwise prefix stability (the common-random-numbers contract),
* alone-vs-joint candidate grouping in the fused min-scan,
* the hour-order summation helpers behind the fused SoC walk,
* the backend registry itself (resolution order, duplicate registration,
  unavailable backends).

Reference-vs-fused tolerances: ``ar1_scan`` / ``ar1_min_scan`` are pinned to
1e-12 (far inside the engines' 1e-9 budget); ``soc_scan`` pins the PV sums
and integer counts exactly and the SoC-dependent floats at 1e-12 (the fused
walk runs in SoC units); ``occupancy_scan`` is the identical function object
on both backends.
"""

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (BACKEND_ENV_VAR, Backend, available_backends,
                           get_backend, register_backend,
                           registered_backends, resolve_backend_name)
from repro.errors import ConfigurationError
from repro.kernels import (KERNEL_NAMES, ar1_min_scan, ar1_scan,
                           occupancy_scan, soc_scan)
from repro.kernels import numpy_fused, reference
from repro.kernels.numpy_fused import _hour_order_sum, _monthly_sums
from repro.propagation.fading import LogNormalShadowing


def _uniform_coeffs(p, rho=0.9, sigma=1.0):
    steps = max(p - 1, 1)
    innovation = sigma * np.sqrt(1.0 - rho * rho)
    return np.full(steps, rho), np.full(steps, innovation)


class TestAr1Scan:
    """Blocked prefix-product scan vs. the step loop."""

    @pytest.mark.parametrize("p", [1, 2, 63, 200, numpy_fused._BLOCK - 1,
                                   numpy_fused._BLOCK, numpy_fused._BLOCK + 1])
    def test_uniform_grid_chunk_edges(self, p):
        # p below / at / past the chunk-length cap, plus small sizes.
        rng = np.random.default_rng(p)
        z = rng.standard_normal((5, p))
        rho, innovation = _uniform_coeffs(p)
        fused = numpy_fused.ar1_scan(z, rho, innovation, 1.0)
        ref = reference.ar1_scan(z, rho, innovation, 1.0)
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    def test_irregular_grid(self):
        rng = np.random.default_rng(3)
        p = 173
        rho = rng.uniform(0.0, 0.999, p - 1)
        innovation = np.sqrt(1.0 - rho * rho)
        z = rng.standard_normal((4, p))
        fused = numpy_fused.ar1_scan(z, rho, innovation, 1.0)
        ref = reference.ar1_scan(z, rho, innovation, 1.0)
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    def test_zero_spacing_steps(self):
        # rho == 1, innovation == 0 mid-series: the sample repeats exactly.
        p = 90
        rho, innovation = _uniform_coeffs(p, rho=0.8)
        rho[40], innovation[40] = 1.0, 0.0
        rho[63], innovation[63] = 1.0, 0.0
        z = np.random.default_rng(8).standard_normal((3, p))
        fused = numpy_fused.ar1_scan(z, rho, innovation, 1.0)
        ref = reference.ar1_scan(z, rho, innovation, 1.0)
        assert np.array_equal(fused[:, 41], fused[:, 40])
        assert np.array_equal(fused[:, 64], fused[:, 63])
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    def test_decorrelated_steps(self):
        # rho == 0 resets the recurrence; the scan must cut the chunk there
        # rather than divide by a zero prefix product.
        p = 100
        rho, innovation = _uniform_coeffs(p, rho=0.7)
        rho[10] = 0.0
        rho[70] = 0.0
        z = np.random.default_rng(9).standard_normal((3, p))
        fused = numpy_fused.ar1_scan(z, rho, innovation, 1.0)
        ref = reference.ar1_scan(z, rho, innovation, 1.0)
        assert np.all(np.isfinite(fused))
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    def test_underflow_subdivides_chunk(self):
        # rho == 1e-5 drives the running prefix product below the rescaling
        # floor within a block; the scan must subdivide, not overflow.
        p = 200
        rho = np.full(p - 1, 1e-5)
        innovation = np.sqrt(1.0 - rho * rho)
        z = np.random.default_rng(10).standard_normal((2, p))
        fused = numpy_fused.ar1_scan(z, rho, innovation, 1.0)
        ref = reference.ar1_scan(z, rho, innovation, 1.0)
        assert np.all(np.isfinite(fused))
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    @pytest.mark.parametrize("p", [63, 64, 65, 200])
    def test_prefix_stable_bitwise(self, p):
        # The common-random-numbers contract: scanning a prefix of the grid
        # yields bitwise the prefix of the full scan.  The blocked scan cuts
        # chunks greedily left to right, so this holds exactly.
        rng = np.random.default_rng(p + 1)
        z = rng.standard_normal((6, p))
        rho = rng.uniform(0.1, 0.99, p - 1)
        innovation = np.sqrt(1.0 - rho * rho)
        full = numpy_fused.ar1_scan(z, rho, innovation, 1.0)
        for k in (1, p // 2, p - 1):
            part = numpy_fused.ar1_scan(z[:, :k], rho[:k - 1] if k > 1
                                        else rho[:1], innovation[:k - 1]
                                        if k > 1 else innovation[:1], 1.0)
            assert np.array_equal(part, full[:, :k]), k

    def test_dispatcher_backend_axis(self):
        z = np.random.default_rng(0).standard_normal((2, 50))
        rho, innovation = _uniform_coeffs(50)
        ref = ar1_scan(z, rho, innovation, 1.0, backend="reference")
        assert np.array_equal(ref, reference.ar1_scan(z, rho, innovation, 1.0))
        for name in available_backends():
            out = ar1_scan(z, rho, innovation, 1.0, backend=name)
            np.testing.assert_allclose(out, ref, rtol=0.0, atol=1e-12,
                                       err_msg=name)


class TestAr1MinScan:
    """Grouped shared-scan min reduction vs. the step loop."""

    def _ragged_problem(self, seed=4):
        # Mixed uniform/irregular candidate set with shared prefixes
        # (candidates 0-2 share a uniform grid ladder) and singletons.
        rng = np.random.default_rng(seed)
        sizes = np.array([120, 80, 120, 33, 1, 64])
        p_max = int(sizes.max())
        snr = np.full((sizes.size, p_max), np.inf)
        rho = np.zeros((sizes.size, p_max - 1))
        innovation = np.zeros_like(rho)
        shared_rho, shared_inn = _uniform_coeffs(p_max, rho=0.85, sigma=2.0)
        for c, pc in enumerate(sizes):
            snr[c, :pc] = rng.uniform(-5.0, 25.0, pc)
            if c < 3:
                rho[c, :pc - 1] = shared_rho[:pc - 1]
                innovation[c, :pc - 1] = shared_inn[:pc - 1]
            elif pc > 1:
                r = rng.uniform(0.0, 0.99, pc - 1)
                rho[c, :pc - 1] = r
                innovation[c, :pc - 1] = 2.0 * np.sqrt(1.0 - r * r)
        z = rng.standard_normal((40, p_max))
        return snr, rho, innovation, z, sizes

    def test_matches_reference(self):
        snr, rho, innovation, z, sizes = self._ragged_problem()
        fused = numpy_fused.ar1_min_scan(snr, rho, innovation, z, 2.0, sizes)
        ref = reference.ar1_min_scan(snr, rho, innovation, z, 2.0, sizes)
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    def test_alone_equals_joint_bitwise(self):
        # Grouping candidates behind a shared scan must not change any
        # candidate's answer relative to solving it alone (the pruning
        # bound is exact, not approximate).
        snr, rho, innovation, z, sizes = self._ragged_problem()
        joint = numpy_fused.ar1_min_scan(snr, rho, innovation, z, 2.0, sizes)
        for c in range(sizes.size):
            alone = numpy_fused.ar1_min_scan(
                snr[c:c + 1], rho[c:c + 1], innovation[c:c + 1], z, 2.0,
                sizes[c:c + 1])
            assert np.array_equal(alone[0], joint[c]), c

    def test_single_position_candidate(self):
        snr = np.array([[3.0]])
        rho = np.zeros((1, 1))
        innovation = np.zeros((1, 1))
        z = np.random.default_rng(1).standard_normal((10, 1))
        fused = numpy_fused.ar1_min_scan(snr, rho, innovation, z, 1.5,
                                         np.array([1]))
        ref = reference.ar1_min_scan(snr, rho, innovation, z, 1.5,
                                     np.array([1]))
        np.testing.assert_allclose(fused, ref, rtol=0.0, atol=1e-12)

    def test_sigma_zero_short_circuits_before_kernel(self):
        # The shadowing model returns zeros before any kernel dispatch, so
        # even a backend that cannot run resolves fine at sigma == 0.
        model = LogNormalShadowing(sigma_db=0.0)
        out = model.sample_batch(np.array([0.0, 10.0, 20.0]),
                                 [np.random.default_rng(0)] * 4,
                                 backend="definitely-not-a-backend")
        assert np.array_equal(out, np.zeros((4, 3)))


class TestSocScan:
    """Fused SoC-space walk vs. the reference Wh walk.

    The fused kernel runs the recurrence in SoC units, so SoC-dependent
    floats agree with the reference to a few ULPs (asserted at 1e-12
    relative — three decades inside the 1e-9 engine budget); integer
    counts and the hour-order PV sums are exact.
    """

    EXACT_KEYS = ("full_days", "unmet_hours", "monthly_unmet_hours",
                  "annual_pv_wh", "monthly_pv_wh")

    def _assert_matches(self, fused, ref):
        assert set(fused) == set(ref)
        for key in self.EXACT_KEYS:
            assert np.array_equal(fused[key], ref[key]), key
        for key in ("min_soc", "unmet_wh", "annual_load_wh"):
            np.testing.assert_allclose(fused[key], ref[key],
                                       rtol=1e-12, atol=1e-12, err_msg=key)

    def _problem(self, n, days=60, seed=5, split_month=False):
        rng = np.random.default_rng(seed)
        produced = rng.uniform(0.0, 400.0, (days, 24, n))
        produced[:, :6] = 0.0  # night hours: guaranteed pure-discharge
        produced[:, 12] = 500.0  # midday: guaranteed pure-charge
        demanded = rng.uniform(10.0, 120.0, (24, n))
        months = np.repeat(np.arange(days // 5) % 12, 5)[:days]
        if split_month:
            months = np.concatenate((months[days // 2:], months[:days // 2]))
        capacity = rng.uniform(500.0, 3000.0, n)
        efficiency = rng.uniform(0.8, 0.95, n)
        cutoff = rng.uniform(0.1, 0.3, n)
        return produced, demanded, months, capacity, efficiency, cutoff

    @pytest.mark.parametrize("n", [1, 7])
    def test_matches_reference(self, n):
        self._assert_matches(numpy_fused.soc_scan(*self._problem(n), 0.5),
                             reference.soc_scan(*self._problem(n), 0.5))

    @pytest.mark.parametrize("n", [1, 4])
    def test_split_months(self, n):
        # A month appearing in two non-contiguous day runs forces the
        # scatter-add fallback in the monthly sums.
        args = self._problem(n, split_month=True)
        self._assert_matches(numpy_fused.soc_scan(*args, 1.0),
                             reference.soc_scan(*args, 1.0))

    def test_initial_soc_below_cutoff(self):
        # The usable clamp must keep a below-cutoff battery from jumping
        # up to the cutoff on the first discharge hour.
        args = self._problem(3)
        self._assert_matches(numpy_fused.soc_scan(*args, 0.05),
                             reference.soc_scan(*args, 0.05))

    def test_hour_order_sum_matches_loop(self):
        rng = np.random.default_rng(6)
        for n in (1, 3):
            hourly = rng.uniform(-1.0, 1.0, (500, n))
            acc = np.zeros(n)
            for h in range(hourly.shape[0]):
                acc = acc + hourly[h]
            assert np.array_equal(_hour_order_sum(hourly), acc), n

    def test_monthly_sums_match_loop(self):
        rng = np.random.default_rng(7)
        days = 40
        for months in (np.repeat(np.arange(8) % 12, 5),
                       np.concatenate((np.full(20, 11), np.full(20, 11)))):
            for n in (1, 3):
                hourly = rng.uniform(0.0, 2.0, (days * 24, n))
                acc = np.zeros((12, n))
                for d in range(days):
                    for h in range(24):
                        acc[months[d]] = acc[months[d]] + hourly[d * 24 + h]
                assert np.array_equal(_monthly_sums(hourly, months), acc)


class TestOccupancyScan:
    """The numpy backend reuses the reference group scan unchanged."""

    def test_numpy_aliases_reference(self):
        assert numpy_fused.KERNELS["occupancy_scan"] is \
            reference.KERNELS["occupancy_scan"]

    def test_dispatcher_routes(self):
        g_a = np.array([[0.0, 100.0], [50.0, np.inf]])
        g_b = np.array([[10.0, 120.0], [60.0, np.inf]])
        first_wake = np.array([[0.0, 95.0, np.inf], [45.0, np.inf, np.inf]])
        n_groups = np.array([2, 1])
        expected = reference.occupancy_scan(g_a, g_b, first_wake, n_groups,
                                            5.0, 200.0)
        for name in available_backends():
            awake, waking = occupancy_scan(g_a, g_b, first_wake, n_groups,
                                           5.0, 200.0, backend=name)
            assert np.array_equal(awake, expected[0]), name
            assert np.array_equal(waking, expected[1]), name


class TestRegistry:
    """Backend registration and name resolution."""

    def test_known_backends_registered(self):
        names = registered_backends()
        assert "numpy" in names and "reference" in names and "numba" in names
        assert set(available_backends()) <= set(names)
        assert "numpy" in available_backends()
        assert "reference" in available_backends()

    def test_every_available_backend_is_complete(self):
        for name in available_backends():
            kernels = get_backend(name).kernels
            assert set(kernels) == set(KERNEL_NAMES), name

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(Backend(name="numpy", description="dup",
                                     kernels={}))

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend_name() == "numpy"
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_backend_name() == "reference"
        # An explicit argument beats the environment variable.
        assert resolve_backend_name("numpy") == "numpy"
        assert get_backend().name == "reference"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend_name("fortran")
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend_name()

    def test_unavailable_backend_explains_itself(self):
        if "numba" in available_backends():
            pytest.skip("numba installed in this environment")
        with pytest.raises(ConfigurationError, match="not installed"):
            get_backend("numba")

    def test_lazy_registration(self, monkeypatch):
        # A fresh registry repopulates itself on first lookup by importing
        # repro.kernels (which performs the register_backend calls).
        import sys
        monkeypatch.setattr(backend_mod, "_REGISTRY", {})
        monkeypatch.delitem(sys.modules, "repro.kernels", raising=False)
        assert "numpy" in registered_backends()

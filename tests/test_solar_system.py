"""Tests for PV array, battery, off-grid simulation and sizing — Table IV."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.energy.duty import lp_node_average_power_w
from repro.errors import ConfigurationError, InfeasibleError
from repro.solar.battery import Battery
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import LoadProfile, OffGridSystem, repeater_load_profile
from repro.solar.pv import PvArray
from repro.solar.sizing import find_minimal_system


class TestPvArray:
    def test_stc_output(self):
        pv = PvArray(peak_w=540.0, performance_ratio=1.0)
        assert pv.power_w(1000.0) == pytest.approx(540.0)

    def test_performance_ratio(self):
        pv = PvArray(peak_w=540.0, performance_ratio=0.8)
        assert pv.power_w(1000.0) == pytest.approx(432.0)

    def test_linear_in_irradiance(self):
        pv = PvArray()
        assert pv.power_w(500.0) == pytest.approx(pv.power_w(1000.0) / 2)

    def test_from_modules(self):
        pv = PvArray.from_modules(3)
        assert pv.peak_w == pytest.approx(540.0)

    def test_daily_energy(self):
        pv = PvArray(peak_w=1000.0, performance_ratio=1.0)
        hours = np.zeros(24)
        hours[10:14] = 500.0
        assert pv.daily_energy_wh(hours) == pytest.approx(2000.0)

    def test_rejects_negative_irradiance(self):
        with pytest.raises(ConfigurationError):
            PvArray().power_w(-1.0)

    def test_rejects_bad_pr(self):
        with pytest.raises(ConfigurationError):
            PvArray(performance_ratio=0.0)

    def test_rejects_zero_modules(self):
        with pytest.raises(ConfigurationError):
            PvArray.from_modules(0)


class TestBattery:
    def test_initial_full(self):
        batt = Battery()
        assert batt.is_full
        assert batt.usable_wh == pytest.approx(0.6 * 720.0)

    def test_charge_respects_headroom(self):
        batt = Battery(capacity_wh=100.0, charge_efficiency=1.0)
        batt.reset(0.5)
        taken = batt.charge(100.0)
        assert taken == pytest.approx(50.0)
        assert batt.is_full

    def test_charge_efficiency_loss(self):
        batt = Battery(capacity_wh=100.0, charge_efficiency=0.9)
        batt.reset(0.0)
        batt.charge(50.0)
        assert batt.stored_wh == pytest.approx(45.0)

    def test_discharge_stops_at_cutoff(self):
        batt = Battery(capacity_wh=100.0, discharge_cutoff=0.4)
        delivered = batt.discharge(100.0)
        assert delivered == pytest.approx(60.0)
        assert batt.soc == pytest.approx(0.4)

    def test_further_discharge_yields_nothing(self):
        batt = Battery(capacity_wh=100.0, discharge_cutoff=0.4)
        batt.discharge(100.0)
        assert batt.discharge(10.0) == 0.0

    def test_reset(self):
        batt = Battery()
        batt.discharge(100.0)
        batt.reset()
        assert batt.is_full

    def test_rejects_negative_amounts(self):
        with pytest.raises(ConfigurationError):
            Battery().charge(-1.0)
        with pytest.raises(ConfigurationError):
            Battery().discharge(-1.0)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ConfigurationError):
            Battery(discharge_cutoff=1.0)

    @given(st.floats(min_value=0.0, max_value=500.0),
           st.floats(min_value=0.0, max_value=500.0))
    def test_soc_stays_in_bounds(self, charge_wh, discharge_wh):
        batt = Battery(capacity_wh=720.0)
        batt.reset(0.7)
        batt.charge(charge_wh)
        batt.discharge(discharge_wh)
        assert 0.0 <= batt.soc <= 1.0
        assert batt.soc >= batt.discharge_cutoff - 1e-9 or batt.soc <= 0.7


class TestLoadProfile:
    def test_repeater_profile_daily_total(self):
        profile = repeater_load_profile()
        expected = lp_node_average_power_w(sleeping=True) * 24.0
        assert profile.daily_wh == pytest.approx(expected, abs=0.01)
        assert profile.daily_wh == pytest.approx(124.1, abs=0.1)

    def test_night_hours_at_sleep_power(self):
        profile = repeater_load_profile()
        assert profile.hourly_w[0] == pytest.approx(constants.LP_REPEATER_PSLEEP_W)
        assert profile.hourly_w[4] == pytest.approx(constants.LP_REPEATER_PSLEEP_W)
        assert profile.hourly_w[12] > constants.LP_REPEATER_PSLEEP_W

    def test_needs_24_hours(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(hourly_w=(1.0,) * 23)

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(hourly_w=(-1.0,) + (1.0,) * 23)


class TestOffGridSimulation:
    def test_madrid_base_zero_downtime(self):
        result = OffGridSystem(LOCATIONS["madrid"]).simulate_year()
        assert result.zero_downtime
        assert result.full_battery_days_pct > 97.0

    def test_lyon_base_zero_downtime(self):
        result = OffGridSystem(LOCATIONS["lyon"]).simulate_year()
        assert result.zero_downtime

    def test_vienna_base_has_downtime(self):
        result = OffGridSystem(LOCATIONS["vienna"]).simulate_year()
        assert not result.zero_downtime

    def test_vienna_doubled_battery_recovers(self):
        result = OffGridSystem(LOCATIONS["vienna"],
                               battery=Battery(capacity_wh=1440.0)).simulate_year()
        assert result.zero_downtime

    def test_berlin_needs_bigger_pv_too(self):
        small_pv = OffGridSystem(LOCATIONS["berlin"],
                                 battery=Battery(capacity_wh=1440.0)).simulate_year()
        assert not small_pv.zero_downtime
        big = OffGridSystem(LOCATIONS["berlin"], pv=PvArray(peak_w=600.0),
                            battery=Battery(capacity_wh=1440.0)).simulate_year()
        assert big.zero_downtime

    def test_full_days_ordering_matches_paper(self):
        pct = {}
        configs = {"madrid": (540.0, 720.0), "lyon": (540.0, 720.0),
                   "vienna": (540.0, 1440.0), "berlin": (600.0, 1440.0)}
        for key, (pv, batt) in configs.items():
            result = OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv),
                                   battery=Battery(capacity_wh=batt)).simulate_year()
            pct[key] = result.full_battery_days_pct
        assert pct["madrid"] > pct["lyon"] > pct["vienna"] > pct["berlin"]

    def test_annual_load_consistency(self):
        result = OffGridSystem(LOCATIONS["madrid"]).simulate_year()
        assert result.annual_load_kwh == pytest.approx(0.1241 * 365, rel=0.01)

    def test_monthly_stats_shapes(self):
        result = OffGridSystem(LOCATIONS["madrid"]).simulate_year()
        assert len(result.monthly_pv_kwh) == 12
        assert len(result.monthly_unmet_hours) == 12
        assert sum(result.monthly_unmet_hours) == result.unmet_hours

    def test_winter_months_least_pv(self):
        result = OffGridSystem(LOCATIONS["berlin"]).simulate_year()
        monthly = result.monthly_pv_kwh
        assert min(monthly) == min(monthly[11], monthly[0])  # Dec or Jan darkest

    def test_huge_load_causes_downtime_everywhere(self):
        big_load = LoadProfile(hourly_w=(500.0,) * 24)
        result = OffGridSystem(LOCATIONS["madrid"], load=big_load).simulate_year()
        assert result.unmet_hours > 1000

    def test_seed_determinism(self):
        a = OffGridSystem(LOCATIONS["vienna"], seed=7).simulate_year()
        b = OffGridSystem(LOCATIONS["vienna"], seed=7).simulate_year()
        assert a.full_battery_days == b.full_battery_days
        assert a.unmet_hours == b.unmet_hours

    def test_rejects_zero_days(self):
        with pytest.raises(ConfigurationError):
            OffGridSystem(LOCATIONS["madrid"]).simulate_year(days=0)

    def test_min_soc_never_below_cutoff(self):
        result = OffGridSystem(LOCATIONS["berlin"]).simulate_year()
        assert result.min_soc >= 0.4 - 1e-9


class TestSizing:
    def test_madrid_standard_config(self):
        s = find_minimal_system(LOCATIONS["madrid"])
        assert (s.pv_peak_w, s.battery_capacity_wh) == (540.0, 720.0)
        assert not s.needed_upsizing

    def test_lyon_standard_config(self):
        s = find_minimal_system(LOCATIONS["lyon"])
        assert (s.pv_peak_w, s.battery_capacity_wh) == (540.0, 720.0)

    def test_vienna_doubled_battery(self):
        s = find_minimal_system(LOCATIONS["vienna"])
        assert (s.pv_peak_w, s.battery_capacity_wh) == (540.0, 1440.0)
        assert s.needed_upsizing
        assert (540.0, 720.0) in s.rejected

    def test_berlin_bigger_pv_and_battery(self):
        s = find_minimal_system(LOCATIONS["berlin"])
        assert (s.pv_peak_w, s.battery_capacity_wh) == (600.0, 1440.0)
        assert (540.0, 720.0) in s.rejected
        assert (540.0, 1440.0) in s.rejected

    def test_infeasible_load_raises(self):
        load = LoadProfile(hourly_w=(2000.0,) * 24)
        with pytest.raises(InfeasibleError):
            find_minimal_system(LOCATIONS["berlin"], load=load)

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.radio.link import LinkParams
from repro.traffic.trains import TrafficParams


@pytest.fixture
def link_params() -> LinkParams:
    """Paper-default link parameters."""
    return LinkParams()


@pytest.fixture
def traffic_params() -> TrafficParams:
    """Paper Table III traffic scenario."""
    return TrafficParams()


@pytest.fixture
def energy_params() -> EnergyParams:
    """Paper energy-model parameters."""
    return EnergyParams()


@pytest.fixture
def fig3_layout() -> CorridorLayout:
    """The Fig. 3 example scenario: 2400 m ISD, 8 repeaters."""
    return CorridorLayout.with_uniform_repeaters(2400.0, 8)


@pytest.fixture
def conventional_layout() -> CorridorLayout:
    """The conventional 500 m HP-only segment."""
    return CorridorLayout.conventional()

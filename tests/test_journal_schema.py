"""Journal schema and durability contracts (ISSUE-8 satellites).

Two load-bearing docstring tables document the JSONL event schemas:
:mod:`repro.study.journal` (the runner's ``run.jsonl``) and
:mod:`repro.service.jobstore` (the service's ``jobs.jsonl``).  This module
keeps them honest by AST-introspecting **every** ``emit(...)`` call site in
the emitting modules and asserting the event names and field sets match the
tables exactly — schema drift in either direction (an undocumented field or
a documented-but-never-emitted event) fails the build.

It also pins the journal's durability behaviours: a torn *final* line is
tolerated silently (the one artifact an interrupted writer can leave),
mid-file corruption is surfaced, the persistent append handle survives
multiple emits and reopens after ``run_end``, and disk errors never
propagate out of ``emit``.
"""

import ast
import inspect
import json
import re
import warnings
from pathlib import Path

import pytest

import repro.service.jobstore
import repro.study.distributed
import repro.study.journal
import repro.study.runner
from repro.study.journal import RunJournal, read_journal, scan_journal

# -- docstring-table introspection --------------------------------------------


def parse_event_table(docstring: str) -> dict[str, set[str]]:
    """Parse an ``event / extra fields`` reST grid table from a docstring.

    Rows start at column zero with the event name; indented lines continue
    the previous row's field list.  Parenthesised annotations are stripped.
    """
    lines = docstring.splitlines()
    separators = [index for index, line in enumerate(lines)
                  if re.fullmatch(r"=+ =+\s*", line)]
    assert len(separators) == 3, "expected a single three-rule grid table"
    events: dict[str, set[str]] = {}
    current = None
    for line in lines[separators[1] + 1:separators[2]]:
        if not line.strip():
            continue
        if line[0].isspace():
            assert current is not None
            fields_text = line.strip()
        else:
            current, _, fields_text = line.partition(" ")
            events[current] = set()
        fields_text = re.sub(r"\([^)]*\)", "", fields_text)
        events[current].update(
            field.strip() for field in fields_text.split(",")
            if field.strip())
    return events


def emit_call_sites(module) -> dict[str, list[set[str]]]:
    """Every ``*.emit("<event>", field=...)`` call in a module's source.

    Returns a mapping of event name to the list of keyword-field sets seen
    at its call sites.  Non-literal event names or ``**kwargs`` expansions
    fail the collection — the schema must be statically visible.
    """
    tree = ast.parse(inspect.getsource(module))
    sites: dict[str, list[set[str]]] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"):
            continue
        assert node.args and isinstance(node.args[0], ast.Constant), (
            f"emit() at line {node.lineno} must use a literal event name")
        event = node.args[0].value
        fields = set()
        for keyword in node.keywords:
            assert keyword.arg is not None, (
                f"emit({event!r}) at line {node.lineno} uses **kwargs; "
                f"fields must be literal keywords")
            fields.add(keyword.arg)
        sites.setdefault(event, []).append(fields)
    return sites


class TestRunnerJournalSchema:
    def table(self):
        return parse_event_table(repro.study.journal.__doc__)

    def sites(self):
        # The run.jsonl schema is emitted by two modules: the supervised
        # runner and the distributed layer (shard manifests, merge,
        # refresh) — the table documents their union.
        sites = emit_call_sites(repro.study.runner)
        for event, field_sets in emit_call_sites(
                repro.study.distributed).items():
            sites.setdefault(event, []).extend(field_sets)
        return sites

    def test_every_emitted_event_is_documented(self):
        table = self.table()
        for event, field_sets in self.sites().items():
            assert event in table, f"undocumented journal event {event!r}"
            for fields in field_sets:
                assert fields == table[event], (
                    f"event {event!r} emits fields {sorted(fields)} but the "
                    f"journal.py table documents {sorted(table[event])}")

    def test_every_documented_event_is_emitted(self):
        emitted = set(self.sites())
        documented = set(self.table())
        assert documented == emitted, (
            f"journal.py documents events never emitted by the runner or "
            f"the distributed layer: {sorted(documented - emitted)}")


class TestJobStoreSchema:
    def table(self):
        return parse_event_table(repro.service.jobstore.__doc__)

    def sites(self):
        return emit_call_sites(repro.service.jobstore)

    def test_every_emitted_event_is_documented(self):
        table = self.table()
        for event, field_sets in self.sites().items():
            assert event in table, f"undocumented jobstore event {event!r}"
            for fields in field_sets:
                assert fields == table[event], (
                    f"event {event!r} emits fields {sorted(fields)} but the "
                    f"jobstore.py table documents {sorted(table[event])}")

    def test_every_documented_event_is_emitted(self):
        assert set(self.table()) == set(self.sites())


# -- torn-tail vs mid-file corruption -----------------------------------------


def write_lines(path: Path, *lines: str) -> None:
    path.write_text("".join(line + "\n" for line in lines))


class TestScanJournal:
    def test_clean_journal_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("run_start", study="s")
        journal.emit("run_end", computed=1)
        events, skipped = scan_journal(path)
        assert [event["event"] for event in events] == ["run_start",
                                                        "run_end"]
        assert skipped == 0

    def test_torn_final_line_is_tolerated_silently(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"event": "run_start"}) + "\n"
                        + '{"event": "fini')  # interrupted mid-write
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            events, skipped = scan_journal(path)
            parsed = read_journal(path)
        assert skipped == 0
        assert [event["event"] for event in events] == ["run_start"]
        assert parsed == events

    def test_mid_file_corruption_is_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_lines(path,
                    json.dumps({"event": "run_start"}),
                    "garbage not json",
                    json.dumps({"event": "run_end"}))
        events, skipped = scan_journal(path)
        assert skipped == 1
        assert [event["event"] for event in events] == ["run_start",
                                                        "run_end"]

    def test_mid_file_corruption_warns_through_read_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_lines(path, "garbage", json.dumps({"event": "run_end"}))
        with pytest.warns(RuntimeWarning, match="1 malformed"):
            events = read_journal(path)
        assert [event["event"] for event in events] == ["run_end"]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert scan_journal(tmp_path / "absent.jsonl") == ([], 0)
        assert read_journal(tmp_path / "absent.jsonl") == []


# -- persistent append handle -------------------------------------------------


class TestPersistentHandle:
    def test_handle_stays_open_across_emits(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.emit("run_start", study="s")
        handle = journal._handle
        assert handle is not None and not handle.closed
        journal.emit("submit", shard=0)
        assert journal._handle is handle  # same handle, no reopen cycle

    def test_run_end_closes_and_later_emit_reopens(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("run_start", study="s")
        journal.emit("run_end", computed=1)
        assert journal._handle is None
        journal.emit("run_start", study="s2")  # second run, same journal
        assert journal._handle is not None
        journal.close()
        events, skipped = scan_journal(path)
        assert skipped == 0
        assert [event["event"] for event in events] == [
            "run_start", "run_end", "run_start"]

    def test_every_emit_is_flushed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("run_start", study="s")
        # Visible to an independent reader *before* any close.
        assert scan_journal(path)[0][0]["event"] == "run_start"
        journal.close()

    def test_disk_error_is_swallowed_and_handle_recovers(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("run_start", study="s")

        class ExplodingHandle:
            closed = False

            def write(self, line):
                raise OSError("disk full")

            def close(self):
                self.closed = True

        journal._handle = ExplodingHandle()
        journal.emit("submit", shard=0)  # must not raise
        assert journal._handle is None  # broken handle discarded
        journal.emit("finish", shard=0)  # reopens transparently
        journal.close()
        events, _ = scan_journal(path)
        assert [event["event"] for event in events] == ["run_start",
                                                        "finish"]

    def test_disabled_journal_never_opens(self, tmp_path):
        journal = RunJournal(None)
        journal.emit("run_start", study="s")
        assert journal._handle is None

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.emit("run_start", study="s")
            assert journal._handle is not None
        assert journal._handle is None

    def test_document_mapping_order_survives_the_round_trip(self, tmp_path):
        # Axis declaration order is semantic (it fixes case enumeration);
        # the journal must not canonicalise nested payloads.
        path = tmp_path / "jobs.jsonl"
        document = {"axes": {"zeta": [1], "alpha": [2]}}
        journal = RunJournal(path)
        journal.emit("job_submitted", document=document)
        journal.close()
        events, _ = scan_journal(path)
        assert list(events[0]["document"]["axes"]) == ["zeta", "alpha"]

"""Contract tests of the scenario-planning service (ISSUE-8).

The pinned behaviours, in order of the issue's acceptance criteria:

* **overload** — with the queue bound at N, N+k concurrent submissions
  yield exactly k 429s carrying ``Retry-After``, and no accepted job is
  dropped;
* **deadline** — an expiring job lands in the explicit ``"partial"``
  state and its completed shards stay retrievable (HTTP 206);
* **crash safety** — killing the server and restarting against the same
  store recovers every journaled job and serves a bit-identical result;
* plus the edge validation, dedup/idempotency, per-client caps, client
  cancellation, drain and HTTP plumbing around them.
"""

import json
import threading
import time

import pytest

from repro.errors import AdmissionError, ConfigurationError, UnknownJobError
from repro.service import (
    JOB_STATES,
    TERMINAL_STATES,
    JobQueue,
    JobRequest,
    JobStore,
    ScenarioService,
    ServiceApp,
)
from repro.study import parse_study, run_study

MC_DOC = {
    "name": "mc-tiny",
    "engine": "mc",
    "seed": 7,
    "axes": {"sigma_db": [2.0, 4.0], "isd_m": [2000.0, 2400.0]},
    "fixed": {"n_repeaters": 8, "trials": 12, "resolution_m": 50.0},
}


def mc_document(**overrides):
    return dict(MC_DOC, **overrides)


NETWORK_DOC = {
    "name": "network-tiny",
    "engine": "network",
    "seed": 0,
    "axes": {"energy_budget_w_per_km": [0.0, 200.0]},
    "fixed": {"graph": "demo", "segments": 8, "resolution_m": 50.0},
}


def wait_for(predicate, timeout_s=15.0, poll_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


def wait_terminal(queue, job_id, timeout_s=15.0):
    assert wait_for(
        lambda: queue.get(job_id).state in TERMINAL_STATES, timeout_s)
    return queue.get(job_id)


# -- request schema (the 400 gate) --------------------------------------------


class TestJobRequest:
    def test_accepts_minimal_document(self):
        request = JobRequest.from_mapping({"study": MC_DOC}, client="c")
        assert request.jobs == 1 and request.client == "c"
        assert request.spec().name == "mc-tiny"

    def test_rejects_non_mapping_body(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            JobRequest.from_mapping([1, 2])

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown request keys"):
            JobRequest.from_mapping({"study": MC_DOC, "priority": 9})

    def test_rejects_missing_study(self):
        with pytest.raises(ConfigurationError, match="'study' document"):
            JobRequest.from_mapping({"jobs": 2})

    def test_rejects_invalid_study_document(self):
        with pytest.raises(ConfigurationError):
            JobRequest.from_mapping({"study": {"name": "x"}})

    @pytest.mark.parametrize("payload", [
        {"jobs": 0}, {"jobs": 99}, {"jobs": True},
        {"shards": 0}, {"retries": -1}, {"retries": 17},
        {"shard_timeout_s": 0}, {"deadline_s": -5.0},
        {"backend": 7}, {"backend": "no-such-backend"},
    ])
    def test_rejects_out_of_range_options(self, payload):
        with pytest.raises(ConfigurationError):
            JobRequest.from_mapping({"study": MC_DOC, **payload})

    def test_options_round_trip_rebuilds_request(self):
        request = JobRequest.from_mapping(
            {"study": MC_DOC, "jobs": 2, "shards": 4, "retries": 1,
             "deadline_s": 60.0}, client="c")
        rebuilt = JobRequest(document=request.document, client="c",
                             **request.options())
        assert rebuilt == request

    def test_accepts_network_study_document(self):
        request = JobRequest.from_mapping({"study": NETWORK_DOC}, client="c")
        assert request.spec().engine == "network"
        # Missing required engine parameter is still a 400-class error.
        bad = {k: v for k, v in NETWORK_DOC.items() if k != "axes"}
        with pytest.raises(ConfigurationError):
            JobRequest.from_mapping(
                {"study": dict(bad, axes={"demand_scale": [1.0]})})

    def test_network_submission_runs_to_completion(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        try:
            job, _ = queue.submit(JobRequest.from_mapping(
                {"study": NETWORK_DOC, "shards": 2}, client="c"))
            assert wait_terminal(queue, job.job).state == "done"
            _, document = queue.result(job.job)
            reference = run_study(parse_study(json.dumps(NETWORK_DOC))) \
                .table.wide()
            rows = document["rows"]
            assert len(rows) == 2
            # Served rows are bit-identical to an inline run of the spec.
            assert [r["total_cost_meur"] for r in rows] \
                == reference["total_cost_meur"]
            assert [r["sleeping_segments"] for r in rows] \
                == reference["sleeping_segments"]
        finally:
            queue.drain(5.0)


# -- admission control (overload semantics) -----------------------------------


class TestAdmission:
    def test_overload_yields_exactly_k_rejections(self, tmp_path):
        """N-bound queue, N+k concurrent submissions -> exactly k 429s."""
        bound, extra = 4, 3
        queue = JobQueue(tmp_path, workers=1, max_queue=bound,
                         max_per_client=bound + extra)
        # Workers are *not* started: every admitted job stays queued, so
        # admission is deterministic.
        accepted, rejected = [], []
        lock = threading.Lock()

        def submit(index):
            request = JobRequest.from_mapping(
                {"study": mc_document(seed=100 + index)}, client="c")
            try:
                job, created = queue.submit(request)
                with lock:
                    accepted.append(job.job)
            except AdmissionError as exc:
                with lock:
                    rejected.append(exc)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(bound + extra)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(accepted) == bound
        assert len(rejected) == extra
        # Every rejection carries a positive Retry-After estimate.
        assert all(exc.retry_after_s >= 1.0 for exc in rejected)
        # No accepted job was dropped: all are queued and retained.
        assert all(queue.get(job_id).state == "queued"
                   for job_id in accepted)

    def test_per_client_cap(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=10, max_per_client=2)
        for index in range(2):
            queue.submit(JobRequest.from_mapping(
                {"study": mc_document(seed=index)}, client="alice"))
        with pytest.raises(AdmissionError, match="in flight"):
            queue.submit(JobRequest.from_mapping(
                {"study": mc_document(seed=99)}, client="alice"))
        # A different client is unaffected by alice's cap.
        job, created = queue.submit(JobRequest.from_mapping(
            {"study": mc_document(seed=99)}, client="bob"))
        assert created

    def test_draining_queue_refuses_admission(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        assert queue.drain(5.0)
        with pytest.raises(AdmissionError, match="draining"):
            queue.submit(JobRequest.from_mapping({"study": MC_DOC}))

    def test_constructor_rejects_degenerate_bounds(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path, workers=0)
        with pytest.raises(ConfigurationError):
            JobQueue(tmp_path, max_queue=0)


# -- idempotent dedup ---------------------------------------------------------


class TestDedup:
    def test_identical_submission_coalesces_on_open_job(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=2)
        request = JobRequest.from_mapping({"study": MC_DOC}, client="c")
        first, created_first = queue.submit(request)
        second, created_second = queue.submit(request)
        assert created_first and not created_second
        assert second.job == first.job
        # Coalescing consumed no queue capacity: the bound still admits one.
        queue.submit(JobRequest.from_mapping(
            {"study": mc_document(seed=8)}, client="c"))

    def test_finished_job_serves_resubmission(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        try:
            request = JobRequest.from_mapping(
                {"study": MC_DOC, "shards": 4}, client="c")
            job, _ = queue.submit(request)
            assert wait_terminal(queue, job.job).state == "done"
            again, created = queue.submit(request)
            assert not created and again.job == job.job
            _, document = queue.result(again.job)
            assert len(document["rows"]) == 4
        finally:
            queue.drain(5.0)

    def test_different_seed_is_a_different_job(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=4)
        first, _ = queue.submit(
            JobRequest.from_mapping({"study": MC_DOC}, client="c"))
        second, created = queue.submit(JobRequest.from_mapping(
            {"study": mc_document(seed=8)}, client="c"))
        assert created and second.job != first.job


# -- distributed slice jobs (ISSUE-10) ----------------------------------------


class TestSliceJobs:
    def slice_request(self, index, of, **extra):
        return JobRequest.from_mapping(
            {"study": MC_DOC, "shards": 2,
             "shard_index": index, "shard_of": of, **extra}, client="c")

    def test_slice_fields_must_come_together(self):
        with pytest.raises(ConfigurationError, match="together"):
            JobRequest.from_mapping({"study": MC_DOC, "shard_index": 0})
        with pytest.raises(ConfigurationError, match="together"):
            JobRequest.from_mapping({"study": MC_DOC, "shard_of": 2})

    def test_slice_index_must_be_inside_the_split(self):
        with pytest.raises(ConfigurationError, match="shard_index"):
            JobRequest.from_mapping(
                {"study": MC_DOC, "shard_index": 2, "shard_of": 2})
        with pytest.raises(ConfigurationError, match="shard_of"):
            JobRequest.from_mapping(
                {"study": MC_DOC, "shard_index": 0, "shard_of": 0})

    def test_options_round_trip_preserves_the_slice(self):
        request = self.slice_request(1, 2)
        rebuilt = JobRequest.from_mapping(
            {"study": MC_DOC, **request.options()}, client="c")
        assert (rebuilt.shard_index, rebuilt.shard_of) == (1, 2)
        assert rebuilt.spec().compute_hash == request.spec().compute_hash

    def test_slice_jobs_complete_and_leave_signed_manifests(self, tmp_path):
        from repro.study.distributed import merge_manifests
        from repro.study.manifest import default_manifest_name, load_manifest

        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        try:
            jobs = [queue.submit(self.slice_request(index, 2))[0]
                    for index in range(2)]
            for job in jobs:
                assert wait_terminal(queue, job.job).state == "done"
        finally:
            queue.drain(5.0)
        spec = parse_study(json.dumps(MC_DOC))
        paths = [tmp_path / "shards" / default_manifest_name(spec, index, 2)
                 for index in range(2)]
        manifests = [load_manifest(path) for path in paths]  # signatures ok
        assert sorted(m.worker for m in manifests) == [0, 1]
        # The attested slices merge bit-identically to an inline run.
        merged = merge_manifests(spec, paths).table.wide()
        assert merged == run_study(spec).table.wide()

    def test_slices_and_full_runs_never_coalesce(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=4)
        full, _ = queue.submit(JobRequest.from_mapping(
            {"study": MC_DOC, "shards": 2}, client="c"))
        first, created_first = queue.submit(self.slice_request(0, 2))
        second, created_second = queue.submit(self.slice_request(1, 2))
        assert created_first and created_second
        assert len({full.job, first.job, second.job}) == 3
        # The same slice resubmitted does coalesce, as a full run would.
        again, created = queue.submit(self.slice_request(0, 2))
        assert not created and again.job == first.job


# -- deadlines ----------------------------------------------------------------


class TestDeadline:
    def test_expired_deadline_yields_partial_state(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        try:
            job, _ = queue.submit(JobRequest.from_mapping(
                {"study": MC_DOC, "shards": 4, "deadline_s": 1e-6},
                client="c"))
            assert wait_terminal(queue, job.job).state == "partial"
            final, document = queue.result(job.job)
            # The partial result is explicit and retrievable (not an error).
            assert document is not None
            assert document["metadata"]["state"] == "partial"
        finally:
            queue.drain(5.0)

    def test_partial_job_completed_shards_are_retrievable(self, tmp_path):
        # Pre-compute two of four shards into the store, then let a
        # zero-deadline job reuse them: the partial table must contain
        # exactly those cases.
        from repro.study import StudyStore

        spec = parse_study(json.dumps(MC_DOC))
        store = StudyStore(cache_dir=tmp_path / "shards")
        reference = run_study(spec, shards=4, store=store,
                              max_shards=2).table
        assert len(reference) == 2

        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        try:
            job, _ = queue.submit(JobRequest.from_mapping(
                {"study": MC_DOC, "shards": 4, "deadline_s": 1e-6},
                client="c"))
            assert wait_terminal(queue, job.job).state == "partial"
            _, document = queue.result(job.job)
            assert [row["case"] for row in document["rows"]] == \
                reference.long()["case"][::len(reference.metric_names)]
        finally:
            queue.drain(5.0)

    def test_deadline_survives_in_absolute_time(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=2)
        job, _ = queue.submit(JobRequest.from_mapping(
            {"study": MC_DOC, "deadline_s": 3600.0}, client="c"))
        assert job.deadline_t == pytest.approx(time.time() + 3600.0, abs=5.0)


# -- cancellation -------------------------------------------------------------


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=2)
        job, _ = queue.submit(
            JobRequest.from_mapping({"study": MC_DOC}, client="c"))
        cancelled, accepted = queue.cancel(job.job)
        assert accepted and cancelled.state == "cancelled"
        # Terminal: a second cancel is refused.
        _, again = queue.cancel(job.job)
        assert not again

    def test_cancel_unknown_job(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1)
        with pytest.raises(UnknownJobError):
            queue.cancel("deadbeef")

    def test_cancelled_queued_job_never_runs(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=4)
        jobs = [queue.submit(JobRequest.from_mapping(
            {"study": mc_document(seed=index)}, client="c"))[0]
            for index in range(2)]
        queue.cancel(jobs[1].job)
        queue.start()
        try:
            assert wait_terminal(queue, jobs[0].job).state == "done"
            assert queue.get(jobs[1].job).state == "cancelled"
            assert queue.get(jobs[1].job).started_t is None
        finally:
            queue.drain(5.0)


# -- failure provenance -------------------------------------------------------


class TestFailure:
    def test_engine_error_lands_in_failed_state(self, tmp_path):
        # An axes value the MC engine rejects at run time (negative ISD).
        document = mc_document(axes={"sigma_db": [2.0],
                                     "isd_m": [-2000.0]})
        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        try:
            job, _ = queue.submit(
                JobRequest.from_mapping({"study": document}, client="c"))
            final = wait_terminal(queue, job.job)
            assert final.state == "failed"
            assert final.error
            _, document_out = queue.result(job.job)
            assert document_out is None
        finally:
            queue.drain(5.0)


# -- crash safety -------------------------------------------------------------


class TestCrashRecovery:
    def test_restart_recovers_open_jobs_bit_identically(self, tmp_path):
        request_payload = {"study": MC_DOC, "shards": 4}
        # "Crash" before any worker ran: submit with no workers started,
        # then abandon the queue object (jobs.jsonl has no terminal line).
        first = JobQueue(tmp_path, workers=1)
        job, _ = first.submit(
            JobRequest.from_mapping(request_payload, client="c"))
        first.jobstore.close()

        # The uninterrupted reference run, in a store of its own.
        reference = run_study(parse_study(json.dumps(MC_DOC)),
                              shards=4).table.to_document()

        second = JobQueue(tmp_path, workers=1)
        second.start()
        try:
            final = wait_terminal(second, job.job)
            assert final.job == job.job and final.state == "done"
            _, document = second.result(job.job)
            assert document["rows"] == reference["rows"]
        finally:
            assert second.drain(10.0)

        # Third start: terminal job is visible and its result rebuilds
        # from the stored shards without recomputation, bit-identically.
        third = JobQueue(tmp_path, workers=1)
        third.start()
        try:
            recovered, rebuilt = third.result(job.job)
            assert recovered.state == "done"
            assert rebuilt["rows"] == document["rows"]
        finally:
            third.drain(5.0)

    def test_replay_folds_lifecycle_events(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.service_start(workers=1, max_queue=8, max_per_client=4,
                            recovered=0)
        store.job_submitted(job="aaa", study="s", compute_hash="h1",
                            client="c", document={"name": "s"},
                            options={"jobs": 1}, deadline_t=None)
        store.job_started(job="aaa")
        store.job_submitted(job="bbb", study="s", compute_hash="h2",
                            client="c", document={"name": "s"},
                            options={"jobs": 1}, deadline_t=None)
        store.job_finished(job="aaa", state="done", cases=4, wall_s=0.1,
                           error=None)
        store.job_cancelled(job="bbb", was="queued")
        store.close()
        records, skipped = JobStore(path).replay()
        assert skipped == 0
        assert records["aaa"]["state"] == "done"
        assert records["bbb"]["state"] == "cancelled"
        assert JobStore(path).open_jobs() == []

    def test_replay_requeue_resets_to_queued(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        store = JobStore(path)
        store.job_submitted(job="aaa", study="s", compute_hash="h",
                            client="c", document={"name": "s"},
                            options={}, deadline_t=None)
        store.job_started(job="aaa")  # crashed while running
        store.close()
        open_jobs = JobStore(path).open_jobs()
        assert [record["job"] for record in open_jobs] == ["aaa"]
        assert open_jobs[0]["state"] == "running"

    def test_disabled_store_replays_empty(self):
        assert JobStore(None).replay() == ({}, 0)


# -- drain --------------------------------------------------------------------


class TestDrain:
    def test_clean_drain_finishes_queued_work(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=4)
        jobs = [queue.submit(JobRequest.from_mapping(
            {"study": mc_document(seed=index)}, client="c"))[0]
            for index in range(2)]
        queue.start()
        assert queue.drain(30.0)
        assert all(queue.get(job.job).state == "done" for job in jobs)

    def test_drain_checkpoints_running_job_as_partial(self, tmp_path):
        # trials high enough that the run outlives a zero-grace drain.
        document = mc_document(fixed={"n_repeaters": 8, "trials": 4000,
                                      "resolution_m": 50.0})
        queue = JobQueue(tmp_path, workers=1)
        queue.start()
        job, _ = queue.submit(JobRequest.from_mapping(
            {"study": document, "shards": 4}, client="c"))
        assert wait_for(lambda: queue.get(job.job).state == "running")
        assert not queue.drain(0.0)
        final = queue.get(job.job)
        assert final.state == "partial"
        assert final.cancel_cause == "drain"


# -- HTTP app (transport-free) ------------------------------------------------


class TestServiceApp:
    @pytest.fixture()
    def app(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=2)
        queue.start()
        yield ServiceApp(queue)
        queue.drain(5.0)

    def submit(self, app, document=MC_DOC, client="c", **options):
        body = json.dumps({"study": document, **options}).encode()
        return app.dispatch("POST", "/jobs", body, client)

    def test_health_and_ready(self, app):
        status, _, payload = app.dispatch("GET", "/healthz", b"", "c")
        assert status == 200 and payload["workers"] == 1
        assert app.dispatch("GET", "/readyz", b"", "c")[0] == 200

    def test_submit_poll_result_lifecycle(self, app):
        status, _, payload = self.submit(app, shards=4)
        assert status == 201 and payload["created"]
        job_id = payload["job"]["job"]
        assert payload["job"]["state"] in ("queued", "running")

        def done():
            code, _, body = app.dispatch(
                "GET", f"/jobs/{job_id}/result", b"", "c")
            return code == 200 and len(body["result"]["rows"]) == 4
        assert wait_for(done)
        status, _, payload = self.submit(app, shards=4)
        assert status == 200 and not payload["created"]

    def test_invalid_body_is_400(self, app):
        assert app.dispatch("POST", "/jobs", b"not json", "c")[0] == 400
        assert app.dispatch("POST", "/jobs", b"[]", "c")[0] == 400
        status, _, payload = self.submit(app, document={"name": "x"})
        assert status == 400 and "error" in payload

    def test_overload_is_429_with_retry_after(self, tmp_path):
        queue = JobQueue(tmp_path / "np", workers=1, max_queue=1,
                         max_per_client=8)  # workers not started
        app = ServiceApp(queue)
        assert self.submit(app, mc_document(seed=1))[0] == 201
        status, headers, payload = self.submit(app, mc_document(seed=2))
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert payload["retry_after_s"] >= 1.0

    def test_unknown_job_is_404(self, app):
        assert app.dispatch("GET", "/jobs/feed", b"", "c")[0] == 404
        assert app.dispatch("GET", "/jobs/feed/result", b"", "c")[0] == 404
        assert app.dispatch("DELETE", "/jobs/feed", b"", "c")[0] == 404

    def test_unrouted_and_misrouted(self, app):
        assert app.dispatch("GET", "/nope", b"", "c")[0] == 404
        status, headers, _ = app.dispatch("DELETE", "/healthz", b"", "c")
        assert status == 405 and "GET" in headers["Allow"]

    def test_cancelled_result_is_410(self, app):
        # Submit against a stopped-worker queue clone is overkill here;
        # cancel a queued job before its worker picks it up by flooding
        # a one-worker queue.
        status, _, payload = self.submit(
            app, mc_document(fixed={"n_repeaters": 8, "trials": 4000,
                                    "resolution_m": 50.0}))
        first = payload["job"]["job"]
        status, _, payload = self.submit(app, mc_document(seed=11))
        second = payload["job"]["job"]
        status, _, _ = app.dispatch("DELETE", f"/jobs/{second}", b"", "c")
        assert status == 200
        assert wait_for(lambda: app.dispatch(
            "GET", f"/jobs/{second}/result", b"", "c")[0] == 410)
        status, _, _ = app.dispatch("DELETE", f"/jobs/{second}", b"", "c")
        assert status == 409

    def test_draining_submit_is_503(self, app):
        app.queue.drain(5.0)
        status, headers, _ = self.submit(app)
        assert status == 503 and "Retry-After" in headers
        assert app.dispatch("GET", "/readyz", b"", "c")[0] == 503

    def test_job_listing(self, app):
        self.submit(app)
        status, _, payload = app.dispatch("GET", "/jobs", b"", "c")
        assert status == 200 and len(payload["jobs"]) == 1
        view = payload["jobs"][0]
        assert view["study"] == "mc-tiny" and view["state"] in JOB_STATES


# -- retention ----------------------------------------------------------------


class TestRetention:
    def test_oldest_terminal_jobs_are_pruned(self, tmp_path):
        queue = JobQueue(tmp_path, workers=1, max_queue=4, retain=1)
        queue.start()
        try:
            first, _ = queue.submit(JobRequest.from_mapping(
                {"study": mc_document(seed=1)}, client="c"))
            wait_terminal(queue, first.job)
            second, _ = queue.submit(JobRequest.from_mapping(
                {"study": mc_document(seed=2)}, client="c"))
            wait_terminal(queue, second.job)
            with pytest.raises(UnknownJobError):
                queue.get(first.job)
            assert queue.get(second.job).state == "done"
        finally:
            queue.drain(5.0)


# -- the `repro serve` CLI ----------------------------------------------------


class TestServeCLI:
    def test_parser_defaults(self):
        from repro.cli import build_serve_parser
        args = build_serve_parser().parse_args([])
        assert args.port == 8765 and args.store is None
        assert args.workers == 2 and args.queue_depth == 8

    def test_bind_failure_is_exit_1(self, capsys):
        from repro.cli import serve_main
        assert serve_main(["--host", "203.0.113.1", "--port", "1"]) == 1
        assert "cannot bind" in capsys.readouterr().err

    def test_sigterm_drains_to_exit_0(self, tmp_path, capsys):
        import os
        import signal as signal_module
        from repro.cli import serve_main

        previous = signal_module.getsignal(signal_module.SIGTERM)
        threading.Timer(
            1.0, lambda: os.kill(os.getpid(),
                                 signal_module.SIGTERM)).start()
        try:
            assert serve_main(["--port", "0", "--store", str(tmp_path),
                               "--workers", "1",
                               "--drain-grace", "5"]) == 0
        finally:
            signal_module.signal(signal_module.SIGTERM, previous)
            signal_module.signal(signal_module.SIGINT,
                                 signal_module.default_int_handler)
        assert "serving on" in capsys.readouterr().err


# -- HTTP server (socket end-to-end) ------------------------------------------


class TestHTTPServer:
    @pytest.fixture()
    def service(self, tmp_path):
        service = ScenarioService("127.0.0.1", 0, tmp_path, workers=1)
        service.start()
        thread = threading.Thread(target=service.serve_forever, daemon=True)
        thread.start()
        yield service
        service.initiate_shutdown()
        thread.join(timeout=15)
        assert not thread.is_alive()

    def call(self, service, method, path, payload=None, client="e2e"):
        import urllib.error
        import urllib.request
        url = f"http://127.0.0.1:{service.port}{path}"
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            url, data=data, method=method, headers={"X-Client-Id": client})
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_full_job_lifecycle_over_http(self, service):
        status, payload = self.call(service, "POST", "/jobs",
                                    {"study": MC_DOC, "shards": 4})
        assert status == 201
        job_id = payload["job"]["job"]

        def done():
            code, body = self.call(service, "GET", f"/jobs/{job_id}/result")
            return code == 200 and len(body["result"]["rows"]) == 4
        assert wait_for(done)
        # The served document matches a direct in-process run row for row.
        _, body = self.call(service, "GET", f"/jobs/{job_id}/result")
        direct = run_study(parse_study(json.dumps(MC_DOC)),
                           shards=4).table.to_document()
        assert body["result"]["rows"] == direct["rows"]

    def test_oversized_body_is_413(self, service):
        import http.client
        connection = http.client.HTTPConnection("127.0.0.1", service.port,
                                                timeout=10)
        try:
            connection.putrequest("POST", "/jobs")
            connection.putheader("Content-Length", str(4 << 20))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()

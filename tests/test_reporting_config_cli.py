"""Tests for reporting helpers, scenario config round-trip, and the CLI."""

import json

import pytest

from repro.config import ScenarioConfig, load_config, save_config
from repro.cli import main
from repro.errors import ConfigurationError
from repro.radio.noise import RepeaterNoiseModel
from repro.reporting.series import series_to_csv, write_csv
from repro.reporting.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in text

    def test_title(self):
        text = format_table(["col"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_column_alignment(self):
        text = format_table(["name", "value"], [["long-name-here", 1], ["x", 22]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2])


class TestSeries:
    def test_csv_content(self):
        csv_text = series_to_csv({"x": [1, 2], "y": [3.0, 4.0]})
        lines = csv_text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,3.0"

    def test_rejects_ragged_columns(self):
        with pytest.raises(ConfigurationError):
            series_to_csv({"x": [1, 2], "y": [3]})

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            series_to_csv({})

    def test_write_creates_dirs(self, tmp_path):
        out = write_csv(tmp_path / "deep" / "nested" / "data.csv", {"x": [1]})
        assert out.exists()


class TestScenarioConfig:
    def test_defaults_match_paper(self):
        config = ScenarioConfig()
        assert config.hp_eirp_dbm == 64.0
        assert config.n_subcarriers == 3300
        assert config.trains_per_hour == 8

    def test_json_round_trip(self):
        config = ScenarioConfig(trains_per_hour=12, lp_eirp_dbm=37.0)
        restored = ScenarioConfig.from_json(config.to_json())
        assert restored == config

    def test_file_round_trip(self, tmp_path):
        config = ScenarioConfig(repeater_noise_model="fronthaul_star")
        path = save_config(config, tmp_path / "scenario.json")
        assert load_config(path) == config

    def test_unknown_keys_rejected(self):
        payload = json.dumps({"not_a_real_key": 1})
        with pytest.raises(ConfigurationError):
            ScenarioConfig.from_json(payload)

    def test_bad_noise_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(repeater_noise_model="telepathy")

    def test_link_params_builder(self):
        config = ScenarioConfig(repeater_noise_model="fronthaul_chain",
                                fronthaul_snr_at_1km_db=30.0)
        link = config.link_params()
        assert link.repeater_noise_model is RepeaterNoiseModel.FRONTHAUL_CHAIN
        assert link.fronthaul.snr_at_1km_db == 30.0

    def test_traffic_params_builder(self):
        config = ScenarioConfig(trains_per_hour=4, train_speed_kmh=160.0)
        traffic = config.traffic_params()
        assert traffic.trains_per_hour == 4
        assert traffic.train.speed_kmh == 160.0

    def test_energy_params_builder(self):
        config = ScenarioConfig(lp_node_spacing_m=250.0)
        energy = config.energy_params()
        assert energy.lp_section_m == 250.0


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "560.00" in out

    def test_run_with_csv(self, tmp_path, capsys):
        assert main(["table3", "--csv", str(tmp_path), "--quiet"]) == 0
        assert (tmp_path / "table3.csv").exists()
        assert capsys.readouterr().out == ""


class TestCliEngineFlags:
    def test_jobs_flag(self, capsys):
        assert main(["fig3", "--jobs", "2", "--quiet"]) == 0

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "profiles"
        assert main(["fig3", "--cache-dir", str(cache_dir), "--quiet"]) == 0
        assert any(cache_dir.iterdir())
        # Second run hits the persisted cache (same experiment, same scenario).
        assert main(["fig3", "--cache-dir", str(cache_dir), "--quiet"]) == 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--jobs", "0"])

    def test_sim_grid_realizations_and_headways(self, tmp_path, capsys):
        assert main(["sim-grid", "--realizations", "2",
                     "--headways", "450,900", "--csv", str(tmp_path),
                     "--quiet"]) == 0
        csv_text = (tmp_path / "sim-grid.csv").read_text()
        assert "450" in csv_text and "900" in csv_text
        # 2 headways x 2 trains/day defaults x 3 policies = 12 rows + header.
        assert len(csv_text.strip().splitlines()) == 13

    def test_rejects_bad_realizations(self):
        with pytest.raises(SystemExit):
            main(["sim-grid", "--realizations", "0"])

    def test_rejects_bad_headways(self):
        with pytest.raises(SystemExit):
            main(["sim-grid", "--headways", "450,-1"])

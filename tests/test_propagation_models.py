"""Tests for path-loss model family, penetration loss, fronthaul, fading."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.propagation.fading import LogNormalShadowing
from repro.propagation.fronthaul import (
    FronthaulBudget,
    FronthaulParams,
    FronthaulTopology,
)
from repro.propagation.pathloss import (
    DualSlopeModel,
    FreeSpaceModel,
    LogDistanceModel,
    PathLossModel,
)
from repro.propagation.penetration import (
    WINDOW_PRESETS,
    PenetrationLoss,
    WagonWindowType,
    effective_calibration_db,
)


class TestPathLossModels:
    def test_free_space_satisfies_protocol(self):
        assert isinstance(FreeSpaceModel(3.5e9), PathLossModel)

    def test_log_distance_exponent_2_equals_free_space(self):
        fs = FreeSpaceModel(3.5e9)
        ld = LogDistanceModel(3.5e9, exponent=2.0)
        for d in (10.0, 100.0, 1000.0):
            assert ld.path_loss_db(d) == pytest.approx(fs.path_loss_db(d), abs=1e-9)

    def test_higher_exponent_more_loss(self):
        n2 = LogDistanceModel(3.5e9, exponent=2.0)
        n4 = LogDistanceModel(3.5e9, exponent=4.0)
        assert n4.path_loss_db(100.0) > n2.path_loss_db(100.0)

    def test_log_distance_custom_reference(self):
        model = LogDistanceModel(3.5e9, exponent=3.0, reference_m=10.0,
                                 reference_loss_db=70.0)
        assert model.path_loss_db(10.0) == pytest.approx(70.0)
        assert model.path_loss_db(100.0) == pytest.approx(100.0)

    def test_log_distance_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            LogDistanceModel(3.5e9, exponent=0.0)

    def test_dual_slope_continuous_at_breakpoint(self):
        model = DualSlopeModel(3.5e9, breakpoint_m=300.0)
        just_below = model.path_loss_db(299.999)
        just_above = model.path_loss_db(300.001)
        assert just_above == pytest.approx(just_below, abs=0.01)

    def test_dual_slope_steeper_beyond_breakpoint(self):
        model = DualSlopeModel(3.5e9, breakpoint_m=300.0, exponent_near=2.0,
                               exponent_far=4.0)
        delta_near = model.path_loss_db(200.0) - model.path_loss_db(100.0)
        delta_far = model.path_loss_db(1200.0) - model.path_loss_db(600.0)
        assert delta_near == pytest.approx(6.02, abs=0.05)
        assert delta_far == pytest.approx(12.04, abs=0.05)

    def test_dual_slope_rejects_bad_breakpoint(self):
        with pytest.raises(ConfigurationError):
            DualSlopeModel(3.5e9, breakpoint_m=0.0)


class TestPenetration:
    def test_coated_worse_than_uncoated(self):
        coated = WINDOW_PRESETS[WagonWindowType.COATED_LOW_E].loss_db(3.5e9)
        uncoated = WINDOW_PRESETS[WagonWindowType.UNCOATED].loss_db(3.5e9)
        assert coated > uncoated + 15.0

    def test_fss_recovers_most_of_uncoated(self):
        fss = WINDOW_PRESETS[WagonWindowType.FSS_TREATED].loss_db(3.5e9)
        coated = WINDOW_PRESETS[WagonWindowType.COATED_LOW_E].loss_db(3.5e9)
        assert fss < coated - 10.0

    def test_loss_grows_with_frequency(self):
        preset = WINDOW_PRESETS[WagonWindowType.COATED_LOW_E]
        assert preset.loss_db(6.0e9) > preset.loss_db(2.0e9)

    def test_loss_clamped_at_zero(self):
        model = PenetrationLoss(loss_at_ref_db=1.0, slope_db_per_octave=2.0)
        assert model.loss_db(1e8) == 0.0

    def test_rejects_negative_loss(self):
        with pytest.raises(ConfigurationError):
            PenetrationLoss(loss_at_ref_db=-5.0)

    def test_rejects_zero_frequency_query(self):
        with pytest.raises(ConfigurationError):
            PenetrationLoss(5.0).loss_db(0.0)

    def test_effective_calibration_coated_is_harsher(self):
        base = 33.0
        coated = effective_calibration_db(base, WagonWindowType.COATED_LOW_E, 3.5e9)
        assert coated > base

    def test_effective_calibration_identity_for_treated(self):
        base = 33.0
        same = effective_calibration_db(base, WagonWindowType.FSS_TREATED, 3.5e9)
        assert same == pytest.approx(base)


class TestFronthaul:
    def test_snr_at_reference(self):
        budget = FronthaulBudget(FronthaulParams(snr_at_1km_db=33.0))
        assert 10 * np.log10(budget.snr_linear_at(1000.0)) == pytest.approx(33.0)

    def test_snr_inverse_square(self):
        budget = FronthaulBudget(FronthaulParams(snr_at_1km_db=33.0))
        assert 10 * np.log10(budget.snr_linear_at(500.0)) == pytest.approx(39.02, abs=0.01)

    def test_star_output_equals_direct(self):
        budget = FronthaulBudget(FronthaulParams(snr_at_1km_db=30.0))
        direct = budget.snr_linear_at([400.0, 800.0])
        out = budget.output_snr_linear([400.0, 800.0])
        assert np.allclose(direct, out)

    def test_chain_accumulates_noise(self):
        params = FronthaulParams(snr_at_1km_db=33.0, topology=FronthaulTopology.CHAIN)
        budget = FronthaulBudget(params)
        one_hop = budget.chain_output_snr_linear([500.0], [0], 200.0)
        three_hops = budget.chain_output_snr_linear([500.0], [2], 200.0)
        assert three_hops[0] < one_hop[0]

    def test_chain_rejects_negative_hops(self):
        budget = FronthaulBudget(FronthaulParams(topology=FronthaulTopology.CHAIN))
        with pytest.raises(ConfigurationError):
            budget.chain_output_snr_linear([500.0], [-1], 200.0)

    def test_star_refuses_chain_api_mix(self):
        params = FronthaulParams(topology=FronthaulTopology.CHAIN)
        with pytest.raises(ConfigurationError):
            FronthaulBudget(params).output_snr_linear([100.0])

    def test_rejects_sub6_fronthaul(self):
        with pytest.raises(ConfigurationError):
            FronthaulParams(mmwave_frequency_hz=3.5e9)

    @given(st.floats(min_value=10.0, max_value=5000.0))
    def test_snr_decreases_with_distance(self, d):
        budget = FronthaulBudget(FronthaulParams(snr_at_1km_db=33.0))
        assert budget.snr_linear_at(d * 2) < budget.snr_linear_at(d)


class TestShadowing:
    def test_zero_sigma_gives_zeros(self):
        model = LogNormalShadowing(sigma_db=0.0)
        rng = np.random.default_rng(1)
        out = model.sample(np.arange(0.0, 100.0, 10.0), rng)
        assert np.all(out == 0.0)

    def test_deterministic_given_seed(self):
        model = LogNormalShadowing(sigma_db=4.0)
        pos = np.arange(0.0, 500.0, 5.0)
        a = model.sample(pos, np.random.default_rng(7))
        b = model.sample(pos, np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_empirical_std_close_to_sigma(self):
        model = LogNormalShadowing(sigma_db=4.0, decorrelation_m=50.0)
        rng = np.random.default_rng(0)
        samples = np.concatenate([
            model.sample(np.arange(0.0, 2000.0, 10.0), rng) for _ in range(30)])
        assert np.std(samples) == pytest.approx(4.0, rel=0.15)

    def test_correlation_decays(self):
        model = LogNormalShadowing(sigma_db=4.0, decorrelation_m=50.0)
        rng = np.random.default_rng(3)
        traces = np.array([model.sample(np.array([0.0, 10.0, 500.0]), rng)
                           for _ in range(4000)])
        corr_near = np.corrcoef(traces[:, 0], traces[:, 1])[0, 1]
        corr_far = np.corrcoef(traces[:, 0], traces[:, 2])[0, 1]
        assert corr_near > 0.7
        assert abs(corr_far) < 0.1

    def test_rejects_unsorted_positions(self):
        model = LogNormalShadowing()
        with pytest.raises(ConfigurationError):
            model.sample(np.array([10.0, 5.0]), np.random.default_rng(0))

    def test_rejects_empty_positions(self):
        model = LogNormalShadowing()
        with pytest.raises(ConfigurationError):
            model.sample(np.array([]), np.random.default_rng(0))

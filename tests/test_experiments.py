"""Tests for the experiment runners (one per table/figure) and the registry."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ConfigurationError
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.maxisd import run_maxisd
from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3()

    def test_scenario_matches_paper(self, result):
        assert result.layout.isd_m == 2400.0
        assert result.layout.n_repeaters == 8

    def test_min_snr_sustains_peak(self, result):
        assert result.profile.min_snr_db > 29.30

    def test_hp_crossing_in_first_segment_half(self, result):
        # Paper narrative: HP signal drops below -100 dBm well before the
        # first repeater's coverage peak.
        assert 200.0 < result.hp_below_100dbm_after_m < 500.0

    def test_series_columns(self, result):
        series = result.series()
        assert "position_m" in series and "total_signal_dbm" in series
        assert "repeater_8_dbm" in series
        lengths = {len(v) for v in series.values()}
        assert len(lengths) == 1

    def test_table_renders(self, result):
        text = result.table()
        assert "Fig. 3" in text and "min SNR" in text


class TestMaxIsd:
    @pytest.fixture(scope="class")
    def result(self):
        return run_maxisd(resolution_m=4.0)

    def test_ten_entries(self, result):
        assert len(result.model_list) == 10

    def test_total_error_bounded(self, result):
        assert result.total_abs_error_m <= 1300.0

    def test_head_exact(self, result):
        assert result.model_list[:4] == list(constants.PAPER_MAX_ISD_M[:4])

    def test_table_and_series(self, result):
        assert "Max ISD" in result.table()
        series = result.series()
        assert series["paper_max_isd_m"] == list(constants.PAPER_MAX_ISD_M)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4()

    def test_headline_savings(self, result):
        assert 100 * result.row_for(1).sleep_savings == pytest.approx(57.0, abs=0.5)
        assert 100 * result.row_for(10).sleep_savings == pytest.approx(74.0, abs=0.5)
        assert 100 * result.row_for(10).solar_savings == pytest.approx(79.0, abs=0.5)

    def test_eleven_rows(self, result):
        assert len(result.rows) == 11  # conventional + N=1..10

    def test_unknown_row_raises(self, result):
        with pytest.raises(KeyError):
            result.row_for(42)

    def test_series_consistent(self, result):
        series = result.series()
        assert len(series["n_repeaters"]) == 11
        assert series["isd_m"][0] == 500.0

    def test_model_derived_variant(self):
        custom = run_fig4(isd_by_n={1: 1250.0, 2: 1450.0})
        assert len(custom.rows) == 3
        assert custom.isd_source == "model-derived"


class TestTables:
    def test_table1_totals(self):
        result = run_table1()
        assert result.sleep_w == pytest.approx(4.72)
        assert result.no_load_w == pytest.approx(24.26, abs=0.01)
        assert result.full_load_tdd_w == pytest.approx(28.38, abs=0.4)
        assert "Table I" in result.table()

    def test_table2_site_powers(self):
        result = run_table2()
        assert result.hp_site_full_w == pytest.approx(560.0)
        assert result.hp_site_no_load_w == pytest.approx(336.0)
        assert result.hp_site_sleep_w == pytest.approx(224.0)
        assert result.repeater_energy_share_of_site == pytest.approx(0.0507, abs=0.001)

    def test_table3_duty_cycles(self):
        result = run_table3()
        assert 100 * result.duty_at_500m == pytest.approx(2.85, abs=0.01)
        assert 100 * result.duty_at_2650m == pytest.approx(9.66, abs=0.01)
        assert result.full_load_s_at_500m == pytest.approx(16.2, abs=0.1)
        assert result.full_load_s_at_2650m == pytest.approx(54.9, abs=0.1)
        assert result.lp_sleeping_avg_w == pytest.approx(5.17, abs=0.01)
        assert result.lp_sleeping_wh_per_day == pytest.approx(124.1, abs=0.1)

    def test_table4_configs_match_paper(self):
        result = run_table4()
        s = result.sizings
        assert (s["madrid"].pv_peak_w, s["madrid"].battery_capacity_wh) == (540.0, 720.0)
        assert (s["lyon"].pv_peak_w, s["lyon"].battery_capacity_wh) == (540.0, 720.0)
        assert (s["vienna"].pv_peak_w, s["vienna"].battery_capacity_wh) == (540.0, 1440.0)
        assert (s["berlin"].pv_peak_w, s["berlin"].battery_capacity_wh) == (600.0, 1440.0)

    def test_table4_ordering(self):
        result = run_table4()
        assert result.full_days_ordering() == ["madrid", "lyon", "vienna", "berlin"]

    def test_table4_full_days_close_to_paper(self):
        result = run_table4()
        for key, sizing in result.sizings.items():
            paper = constants.PAPER_FULL_BATTERY_DAYS_PCT[key]
            assert sizing.result.full_battery_days_pct == pytest.approx(paper, abs=2.5), key


class TestRunner:
    def test_registry_contains_all_artifacts(self):
        for eid in ("fig3", "fig4", "maxisd", "table1", "table2", "table3", "table4"):
            assert eid in ALL_EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_run_with_csv_output(self, tmp_path):
        run_experiment("table3", output_dir=tmp_path)
        csv_file = tmp_path / "table3.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert "isd_m" in header

    def test_run_all_subset(self, tmp_path):
        results = run_all(output_dir=tmp_path, ids=["table2", "table3"])
        assert set(results) == {"table2", "table3"}
        assert (tmp_path / "table2.csv").exists()


class TestRunnerKwargs:
    def test_progress_callback_invoked(self):
        seen = []
        run_all(ids=["table2", "table3"],
                progress=lambda i, total, eid: seen.append((i, total, eid)))
        assert seen == [(1, 2, "table2"), (2, 2, "table3")]

    def test_kwargs_forwarded_to_runner(self):
        # fig3 accepts resolution_m; a coarser grid halves the series length.
        fine = run_experiment("fig3")
        coarse = run_experiment("fig3", resolution_m=2.0)
        assert coarse.profile.positions_m.size < fine.profile.positions_m.size

    def test_unaccepted_kwargs_dropped(self):
        # table2 takes no engine options; they must be ignored, not raise.
        result = run_experiment("table2", jobs=2, cache=None)
        assert hasattr(result, "table")

    def test_engine_options_reach_sweep(self, tmp_path):
        from repro.scenario import ProfileCache

        cache = ProfileCache(maxsize=512, cache_dir=tmp_path)
        run_experiment("maxisd", resolution_m=8.0, cache=cache)
        assert cache.misses > 0
        assert any(tmp_path.iterdir())

    def test_typo_kwargs_raise(self):
        with pytest.raises(ConfigurationError):
            run_experiment("maxisd", exhuastive=True)  # typo'd override

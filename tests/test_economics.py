"""Tests for the deployment cost model."""

import pytest

from repro.corridor.deployment import CorridorDeployment
from repro.economics.costmodel import (
    CostAssumptions,
    corridor_cost,
    retrofit_payback_years,
)
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError


class TestCorridorCost:
    def test_conventional_dominated_by_masts(self):
        cost = corridor_cost(CorridorDeployment.conventional(), corridor_km=100.0)
        # 200 masts x 120k = 24M plus fiber 3M.
        assert cost.capex == pytest.approx(200 * 120_000 + 100 * 30_000)

    def test_repeater_deployment_cheaper_capex(self):
        conventional = corridor_cost(CorridorDeployment.conventional(),
                                     corridor_km=100.0)
        extended = corridor_cost(CorridorDeployment.with_repeaters(2650.0, 10),
                                 corridor_km=100.0)
        assert extended.capex < conventional.capex

    def test_energy_opex_tracks_energy_model(self):
        assumptions = CostAssumptions()
        cost = corridor_cost(CorridorDeployment.conventional(), corridor_km=100.0,
                             horizon_years=1.0, assumptions=assumptions)
        # 467.2 W/km x 100 km x 8760 h = 409.3 MWh -> x 0.25 EUR/kWh.
        assert cost.energy_opex == pytest.approx(409_300 * 0.25, rel=0.01)

    def test_solar_mode_buys_pv_but_cuts_energy(self):
        deployment = CorridorDeployment.with_repeaters(2650.0, 10)
        sleep = corridor_cost(deployment, OperatingMode.SLEEP, corridor_km=100.0)
        solar = corridor_cost(deployment, OperatingMode.SOLAR, corridor_km=100.0)
        assert solar.capex > sleep.capex          # PV systems purchased
        assert solar.energy_opex < sleep.energy_opex

    def test_total_and_per_km(self):
        cost = corridor_cost(CorridorDeployment.conventional(), corridor_km=50.0,
                             horizon_years=10.0)
        assert cost.total == pytest.approx(cost.capex + cost.opex)
        assert cost.per_km_per_year == pytest.approx(cost.total / 500.0)

    def test_discounting_reduces_opex(self):
        plain = corridor_cost(CorridorDeployment.conventional(), corridor_km=10.0,
                              horizon_years=10.0)
        discounted = corridor_cost(
            CorridorDeployment.conventional(), corridor_km=10.0, horizon_years=10.0,
            assumptions=CostAssumptions(discount_rate=0.05))
        assert discounted.opex < plain.opex
        assert discounted.capex == plain.capex

    def test_ten_year_total_favors_repeaters(self):
        conventional = corridor_cost(CorridorDeployment.conventional(),
                                     corridor_km=100.0, horizon_years=10.0)
        extended = corridor_cost(CorridorDeployment.with_repeaters(2650.0, 10),
                                 OperatingMode.SLEEP, corridor_km=100.0,
                                 horizon_years=10.0)
        assert extended.total < conventional.total

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            corridor_cost(CorridorDeployment.conventional(), corridor_km=0.0)
        with pytest.raises(ConfigurationError):
            CostAssumptions(energy_price_per_kwh=-1.0)
        with pytest.raises(ConfigurationError):
            CostAssumptions(discount_rate=1.5)


class TestPayback:
    def test_green_field_pays_back_immediately(self):
        # The repeater corridor is cheaper to build AND to run.
        payback = retrofit_payback_years(CorridorDeployment.with_repeaters(2650.0, 10))
        assert payback == 0.0

    def test_expensive_repeaters_still_pay_back(self):
        # A 6x repeater price premium makes the build dearer than the
        # conventional corridor, but the OPEX savings repay it within years.
        assumptions = CostAssumptions(repeater_capex=50_000.0,
                                      donor_capex=50_000.0)
        payback = retrofit_payback_years(
            CorridorDeployment.with_repeaters(2650.0, 10), assumptions=assumptions)
        assert 0.0 < payback < 20.0

    def test_never_pays_back_when_opex_higher(self):
        # Free energy makes the (higher-maintenance) proposal unpayable.
        assumptions = CostAssumptions(energy_price_per_kwh=0.0,
                                      repeater_capex=300_000.0,
                                      lp_maintenance_per_year=10_000.0)
        payback = retrofit_payback_years(
            CorridorDeployment.with_repeaters(2650.0, 10), assumptions=assumptions)
        assert payback == float("inf")

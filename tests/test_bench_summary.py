"""Tests for the benchmark-artifact summarizer (repro.reporting.bench).

The summarizer folds the per-gate ``BENCH_*.json`` records the benchmark
suite emits into one deterministic ``BENCH_summary.json``; CI runs it via
``tools/bench_summary.py`` before uploading the artifact directory.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.reporting.bench import (
    SUMMARY_NAME,
    collect_records,
    merge_records,
    summarize_directory,
)


def _write(directory, name, payload):
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


@pytest.fixture
def bench_dir(tmp_path):
    _write(tmp_path, "mc", {
        "grid": {"candidates": 20, "trials": 500},
        "scalar_s": 2.0, "batched_s": 0.1,
        "speedup": 20.0, "threshold": 10.0,
    })
    _write(tmp_path, "backend", {
        "mc": {"reference_s": 0.15, "fused_s": 0.05,
               "speedup": 3.0, "threshold": 3.0},
    })
    return tmp_path


class TestCollect:
    def test_reads_all_records_and_skips_summary(self, bench_dir):
        (bench_dir / SUMMARY_NAME).write_text("{}")
        records = collect_records(bench_dir)
        assert sorted(records) == ["backend", "mc"]
        assert records["mc"]["speedup"] == 20.0

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such"):
            collect_records(tmp_path / "nope")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no BENCH_"):
            collect_records(tmp_path)

    def test_corrupt_record_rejected(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("not json")
        with pytest.raises(ConfigurationError, match="invalid"):
            collect_records(tmp_path)


class TestMerge:
    def test_gates_found_at_any_depth(self, bench_dir):
        summary = merge_records(collect_records(bench_dir))
        rows = [(g["benchmark"], g["gate"], g["speedup"], g["passed"])
                for g in summary["gates"]]
        assert rows == [
            ("backend", "mc", 3.0, True),   # nested one level down
            ("mc", "mc", 20.0, True),       # top-level record
        ]

    def test_failed_gate_flagged(self, tmp_path):
        _write(tmp_path, "slow", {"speedup": 1.2, "threshold": 2.0})
        summary = merge_records(collect_records(tmp_path))
        gate, = summary["gates"]
        assert gate["passed"] is False
        assert gate["enforced"] is True

    def test_unenforced_gate_is_advisory(self, tmp_path):
        # e.g. the pool-speedup gate on a machine too small to show it.
        _write(tmp_path, "pool", {"speedup": 0.7, "threshold": 2.0,
                                  "enforced": False})
        gate, = merge_records(collect_records(tmp_path))["gates"]
        assert gate["enforced"] is False
        assert gate["passed"] is True


class TestSummarize:
    def test_deterministic_bytes(self, bench_dir):
        first = summarize_directory(bench_dir).read_bytes()
        second = summarize_directory(bench_dir).read_bytes()
        assert first == second
        document = json.loads(first)
        assert sorted(document["benchmarks"]) == ["backend", "mc"]
        assert all(g["passed"] for g in document["gates"])

    def test_explicit_output_path(self, bench_dir, tmp_path):
        out = tmp_path / "deep" / "sum.json"
        assert summarize_directory(bench_dir, output=out) == out
        assert out.exists()

    def test_cli_wrapper_exit_codes(self, bench_dir, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "bench_summary",
            Path(__file__).resolve().parents[1] / "tools" / "bench_summary.py")
        cli = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cli)

        assert cli.main([str(bench_dir)]) == 0
        assert "[ok]" in capsys.readouterr().out
        _write(bench_dir, "slow", {"speedup": 1.0, "threshold": 2.0})
        assert cli.main([str(bench_dir)]) == 1
        assert "[FAIL]" in capsys.readouterr().out
        assert cli.main([str(tmp_path / "missing")]) == 2

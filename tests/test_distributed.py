"""Distributed study execution (ISSUE-10): shards, manifests, merge, refresh.

Pins the tentpole contracts of :mod:`repro.study.distributed` and
:mod:`repro.study.manifest`:

* a signed manifest round-trips bit-exactly and any post-signing edit is
  rejected on load;
* any K-worker round-robin split of the shard layout, merged back through
  ``merge_manifests``, is bit-identical (NaN-aware) to a single-machine
  run — including uneven slices and empty slices (more workers than
  shards);
* the merge refuses overlapping, incomplete, stale, mixed-backend and
  tampered shard sets with structured errors naming the violated rule;
* ``refresh_study`` re-executes exactly the hash-changed case set of an
  updated spec and reuses everything else verbatim;
* the ``corrupt_manifest`` fault action tears a manifest mid-run and the
  damage surfaces at merge time as a signature failure (CLI exit 4).
"""

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError, ManifestError, MergeValidationError
from repro.faults import FaultPlan, FaultSpec
from repro.study import (
    RunJournal,
    StudyStore,
    build_manifest,
    case_fingerprint,
    load_manifest,
    merge_manifests,
    parse_study,
    read_journal,
    refresh_study,
    run_shard_slice,
    run_study,
    shard_ranges,
    slice_shards,
    write_manifest,
)
from repro.study.manifest import default_manifest_name, sign_payload

MC_TEXT = """
name: mc-dist
engine: mc
seed: 11
axes:
  sigma_db: [2.0, 4.0]
  isd_m: [2000.0, 2400.0]
fixed:
  n_repeaters: 8
  trials: 12
  resolution_m: 50.0
"""

MC_TEXT_V2 = MC_TEXT.replace("[2.0, 4.0]", "[2.0, 4.0, 6.0]")


def mc_spec():
    return parse_study(MC_TEXT)


def same_value(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def assert_tables_identical(a, b):
    wide_a, wide_b = a.wide(), b.wide()
    assert list(wide_a) == list(wide_b)
    for column in wide_a:
        assert len(wide_a[column]) == len(wide_b[column])
        for x, y in zip(wide_a[column], wide_b[column]):
            assert same_value(x, y), (column, x, y)


def run_split(spec, tmp_path, workers, shards=None, **kwargs):
    """Run every slice of a ``workers``-way split; return the manifests."""
    manifests = []
    for worker in range(workers):
        store = StudyStore(maxsize=8,
                           cache_dir=tmp_path / f"worker{worker}")
        slice_run = run_shard_slice(spec, worker, workers, store,
                                    shards=shards, **kwargs)
        manifests.append(slice_run.manifest_path)
    return manifests


# -- slice_shards -------------------------------------------------------------


class TestSliceShards:
    @pytest.mark.parametrize("shard_count,of", [(4, 1), (4, 2), (5, 3),
                                                (3, 7), (16, 4)])
    def test_round_robin_partitions_the_layout(self, shard_count, of):
        slices = [slice_shards(shard_count, k, of) for k in range(of)]
        flat = [i for indices in slices for i in indices]
        assert sorted(flat) == list(range(shard_count))  # disjoint + total
        for k, indices in enumerate(slices):
            assert all(i % of == k for i in indices)

    def test_more_workers_than_shards_yields_empty_slices(self):
        assert slice_shards(2, 2, 5) == []
        assert slice_shards(2, 0, 5) == [0]

    @pytest.mark.parametrize("args", [(4, 0, 0), (4, 2, 2), (4, -1, 3),
                                      (0, 0, 1)])
    def test_invalid_split_rejected(self, args):
        with pytest.raises(ConfigurationError):
            slice_shards(*args)


# -- manifests ----------------------------------------------------------------


class TestManifest:
    def slice_manifest(self, tmp_path):
        spec = mc_spec()
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "w0")
        return spec, run_shard_slice(spec, 0, 2, store, shards=4,
                                     journal=RunJournal(None))

    def test_round_trip_is_bit_exact(self, tmp_path):
        spec, slice_run = self.slice_manifest(tmp_path)
        loaded = load_manifest(slice_run.manifest_path)
        assert loaded == slice_run.manifest
        assert loaded.compute_hash == spec.compute_hash
        assert loaded.shard_indices() == (0, 2)
        assert loaded.layout == tuple(shard_ranges(4, 4))

    def test_default_name_embeds_hash_and_position(self, tmp_path):
        spec, slice_run = self.slice_manifest(tmp_path)
        name = default_manifest_name(spec, 0, 2)
        assert slice_run.manifest_path.name == name
        assert spec.compute_hash[:40] in name
        assert name.endswith(".json")  # outside the *.npz store namespace

    def test_any_payload_edit_fails_the_signature(self, tmp_path):
        _, slice_run = self.slice_manifest(tmp_path)
        document = json.loads(slice_run.manifest_path.read_text())
        document["manifest"]["shards"][0]["checksum"] = "0" * 64
        slice_run.manifest_path.write_text(json.dumps(document))
        with pytest.raises(ManifestError, match="signature"):
            load_manifest(slice_run.manifest_path)

    def test_torn_write_rejected(self, tmp_path):
        _, slice_run = self.slice_manifest(tmp_path)
        text = slice_run.manifest_path.read_text()
        slice_run.manifest_path.write_text(text[:len(text) // 2])
        with pytest.raises(ManifestError):
            load_manifest(slice_run.manifest_path)

    def test_unknown_and_missing_payload_keys_rejected(self, tmp_path):
        _, slice_run = self.slice_manifest(tmp_path)
        document = json.loads(slice_run.manifest_path.read_text())
        payload = document["manifest"]
        payload["surprise"] = 1
        del payload["seed_mode"]
        document["signature"] = sign_payload(payload)  # re-signed edit
        slice_run.manifest_path.write_text(json.dumps(document))
        with pytest.raises(ManifestError, match="keys mismatch"):
            load_manifest(slice_run.manifest_path)

    def test_manifest_never_attests_missing_bundles(self, tmp_path):
        spec = mc_spec()
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "w0")
        layout = shard_ranges(spec.case_count, 4)
        with pytest.raises(ManifestError, match="missing from the store"):
            build_manifest(spec, store, layout, [0], worker=0, of=2,
                           backend="numpy")


# -- merge parity -------------------------------------------------------------


class TestMergeParity:
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_any_split_merges_bit_identical_to_inline(self, tmp_path,
                                                      workers):
        spec = mc_spec()
        inline = run_study(spec, shards=4, journal=RunJournal(None))
        manifests = run_split(spec, tmp_path, workers, shards=4,
                              journal=RunJournal(None))
        out_store = StudyStore(maxsize=8, cache_dir=tmp_path / "merged")
        report = merge_manifests(spec, manifests, out_store=out_store)
        assert_tables_identical(report.table, inline.table)
        assert report.backend == report.manifests[0].backend
        assert 0 in report.crn_cases
        assert spec.case_count - 1 in max(
            [report.crn_cases], key=len)  # ends always sampled

    def test_uneven_layout_merges_bit_identical(self, tmp_path):
        # 4 cases over 3 shards: ranges (2, 1, 1) — uneven by design.
        spec = mc_spec()
        inline = run_study(spec, shards=3, journal=RunJournal(None))
        manifests = run_split(spec, tmp_path, 2, shards=3,
                              journal=RunJournal(None))
        report = merge_manifests(spec, manifests)
        assert_tables_identical(report.table, inline.table)

    def test_merged_store_is_resumable_inline(self, tmp_path):
        spec = mc_spec()
        manifests = run_split(spec, tmp_path, 2, shards=4,
                              journal=RunJournal(None))
        out_store = StudyStore(maxsize=8, cache_dir=tmp_path / "merged")
        merge_manifests(spec, manifests, out_store=out_store)
        # The merged store is a normal single-machine store: a resume
        # reuses every shard and computes nothing.
        resumed = run_study(spec, shards=4, store=out_store,
                            journal=RunJournal(None))
        assert resumed.computed_shards == 0 and resumed.reused_shards == 4

    def test_merge_journal_replays_worker_provenance(self, tmp_path):
        spec = mc_spec()
        manifests = run_split(spec, tmp_path, 2, shards=4)
        out_store = StudyStore(maxsize=8, cache_dir=tmp_path / "merged")
        report = merge_manifests(spec, manifests, out_store=out_store)
        events = read_journal(out_store.cache_dir / "merge.jsonl")
        kinds = [event["event"] for event in events]
        assert kinds[0] == "merge_start" and kinds[-1] == "merge_end"
        assert kinds.count("worker_replay") == 2
        assert kinds.count("merge_crn_check") == 1
        # The workers' run.jsonl lifecycles were replayed verbatim.
        assert kinds.count("run_start") == 2
        assert report.replayed_events == kinds.count("run_start") + \
            kinds.count("run_end") + kinds.count("submit") + \
            kinds.count("finish") + kinds.count("manifest")


# -- merge rejection ----------------------------------------------------------


class TestMergeRejection:
    def split(self, tmp_path, workers=2, spec=None):
        spec = spec or mc_spec()
        return spec, run_split(spec, tmp_path, workers, shards=4,
                               journal=RunJournal(None))

    def kind_of(self, excinfo) -> str:
        return excinfo.value.kind

    def test_stale_spec_hash_rejected(self, tmp_path):
        spec, manifests = self.split(tmp_path)
        updated = parse_study(MC_TEXT.replace("seed: 11", "seed: 12"))
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(updated, manifests)
        assert self.kind_of(excinfo) == "spec_hash"

    def test_disagreeing_layouts_rejected(self, tmp_path):
        spec = mc_spec()
        store0 = StudyStore(maxsize=8, cache_dir=tmp_path / "w0")
        store1 = StudyStore(maxsize=8, cache_dir=tmp_path / "w1")
        a = run_shard_slice(spec, 0, 2, store0, shards=2,
                            journal=RunJournal(None))
        b = run_shard_slice(spec, 1, 2, store1, shards=4,
                            journal=RunJournal(None))
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, [a.manifest_path, b.manifest_path])
        assert self.kind_of(excinfo) == "layout"

    def test_resigned_range_edit_rejected_by_layout_check(self, tmp_path):
        # A correctly *re-signed* manifest whose shard entry lies about
        # its case range: the signature passes, the layout rule does not —
        # the seal is tamper evidence, not the only line of defence.
        spec, manifests = self.split(tmp_path)
        document = json.loads(manifests[0].read_text())
        document["manifest"]["shards"][0]["stop"] += 1
        document["signature"] = sign_payload(document["manifest"])
        manifests[0].write_text(json.dumps(document))
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, manifests)
        assert self.kind_of(excinfo) == "layout"

    def test_overlapping_claims_rejected(self, tmp_path):
        spec, manifests = self.split(tmp_path)
        # Forge a third worker claiming shard 0 — already owned by
        # worker 0 — from worker 0's own (valid) bundles.
        store0 = StudyStore(maxsize=8, cache_dir=tmp_path / "worker0")
        layout = shard_ranges(spec.case_count, 4)
        forged = build_manifest(spec, store0, layout, [0], worker=2, of=2,
                                backend=load_manifest(manifests[0]).backend)
        forged_path = write_manifest(forged, tmp_path / "worker0"
                                     / "forged.json")
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, [*manifests, forged_path])
        assert self.kind_of(excinfo) == "overlap"

    def test_missing_coverage_rejected(self, tmp_path):
        spec, manifests = self.split(tmp_path)
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, manifests[:1])  # worker 1 never arrived
        assert self.kind_of(excinfo) == "missing"
        assert excinfo.value.details["shards"] == [1, 3]

    def test_mixed_backends_rejected(self, tmp_path):
        spec, manifests = self.split(tmp_path)
        original = load_manifest(manifests[1])
        rebadged = replace(original, backend="reference")
        write_manifest(rebadged, manifests[1])
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, manifests)
        assert self.kind_of(excinfo) == "backend"

    def test_context_backend_mismatch_rejected(self, tmp_path):
        spec, manifests = self.split(tmp_path)
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, manifests,
                            context={"backend": "reference"})
        assert self.kind_of(excinfo) == "backend"

    def test_tampered_bundle_rejected(self, tmp_path):
        spec, manifests = self.split(tmp_path)
        bundles = sorted((tmp_path / "worker1").glob("*.npz"))
        bundles[0].write_bytes(b"PK\x03\x04torn")
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, manifests)
        assert self.kind_of(excinfo) == "checksum"

    def test_crn_divergence_rejected(self, tmp_path):
        # The nastiest case: a worker whose bundle is internally
        # consistent (valid checksum, honestly re-attested manifest) but
        # whose *values* differ from what this machine computes — e.g. a
        # subtly different environment.  Only the inline CRN spot-check
        # can catch it.
        spec, manifests = self.split(tmp_path)
        store0 = StudyStore(maxsize=8, cache_dir=tmp_path / "worker0")
        start, stop = shard_ranges(spec.case_count, 4)[0]
        raw = dict(store0.get_shard(spec, start, stop))
        raw["outage_probability"] = np.array(raw["outage_probability"],
                                             dtype=float) + 0.25
        store0.put_shard(spec, start, stop, raw)
        layout = shard_ranges(spec.case_count, 4)
        honest = build_manifest(
            spec, store0, layout, [0, 2], worker=0, of=2,
            backend=load_manifest(manifests[0]).backend)
        write_manifest(honest, manifests[0])
        with pytest.raises(MergeValidationError) as excinfo:
            merge_manifests(spec, manifests, crn_sample=spec.case_count)
        assert self.kind_of(excinfo) == "crn"
        assert excinfo.value.details["worker"] == 0

    def test_no_manifests_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_manifests(mc_spec(), [])


# -- rolling re-evaluation ----------------------------------------------------


class TestRefresh:
    def test_refresh_recomputes_exactly_the_changed_cases(self, tmp_path):
        spec = mc_spec()
        updated = parse_study(MC_TEXT_V2)
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store, journal=RunJournal(None))

        report = refresh_study(updated, spec, store,
                               journal=RunJournal(None))
        previous_prints = {case_fingerprint(spec, i, case)
                           for i, case in enumerate(spec.cases())}
        expected = tuple(
            i for i, case in enumerate(updated.cases())
            if case_fingerprint(updated, i, case) not in previous_prints)
        assert report.changed == expected
        assert 0 < len(report.changed) < updated.case_count
        assert report.reused == updated.case_count - len(report.changed)

        fresh = run_study(updated, journal=RunJournal(None))
        assert_tables_identical(report.table, fresh.table)

    def test_refresh_of_unchanged_spec_recomputes_nothing(self, tmp_path):
        spec = mc_spec()
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store, journal=RunJournal(None))
        report = refresh_study(spec, spec, store, journal=RunJournal(None))
        assert report.changed == ()
        assert report.reused == spec.case_count

    def test_refreshed_store_chains_into_another_refresh(self, tmp_path):
        spec = mc_spec()
        updated = parse_study(MC_TEXT_V2)
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store, journal=RunJournal(None))
        refresh_study(updated, spec, store, journal=RunJournal(None))
        # v2 -> v2 costs nothing: the refreshed shards are a normal store.
        again = refresh_study(updated, updated, store,
                              journal=RunJournal(None))
        assert again.changed == ()

    def test_refresh_emits_journal_events(self, tmp_path):
        spec = mc_spec()
        updated = parse_study(MC_TEXT_V2)
        store = StudyStore(maxsize=8, cache_dir=tmp_path / "store")
        run_study(spec, shards=4, store=store, journal=RunJournal(None))
        refresh_study(updated, spec, store)
        events = read_journal(store.cache_dir / "run.jsonl")
        kinds = [event["event"] for event in events]
        assert "refresh_start" in kinds and "refresh_end" in kinds
        end = events[kinds.index("refresh_end")]
        assert end["changed"] + end["reused"] == updated.case_count


# -- fault injection across the trust boundary --------------------------------


class TestManifestFault:
    def test_corrupt_manifest_plan_requires_a_target(self):
        with pytest.raises(ConfigurationError, match="manifest_path"):
            FaultPlan(faults=(FaultSpec(shard=0,
                                        action="corrupt_manifest"),))

    def test_torn_manifest_surfaces_at_merge_time(self, tmp_path):
        spec = mc_spec()
        store0 = StudyStore(maxsize=8, cache_dir=tmp_path / "w0")
        a = run_shard_slice(spec, 0, 2, store0, shards=4,
                            journal=RunJournal(None))
        # Worker 1's run tears worker 0's already-written manifest — a
        # write-path fault; worker 1 itself completes normally.
        plan = FaultPlan(
            faults=(FaultSpec(shard=1, attempt=1,
                              action="corrupt_manifest"),),
            manifest_path=str(a.manifest_path))
        store1 = StudyStore(maxsize=8, cache_dir=tmp_path / "w1")
        b = run_shard_slice(spec, 1, 2, store1, shards=4,
                            journal=RunJournal(None),
                            context={"fault_plan": plan.to_context()})
        assert b.complete
        with pytest.raises(ManifestError, match="signature"):
            merge_manifests(spec, [a.manifest_path, b.manifest_path])


# -- CLI exit codes -----------------------------------------------------------


class TestCli:
    def write_study(self, tmp_path):
        path = tmp_path / "study.yaml"
        path.write_text(MC_TEXT)
        return path

    def test_shard_merge_round_trip(self, tmp_path, capsys):
        path = self.write_study(tmp_path)
        manifests = []
        for worker in range(2):
            store = tmp_path / f"w{worker}"
            manifest = store / "manifest.json"
            code = main(["study", "shard", str(path), "--quiet",
                         "--index", str(worker), "--of", "2",
                         "--shards", "4", "--store", str(store),
                         "--manifest", str(manifest)])
            assert code == 0
            manifests.append(manifest)
        merged_json = tmp_path / "merged.json"
        code = main(["study", "merge", str(path),
                     *[str(m) for m in manifests], "--quiet",
                     "--json", str(merged_json)])
        assert code == 0
        inline_json = tmp_path / "inline.json"
        assert main(["study", "run", str(path), "--quiet", "--shards", "4",
                     "--json", str(inline_json)]) == 0
        merged = json.loads(merged_json.read_text())
        inline = json.loads(inline_json.read_text())
        assert merged["rows"] == inline["rows"]

    def test_merge_rejection_exits_4(self, tmp_path, capsys):
        path = self.write_study(tmp_path)
        store = tmp_path / "w0"
        manifest = store / "manifest.json"
        assert main(["study", "shard", str(path), "--quiet",
                     "--index", "0", "--of", "2", "--shards", "4",
                     "--store", str(store),
                     "--manifest", str(manifest)]) == 0
        code = main(["study", "merge", str(path), str(manifest), "--quiet"])
        assert code == 4
        assert "[missing]" in capsys.readouterr().err

    def test_run_with_manifest_is_a_1_of_1_slice(self, tmp_path, capsys):
        path = self.write_study(tmp_path)
        store = tmp_path / "store"
        manifest = tmp_path / "solo.json"
        assert main(["study", "run", str(path), "--quiet", "--shards", "4",
                     "--store", str(store),
                     "--manifest", str(manifest)]) == 0
        loaded = load_manifest(manifest)
        assert loaded.worker == 0 and loaded.of == 1
        assert loaded.shard_indices() == (0, 1, 2, 3)

    def test_refresh_cli_round_trip(self, tmp_path, capsys):
        old = tmp_path / "v1.yaml"
        old.write_text(MC_TEXT)
        new = tmp_path / "v2.yaml"
        new.write_text(MC_TEXT_V2)
        store = tmp_path / "store"
        assert main(["study", "run", str(old), "--quiet",
                     "--store", str(store)]) == 0
        assert main(["study", "refresh", str(new),
                     "--previous", str(old), "--store", str(store)]) == 0
        assert "recomputed" in capsys.readouterr().err  # the summary line

    def test_shard_requires_a_store(self, tmp_path, capsys):
        path = self.write_study(tmp_path)
        with pytest.raises(SystemExit):
            main(["study", "shard", str(path), "--index", "0", "--of", "2"])

    def test_unreadable_study_exits_2(self, tmp_path):
        assert main(["study", "merge", str(tmp_path / "absent.yaml"),
                     "x.json"]) == 2
        assert main(["study", "refresh", str(tmp_path / "absent.yaml"),
                     "--previous", "also-absent.yaml",
                     "--store", str(tmp_path / "s")]) == 2

"""Unit-conversion tests, including property-based round-trips."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import units


class TestDbLinear:
    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_negative_db(self):
        assert units.db_to_linear(-10.0) == pytest.approx(0.1)

    def test_linear_to_db_unity(self):
        assert units.linear_to_db(1.0) == pytest.approx(0.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)

    def test_array_conversion(self):
        out = units.db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])

    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_round_trip_db(self, value_db):
        assert units.linear_to_db(units.db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_round_trip_linear(self, ratio):
        assert units.db_to_linear(units.linear_to_db(ratio)) == pytest.approx(
            ratio, rel=1e-9)


class TestDbmWatt:
    def test_zero_dbm_is_one_mw(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_30_dbm_is_one_watt(self):
        assert units.dbm_to_w(30.0) == pytest.approx(1.0)

    def test_64_dbm_is_2500_w(self):
        # The paper's HP EIRP.
        assert units.dbm_to_w(64.0) == pytest.approx(2512.0, rel=1e-3)

    def test_40_dbm_is_10_w(self):
        # The paper's LP EIRP.
        assert units.dbm_to_w(40.0) == pytest.approx(10.0)

    def test_w_to_dbm(self):
        assert units.w_to_dbm(1.0) == pytest.approx(30.0)

    def test_w_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.w_to_dbm(0.0)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_round_trip_dbm(self, dbm):
        assert units.w_to_dbm(units.dbm_to_w(dbm)) == pytest.approx(dbm, abs=1e-9)


class TestWavelength:
    def test_3_5_ghz(self):
        assert units.wavelength_m(3.5e9) == pytest.approx(0.08565, rel=1e-3)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            units.wavelength_m(0.0)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.wavelength_m(-1e9)

    @given(st.floats(min_value=1e6, max_value=1e12))
    def test_wavelength_positive_and_decreasing(self, f):
        lam = units.wavelength_m(f)
        assert lam > 0
        assert units.wavelength_m(2 * f) == pytest.approx(lam / 2)


class TestPowerSum:
    def test_two_equal_powers_add_3db(self):
        assert units.sum_powers_dbm(0.0, 0.0) == pytest.approx(3.0103, abs=1e-3)

    def test_dominant_power_wins(self):
        assert units.sum_powers_dbm(0.0, -40.0) == pytest.approx(0.00043, abs=1e-3)

    def test_empty_sum_rejected(self):
        with pytest.raises(ValueError):
            units.sum_powers_dbm()

    def test_single_power_is_identity(self):
        assert units.sum_powers_dbm(-97.5) == pytest.approx(-97.5)

    @given(st.lists(st.floats(min_value=-120.0, max_value=60.0), min_size=2, max_size=6))
    def test_sum_exceeds_max_component(self, powers):
        total = units.sum_powers_dbm(*powers)
        assert total >= max(powers) - 1e-9

    @given(st.lists(st.floats(min_value=-120.0, max_value=60.0), min_size=2, max_size=6))
    def test_sum_bounded_by_max_plus_10logn(self, powers):
        total = units.sum_powers_dbm(*powers)
        assert total <= max(powers) + 10 * math.log10(len(powers)) + 1e-9


class TestSpeed:
    def test_200_kmh(self):
        assert units.kmh_to_ms(200.0) == pytest.approx(55.5556, rel=1e-4)

    def test_round_trip(self):
        assert units.ms_to_kmh(units.kmh_to_ms(123.4)) == pytest.approx(123.4)

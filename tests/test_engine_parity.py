"""Cross-engine parity matrix — scalar vs. batched, all four engines.

Every vectorized engine in the codebase ships with a scalar escape hatch;
this module is the single place asserting they agree, over one shared seed
sweep:

* **radio**  — :func:`repro.radio.batch.evaluate_scenarios` vs. the scalar
  :func:`repro.radio.link.compute_snr_profile` (deterministic: bit-identical
  arrays, no seed axis);
* **solar**  — :func:`repro.solar.batch.simulate_systems` vs. per-system
  :meth:`repro.solar.offgrid.OffGridSystem.simulate_year` (bit-identical
  result fields per weather seed);
* **mc**     — :func:`repro.optimize.mc.outage_matrix` batched vs.
  ``engine="scalar"`` (trial-for-trial bit-identical under common random
  numbers with ``backend="reference"``; fused backends pinned <= 1e-9);
* **sim**    — :func:`repro.simulation.batch.simulate_days` batch vs.
  ``engine="event"`` (equal to 1e-9: both engines see bit-identical event
  instants and differ only by float summation order);
* **network** — :func:`repro.network.frontier.segment_frontiers`
  ``engine="batched"`` vs. the ``engine="scalar"`` per-segment reference
  (bit-identical frontier arrays), and the optimizer through the study
  runner for any ``jobs``/``shards`` layout (inline == pooled).

Every stochastic comparison also sweeps the kernel-backend axis
(:func:`repro.backend.available_backends`): the solar engine is
bit-identical on *every* backend, the mc engine is bit-identical on
``"reference"`` and pinned to <= 1e-9 on the fused backends, and the sim
engine's batch/event agreement holds per backend.

It replaces the per-PR ad-hoc equality tests that previously lived in
``test_batch.py`` / ``test_solar_batch.py`` / ``test_mc_engine.py``;
engine-specific behaviours (caching, sharding, CRN prefix properties) stay
in those modules.
"""

import dataclasses

import numpy as np
import pytest

from repro.backend import available_backends

from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode
from repro.optimize.mc import outage_matrix, trial_generators
from repro.propagation.fading import LogNormalShadowing
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams, compute_snr_profile
from repro.radio.noise import RepeaterNoiseModel
from repro.scenario.spec import Scenario
from repro.simulation.batch import simulate_days
from repro.solar.batch import WeatherCache, simulate_systems
from repro.solar.battery import Battery
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import OffGridResult, OffGridSystem
from repro.solar.pv import PvArray
from repro.traffic.timetable import Timetable, TrainRun
from repro.traffic.trains import Train

#: The shared seed sweep: every stochastic engine pair is compared on each.
SEEDS = (0, 7, 1234)


# --- radio: Eq. (2) batch vs. scalar profile --------------------------------------


class TestRadioParity:
    @pytest.mark.parametrize("model", list(RepeaterNoiseModel))
    def test_profiles_bit_identical(self, model):
        link = LinkParams(repeater_noise_model=model)
        scenarios = [
            Scenario(CorridorLayout.with_uniform_repeaters(isd, n), link, 2.0)
            for isd, n in [(900.0, 0), (1250.0, 1), (2400.0, 8),
                           (2437.5, 8), (3000.0, 10)]
        ]
        for sc, batch in zip(scenarios, evaluate_scenarios(scenarios)):
            ref = compute_snr_profile(sc.layout, sc.link, resolution_m=2.0)
            for name in ("positions_m", "source_rsrp_dbm", "total_signal_dbm",
                         "total_noise_dbm", "snr_db"):
                assert np.array_equal(getattr(batch, name),
                                      getattr(ref, name)), name


# --- solar: batched hourly balance vs. per-system scalar year ---------------------


class TestSolarParity:
    FIELDS = tuple(f.name for f in dataclasses.fields(OffGridResult))

    @pytest.mark.parametrize("key", tuple(LOCATIONS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_field_matches_scalar(self, key, seed):
        systems = [
            OffGridSystem(LOCATIONS[key], pv=PvArray(peak_w=pv),
                          battery=Battery(capacity_wh=wh), seed=seed)
            for pv, wh in ((360.0, 720.0), (540.0, 720.0), (600.0, 1440.0))
        ]
        cache = WeatherCache()
        scalars = [system.simulate_year(start_day_of_year=274)
                   for system in systems]
        # The reference backend replays the scalar walk bitwise; fused
        # backends run the SoC-space formulation, so their SoC-dependent
        # floats are pinned at 1e-9 while integer counts, metadata, and
        # the hour-order PV sums stay exact.
        soc_dependent = {"unmet_wh", "min_soc", "annual_load_kwh"}
        for backend in available_backends():
            batched = simulate_systems(systems, start_day_of_year=274,
                                       weather_cache=cache, backend=backend)
            for scalar, result in zip(scalars, batched):
                for name in self.FIELDS:
                    got, want = getattr(result, name), getattr(scalar, name)
                    if backend != "reference" and name in soc_dependent:
                        np.testing.assert_allclose(
                            got, want, rtol=1e-9, atol=1e-9,
                            err_msg=f"{backend}:{name}")
                    else:
                        assert got == want, f"{backend}:{name}"

        reference = simulate_systems(systems, start_day_of_year=274,
                                     weather_cache=cache, backend="reference")
        for scalar, result in zip(scalars, reference):
            assert result == scalar


# --- mc: batched shadowing trials vs. scalar replay -------------------------------


def _mc_profiles():
    layouts = [CorridorLayout.with_uniform_repeaters(1250.0, 1),
               CorridorLayout.with_uniform_repeaters(2400.0, 8),
               CorridorLayout.conventional(500.0)]
    return evaluate_scenarios(
        [Scenario(layout=lo, resolution_m=10.0) for lo in layouts])


class TestMcParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ragged_grid_bit_identical(self, seed):
        profiles = _mc_profiles()
        shadowing = LogNormalShadowing(sigma_db=4.0)
        scalar = outage_matrix(profiles, shadowing, trials=40, seed=seed,
                               engine="scalar")
        reference = outage_matrix(profiles, shadowing, trials=40, seed=seed,
                                  backend="reference")
        assert np.array_equal(reference.min_snr_db, scalar.min_snr_db)
        assert np.array_equal(reference.outage_counts, scalar.outage_counts)
        for backend in available_backends():
            batched = outage_matrix(profiles, shadowing, trials=40,
                                    seed=seed, backend=backend)
            np.testing.assert_allclose(batched.min_snr_db, scalar.min_snr_db,
                                       rtol=0.0, atol=1e-9,
                                       err_msg=backend)
            assert np.array_equal(batched.outage_counts,
                                  scalar.outage_counts), backend

    @pytest.mark.parametrize("seed", SEEDS)
    def test_trial_streams_shared_across_engines(self, seed):
        # Both engines consume the same per-trial generator prefix.
        model = LogNormalShadowing(sigma_db=3.0, decorrelation_m=30.0)
        pos = np.array([0.0, 4.0, 5.0, 50.0, 51.0, 300.0, 1000.0])
        scalar = np.stack([model.sample(pos, rng)
                           for rng in trial_generators(seed, 16)])
        reference = model.sample_batch(pos, trial_generators(seed, 16),
                                       backend="reference")
        assert np.array_equal(reference, scalar)
        for backend in available_backends():
            batch = model.sample_batch(pos, trial_generators(seed, 16),
                                       backend=backend)
            np.testing.assert_allclose(batch, scalar, rtol=0.0, atol=1e-9,
                                       err_msg=backend)


# --- sim: batched interval algebra vs. the event queue ----------------------------


def _mixed_timetable():
    """Heterogeneous trains (length/speed/direction) on a short horizon."""
    return Timetable(runs=tuple(
        TrainRun(t0_s=t, train=Train(length_m=ln, speed_kmh=v), direction=d)
        for t, ln, v, d in [(10.0, 50.0, 40.0, 1), (30.0, 400.0, 200.0, -1),
                            (200.0, 100.0, 80.0, 1), (201.0, 100.0, 80.0, -1),
                            (260.0, 100.0, 80.0, 1)]),
        horizon_s=3600.0)


def assert_sim_engines_agree(**kwargs):
    batch = simulate_days(engine="batch", **kwargs)
    event = simulate_days(engine="event", **kwargs)
    assert batch.element_names == event.element_names
    assert batch.element_kinds == event.element_kinds
    for name in ("active_s", "awake_s", "energy_wh"):
        x, y = getattr(batch, name), getattr(event, name)
        assert x.shape == y.shape, name
        diff = np.max(np.abs(x - y) / np.maximum(1.0, np.abs(y)))
        assert diff <= 1e-9, f"{name} diverges: {diff:.2e}"
    assert np.all(event.events_processed >= 0)
    return batch, event


class TestSimParity:
    LAYOUT = CorridorLayout.with_uniform_repeaters(2400.0, 8)

    @pytest.mark.parametrize("mode", list(OperatingMode))
    def test_deterministic_timetable(self, mode):
        assert_sim_engines_agree(layout=self.LAYOUT, mode=mode)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_stochastic_fleet_trial_for_trial(self, seed):
        batch, event = assert_sim_engines_agree(
            layout=self.LAYOUT, stochastic=True, realizations=4, seed=seed)
        # Common random numbers: realization r is the same Poisson day in
        # both engines, so even per-realization columns match — not just
        # fleet statistics.
        assert batch.realizations == event.realizations == 4
        assert batch.avg_w_per_km.std() > 0.0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_late_wake_anomaly(self, seed):
        # Transition longer than the detection lead: trains enter sleeping
        # sections and exits land inside the wake transition (the event
        # engine's missed-sleep path).
        assert_sim_engines_agree(
            layout=self.LAYOUT, stochastic=True, realizations=3, seed=seed,
            transition_s=12.0, wake_lead_m=10.0)

    def test_zero_lead_zero_transition(self):
        assert_sim_engines_agree(layout=self.LAYOUT, transition_s=0.0,
                                 wake_lead_m=0.0)

    def test_multi_day_horizon(self):
        assert_sim_engines_agree(layout=self.LAYOUT, days=2.0)

    def test_conventional_layout(self):
        assert_sim_engines_agree(layout=CorridorLayout.conventional())

    def test_heterogeneous_trains(self):
        assert_sim_engines_agree(layout=self.LAYOUT,
                                 timetables=(_mixed_timetable(),))

    def test_dense_traffic_overlapping_occupancy(self):
        from repro.traffic.trains import TrafficParams
        params = EnergyParams(traffic=TrafficParams(trains_per_hour=60.0))
        assert_sim_engines_agree(layout=self.LAYOUT, params=params,
                                 stochastic=True, realizations=2, seed=1)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_backends_bit_identical(self, seed):
        # The group-scan kernel sees bit-identical inputs on every backend
        # and performs the same per-lane walk, so the batch engine's output
        # must not depend on the backend at all.
        default = simulate_days(layout=self.LAYOUT, stochastic=True,
                                realizations=3, seed=seed)
        for backend in available_backends():
            other = simulate_days(layout=self.LAYOUT, stochastic=True,
                                  realizations=3, seed=seed, backend=backend)
            for name in ("active_s", "awake_s", "energy_wh"):
                assert np.array_equal(getattr(default, name),
                                      getattr(other, name)), \
                    f"{backend}:{name}"


# --- network: batched frontier vs. scalar reference, layout invariance -------


class TestNetworkParity:
    @pytest.mark.parametrize("scale", (0.5, 1.0, 2.0))
    def test_frontiers_bit_identical(self, scale):
        from repro.network import build_graph, segment_frontiers

        graph = build_graph("demo", demand_scale=scale)
        batched = segment_frontiers(graph, resolution_m=50.0)
        scalar = segment_frontiers(graph, resolution_m=50.0, engine="scalar")
        assert [o.label for o in batched.options] \
            == [o.label for o in scalar.options]
        assert np.array_equal(batched.energy_w, scalar.energy_w,
                              equal_nan=True)
        assert np.array_equal(batched.cost_eur, scalar.cost_eur,
                              equal_nan=True)
        assert np.array_equal(batched.feasible, scalar.feasible)
        assert np.array_equal(batched.eligible, scalar.eligible)

    def test_optimizer_identical_on_either_engine(self):
        from repro.network import build_graph, optimize_network

        graph = build_graph("demo")
        plans = [optimize_network(graph, resolution_m=50.0,
                                  energy_budget_w=13.0e3, engine=engine)
                 for engine in ("batched", "scalar")]
        assert np.array_equal(plans[0].option_index, plans[1].option_index)
        assert plans[0].total_cost_eur == plans[1].total_cost_eur
        assert plans[0].total_energy_w == plans[1].total_energy_w

    @pytest.mark.parametrize("layout", [dict(jobs=1, shards=1),
                                        dict(jobs=1, shards=5),
                                        dict(jobs=2, shards=3)])
    def test_study_bit_identical_for_any_layout(self, layout):
        from repro.experiments.network import network_study_spec
        from repro.study.runner import run_study

        spec = network_study_spec(
            graph="demo", segments=0, demand_scales=(1.0, 2.0),
            energy_budgets_w_per_km=(0.0, 130.0),
            technology_mixes=("conventional,repeater,mobile_relay",),
            resolution_m=50.0)
        inline = run_study(spec).table.long()
        routed = run_study(spec, **layout).table.long()
        # Infeasible budget cells are NaN rows, and NaN != NaN — compare
        # columns NaN-aware but otherwise bitwise.
        assert set(inline) == set(routed)
        for column, values in inline.items():
            got = routed[column]
            if all(isinstance(v, (int, float)) for v in values):
                assert np.array_equal(np.asarray(values, dtype=np.float64),
                                      np.asarray(got, dtype=np.float64),
                                      equal_nan=True), column
            else:
                assert values == got, column

    def test_study_bit_identical_through_distributed_merge(self, tmp_path):
        # The distributed row of the parity matrix: a 2-worker manifest
        # split, merged back, against the same inline reference — the CRN
        # contract extends across machine boundaries (NaN rows included:
        # the 0.0 budget cells are infeasible).
        from repro.experiments.network import network_study_spec
        from repro.study import (
            RunJournal,
            StudyStore,
            merge_manifests,
            run_shard_slice,
            run_study,
        )

        spec = network_study_spec(
            graph="demo", segments=0, demand_scales=(1.0, 2.0),
            energy_budgets_w_per_km=(0.0, 130.0),
            technology_mixes=("conventional,repeater,mobile_relay",),
            resolution_m=50.0)
        inline = run_study(spec, shards=3, journal=RunJournal(None)).table
        manifests = []
        for worker in range(2):
            store = StudyStore(maxsize=8,
                               cache_dir=tmp_path / f"worker{worker}")
            manifests.append(run_shard_slice(
                spec, worker, 2, store, shards=3,
                journal=RunJournal(None)).manifest_path)
        merged = merge_manifests(spec, manifests).table
        assert set(inline.long()) == set(merged.long())
        for column, values in inline.long().items():
            got = merged.long()[column]
            if all(isinstance(v, (int, float)) for v in values):
                assert np.array_equal(np.asarray(values, dtype=np.float64),
                                      np.asarray(got, dtype=np.float64),
                                      equal_nan=True), column
            else:
                assert values == got, column

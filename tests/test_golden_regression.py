"""Golden-regression harness — current runs vs. tests/golden/*.json.

The snapshots pin the reproduced Table I-IV and Fig. 3/4 series; refresh
them only for intended result changes via ``tools/refresh_golden.py``.
"""

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.reporting.golden import (
    GOLDEN_SPECS,
    GoldenSpec,
    compare_series,
    compute_series,
    golden_path,
    load_snapshot,
    save_snapshot,
    spec_for,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("spec", GOLDEN_SPECS,
                         ids=[s.experiment_id for s in GOLDEN_SPECS])
def test_experiment_matches_golden_snapshot(spec):
    problems = compare_series(spec, compute_series(spec),
                              load_snapshot(spec, GOLDEN_DIR))
    assert not problems, "\n".join(problems)


def test_every_spec_has_a_committed_snapshot():
    for spec in GOLDEN_SPECS:
        assert golden_path(GOLDEN_DIR, spec).exists(), spec.experiment_id


class TestHarnessMechanics:
    def test_spec_for_unknown_id(self):
        with pytest.raises(ConfigurationError):
            spec_for("nope")

    def test_spec_for_known_id(self):
        assert spec_for("fig4").experiment_id == "fig4"

    def test_missing_snapshot_reports_refresh_tool(self):
        with pytest.raises(ConfigurationError, match="refresh_golden"):
            load_snapshot(spec_for("fig4"), "/nonexistent/golden")

    def test_kwargs_drift_detected(self, tmp_path):
        spec = GoldenSpec("table3")
        save_snapshot(spec, tmp_path)
        with pytest.raises(ConfigurationError, match="kwargs"):
            load_snapshot(GoldenSpec("table3", kwargs={"x": 1}), tmp_path)

    def test_tolerance_detects_drift_and_accepts_noise(self, tmp_path):
        spec = GoldenSpec("table3", rtol=1e-9, atol=0.0)
        save_snapshot(spec, tmp_path)
        reference = load_snapshot(spec, tmp_path)
        current = {k: list(v) for k, v in reference.items()}
        current["duty_pct"] = [v * (1.0 + 1e-12) for v in current["duty_pct"]]
        assert compare_series(spec, current, reference) == []
        current["duty_pct"] = [v * 1.01 for v in current["duty_pct"]]
        problems = compare_series(spec, current, reference)
        assert problems and "duty_pct" in problems[0]

    def test_per_field_tolerance_override(self):
        spec = GoldenSpec("x", field_tolerances={"noisy": (0.5, 0.0)})
        ref = {"noisy": [1.0], "tight": [1.0]}
        cur = {"noisy": [1.3], "tight": [1.3]}
        problems = compare_series(spec, cur, ref)
        assert len(problems) == 1 and "tight" in problems[0]

    def test_nan_matches_nan_and_shape_drift_reported(self):
        spec = GoldenSpec("x")
        assert compare_series(spec, {"a": ["NaN", 1.0]},
                              {"a": [float("nan"), 1.0]}) == []
        problems = compare_series(spec, {"a": [1.0]}, {"a": [1.0, 2.0]})
        assert problems and "length" in problems[0]
        problems = compare_series(spec, {"a": [1.0], "b": [1.0]}, {"a": [1.0]})
        assert problems and "not in snapshot" in problems[0]

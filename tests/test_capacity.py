"""Tests for the truncated Shannon capacity model (TR 36.942 A.2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.capacity.shannon import TruncatedShannonModel, peak_snr_threshold_db
from repro.capacity.throughput import throughput_profile
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.carrier import NrCarrier
from repro.radio.link import compute_snr_profile


class TestPeakThreshold:
    def test_paper_parameters_give_29_3_db(self):
        # alpha = 0.6, ThrMAX = 5.84 -> 2^(5.84/0.6) - 1 = 29.30 dB
        assert peak_snr_threshold_db() == pytest.approx(29.30, abs=0.01)

    def test_higher_alpha_lower_threshold(self):
        assert peak_snr_threshold_db(alpha=0.8) < peak_snr_threshold_db(alpha=0.6)

    def test_rejects_zero_alpha(self):
        with pytest.raises(ConfigurationError):
            peak_snr_threshold_db(alpha=0.0)


class TestTruncatedShannon:
    def test_zero_below_min_snr(self):
        model = TruncatedShannonModel()
        assert model.spectral_efficiency(-15.0) == 0.0

    def test_at_min_snr_nonzero(self):
        model = TruncatedShannonModel()
        assert model.spectral_efficiency(-10.0) > 0.0

    def test_saturates_at_max(self):
        model = TruncatedShannonModel()
        assert model.spectral_efficiency(50.0) == pytest.approx(5.84)

    def test_exactly_at_threshold(self):
        model = TruncatedShannonModel()
        assert model.spectral_efficiency(model.peak_snr_db) == pytest.approx(5.84, rel=1e-6)

    def test_shannon_region_value(self):
        model = TruncatedShannonModel()
        # At 10 dB: 0.6 * log2(1 + 10) = 2.076 bps/Hz
        assert model.spectral_efficiency(10.0) == pytest.approx(2.076, abs=0.01)

    def test_is_peak(self):
        model = TruncatedShannonModel()
        assert model.is_peak(29.5)
        assert not model.is_peak(29.0)

    def test_array_input(self):
        model = TruncatedShannonModel()
        out = model.spectral_efficiency(np.array([-20.0, 0.0, 40.0]))
        assert out[0] == 0.0
        assert 0.0 < out[1] < 5.84
        assert out[2] == pytest.approx(5.84)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            TruncatedShannonModel(alpha=-0.1)

    @given(st.floats(min_value=-30.0, max_value=60.0),
           st.floats(min_value=0.1, max_value=20.0))
    def test_monotone_nondecreasing(self, snr, delta):
        model = TruncatedShannonModel()
        assert model.spectral_efficiency(snr + delta) >= model.spectral_efficiency(snr)

    @given(st.floats(min_value=-30.0, max_value=60.0))
    def test_bounded(self, snr):
        model = TruncatedShannonModel()
        eff = model.spectral_efficiency(snr)
        assert 0.0 <= eff <= 5.84


class TestThroughputProfile:
    def test_fig3_scenario_sustains_peak(self, fig3_layout):
        snr = compute_snr_profile(fig3_layout)
        thr = throughput_profile(snr)
        assert thr.sustains_peak_everywhere
        assert thr.peak_fraction() == 1.0

    def test_peak_throughput_584_mbps(self, fig3_layout):
        snr = compute_snr_profile(fig3_layout)
        thr = throughput_profile(snr)
        assert thr.peak_bps == pytest.approx(584e6)
        assert thr.min_bps == pytest.approx(584e6)

    def test_oversized_isd_loses_peak(self):
        layout = CorridorLayout.with_uniform_repeaters(3500.0, 1)
        snr = compute_snr_profile(layout, resolution_m=5.0)
        thr = throughput_profile(snr)
        assert not thr.sustains_peak_everywhere
        assert thr.min_bps < thr.peak_bps

    def test_mean_between_min_and_peak(self):
        layout = CorridorLayout.with_uniform_repeaters(3200.0, 1)
        thr = throughput_profile(compute_snr_profile(layout, resolution_m=5.0))
        assert thr.min_bps <= thr.mean_bps <= thr.peak_bps

    def test_custom_carrier_bandwidth(self, conventional_layout):
        snr = compute_snr_profile(conventional_layout)
        carrier = NrCarrier(bandwidth_hz=50e6, n_subcarriers=1650)
        thr = throughput_profile(snr, carrier=carrier)
        assert thr.peak_bps == pytest.approx(5.84 * 50e6)

"""Tests for the analytic energy model — the paper's headline numbers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.analysis import (
    compare_deployments,
    conventional_reference_w_per_km,
    fig4_rows,
    savings_fraction,
)
from repro.energy.duty import (
    DonorDutyModel,
    EnergyParams,
    donor_average_power_w,
    hp_mast_average_power_w,
    lp_node_average_power_w,
)
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError


class TestNodeAverages:
    def test_lp_sleeping_is_5_17_w(self):
        assert lp_node_average_power_w(sleeping=True) == pytest.approx(5.17, abs=0.005)

    def test_lp_daily_energy_124_wh(self):
        daily = lp_node_average_power_w(sleeping=True) * 24.0
        assert daily == pytest.approx(124.1, abs=0.1)

    def test_lp_continuous_near_no_load(self):
        avg = lp_node_average_power_w(sleeping=False)
        assert avg == pytest.approx(24.34, abs=0.02)

    def test_hp_mast_conventional_average(self):
        # duty 2.85 %: 0.0285*560 + 0.9715*224 = 233.6 W per mast.
        assert hp_mast_average_power_w(500.0) == pytest.approx(233.6, abs=0.1)

    def test_hp_mast_without_sleep(self):
        awake = hp_mast_average_power_w(500.0, sleeping=False)
        assert awake == pytest.approx(0.0285 * 560 + 0.9715 * 336, abs=0.3)

    def test_hp_mast_rejects_zero_isd(self):
        with pytest.raises(ConfigurationError):
            hp_mast_average_power_w(0.0)

    def test_donor_count_rule_in_power(self):
        one = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        many = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        p = EnergyParams()
        assert donor_average_power_w(one, p) == pytest.approx(
            lp_node_average_power_w(p), abs=1e-9)
        assert donor_average_power_w(many, p) == pytest.approx(
            2 * lp_node_average_power_w(p), abs=1e-9)

    def test_donor_zero_for_conventional(self):
        assert donor_average_power_w(CorridorLayout.conventional()) == 0.0

    def test_donor_span_model_higher_for_many_nodes(self):
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        node_model = donor_average_power_w(layout, EnergyParams())
        span_model = donor_average_power_w(
            layout, EnergyParams(donor_duty=DonorDutyModel.SPAN))
        assert span_model > node_model

    def test_donor_span_equals_node_for_single(self):
        layout = CorridorLayout.with_uniform_repeaters(1250.0, 1)
        node_model = donor_average_power_w(layout, EnergyParams())
        span_model = donor_average_power_w(
            layout, EnergyParams(donor_duty=DonorDutyModel.SPAN))
        assert span_model == pytest.approx(node_model, abs=1e-9)

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyParams(lp_section_m=0.0)
        with pytest.raises(ConfigurationError):
            EnergyParams(lp_sleep_w=30.0)  # sleep above no-load


class TestConventionalReference:
    def test_467_w_per_km(self):
        assert conventional_reference_w_per_km() == pytest.approx(467.2, abs=0.5)

    def test_savings_of_reference_is_zero(self):
        conv = segment_energy(CorridorLayout.conventional(), OperatingMode.SLEEP)
        assert savings_fraction(conv) == pytest.approx(0.0, abs=1e-9)


class TestSegmentEnergy:
    def test_solar_mode_zero_lp_mains(self):
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        solar = segment_energy(layout, OperatingMode.SOLAR)
        assert solar.service_w == 0.0
        assert solar.donor_w == 0.0
        assert solar.offgrid_w > 0.0
        assert solar.total_mains_w == solar.hp_w

    def test_sleep_below_continuous(self):
        layout = CorridorLayout.with_uniform_repeaters(2000.0, 5)
        cont = segment_energy(layout, OperatingMode.CONTINUOUS)
        sleep = segment_energy(layout, OperatingMode.SLEEP)
        assert sleep.w_per_km < cont.w_per_km

    def test_solar_below_sleep(self):
        layout = CorridorLayout.with_uniform_repeaters(2000.0, 5)
        sleep = segment_energy(layout, OperatingMode.SLEEP)
        solar = segment_energy(layout, OperatingMode.SOLAR)
        assert solar.w_per_km < sleep.w_per_km

    def test_wh_per_day_consistency(self):
        layout = CorridorLayout.with_uniform_repeaters(1600.0, 3)
        e = segment_energy(layout)
        assert e.wh_per_day_per_km == pytest.approx(24 * e.w_per_km)
        assert e.kwh_per_year_per_km == pytest.approx(24 * 365 * e.w_per_km / 1000)

    @settings(deadline=None)
    @given(st.integers(min_value=1, max_value=10))
    def test_modes_strictly_ordered(self, n):
        isd = constants.PAPER_MAX_ISD_M[n - 1]
        layout = CorridorLayout.with_uniform_repeaters(isd, n)
        cont = segment_energy(layout, OperatingMode.CONTINUOUS).w_per_km
        sleep = segment_energy(layout, OperatingMode.SLEEP).w_per_km
        solar = segment_energy(layout, OperatingMode.SOLAR).w_per_km
        assert solar < sleep < cont


class TestPaperHeadlines:
    """The Section V savings figures, exactly as published."""

    def test_sleep_savings_n1_57pct(self):
        rows = fig4_rows()
        row = next(r for r in rows if r.n_repeaters == 1)
        assert 100 * row.sleep_savings == pytest.approx(57.0, abs=0.5)

    def test_sleep_savings_n10_74pct(self):
        rows = fig4_rows()
        row = next(r for r in rows if r.n_repeaters == 10)
        assert 100 * row.sleep_savings == pytest.approx(74.0, abs=0.5)

    def test_solar_savings_n1_59pct(self):
        rows = fig4_rows()
        row = next(r for r in rows if r.n_repeaters == 1)
        assert 100 * row.solar_savings == pytest.approx(59.0, abs=0.7)

    def test_solar_savings_n10_79pct(self):
        rows = fig4_rows()
        row = next(r for r in rows if r.n_repeaters == 10)
        assert 100 * row.solar_savings == pytest.approx(79.0, abs=0.5)

    def test_continuous_crosses_50pct_by_n3(self):
        # "The use of at least three low-power repeater nodes ... reduces the
        # average energy consumption ... to below 50 %".
        rows = fig4_rows()
        for n in (3, 4, 5, 6, 7, 8, 9, 10):
            row = next(r for r in rows if r.n_repeaters == n)
            assert row.continuous_savings > 0.50, f"N={n}"

    def test_savings_monotone_in_n_sleep(self):
        rows = [r for r in fig4_rows() if r.n_repeaters >= 1]
        savings = [r.sleep_savings for r in rows]
        assert all(b > a for a, b in zip(savings, savings[1:]))

    def test_conventional_row_present(self):
        rows = fig4_rows()
        assert rows[0].n_repeaters == 0
        assert rows[0].isd_m == 500.0
        assert rows[0].sleep_savings == pytest.approx(0.0, abs=1e-9)

    def test_fig4_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            fig4_rows({0: 500.0})


class TestCorridorComparison:
    def test_100km_corridor(self):
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        cmp = compare_deployments(layout, corridor_km=100.0)
        assert cmp.savings_fraction == pytest.approx(0.743, abs=0.005)
        assert cmp.saved_mwh_per_year > 0
        assert cmp.baseline_mwh_per_year > cmp.proposed_mwh_per_year

    def test_annual_energy_scale(self):
        # Conventional 467 W/km * 100 km * 8760 h = 409 MWh/yr.
        layout = CorridorLayout.conventional()
        cmp = compare_deployments(layout, corridor_km=100.0)
        assert cmp.baseline_mwh_per_year == pytest.approx(409.0, rel=0.01)

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            compare_deployments(CorridorLayout.conventional(), corridor_km=0.0)

"""Sanity checks on the published constants and their internal consistency."""

import pytest

from repro import constants
from repro.units import dbm_to_w


class TestPowersAndCalibration:
    def test_hp_eirp_is_2500_w(self):
        assert dbm_to_w(constants.HP_EIRP_DBM) == pytest.approx(2500.0, rel=0.01)

    def test_lp_eirp_is_10_w(self):
        assert dbm_to_w(constants.LP_EIRP_DBM) == pytest.approx(10.0, rel=0.01)

    def test_hp_calibration_larger_than_lp(self):
        # The HP antennas shoot along the track into the wagons; their
        # calibration includes more loss than the close-by repeaters.
        assert constants.HP_CALIBRATION_DB > constants.LP_CALIBRATION_DB


class TestSitePowers:
    def test_hp_site_full_load_is_two_rrh(self):
        per_rrh = constants.HP_RRH_P0_W + constants.HP_RRH_DELTA_P * constants.HP_RRH_PMAX_W
        assert constants.RRH_PER_MAST * per_rrh == pytest.approx(constants.HP_SITE_FULL_LOAD_W)

    def test_hp_site_no_load(self):
        assert constants.RRH_PER_MAST * constants.HP_RRH_P0_W == pytest.approx(
            constants.HP_SITE_NO_LOAD_W)

    def test_hp_site_sleep(self):
        assert constants.RRH_PER_MAST * constants.HP_RRH_PSLEEP_W == pytest.approx(
            constants.HP_SITE_SLEEP_W)

    def test_lp_earth_full_load_close_to_table1(self):
        earth = constants.LP_REPEATER_P0_W + constants.LP_REPEATER_DELTA_P * constants.LP_REPEATER_PMAX_W
        assert earth == pytest.approx(constants.LP_REPEATER_FULL_LOAD_W, abs=0.2)

    def test_repeater_is_5pct_of_site(self):
        # Abstract: "these repeaters consume only 5 % of the energy of a
        # regular cell site".
        share = constants.LP_REPEATER_FULL_LOAD_W / constants.HP_SITE_FULL_LOAD_W
        assert share == pytest.approx(0.05, abs=0.005)


class TestIsdList:
    def test_ten_entries(self):
        assert len(constants.PAPER_MAX_ISD_M) == 10

    def test_strictly_increasing(self):
        lst = constants.PAPER_MAX_ISD_M
        assert all(b > a for a, b in zip(lst, lst[1:]))

    def test_all_on_50m_grid(self):
        assert all(isd % constants.ISD_STEP_M == 0 for isd in constants.PAPER_MAX_ISD_M)

    def test_diminishing_returns(self):
        # The increments never exceed the 200 m node spacing.
        lst = constants.PAPER_MAX_ISD_M
        increments = [b - a for a, b in zip(lst, lst[1:])]
        assert all(inc <= constants.LP_NODE_SPACING_M for inc in increments)


class TestScenario:
    def test_sleep_below_no_load(self):
        assert constants.LP_REPEATER_PSLEEP_W < constants.LP_REPEATER_P0_W
        assert constants.HP_RRH_PSLEEP_W < constants.HP_RRH_P0_W

    def test_conventional_isd_on_grid(self):
        assert constants.CONVENTIONAL_ISD_M % constants.CATENARY_MAST_SPACING_M == 0

    def test_repeater_spacing_on_catenary_grid(self):
        assert constants.LP_NODE_SPACING_M % constants.CATENARY_MAST_SPACING_M == 0

    def test_table4_reference_has_four_regions(self):
        assert set(constants.PAPER_FULL_BATTERY_DAYS_PCT) == {
            "madrid", "lyon", "vienna", "berlin"}

    def test_table4_ordering(self):
        p = constants.PAPER_FULL_BATTERY_DAYS_PCT
        assert p["madrid"] > p["lyon"] > p["vienna"] > p["berlin"]

"""Tests for the EMF compliance substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.emf.compliance import (
    EmfLimit,
    ICNIRP_GENERAL_PUBLIC,
    STRICT_INSTALLATION_LIMITS,
    compliance_distance_m,
    field_strength_v_m,
    node_compliance,
    power_density_w_m2,
)
from repro.errors import ConfigurationError


class TestPowerDensity:
    def test_known_value(self):
        # 2500 W EIRP at 10 m: 2500 / (4 pi 100) = 1.99 W/m².
        assert power_density_w_m2(64.0, 10.0) == pytest.approx(2.0, rel=0.01)

    def test_inverse_square(self):
        assert power_density_w_m2(64.0, 20.0) == pytest.approx(
            power_density_w_m2(64.0, 10.0) / 4.0)

    def test_field_strength_consistency(self):
        s = power_density_w_m2(40.0, 5.0)
        e = field_strength_v_m(40.0, 5.0)
        assert e**2 / 376.73 == pytest.approx(s, rel=1e-9)

    @given(st.floats(min_value=0.1, max_value=1000.0))
    def test_density_positive_decreasing(self, d):
        assert power_density_w_m2(64.0, d) > power_density_w_m2(64.0, d * 2)


class TestLimits:
    def test_icnirp_value(self):
        assert ICNIRP_GENERAL_PUBLIC.equivalent_power_density_w_m2() == 10.0

    def test_switzerland_stricter_than_icnirp(self):
        ch = STRICT_INSTALLATION_LIMITS["switzerland"]
        assert ch.equivalent_power_density_w_m2() < 0.2  # 6 V/m ~ 0.0955 W/m²

    def test_limit_requires_a_value(self):
        with pytest.raises(ConfigurationError):
            EmfLimit("empty")

    def test_stricter_of_both(self):
        limit = EmfLimit("both", power_density_w_m2=10.0, field_strength_v_m=6.0)
        assert limit.equivalent_power_density_w_m2() == pytest.approx(0.0955, abs=0.001)


class TestComplianceDistance:
    def test_hp_icnirp_within_metres(self):
        d = compliance_distance_m(constants.HP_EIRP_DBM, ICNIRP_GENERAL_PUBLIC)
        assert 3.0 < d < 6.0  # sqrt(2512/(4 pi 10)) = 4.5 m

    def test_hp_strict_needs_tens_of_metres(self):
        ch = STRICT_INSTALLATION_LIMITS["switzerland"]
        d = compliance_distance_m(constants.HP_EIRP_DBM, ch)
        assert 40.0 < d < 50.0  # the EMF-driven siting problem

    def test_lp_strict_within_metres(self):
        # The repeater story: 40 dBm complies within ~3 m even in Switzerland.
        ch = STRICT_INSTALLATION_LIMITS["switzerland"]
        d = compliance_distance_m(constants.LP_EIRP_DBM, ch)
        assert d < 3.5

    def test_distance_at_limit_boundary(self):
        limit = EmfLimit("x", power_density_w_m2=1.0)
        d = compliance_distance_m(40.0, limit)
        assert power_density_w_m2(40.0, d) == pytest.approx(1.0, rel=1e-6)

    def test_node_compliance_summary(self):
        hp = node_compliance(constants.HP_EIRP_DBM)
        lp = node_compliance(constants.LP_EIRP_DBM)
        assert set(hp.distances_m) == {"icnirp", "switzerland", "italy", "poland"}
        assert hp.worst_case_m() > 10 * lp.worst_case_m()

    def test_custom_limits(self):
        result = node_compliance(40.0, {"only": EmfLimit("only", power_density_w_m2=1.0)})
        assert list(result.distances_m) == ["only"]

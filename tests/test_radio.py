"""Tests for the radio layer: carrier, nodes, noise, SNR profiles (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError, GeometryError
from repro.propagation.fronthaul import FronthaulParams
from repro.radio.carrier import NrCarrier, rstp_dbm_from_eirp
from repro.radio.link import LinkParams, compute_snr_profile
from repro.radio.nodes import DonorNode, HighPowerSite, RepeaterNode
from repro.radio.noise import RepeaterNoiseModel, thermal_noise_dbm


class TestCarrier:
    def test_hp_rstp(self):
        carrier = NrCarrier()
        # 64 dBm - 10 log10(3300) = 28.81 dBm
        assert carrier.rstp_dbm(64.0) == pytest.approx(28.81, abs=0.01)

    def test_lp_rstp(self):
        assert NrCarrier().rstp_dbm(40.0) == pytest.approx(4.81, abs=0.01)

    def test_subcarrier_spacing(self):
        assert NrCarrier().subcarrier_spacing_hz == pytest.approx(100e6 / 3300)

    def test_throughput_scaling(self):
        assert NrCarrier().throughput_bps(5.84) == pytest.approx(584e6)

    def test_rejects_zero_subcarriers(self):
        with pytest.raises(ConfigurationError):
            NrCarrier(n_subcarriers=0)

    def test_rejects_bandwidth_above_carrier(self):
        with pytest.raises(ConfigurationError):
            NrCarrier(frequency_hz=50e6, bandwidth_hz=100e6)

    def test_rstp_helper_matches(self):
        assert rstp_dbm_from_eirp(64.0, 3300) == pytest.approx(
            NrCarrier().rstp_dbm(64.0))

    @given(st.integers(min_value=1, max_value=100_000))
    def test_rstp_below_eirp(self, n_sc):
        assert rstp_dbm_from_eirp(64.0, n_sc) <= 64.0


class TestNodes:
    def test_defaults_from_paper(self):
        site = HighPowerSite(position_m=0.0)
        assert site.eirp_dbm == constants.HP_EIRP_DBM
        node = RepeaterNode(position_m=625.0)
        assert node.noise_figure_db == constants.REPEATER_NOISE_FIGURE_DB

    def test_hp_rejects_implausible_eirp(self):
        with pytest.raises(ConfigurationError):
            HighPowerSite(position_m=0.0, eirp_dbm=90.0)

    def test_lp_rejects_implausible_eirp(self):
        with pytest.raises(ConfigurationError):
            RepeaterNode(position_m=0.0, eirp_dbm=60.0)

    def test_donor_rejects_negative_indices(self):
        with pytest.raises(ConfigurationError):
            DonorNode(position_m=0.0, serves_node_indices=(-1,))


class TestNoise:
    def test_terminal_noise(self):
        # -132 dBm + 5 dB NF = -127 dBm per subcarrier.
        assert thermal_noise_dbm() == pytest.approx(-127.0)

    def test_fronthaul_models_flagged(self):
        assert not RepeaterNoiseModel.PAPER.uses_fronthaul
        assert RepeaterNoiseModel.FRONTHAUL_STAR.uses_fronthaul
        assert RepeaterNoiseModel.FRONTHAUL_CHAIN.uses_fronthaul


class TestSnrProfile:
    def test_fig3_min_snr_above_peak_threshold(self, fig3_layout):
        profile = compute_snr_profile(fig3_layout)
        assert profile.min_snr_db > 29.30

    def test_symmetric_layout_symmetric_profile(self, fig3_layout):
        profile = compute_snr_profile(fig3_layout)
        snr = profile.snr_db
        assert np.allclose(snr, snr[::-1], atol=0.02)

    def test_hp_curve_drops_below_100dbm_in_first_half(self, fig3_layout):
        # The paper's Fig. 3 narrative.
        profile = compute_snr_profile(fig3_layout)
        hp_left = profile.source_rsrp_dbm[0]
        below = profile.positions_m[hp_left < -100.0]
        assert below.size > 0
        assert below[0] < fig3_layout.isd_m / 2

    def test_source_count(self, fig3_layout):
        profile = compute_snr_profile(fig3_layout)
        assert profile.source_rsrp_dbm.shape[0] == 2 + 8

    def test_total_signal_above_each_source(self, fig3_layout):
        profile = compute_snr_profile(fig3_layout)
        assert np.all(profile.total_signal_dbm >= profile.source_rsrp_dbm.max(axis=0) - 1e-9)

    def test_repeater_peaks_visible(self, fig3_layout):
        # Total signal should peak near each repeater position.
        profile = compute_snr_profile(fig3_layout)
        for pos in fig3_layout.repeater_positions_m:
            idx = np.argmin(np.abs(profile.positions_m - pos))
            window = profile.total_signal_dbm[max(0, idx - 100):idx + 100]
            assert profile.total_signal_dbm[idx] >= np.max(window) - 3.0

    def test_paper_noise_model_nearly_thermal(self, fig3_layout):
        profile = compute_snr_profile(fig3_layout)
        # Literal Eq. 2 repeater noise is negligible: total noise ~ -127 dBm.
        assert np.max(profile.total_noise_dbm) == pytest.approx(-127.0, abs=0.01)

    def test_fronthaul_noise_raises_floor(self, fig3_layout):
        params = LinkParams(repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR)
        profile = compute_snr_profile(fig3_layout, params)
        assert np.max(profile.total_noise_dbm) > -127.0 + 0.5

    def test_fronthaul_noise_lowers_min_snr(self, fig3_layout):
        base = compute_snr_profile(fig3_layout).min_snr_db
        fh = compute_snr_profile(
            fig3_layout,
            LinkParams(repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR)).min_snr_db
        assert fh < base

    def test_chain_quieter_than_star_for_wide_fields(self):
        # Relaying over short hops beats one long donor shot when fronthaul
        # SNR scales with d^-2: the chain's accumulated noise stays below the
        # star's far-node noise for wide repeater fields.
        layout = CorridorLayout.with_uniform_repeaters(2650.0, 10)
        star = compute_snr_profile(layout, LinkParams(
            repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_STAR))
        chain = compute_snr_profile(layout, LinkParams(
            repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_CHAIN))
        assert np.max(chain.total_noise_dbm) <= np.max(star.total_noise_dbm) + 1e-9
        assert chain.min_snr_db >= star.min_snr_db - 1e-9

    def test_conventional_layout_no_repeater_noise(self, conventional_layout):
        profile = compute_snr_profile(conventional_layout)
        assert np.allclose(profile.total_noise_dbm, -127.0, atol=1e-9)

    def test_snr_at_position(self, conventional_layout):
        profile = compute_snr_profile(conventional_layout)
        mid = profile.snr_at(250.0)
        assert mid == pytest.approx(np.min(profile.snr_db), abs=0.2)

    def test_conventional_midpoint_snr(self, conventional_layout):
        # Validated hand-calculation: ~34.5 dB at the 250 m midpoint.
        profile = compute_snr_profile(conventional_layout)
        assert profile.snr_at(250.0) == pytest.approx(34.5, abs=0.5)

    def test_rejects_zero_resolution(self, conventional_layout):
        with pytest.raises(ConfigurationError):
            compute_snr_profile(conventional_layout, resolution_m=0.0)

    def test_rejects_repeater_outside_segment(self):
        layout = CorridorLayout(isd_m=1000.0, repeater_positions_m=(500.0,))
        bad = CorridorLayout.__new__(CorridorLayout)
        object.__setattr__(bad, "isd_m", 1000.0)
        object.__setattr__(bad, "repeater_positions_m", (1500.0,))
        with pytest.raises(GeometryError):
            compute_snr_profile(bad)
        # sanity: the good layout works
        compute_snr_profile(layout, resolution_m=10.0)

    def test_coarse_resolution_close_to_fine(self, fig3_layout):
        fine = compute_snr_profile(fig3_layout, resolution_m=1.0).min_snr_db
        coarse = compute_snr_profile(fig3_layout, resolution_m=5.0).min_snr_db
        assert coarse == pytest.approx(fine, abs=0.1)

    @settings(deadline=None, max_examples=20)
    @given(st.floats(min_value=600.0, max_value=3000.0))
    def test_more_repeaters_never_hurt_snr(self, isd):
        with_two = CorridorLayout.with_uniform_repeaters(isd, 2)
        with_one = CorridorLayout(isd_m=isd,
                                  repeater_positions_m=(with_two.repeater_positions_m[0],))
        snr1 = compute_snr_profile(with_one, resolution_m=5.0)
        snr2 = compute_snr_profile(with_two, resolution_m=5.0)
        # Under the PAPER noise model, adding a transmitter only adds signal.
        assert np.all(snr2.snr_db >= snr1.snr_db - 1e-6)

    def test_higher_eirp_higher_snr(self, conventional_layout):
        base = compute_snr_profile(conventional_layout, LinkParams()).min_snr_db
        hot = compute_snr_profile(
            conventional_layout, LinkParams(hp_eirp_dbm=67.0)).min_snr_db
        assert hot == pytest.approx(base + 3.0, abs=0.01)

    def test_mean_snr_above_min(self, fig3_layout):
        profile = compute_snr_profile(fig3_layout)
        assert profile.mean_snr_db > profile.min_snr_db


class TestChainHopAssignment:
    """FRONTHAUL_CHAIN relay geometry, pinned for an asymmetric field."""

    def test_asymmetric_field_hops(self):
        from repro.radio.link import chain_hop_assignment

        layout = CorridorLayout(2400.0, (300.0, 500.0, 2000.0))
        hops, first_hop, spacing = chain_hop_assignment(layout)
        # Nodes at 300 m and 500 m chain from the left mast (ranks 0 and 1);
        # the node at 2000 m is adjacent to the right mast (rank 0).
        assert hops.tolist() == [0.0, 1.0, 0.0]
        # Hop length is the smallest node gap (500 -> 300).
        assert spacing == 200.0
        # First hop: donor-to-chain-start gap, minus the accumulated hops.
        assert first_hop.tolist() == [300.0, 300.0, 400.0]

    def test_symmetric_field_splits_between_masts(self):
        from repro.radio.link import chain_hop_assignment

        layout = CorridorLayout.with_uniform_repeaters(2400.0, 8)
        hops, first_hop, spacing = chain_hop_assignment(layout)
        assert spacing == 200.0
        # Four nodes chain from each mast with hop counts 0..3.
        assert hops.tolist() == [0.0, 1.0, 2.0, 3.0, 3.0, 2.0, 1.0, 0.0]
        # Every chain starts at the 500 m edge gap.
        assert first_hop.tolist() == pytest.approx([500.0] * 8)

    def test_single_node_uses_default_spacing(self):
        from repro.radio.link import chain_hop_assignment

        layout = CorridorLayout(1000.0, (400.0,))
        hops, first_hop, spacing = chain_hop_assignment(layout)
        assert hops.tolist() == [0.0]
        assert first_hop.tolist() == [400.0]
        assert spacing == constants.LP_NODE_SPACING_M

    def test_chain_noise_matches_assignment(self):
        """The chain noise term must be rebuildable from the hop assignment."""
        from repro.propagation.fronthaul import FronthaulBudget
        from repro.radio.link import chain_hop_assignment

        layout = CorridorLayout(2400.0, (300.0, 500.0, 2000.0))
        link = LinkParams(
            repeater_noise_model=RepeaterNoiseModel.FRONTHAUL_CHAIN)
        profile = compute_snr_profile(layout, link, resolution_m=5.0)

        hops, first_hop, spacing = chain_hop_assignment(layout)
        budget = FronthaulBudget(link.fronthaul)
        snr_fh = budget.chain_output_snr_linear(first_hop, hops, spacing)
        rstp_mw = 10.0 ** (link.lp_rstp_dbm / 10.0)
        positions = profile.positions_m
        att = np.stack([
            link.lp_friis().attenuation_linear(np.abs(positions - rp))
            for rp in layout.repeater_positions_m])
        expected_mw = (10.0 ** (link.terminal_noise_dbm / 10.0)
                       + np.sum((rstp_mw / snr_fh)[:, None] / att, axis=0))
        assert profile.total_noise_dbm == pytest.approx(
            10.0 * np.log10(expected_mw), abs=1e-9)

"""Throughput profile along the track: SNR profile x Shannon model x carrier."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capacity.shannon import TruncatedShannonModel
from repro.radio.carrier import NrCarrier
from repro.radio.link import SnrProfile

__all__ = ["ThroughputProfile", "throughput_profile"]


@dataclass(frozen=True)
class ThroughputProfile:
    """Throughput along a corridor segment.

    ``throughput_bps`` is the carrier-level throughput at each grid position;
    summary statistics answer the paper's questions (does every point sustain
    the 5G NR peak; what is the average capacity a traversing train sees).
    """

    positions_m: np.ndarray
    spectral_efficiency_bps_hz: np.ndarray
    throughput_bps: np.ndarray
    model: TruncatedShannonModel
    carrier: NrCarrier = field(default_factory=NrCarrier)

    @property
    def min_bps(self) -> float:
        """Worst-case throughput along the segment."""
        return float(np.min(self.throughput_bps))

    @property
    def mean_bps(self) -> float:
        """Position-averaged throughput — what a constant-speed train averages."""
        return float(np.mean(self.throughput_bps))

    @property
    def peak_bps(self) -> float:
        """Carrier peak throughput (model ceiling x bandwidth)."""
        return float(self.model.max_bps_hz * self.carrier.bandwidth_hz)

    @property
    def sustains_peak_everywhere(self) -> bool:
        """True when every position runs at the model's peak efficiency."""
        return bool(np.all(self.spectral_efficiency_bps_hz >= self.model.max_bps_hz - 1e-12))

    def peak_fraction(self) -> float:
        """Fraction of track positions that sustain peak throughput."""
        at_peak = self.spectral_efficiency_bps_hz >= self.model.max_bps_hz - 1e-12
        return float(np.mean(at_peak))


def throughput_profile(snr: SnrProfile,
                       model: TruncatedShannonModel | None = None,
                       carrier: NrCarrier | None = None) -> ThroughputProfile:
    """Map an SNR profile to a throughput profile."""
    model = model or TruncatedShannonModel()
    carrier = carrier or NrCarrier()
    eff = model.spectral_efficiency(snr.snr_db)
    return ThroughputProfile(
        positions_m=snr.positions_m,
        spectral_efficiency_bps_hz=eff,
        throughput_bps=eff * carrier.bandwidth_hz,
        model=model,
        carrier=carrier,
    )

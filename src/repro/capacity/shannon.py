"""Truncated Shannon bound — 3GPP TR 36.942 Annex A.2.

    Thr(SNR) = 0                      for SNR < SNR_min
             = alpha * log2(1 + SNR)  for SNR_min <= SNR < SNR_max
             = Thr_max                for SNR >= SNR_max

with ``SNR_max`` implicitly defined by ``alpha * log2(1 + SNR_max) = Thr_max``.
The paper uses ``alpha = 0.6`` and ``Thr_max = 5.84 bps/Hz``, which puts the
peak-throughput threshold at 29.30 dB (the "SNR > 29 dB" criterion of
Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["TruncatedShannonModel", "peak_snr_threshold_db"]


def peak_snr_threshold_db(alpha: float = constants.THROUGHPUT_ALPHA,
                          max_bps_hz: float = constants.THROUGHPUT_MAX_BPS_HZ) -> float:
    """SNR (dB) above which the truncated Shannon bound saturates at its peak."""
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    snr_linear = 2.0 ** (max_bps_hz / alpha) - 1.0
    return float(10.0 * np.log10(snr_linear))


@dataclass(frozen=True)
class TruncatedShannonModel:
    """Calibrated link-level capacity model.

    Attributes
    ----------
    alpha:
        Attenuation factor representing implementation losses.
    max_bps_hz:
        Hard ceiling on spectral efficiency (5G NR peak in the paper).
    min_snr_db:
        Below this SNR the link delivers zero throughput (TR 36.942: -10 dB).
    """

    alpha: float = constants.THROUGHPUT_ALPHA
    max_bps_hz: float = constants.THROUGHPUT_MAX_BPS_HZ
    min_snr_db: float = constants.THROUGHPUT_MIN_SNR_DB

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.max_bps_hz <= 0:
            raise ConfigurationError(f"max spectral efficiency must be positive, got {self.max_bps_hz}")

    @property
    def peak_snr_db(self) -> float:
        """SNR at which the model saturates (29.30 dB with paper defaults)."""
        return peak_snr_threshold_db(self.alpha, self.max_bps_hz)

    def spectral_efficiency(self, snr_db):
        """Spectral efficiency in bps/Hz for scalar or array SNR (dB)."""
        snr = np.asarray(snr_db, dtype=float)
        linear = 10.0 ** (snr / 10.0)
        eff = self.alpha * np.log2(1.0 + linear)
        eff = np.minimum(eff, self.max_bps_hz)
        eff = np.where(snr < self.min_snr_db, 0.0, eff)
        return float(eff) if np.ndim(snr_db) == 0 else eff

    def is_peak(self, snr_db) -> bool | np.ndarray:
        """Whether the given SNR sustains peak throughput."""
        out = np.asarray(snr_db, dtype=float) >= self.peak_snr_db
        return bool(out) if np.ndim(snr_db) == 0 else out

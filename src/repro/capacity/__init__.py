"""Data-capacity estimation from SNR.

Implements the calibrated truncated Shannon bound of 3GPP TR 36.942 Annex A.2
with the paper's parameters (attenuation factor 0.6, maximum spectral
efficiency 5.84 bps/Hz) and helpers that turn an SNR profile along the track
into a throughput profile.
"""

from repro.capacity.shannon import TruncatedShannonModel, peak_snr_threshold_db
from repro.capacity.throughput import ThroughputProfile, throughput_profile

__all__ = [
    "TruncatedShannonModel",
    "peak_snr_threshold_db",
    "ThroughputProfile",
    "throughput_profile",
]

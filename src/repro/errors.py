"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Input validation raises the specific subclasses below
instead of bare ``ValueError`` where the error concerns domain semantics.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "InfeasibleError",
    "SimulationError",
    "StudyExecutionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A scenario or model parameter is invalid or inconsistent."""


class GeometryError(ReproError, ValueError):
    """A corridor layout is geometrically impossible (overlaps, out of range)."""


class InfeasibleError(ReproError):
    """An optimization found no feasible solution under the given constraints."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class StudyExecutionError(ReproError, RuntimeError):
    """A study shard exhausted its retry budget (crash/timeout/worker loss).

    Raised by the supervised runner when a shard keeps failing without an
    engine exception to re-raise — a hung worker cancelled by the shard
    timeout, or a worker process killed hard (OOM/SIGKILL).  Engine
    exceptions themselves are re-raised unchanged after the last attempt.
    """

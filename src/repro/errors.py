"""Exception hierarchy for :mod:`repro`.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Input validation raises the specific subclasses below
instead of bare ``ValueError`` where the error concerns domain semantics.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "InfeasibleError",
    "SimulationError",
    "StudyExecutionError",
    "ManifestError",
    "MergeValidationError",
    "ServiceError",
    "AdmissionError",
    "UnknownJobError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A scenario or model parameter is invalid or inconsistent."""


class GeometryError(ReproError, ValueError):
    """A corridor layout is geometrically impossible (overlaps, out of range)."""


class InfeasibleError(ReproError):
    """An optimization found no feasible solution under the given constraints.

    Diagnostic keyword arguments (e.g. the violated ``budget`` and the true
    ``minimum`` achievable) are stored in :attr:`details` and exposed as
    attributes, so callers can report *how far* a constraint set is from
    feasible without parsing the message.
    """

    def __init__(self, message: str, **details: object) -> None:
        super().__init__(message)
        self.details = details
        for key, value in details.items():
            setattr(self, key, value)


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class StudyExecutionError(ReproError, RuntimeError):
    """A study shard exhausted its retry budget (crash/timeout/worker loss).

    Raised by the supervised runner when a shard keeps failing without an
    engine exception to re-raise — a hung worker cancelled by the shard
    timeout, or a worker process killed hard (OOM/SIGKILL).  Engine
    exceptions themselves are re-raised unchanged after the last attempt.
    """


class ManifestError(ReproError, ValueError):
    """A shard manifest is malformed, unreadable or fails its signature.

    Raised by :mod:`repro.study.manifest` when a sidecar document cannot be
    parsed, misses required fields, declares an unsupported schema version,
    or its body no longer matches the embedded SHA-256 signature (a
    hand-edited or torn manifest).
    """


class MergeValidationError(ReproError, RuntimeError):
    """A distributed merge rejected its shard set before producing a table.

    Structured: :attr:`kind` names the violated invariant (``"spec_hash"``,
    ``"layout"``, ``"overlap"``, ``"missing"``, ``"checksum"``,
    ``"backend"`` or ``"crn"``) and :attr:`details` carries the evidence
    (the offending ranges, hashes or case indices), so callers — the CLI's
    exit-code mapping, the dist-smoke CI leg — can react without parsing
    the message.
    """

    def __init__(self, message: str, kind: str, **details: object) -> None:
        super().__init__(message)
        #: The violated merge invariant (see class docstring).
        self.kind = kind
        #: Structured evidence of the violation.
        self.details = details


class ServiceError(ReproError, RuntimeError):
    """Base class for scenario-planning service failures (:mod:`repro.service`)."""


class AdmissionError(ServiceError):
    """A job submission was refused by admission control (HTTP 429).

    Raised when the bounded job queue is at capacity or the submitting
    client already has its maximum number of jobs in flight.  Carries a
    ``retry_after_s`` hint the HTTP edge forwards as a ``Retry-After``
    header — overload is load-shed at the door, never queued unboundedly.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        #: Suggested wait before resubmitting [s] (``Retry-After`` header).
        self.retry_after_s = float(retry_after_s)


class UnknownJobError(ServiceError, KeyError):
    """A job id does not exist in the service's job store (HTTP 404)."""

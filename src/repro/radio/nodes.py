"""Node descriptions: high-power RRH sites, low-power repeaters, donor nodes.

These are pure radio/geometry descriptions; power-consumption behaviour lives
in :mod:`repro.power` and operational state in :mod:`repro.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["HighPowerSite", "RepeaterNode", "DonorNode"]


@dataclass(frozen=True)
class HighPowerSite:
    """A high-power RRH mast at ``position_m`` along the track.

    One mast carries :data:`repro.constants.RRH_PER_MAST` RRHs with back-to-back
    pencil-beam antennas; ``eirp_dbm`` is per antenna (the paper's 2500 W =
    64 dBm).
    """

    position_m: float
    eirp_dbm: float = constants.HP_EIRP_DBM
    calibration_db: float = constants.HP_CALIBRATION_DB

    def __post_init__(self) -> None:
        if self.eirp_dbm > 80.0:
            raise ConfigurationError(
                f"HP EIRP {self.eirp_dbm} dBm is implausible (>80 dBm); expected ~64 dBm")


@dataclass(frozen=True)
class RepeaterNode:
    """A low-power out-of-band amplify-and-forward service node.

    Mounted on existing catenary masts; transmits the down-converted cell
    signal with at most ``eirp_dbm`` (the paper's 10 W = 40 dBm).
    ``noise_figure_db`` is the repeater chain noise figure (8 dB).
    """

    position_m: float
    eirp_dbm: float = constants.LP_EIRP_DBM
    calibration_db: float = constants.LP_CALIBRATION_DB
    noise_figure_db: float = constants.REPEATER_NOISE_FIGURE_DB

    def __post_init__(self) -> None:
        if self.noise_figure_db < 0:
            raise ConfigurationError(f"noise figure must be >= 0 dB, got {self.noise_figure_db}")
        if self.eirp_dbm > 50.0:
            raise ConfigurationError(
                f"LP EIRP {self.eirp_dbm} dBm is implausible for a low-power node (>50 dBm)")


@dataclass(frozen=True)
class DonorNode:
    """A donor repeater node co-located with a high-power mast.

    Donor nodes up-convert the cell signal onto the mmWave fronthaul.  They do
    not radiate the service carrier, so they only matter for energy accounting
    and the fronthaul budget.
    """

    position_m: float
    serves_node_indices: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if any(i < 0 for i in self.serves_node_indices):
            raise ConfigurationError("served node indices must be >= 0")

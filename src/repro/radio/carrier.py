"""5G NR carrier description and per-subcarrier power accounting.

The paper computes everything per subcarrier: "the overall signal power must
be divided by the number of subcarriers to obtain the RSTP or RSRP", for a
100 MHz carrier with 3300 subcarriers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["NrCarrier", "rstp_dbm_from_eirp"]


def rstp_dbm_from_eirp(eirp_dbm: float, n_subcarriers: int) -> float:
    """Reference-signal transmit power per subcarrier from total EIRP."""
    if n_subcarriers <= 0:
        raise ConfigurationError(f"subcarrier count must be positive, got {n_subcarriers}")
    return eirp_dbm - 10.0 * np.log10(n_subcarriers)


@dataclass(frozen=True)
class NrCarrier:
    """A 5G NR carrier as used in the paper's capacity model.

    Attributes
    ----------
    frequency_hz:
        Center frequency of the (sub-6 GHz) service carrier.
    bandwidth_hz:
        Occupied bandwidth used to scale spectral efficiency to throughput.
    n_subcarriers:
        Number of subcarriers total power is divided across.
    """

    frequency_hz: float = constants.DEFAULT_CARRIER_FREQUENCY_HZ
    bandwidth_hz: float = constants.NR_CARRIER_BANDWIDTH_HZ
    n_subcarriers: int = constants.NR_SUBCARRIER_COUNT

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {self.frequency_hz}")
        if self.bandwidth_hz <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth_hz}")
        if self.n_subcarriers <= 0:
            raise ConfigurationError(f"subcarrier count must be positive, got {self.n_subcarriers}")
        if self.bandwidth_hz > self.frequency_hz:
            raise ConfigurationError("bandwidth cannot exceed the carrier frequency")

    @property
    def subcarrier_spacing_hz(self) -> float:
        """Implied subcarrier spacing (bandwidth / count)."""
        return self.bandwidth_hz / self.n_subcarriers

    def rstp_dbm(self, eirp_dbm: float) -> float:
        """Per-subcarrier RSTP for a node transmitting with ``eirp_dbm``."""
        return rstp_dbm_from_eirp(eirp_dbm, self.n_subcarriers)

    def throughput_bps(self, spectral_efficiency_bps_hz) -> float:
        """Scale a spectral efficiency to carrier throughput in bit/s."""
        return spectral_efficiency_bps_hz * self.bandwidth_hz

"""Radio layer: NR carrier accounting, node descriptions, noise, SNR profiles.

This package turns a corridor layout into the Eq. (2) SNR profile along the
track: per-subcarrier transmit powers (RSTP) from EIRP, calibrated attenuation
per node class, noise aggregation (terminal + repeater) and the resulting SNR.
"""

from repro.radio.carrier import NrCarrier, rstp_dbm_from_eirp
from repro.radio.nodes import DonorNode, HighPowerSite, RepeaterNode
from repro.radio.noise import RepeaterNoiseModel, thermal_noise_dbm
from repro.radio.link import LinkParams, SnrProfile, chain_hop_assignment, compute_snr_profile
from repro.radio.batch import evaluate_scenarios, min_snr_batch

__all__ = [
    "NrCarrier",
    "rstp_dbm_from_eirp",
    "HighPowerSite",
    "RepeaterNode",
    "DonorNode",
    "RepeaterNoiseModel",
    "thermal_noise_dbm",
    "LinkParams",
    "SnrProfile",
    "chain_hop_assignment",
    "compute_snr_profile",
    "evaluate_scenarios",
    "min_snr_batch",
]

"""Cell-border interference between adjacent BBU cells.

"a single cell from a BBU is already shared by multiple RRHs along a railway
track segment of several kilometers" (Section III).  Inside one stretched
cell all transmitters carry the same signal — no interference, which is the
corridor's architectural point.  But the line is partitioned into such cells
every few kilometres, and at the *border* between two cells the neighbour's
signal is co-channel interference.

This module computes the SINR dip at a cell border and how far from the
border the train drops below peak throughput — input for deciding cell sizes
and border placement (ideally at stations, where trains are slow and demand
handover anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.link import LinkParams, compute_snr_profile

__all__ = ["CellBorderProfile", "cell_border_sinr", "peak_outage_span_m"]


@dataclass(frozen=True)
class CellBorderProfile:
    """SINR around the border between two identical stretched cells.

    Position 0 is the border; negative positions belong to the serving cell.
    The serving cell's last mast is at ``-edge_offset_m``; the neighbour
    cell's first mast mirrors it at ``+edge_offset_m``.
    """

    positions_m: np.ndarray
    sinr_db: np.ndarray
    snr_no_interference_db: np.ndarray

    @property
    def border_sinr_db(self) -> float:
        """SINR exactly at the border (0 dB for identical cells)."""
        idx = int(np.argmin(np.abs(self.positions_m)))
        return float(self.sinr_db[idx])

    @property
    def min_sinr_db(self) -> float:
        return float(np.min(self.sinr_db))


def cell_border_sinr(edge_offset_m: float = 250.0,
                     link: LinkParams | None = None,
                     span_m: float = 1000.0,
                     resolution_m: float = 1.0,
                     isd_m: float = constants.CONVENTIONAL_ISD_M,
                     masts_per_cell: int = 6) -> CellBorderProfile:
    """SINR profile across the border of two identical corridor cells.

    Each cell contributes ``masts_per_cell`` masts at ``isd_m`` spacing; the
    cells' edge masts sit ``edge_offset_m`` from the border, mirrored.  All
    own-cell masts carry the *same* signal (one stretched cell, so they add
    constructively in power), all neighbour masts are co-channel
    interference; thermal noise per the usual terminal budget.
    """
    link = link or LinkParams()
    if edge_offset_m <= 0:
        raise ConfigurationError(f"edge offset must be positive, got {edge_offset_m}")
    if span_m <= 0 or resolution_m <= 0:
        raise ConfigurationError("span and resolution must be positive")
    if masts_per_cell < 1:
        raise ConfigurationError(f"need >= 1 mast per cell, got {masts_per_cell}")

    positions = np.arange(-span_m, 0.0, resolution_m)
    hp = link.hp_friis()

    serving_mw = np.zeros_like(positions)
    interferer_mw = np.zeros_like(positions)
    for k in range(masts_per_cell):
        own_mast = -edge_offset_m - k * isd_m
        neighbour_mast = edge_offset_m + k * isd_m
        own_dbm = hp.received_power_dbm(link.hp_rstp_dbm,
                                        np.abs(positions - own_mast))
        other_dbm = hp.received_power_dbm(link.hp_rstp_dbm,
                                          np.abs(positions - neighbour_mast))
        serving_mw += 10.0 ** (own_dbm / 10.0)
        interferer_mw += 10.0 ** (other_dbm / 10.0)

    noise_mw = 10.0 ** (link.terminal_noise_dbm / 10.0)
    sinr = 10.0 * np.log10(serving_mw / (noise_mw + interferer_mw))
    snr = 10.0 * np.log10(serving_mw / noise_mw)
    return CellBorderProfile(positions_m=positions, sinr_db=sinr,
                             snr_no_interference_db=snr)


def peak_outage_span_m(threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                       edge_offset_m: float = 250.0,
                       link: LinkParams | None = None,
                       span_m: float = 2000.0,
                       resolution_m: float = 1.0) -> float:
    """Length of track (per side) where the border dips below peak throughput.

    This is the stretch a train crosses below peak rate at each cell border —
    the cost of partitioning the corridor into BBU cells, amortized over the
    cell length when planning cell sizes.
    """
    profile = cell_border_sinr(edge_offset_m, link, span_m, resolution_m)
    below = profile.sinr_db < threshold_db
    return float(np.count_nonzero(below) * resolution_m)

"""Uplink link budget — the reverse direction of the corridor.

The paper treats the uplink "similarly, but in the reverse direction"
(Section III): the terminal transmits, repeaters pick the signal up, shift it
to the mmWave fronthaul and the donor injects it into the serving cell.  The
downlink analysis carries the capacity argument, but a deployment is only
valid when the uplink closes too — this module checks that.

Model: the terminal transmits with ``ue_eirp_dbm`` (23 dBm power class 3)
spread over the subcarriers of its uplink allocation; the receiving node
(HP RRH or repeater service antenna) sees the same calibrated port-to-port
attenuation as the downlink (antenna reciprocity), with the *base-station*
noise figure at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.carrier import NrCarrier
from repro.radio.link import LinkParams

__all__ = ["UplinkParams", "UplinkProfile", "compute_uplink_profile"]

#: 3GPP power class 3 terminal: 23 dBm total transmit power.
UE_TX_POWER_DBM = 23.0
#: Typical macro receiver noise figure.
BS_NOISE_FIGURE_DB = 3.0
#: Subcarriers of a cell-edge uplink allocation (11 PRB at 30 kHz, ~4 MHz).
#: Power-controlled UEs at the cell edge concentrate their 23 dBm in a
#: narrow allocation — this is what lets the long corridor uplink close.
DEFAULT_UL_SUBCARRIERS = 132


@dataclass(frozen=True)
class UplinkParams:
    """Uplink budget parameters.

    ``ul_subcarriers`` is the terminal's allocation: uplink power per
    subcarrier is total UE power divided by the allocated subcarriers only
    (the UE concentrates its power, unlike the always-full downlink grid).
    """

    link: LinkParams = field(default_factory=LinkParams)
    ue_tx_power_dbm: float = UE_TX_POWER_DBM
    ul_subcarriers: int = DEFAULT_UL_SUBCARRIERS
    bs_noise_figure_db: float = BS_NOISE_FIGURE_DB
    repeater_ul_noise_figure_db: float = constants.REPEATER_NOISE_FIGURE_DB

    def __post_init__(self) -> None:
        if not 0 < self.ul_subcarriers <= self.link.carrier.n_subcarriers:
            raise ConfigurationError(
                f"uplink allocation {self.ul_subcarriers} must be within the "
                f"carrier's {self.link.carrier.n_subcarriers} subcarriers")
        if self.ue_tx_power_dbm > 33.0:
            raise ConfigurationError(
                f"UE power {self.ue_tx_power_dbm} dBm exceeds any 3GPP power class")

    @property
    def ue_rstp_dbm(self) -> float:
        """UE transmit power per allocated subcarrier."""
        return self.ue_tx_power_dbm - 10.0 * np.log10(self.ul_subcarriers)


@dataclass(frozen=True)
class UplinkProfile:
    """Uplink SNR along the track (best serving receiver per position)."""

    positions_m: np.ndarray
    snr_hp_db: np.ndarray          # best HP mast receiver
    snr_repeater_db: np.ndarray    # best repeater receiver (-inf when none)
    snr_best_db: np.ndarray        # best of all receivers

    @property
    def min_snr_db(self) -> float:
        return float(np.min(self.snr_best_db))

    def closes_at(self, required_snr_db: float) -> bool:
        """Whether the uplink meets an SNR target everywhere."""
        return bool(np.all(self.snr_best_db >= required_snr_db))


def compute_uplink_profile(layout: CorridorLayout,
                           params: UplinkParams | None = None,
                           resolution_m: float = 1.0) -> UplinkProfile:
    """Uplink SNR profile: terminal at each position, best receiving node.

    Repeater reception adds the repeater's UL noise figure; the fronthaul
    back to the donor is assumed transparent (its budget is checked by
    :mod:`repro.propagation.fronthaul`).
    """
    params = params or UplinkParams()
    if resolution_m <= 0:
        raise ConfigurationError(f"resolution must be positive, got {resolution_m}")
    link = params.link
    positions = np.arange(resolution_m, layout.isd_m, resolution_m)
    if positions.size == 0:
        raise ConfigurationError(f"no evaluation points for ISD {layout.isd_m}")

    hp = link.hp_friis()
    lp = link.lp_friis()
    noise_floor = link.noise_floor_rsrp_dbm

    # Receive SNR at the two HP masts.
    hp_noise = noise_floor + params.bs_noise_figure_db
    rx_left = params.ue_rstp_dbm - hp.attenuation_db(positions)
    rx_right = params.ue_rstp_dbm - hp.attenuation_db(layout.isd_m - positions)
    snr_hp = np.maximum(rx_left, rx_right) - hp_noise

    # Receive SNR at the best repeater (service antenna, repeater NF).
    if layout.n_repeaters:
        lp_noise = noise_floor + params.repeater_ul_noise_figure_db
        rx_lp = np.full(positions.size, -np.inf)
        for pos in layout.repeater_positions_m:
            rx = params.ue_rstp_dbm - lp.attenuation_db(np.abs(positions - pos))
            rx_lp = np.maximum(rx_lp, rx)
        snr_lp = rx_lp - lp_noise
    else:
        snr_lp = np.full(positions.size, -np.inf)

    return UplinkProfile(
        positions_m=positions,
        snr_hp_db=snr_hp,
        snr_repeater_db=snr_lp,
        snr_best_db=np.maximum(snr_hp, snr_lp),
    )

"""SNR profile along the railway track — Eq. (2) of the paper.

Given a corridor layout (two high-power sites ``d_ISD`` apart plus N low-power
repeater nodes in between) this module computes, for every track position:

* the RSRP of each individual source (Fig. 3's blue/orange/yellow curves),
* the total signal power (Eq. 2 numerator),
* the total noise power (Eq. 2 denominator) under the selected repeater-noise
  model, and
* the SNR.

All computations are vectorized over track positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.errors import ConfigurationError, GeometryError
from repro.propagation.friis import CalibratedFriis
from repro.propagation.fronthaul import FronthaulBudget, FronthaulParams
from repro.radio.carrier import NrCarrier
from repro.radio.noise import RepeaterNoiseModel, thermal_noise_dbm

__all__ = ["LinkParams", "SnrProfile", "chain_hop_assignment", "compute_snr_profile"]


@dataclass(frozen=True)
class LinkParams:
    """Everything Eq. (1) and Eq. (2) need.

    Defaults are the paper's published constants; see DESIGN.md for the
    provenance of each value.
    """

    carrier: NrCarrier = field(default_factory=NrCarrier)
    hp_eirp_dbm: float = constants.HP_EIRP_DBM
    lp_eirp_dbm: float = constants.LP_EIRP_DBM
    hp_calibration_db: float = constants.HP_CALIBRATION_DB
    lp_calibration_db: float = constants.LP_CALIBRATION_DB
    noise_floor_rsrp_dbm: float = constants.NOISE_FLOOR_RSRP_DBM
    terminal_noise_figure_db: float = constants.TERMINAL_NOISE_FIGURE_DB
    repeater_noise_figure_db: float = constants.REPEATER_NOISE_FIGURE_DB
    repeater_noise_model: RepeaterNoiseModel = RepeaterNoiseModel.PAPER
    fronthaul: FronthaulParams = field(default_factory=FronthaulParams)

    @property
    def hp_rstp_dbm(self) -> float:
        """Per-subcarrier RSTP of a high-power RRH antenna."""
        return self.carrier.rstp_dbm(self.hp_eirp_dbm)

    @property
    def lp_rstp_dbm(self) -> float:
        """Per-subcarrier RSTP of a low-power repeater node."""
        return self.carrier.rstp_dbm(self.lp_eirp_dbm)

    @property
    def terminal_noise_dbm(self) -> float:
        """Terminal noise per subcarrier (thermal floor x terminal NF)."""
        return thermal_noise_dbm(self.noise_floor_rsrp_dbm, self.terminal_noise_figure_db)

    def hp_friis(self) -> CalibratedFriis:
        """Calibrated attenuation law of a high-power site."""
        return CalibratedFriis(self.carrier.frequency_hz, self.hp_calibration_db)

    def lp_friis(self) -> CalibratedFriis:
        """Calibrated attenuation law of a low-power repeater."""
        return CalibratedFriis(self.carrier.frequency_hz, self.lp_calibration_db)


@dataclass(frozen=True)
class SnrProfile:
    """Result of an Eq. (2) evaluation over a position grid.

    All per-source arrays are indexed ``[source, position]``; sources are
    ordered: HP left, HP right, then repeaters in layout order.
    """

    positions_m: np.ndarray
    source_rsrp_dbm: np.ndarray
    total_signal_dbm: np.ndarray
    total_noise_dbm: np.ndarray
    snr_db: np.ndarray

    @property
    def min_snr_db(self) -> float:
        """Worst-case SNR along the track (the optimizer's constraint)."""
        return float(np.min(self.snr_db))

    @property
    def mean_snr_db(self) -> float:
        """Position-averaged SNR in dB (average of dB values)."""
        return float(np.mean(self.snr_db))

    def snr_at(self, position_m: float) -> float:
        """SNR at the grid point nearest to ``position_m``."""
        idx = int(np.argmin(np.abs(self.positions_m - position_m)))
        return float(self.snr_db[idx])


def chain_hop_assignment(layout) -> tuple[np.ndarray, np.ndarray, float]:
    """FRONTHAUL_CHAIN relay geometry of a layout.

    Nodes relay from the nearest HP mast inward; the node k hops away from its
    donor accumulates k extra hops of node spacing.  Returns
    ``(hop_counts, first_hop_m, hop_length_m)`` where ``hop_counts`` is the
    number of extra relay hops per node (0 for the node adjacent to its
    donor), ``first_hop_m`` the donor-to-first-node gap of each node's chain
    (clamped to >= 1 m) and ``hop_length_m`` the uniform hop length.
    """
    positions = np.asarray(layout.repeater_positions_m, dtype=float)
    n_rep = positions.size
    dist_left = positions - 0.0
    dist_right = layout.isd_m - positions
    served_left = dist_left <= dist_right
    idx_sorted_left = np.argsort(dist_left)
    idx_sorted_right = np.argsort(dist_right)
    hop_rank_left = np.empty(n_rep, dtype=int)
    hop_rank_right = np.empty(n_rep, dtype=int)
    hop_rank_left[idx_sorted_left] = np.arange(n_rep)
    hop_rank_right[idx_sorted_right] = np.arange(n_rep)
    hops = np.where(served_left, hop_rank_left, hop_rank_right).astype(float)
    spacing = _chain_spacing(positions)
    first_hop = np.where(served_left, dist_left - hops * spacing,
                         dist_right - hops * spacing)
    first_hop = np.maximum(first_hop, 1.0)
    return hops, first_hop, spacing


def _repeater_noise_mw(layout, params: LinkParams, attenuation_linear: np.ndarray) -> np.ndarray:
    """Noise received from all repeaters, per model, in mW per subcarrier.

    ``attenuation_linear`` is the [repeater, position] service-path attenuation.
    """
    model = params.repeater_noise_model
    n_rep = attenuation_linear.shape[0]
    if n_rep == 0:
        return np.zeros(attenuation_linear.shape[1])

    if model is RepeaterNoiseModel.PAPER:
        # N_LP,n(d) = N_RSRP * NF_LP / L_LP,n(d)  (literal Eq. 2 term)
        out_port_mw = 10.0 ** ((params.noise_floor_rsrp_dbm + params.repeater_noise_figure_db) / 10.0)
        return np.sum(out_port_mw / attenuation_linear, axis=0)

    # Amplify-and-forward: radiated noise = RSTP / fronthaul SNR per node.
    budget = FronthaulBudget(params.fronthaul)
    positions = np.asarray(layout.repeater_positions_m, dtype=float)
    dist_left = positions - 0.0
    dist_right = layout.isd_m - positions
    nearest = np.minimum(dist_left, dist_right)
    if model is RepeaterNoiseModel.FRONTHAUL_STAR:
        snr_fh = budget.snr_linear_at(nearest)
    else:
        hops, first_hop, spacing = chain_hop_assignment(layout)
        snr_fh = budget.chain_output_snr_linear(first_hop, hops, spacing)
    rstp_mw = 10.0 ** (params.lp_rstp_dbm / 10.0)
    radiated_noise_mw = rstp_mw / snr_fh  # at each repeater's output port
    return np.sum(radiated_noise_mw[:, None] / attenuation_linear, axis=0)


def _chain_spacing(positions: np.ndarray) -> float:
    """Hop length of a daisy chain: the (uniform) node spacing."""
    if positions.size < 2:
        return float(constants.LP_NODE_SPACING_M)
    return float(np.min(np.diff(np.sort(positions))))


def compute_snr_profile(layout, params: LinkParams | None = None,
                        resolution_m: float = 1.0) -> SnrProfile:
    """Evaluate Eq. (2) over the full track segment of ``layout``.

    Parameters
    ----------
    layout:
        A :class:`repro.corridor.layout.CorridorLayout` (duck-typed: needs
        ``isd_m`` and ``repeater_positions_m``).
    params:
        Link parameters; paper defaults when omitted.
    resolution_m:
        Position grid step.  1 m reproduces the paper's smooth curves.
    """
    params = params or LinkParams()
    if resolution_m <= 0:
        raise ConfigurationError(f"resolution must be positive, got {resolution_m}")
    isd = float(layout.isd_m)
    if isd <= 0:
        raise GeometryError(f"ISD must be positive, got {isd}")
    repeaters = np.asarray(layout.repeater_positions_m, dtype=float)
    if repeaters.size and (np.any(repeaters <= 0.0) or np.any(repeaters >= isd)):
        raise GeometryError("repeater positions must lie strictly inside (0, ISD)")

    positions = np.arange(resolution_m, isd, resolution_m)
    if positions.size == 0:
        raise GeometryError(f"no evaluation points for ISD {isd} at resolution {resolution_m}")

    hp = params.hp_friis()
    lp = params.lp_friis()

    source_positions = [0.0, isd] + list(repeaters)
    n_sources = len(source_positions)
    rsrp_dbm = np.empty((n_sources, positions.size))
    rsrp_dbm[0] = hp.received_power_dbm(params.hp_rstp_dbm, np.abs(positions - 0.0))
    rsrp_dbm[1] = hp.received_power_dbm(params.hp_rstp_dbm, np.abs(positions - isd))

    lp_attenuation = np.empty((repeaters.size, positions.size))
    for i, rp in enumerate(repeaters):
        att_db = lp.attenuation_db(np.abs(positions - rp))
        lp_attenuation[i] = 10.0 ** (att_db / 10.0)
        rsrp_dbm[2 + i] = params.lp_rstp_dbm - att_db

    signal_mw = np.sum(10.0 ** (rsrp_dbm / 10.0), axis=0)
    noise_mw = 10.0 ** (params.terminal_noise_dbm / 10.0) + _repeater_noise_mw(
        layout, params, lp_attenuation)

    snr_db = 10.0 * np.log10(signal_mw / noise_mw)
    return SnrProfile(
        positions_m=positions,
        source_rsrp_dbm=rsrp_dbm,
        total_signal_dbm=10.0 * np.log10(signal_mw),
        total_noise_dbm=10.0 * np.log10(noise_mw),
        snr_db=snr_db,
    )

"""Noise models for the Eq. (2) SNR denominator.

The total noise at track position ``d`` is

    N(d) = N_RSRP * NF_MT + sum_n N_LP,n(d)

where ``N_RSRP`` is the thermal floor per subcarrier and ``N_LP,n`` the noise
received from the n-th repeater.  Two repeater-noise models are provided:

``PAPER``
    The literal formula printed in the paper,
    ``N_LP,n(d) = N_RSRP * NF_LP / L_LP,n(d)``: the repeater's input-referred
    noise attenuated by the service path loss.  Numerically this is far below
    the terminal noise floor (~-230 dBm), so repeater noise is effectively
    absent.  This is the library default because it is what the paper states.

``FRONTHAUL_STAR`` / ``FRONTHAUL_CHAIN``
    Physically motivated amplify-and-forward model: the repeater re-amplifies
    its (fronthaul-limited) input noise along with the signal, so the noise it
    radiates is ``P_LP,RSTP / SNR_fronthaul`` per subcarrier, attenuated by the
    same service path loss as the signal.  The fronthaul SNR comes from
    :class:`repro.propagation.fronthaul.FronthaulBudget`.  This reproduces the
    diminishing ISD returns of the paper's registered list (DESIGN.md #4.1).
"""

from __future__ import annotations

import enum

from repro import constants

__all__ = ["RepeaterNoiseModel", "thermal_noise_dbm"]


class RepeaterNoiseModel(enum.Enum):
    """Which repeater-noise formulation the link layer applies."""

    PAPER = "paper"
    FRONTHAUL_STAR = "fronthaul_star"
    FRONTHAUL_CHAIN = "fronthaul_chain"

    @property
    def uses_fronthaul(self) -> bool:
        """True when the model needs a donor fronthaul budget."""
        return self in (RepeaterNoiseModel.FRONTHAUL_STAR, RepeaterNoiseModel.FRONTHAUL_CHAIN)


def thermal_noise_dbm(noise_floor_rsrp_dbm: float = constants.NOISE_FLOOR_RSRP_DBM,
                      noise_figure_db: float = constants.TERMINAL_NOISE_FIGURE_DB) -> float:
    """Terminal noise power per subcarrier: thermal floor x noise figure."""
    return noise_floor_rsrp_dbm + noise_figure_db

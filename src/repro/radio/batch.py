"""Batched Eq. (2) evaluation over scenario grids.

The scalar path (:func:`repro.radio.link.compute_snr_profile`) evaluates one
layout at a time; the paper's sweeps call it hundreds of times.  This module
evaluates a whole batch of :class:`repro.scenario.Scenario` objects at once:

* scenarios are deduplicated by content hash and served from an optional
  :class:`repro.scenario.ProfileCache`;
* attenuation is computed **once per unique geometry** — scenarios that differ
  only in link scalars (EIRP, noise figures) share the same attenuation
  arrays;
* unique geometries with the same source count are stacked into 3-D tensors
  indexed ``[scenario, source, position]`` (position-padded to the longest
  grid) so the transcendental work (log10 / 10**x) runs as a handful of large
  vectorized passes instead of one small pass per candidate;
* large batches can optionally be sharded across threads (``jobs``).

Every profile returned here is **bit-identical** to what the scalar path
produces for the same scenario: the batched kernel performs exactly the same
elementwise operations in the same order (see ``tests/test_batch.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.propagation.friis import friis_constant_db
from repro.radio.link import SnrProfile, _repeater_noise_mw
from repro.scenario.cache import ProfileCache
from repro.scenario.spec import Scenario

__all__ = ["evaluate_scenarios", "min_snr_batch"]


def _geometry_key(sc: Scenario) -> tuple:
    """Identity of everything the attenuation arrays depend on."""
    return (sc.resolution_m, sc.layout.isd_m, sc.layout.repeater_positions_m,
            sc.link.carrier.frequency_hz, sc.link.hp_calibration_db,
            sc.link.lp_calibration_db)


def _evaluate_group(scenarios: list[Scenario]) -> list[SnrProfile]:
    """Batched kernel for scenarios sharing one source count.

    All heavy elementwise math runs on stacked ``[scenario, source, position]``
    tensors; attenuation is computed once per unique geometry and broadcast to
    the scenarios that share it.
    """
    # -- unique geometries and their position grids -------------------------
    geo_keys: dict[tuple, int] = {}
    geo_scenarios: list[Scenario] = []   # one representative per geometry
    geo_index = np.empty(len(scenarios), dtype=int)
    for s, sc in enumerate(scenarios):
        key = _geometry_key(sc)
        if key not in geo_keys:
            geo_keys[key] = len(geo_scenarios)
            geo_scenarios.append(sc)
        geo_index[s] = geo_keys[key]

    positions: list[np.ndarray] = []
    for sc in geo_scenarios:
        pos = sc.positions_m()
        if pos.size == 0:
            raise GeometryError(
                f"no evaluation points for ISD {sc.layout.isd_m} at "
                f"resolution {sc.resolution_m}")
        positions.append(pos)

    n_geo = len(geo_scenarios)
    n_src = 2 + geo_scenarios[0].layout.n_repeaters
    p_max = max(pos.size for pos in positions)

    # -- stacked distances, padded with the 1 m clamp value -----------------
    dist = np.ones((n_geo, n_src, p_max))
    for g, (sc, pos) in enumerate(zip(geo_scenarios, positions)):
        isd = float(sc.layout.isd_m)
        valid = pos.size
        dist[g, 0, :valid] = np.abs(pos - 0.0)
        dist[g, 1, :valid] = np.abs(pos - isd)
        for i, rp in enumerate(sc.layout.repeater_positions_m):
            dist[g, 2 + i, :valid] = np.abs(pos - rp)

    # -- one attenuation computation per unique geometry --------------------
    # Same operation order as CalibratedFriis.attenuation_db so every element
    # is bit-identical to the scalar path:
    #   (friis_constant + 20 log10(max(d, 1))) + calibration.
    friis_const = np.array([friis_constant_db(sc.link.carrier.frequency_hz)
                            for sc in geo_scenarios])
    calib = np.empty((n_geo, n_src, 1))
    for g, sc in enumerate(geo_scenarios):
        calib[g, 0:2, 0] = sc.link.hp_calibration_db
        calib[g, 2:, 0] = sc.link.lp_calibration_db
    fspl_db = friis_const[:, None, None] + 20.0 * np.log10(np.maximum(dist, 1.0))
    att_db = fspl_db + calib
    lp_att_linear = 10.0 ** (att_db[:, 2:, :] / 10.0)

    # -- per-scenario RSRP, signal, noise, SNR (stacked) --------------------
    rstp = np.empty((len(scenarios), n_src, 1))
    for s, sc in enumerate(scenarios):
        rstp[s, 0:2, 0] = sc.link.hp_rstp_dbm
        rstp[s, 2:, 0] = sc.link.lp_rstp_dbm
    # Scenarios in first-occurrence order map 1:1 onto geometries when every
    # geometry is unique; skip the gather copy in that common (sweep) case.
    att_sel = att_db if n_geo == len(scenarios) else att_db[geo_index]
    rsrp_dbm = rstp - att_sel
    signal_mw = np.sum(10.0 ** (rsrp_dbm / 10.0), axis=1)

    noise_mw = np.empty_like(signal_mw)
    for s, sc in enumerate(scenarios):
        noise_mw[s] = 10.0 ** (sc.link.terminal_noise_dbm / 10.0) + _repeater_noise_mw(
            sc.layout, sc.link, lp_att_linear[geo_index[s]])

    snr_db = 10.0 * np.log10(signal_mw / noise_mw)
    total_signal_dbm = 10.0 * np.log10(signal_mw)
    total_noise_dbm = 10.0 * np.log10(noise_mw)

    profiles = []
    for s, sc in enumerate(scenarios):
        valid = positions[geo_index[s]].size
        profiles.append(SnrProfile(
            positions_m=positions[geo_index[s]],
            source_rsrp_dbm=np.ascontiguousarray(rsrp_dbm[s, :, :valid]),
            total_signal_dbm=np.ascontiguousarray(total_signal_dbm[s, :valid]),
            total_noise_dbm=np.ascontiguousarray(total_noise_dbm[s, :valid]),
            snr_db=np.ascontiguousarray(snr_db[s, :valid]),
        ))
    return profiles


#: Position-length spread tolerated inside one stacked tensor; chunking keeps
#: the padding overhead of mixed-ISD batches below ~30%.
_CHUNK_LENGTH_RATIO = 1.3
_CHUNK_MAX_GEOMETRIES = 128


def _chunk_by_length(scenarios: list[Scenario], indices: list[int]) -> list[list[int]]:
    """Split a same-source-count group into similar-grid-length chunks.

    Stacked tensors pad every scenario to the longest position grid in the
    chunk; sorting by grid length and bounding the min/max spread keeps that
    padding cheap.  Scenarios sharing a geometry stay adjacent so the
    one-attenuation-per-geometry reuse is preserved.
    """
    def grid_points(i: int) -> float:
        sc = scenarios[i]
        return float(sc.layout.isd_m) / sc.resolution_m

    ordered = sorted(indices, key=lambda i: (grid_points(i), _geometry_key(scenarios[i])))
    chunks: list[list[int]] = []
    for i in ordered:
        if (not chunks
                or grid_points(i) > _CHUNK_LENGTH_RATIO * grid_points(chunks[-1][0])
                or len(chunks[-1]) >= _CHUNK_MAX_GEOMETRIES):
            chunks.append([i])
        else:
            chunks[-1].append(i)
    return chunks


def _evaluate_unique(scenarios: list[Scenario]) -> list[SnrProfile]:
    """Group by source count, chunk by grid length, run the batched kernel."""
    groups: dict[int, list[int]] = {}
    for i, sc in enumerate(scenarios):
        groups.setdefault(sc.layout.n_repeaters, []).append(i)
    out: list[SnrProfile | None] = [None] * len(scenarios)
    for indices in groups.values():
        for chunk in _chunk_by_length(scenarios, indices):
            for i, profile in zip(chunk, _evaluate_group([scenarios[i] for i in chunk])):
                out[i] = profile
    return out


def evaluate_scenarios(scenarios,
                       cache: ProfileCache | None = None,
                       jobs: int | None = None) -> list[SnrProfile]:
    """Evaluate Eq. (2) for every scenario, batched.

    Parameters
    ----------
    scenarios:
        Iterable of :class:`repro.scenario.Scenario`.
    cache:
        Optional :class:`repro.scenario.ProfileCache`; hits skip evaluation
        entirely and fresh results are stored back.
    jobs:
        When > 1, shard the uncached scenarios across this many threads.
        Sharding never changes results (each shard runs the same kernel).

    Returns the profiles in input order.  Profiles are bit-identical to
    :func:`repro.radio.link.compute_snr_profile` on the same scenario.
    """
    scenarios = list(scenarios)
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    results: list[SnrProfile | None] = [None] * len(scenarios)

    # -- cache hits and in-batch dedup --------------------------------------
    pending: list[int] = []        # index of first occurrence per unique hash
    duplicates: dict[int, int] = {}  # index -> index of first occurrence
    seen: dict[str, int] = {}
    for i, sc in enumerate(scenarios):
        key = sc.content_hash
        if key in seen:
            duplicates[i] = seen[key]
            continue
        seen[key] = i
        if cache is not None:
            hit = cache.get(sc)
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)

    # -- evaluate the misses ------------------------------------------------
    if pending:
        to_eval = [scenarios[i] for i in pending]
        if jobs is not None and jobs > 1 and len(to_eval) > 1:
            shards = np.array_split(np.arange(len(to_eval)), min(jobs, len(to_eval)))
            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                futures = [pool.submit(_evaluate_unique,
                                       [to_eval[j] for j in shard])
                           for shard in shards]
                profiles: list[SnrProfile | None] = [None] * len(to_eval)
                for shard, fut in zip(shards, futures):
                    for j, profile in zip(shard, fut.result()):
                        profiles[j] = profile
        else:
            profiles = _evaluate_unique(to_eval)
        for i, profile in zip(pending, profiles):
            results[i] = profile
            if cache is not None:
                cache.put(scenarios[i], profile)

    for i, first in duplicates.items():
        results[i] = results[first]
    return results


def min_snr_batch(scenarios,
                  cache: ProfileCache | None = None,
                  jobs: int | None = None) -> np.ndarray:
    """Worst-case SNR of each scenario (the sweep constraint), batched.

    Args:
        scenarios: Iterable of :class:`~repro.scenario.spec.Scenario`.
        cache: Optional :class:`~repro.scenario.cache.ProfileCache`.
        jobs: Optional thread-shard count (see :func:`evaluate_scenarios`).

    Returns:
        ``min(snr_db)`` per scenario, in input order — the quantity the
        Section V feasibility criterion compares against 29 dB.  Values are
        bit-identical to ``scenario.evaluate().min_snr_db`` (the scalar
        reference path).
    """
    return np.array([p.min_snr_db
                     for p in evaluate_scenarios(scenarios, cache=cache, jobs=jobs)])

"""Basic track geometry primitives."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import GeometryError

__all__ = ["TrackSegment", "CatenaryGrid"]


@dataclass(frozen=True)
class TrackSegment:
    """A straight stretch of railway track between two chainages [m]."""

    start_m: float
    end_m: float

    def __post_init__(self) -> None:
        if self.end_m <= self.start_m:
            raise GeometryError(f"segment end {self.end_m} must exceed start {self.start_m}")

    @property
    def length_m(self) -> float:
        return self.end_m - self.start_m

    def contains(self, position_m: float) -> bool:
        """Whether a chainage lies within the segment (inclusive)."""
        return self.start_m <= position_m <= self.end_m

    def overlap_m(self, other: "TrackSegment") -> float:
        """Length of the overlap with another segment (0 when disjoint)."""
        lo = max(self.start_m, other.start_m)
        hi = min(self.end_m, other.end_m)
        return max(0.0, hi - lo)


@dataclass(frozen=True)
class CatenaryGrid:
    """The grid of existing catenary masts available for repeater mounting.

    The paper notes masts are "generally available every 50 m"; repeaters must
    be installed on one of them, so arbitrary positions need snapping.
    """

    spacing_m: float = constants.CATENARY_MAST_SPACING_M
    offset_m: float = 0.0

    def __post_init__(self) -> None:
        if self.spacing_m <= 0:
            raise GeometryError(f"mast spacing must be positive, got {self.spacing_m}")

    def snap(self, position_m: float) -> float:
        """Nearest mast position for an arbitrary chainage."""
        k = round((position_m - self.offset_m) / self.spacing_m)
        return self.offset_m + k * self.spacing_m

    def snap_all(self, positions_m) -> np.ndarray:
        """Vectorized :meth:`snap`."""
        pos = np.asarray(positions_m, dtype=float)
        k = np.round((pos - self.offset_m) / self.spacing_m)
        return self.offset_m + k * self.spacing_m

    def is_on_grid(self, position_m: float, tolerance_m: float = 1e-6) -> bool:
        """Whether a chainage coincides with a mast."""
        return abs(self.snap(position_m) - position_m) <= tolerance_m

    def masts_in(self, segment: TrackSegment) -> np.ndarray:
        """All mast positions inside a segment."""
        first = np.ceil((segment.start_m - self.offset_m) / self.spacing_m)
        last = np.floor((segment.end_m - self.offset_m) / self.spacing_m)
        if last < first:
            return np.empty(0)
        return self.offset_m + np.arange(first, last + 1) * self.spacing_m

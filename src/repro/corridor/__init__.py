"""Corridor geometry: tracks, layouts, deployment plans, validation.

A *layout* is one HP-mast-to-HP-mast segment with its repeater field — the
unit the capacity model evaluates.  A *deployment* tiles layouts along a whole
corridor and is the unit the energy model normalizes per kilometre.
"""

from repro.corridor.geometry import CatenaryGrid, TrackSegment
from repro.corridor.layout import CorridorLayout, donor_node_count
from repro.corridor.deployment import CorridorDeployment, DeploymentKind
from repro.corridor.validation import validate_layout, LayoutReport

__all__ = [
    "TrackSegment",
    "CatenaryGrid",
    "CorridorLayout",
    "donor_node_count",
    "CorridorDeployment",
    "DeploymentKind",
    "validate_layout",
    "LayoutReport",
]

"""Corridor deployment plans: tiling layouts along a whole railway line.

The energy results of the paper are normalized "per 1 km" of corridor; a
deployment captures the repeating unit (one layout) and exposes per-kilometre
equipment densities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import GeometryError

__all__ = ["DeploymentKind", "CorridorDeployment"]


class DeploymentKind(enum.Enum):
    """Deployment archetypes compared in the paper."""

    CONVENTIONAL = "conventional"          # HP masts every 500 m, no repeaters
    REPEATER_EXTENDED = "repeater_extended"  # fewer HP masts + LP repeater field


@dataclass(frozen=True)
class CorridorDeployment:
    """A corridor built by repeating one segment layout.

    Each HP mast is shared between the two adjacent segments, so per segment
    of length ``isd_m`` the corridor owns exactly one mast (two RRHs), ``N``
    service nodes and the layout's donor nodes.
    """

    layout: CorridorLayout
    kind: DeploymentKind = DeploymentKind.REPEATER_EXTENDED

    @classmethod
    def conventional(cls, isd_m: float = constants.CONVENTIONAL_ISD_M) -> "CorridorDeployment":
        """The paper's baseline: HP-only corridor at 500 m ISD."""
        return cls(layout=CorridorLayout.conventional(isd_m), kind=DeploymentKind.CONVENTIONAL)

    @classmethod
    def with_repeaters(cls, isd_m: float, n_repeaters: int,
                       spacing_m: float = constants.LP_NODE_SPACING_M) -> "CorridorDeployment":
        """Repeater-extended corridor with the paper's centered geometry."""
        layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters, spacing_m)
        return cls(layout=layout, kind=DeploymentKind.REPEATER_EXTENDED)

    # -- per-kilometre densities --------------------------------------------

    @property
    def masts_per_km(self) -> float:
        return 1000.0 / self.layout.isd_m

    @property
    def rrhs_per_km(self) -> float:
        return constants.RRH_PER_MAST * self.masts_per_km

    @property
    def service_nodes_per_km(self) -> float:
        return self.layout.n_repeaters * self.masts_per_km

    @property
    def donor_nodes_per_km(self) -> float:
        return self.layout.n_donor_nodes * self.masts_per_km

    @property
    def lp_nodes_per_km(self) -> float:
        """All low-power nodes (service + donor) per kilometre."""
        return self.service_nodes_per_km + self.donor_nodes_per_km

    def segments_for_length(self, corridor_km: float) -> int:
        """Number of whole segments needed to cover a corridor length."""
        if corridor_km <= 0:
            raise GeometryError(f"corridor length must be positive, got {corridor_km}")
        import math
        return math.ceil(corridor_km * 1000.0 / self.layout.isd_m)

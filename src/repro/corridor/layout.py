"""Corridor layout: one HP-to-HP segment with its repeater field.

The paper's arrangement (Fig. 1): high-power masts at both ends of the
segment, ``N`` low-power service nodes on catenary masts in between, spaced
200 m apart and centered in the segment, plus donor nodes co-located with the
HP masts (one donor for a single service node, two donors — one per mast —
for two or more; Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.errors import GeometryError

__all__ = ["CorridorLayout", "donor_node_count"]


def donor_node_count(n_repeaters: int) -> int:
    """Donor nodes required for a service-node count (paper Section V-A).

    "an additional low-power repeater node as donor node is considered for one
    service node and two low-power donor nodes are considered for two or more
    service nodes"
    """
    if n_repeaters < 0:
        raise GeometryError(f"repeater count must be >= 0, got {n_repeaters}")
    if n_repeaters == 0:
        return 0
    if n_repeaters == 1:
        return 1
    return 2


@dataclass(frozen=True)
class CorridorLayout:
    """One segment between two high-power masts, with repeaters in between.

    Attributes
    ----------
    isd_m:
        Inter-site distance between the two HP masts (segment length).
    repeater_positions_m:
        Chainages of the LP service nodes, strictly inside ``(0, isd_m)``.
    """

    isd_m: float
    repeater_positions_m: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.isd_m <= 0:
            raise GeometryError(f"ISD must be positive, got {self.isd_m}")
        pos = tuple(float(p) for p in self.repeater_positions_m)
        if any(p <= 0.0 or p >= self.isd_m for p in pos):
            raise GeometryError(
                f"repeater positions {pos} must lie strictly inside (0, {self.isd_m})")
        if len(set(pos)) != len(pos):
            raise GeometryError(f"repeater positions {pos} contain duplicates")
        if list(pos) != sorted(pos):
            raise GeometryError("repeater positions must be sorted ascending")
        object.__setattr__(self, "repeater_positions_m", pos)

    # -- construction -------------------------------------------------------

    @classmethod
    def conventional(cls, isd_m: float = constants.CONVENTIONAL_ISD_M) -> "CorridorLayout":
        """A conventional segment: HP masts only, no repeaters."""
        return cls(isd_m=isd_m)

    @classmethod
    def with_uniform_repeaters(cls, isd_m: float, n_repeaters: int,
                               spacing_m: float = constants.LP_NODE_SPACING_M) -> "CorridorLayout":
        """The paper's geometry: ``n`` nodes at fixed spacing, centered.

        The repeater field spans ``(n - 1) * spacing`` and is centered between
        the HP masts, leaving equal gaps on both sides.
        """
        if n_repeaters < 0:
            raise GeometryError(f"repeater count must be >= 0, got {n_repeaters}")
        if n_repeaters == 0:
            return cls(isd_m=isd_m)
        if spacing_m <= 0:
            raise GeometryError(f"spacing must be positive, got {spacing_m}")
        span = (n_repeaters - 1) * spacing_m
        gap = (isd_m - span) / 2.0
        if gap <= 0:
            raise GeometryError(
                f"{n_repeaters} nodes at {spacing_m} m spacing do not fit in ISD {isd_m}")
        positions = tuple(gap + k * spacing_m for k in range(n_repeaters))
        return cls(isd_m=isd_m, repeater_positions_m=positions)

    @classmethod
    def with_equally_divided_repeaters(cls, isd_m: float, n_repeaters: int) -> "CorridorLayout":
        """Alternative geometry: nodes dividing the ISD into N+1 equal gaps."""
        if n_repeaters < 0:
            raise GeometryError(f"repeater count must be >= 0, got {n_repeaters}")
        gap = isd_m / (n_repeaters + 1)
        positions = tuple(gap * (k + 1) for k in range(n_repeaters))
        return cls(isd_m=isd_m, repeater_positions_m=positions)

    # -- derived properties --------------------------------------------------

    @property
    def n_repeaters(self) -> int:
        return len(self.repeater_positions_m)

    @property
    def n_donor_nodes(self) -> int:
        """Donor nodes this segment needs (paper's counting rule)."""
        return donor_node_count(self.n_repeaters)

    @property
    def edge_gap_m(self) -> float:
        """Distance from an HP mast to the nearest repeater (ISD when none)."""
        if not self.repeater_positions_m:
            return self.isd_m
        first = self.repeater_positions_m[0]
        last = self.repeater_positions_m[-1]
        return min(first, self.isd_m - last)

    @property
    def repeater_span_m(self) -> float:
        """Extent of the repeater field (0 for zero or one node)."""
        if self.n_repeaters < 2:
            return 0.0
        return self.repeater_positions_m[-1] - self.repeater_positions_m[0]

    def repeater_sections(self, section_m: float = constants.LP_NODE_SPACING_M) -> list[tuple[float, float]]:
        """Coverage section (start, end) of each repeater for duty accounting.

        The paper's energy model attributes a 200 m coverage section (the node
        spacing) to each repeater.
        """
        half = section_m / 2.0
        return [(p - half, p + half) for p in self.repeater_positions_m]

    def min_repeater_spacing_m(self) -> float:
        """Smallest gap between adjacent repeaters (inf for < 2 nodes)."""
        if self.n_repeaters < 2:
            return float("inf")
        return float(np.min(np.diff(self.repeater_positions_m)))

    def scaled_to(self, isd_m: float) -> "CorridorLayout":
        """Same relative geometry stretched onto a different ISD."""
        factor = isd_m / self.isd_m
        return CorridorLayout(
            isd_m=isd_m,
            repeater_positions_m=tuple(p * factor for p in self.repeater_positions_m),
        )

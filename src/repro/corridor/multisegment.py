"""Heterogeneous corridors: different segment types along one line.

Real lines are not uniform: station approaches keep the dense conventional
layout (trains are slow, dwell, and cluster there), while open high-speed
track uses the repeater-extended segments.  A :class:`LinePlan` strings
typed sections together and aggregates capacity checks and energy across
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError, GeometryError

__all__ = ["LineSection", "LinePlan"]


@dataclass(frozen=True)
class LineSection:
    """A stretch of line covered by repetitions of one segment layout."""

    name: str
    layout: CorridorLayout
    length_km: float
    mode: OperatingMode = OperatingMode.SLEEP

    def __post_init__(self) -> None:
        if self.length_km <= 0:
            raise GeometryError(f"{self.name}: section length must be positive")

    @property
    def n_segments(self) -> int:
        return math.ceil(self.length_km * 1000.0 / self.layout.isd_m)

    def average_power_w(self, params: EnergyParams | None = None) -> float:
        """Average mains power of the whole section."""
        per_km = segment_energy(self.layout, self.mode, params).w_per_km
        return per_km * self.length_km


@dataclass(frozen=True)
class LinePlan:
    """A whole line as an ordered list of sections."""

    sections: tuple[LineSection, ...]

    def __post_init__(self) -> None:
        if not self.sections:
            raise ConfigurationError("a line plan needs at least one section")
        names = [s.name for s in self.sections]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate section names: {names}")

    @property
    def length_km(self) -> float:
        return sum(s.length_km for s in self.sections)

    def total_average_power_w(self, params: EnergyParams | None = None) -> float:
        return sum(s.average_power_w(params) for s in self.sections)

    def average_w_per_km(self, params: EnergyParams | None = None) -> float:
        return self.total_average_power_w(params) / self.length_km

    def annual_energy_mwh(self, params: EnergyParams | None = None) -> float:
        return self.total_average_power_w(params) * 24 * 365 / 1e6

    def equipment_counts(self) -> dict[str, int]:
        """HP masts and LP nodes over the whole line."""
        masts = 0
        service = 0
        donors = 0
        for section in self.sections:
            n = section.n_segments
            masts += n
            service += n * section.layout.n_repeaters
            donors += n * section.layout.n_donor_nodes
        return {"hp_masts": masts, "service_nodes": service, "donor_nodes": donors}

    def savings_vs_conventional(self, params: EnergyParams | None = None) -> float:
        """Energy saving of this plan vs. an all-conventional line (0..1)."""
        conventional = LinePlan(sections=tuple(
            LineSection(name=f"conv/{s.name}", layout=CorridorLayout.conventional(),
                        length_km=s.length_km)
            for s in self.sections))
        ours = self.total_average_power_w(params)
        ref = conventional.total_average_power_w(params)
        return 1.0 - ours / ref

    @classmethod
    def mixed_line(cls, open_track_km: float, station_zones: int,
                   station_zone_km: float = 2.0,
                   n_repeaters: int = 10,
                   open_isd_m: float = 2650.0) -> "LinePlan":
        """Convenience builder: station zones (conventional) + open track.

        The open track is split evenly around the station zones.
        """
        if station_zones < 0:
            raise ConfigurationError(f"station zones must be >= 0, got {station_zones}")
        if open_track_km <= 0:
            raise GeometryError(f"open track length must be positive")
        sections: list[LineSection] = []
        n_open_parts = station_zones + 1
        open_part_km = open_track_km / n_open_parts
        open_layout = CorridorLayout.with_uniform_repeaters(open_isd_m, n_repeaters)
        for i in range(n_open_parts):
            sections.append(LineSection(
                name=f"open/{i}", layout=open_layout, length_km=open_part_km))
            if i < station_zones:
                sections.append(LineSection(
                    name=f"station/{i}", layout=CorridorLayout.conventional(),
                    length_km=station_zone_km))
        return cls(sections=tuple(sections))

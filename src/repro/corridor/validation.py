"""Layout validation: installability and regulatory sanity checks.

Checks a layout against the practical constraints the paper mentions:

* repeaters must sit on (or near) existing catenary masts (50 m grid),
* EIRP limits: the whole point of short ISDs in EMF-constrained countries is
  that sites may not simply raise power — the validator flags EIRP above the
  scenario's assumed limits,
* geometric sanity (spacing, segment bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.corridor.geometry import CatenaryGrid
from repro.corridor.layout import CorridorLayout

__all__ = ["LayoutReport", "validate_layout"]

#: Maximum assumed EIRP for the high-power antennas (the paper's 64 dBm).
MAX_HP_EIRP_DBM = constants.HP_EIRP_DBM
#: Maximum assumed EIRP for the low-power repeaters (the paper's 40 dBm).
MAX_LP_EIRP_DBM = constants.LP_EIRP_DBM


@dataclass(frozen=True)
class LayoutReport:
    """Outcome of :func:`validate_layout`."""

    ok: bool
    issues: tuple[str, ...] = field(default_factory=tuple)
    off_grid_positions_m: tuple[float, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:  # truthiness == validity
        return self.ok


def validate_layout(layout: CorridorLayout,
                    grid: CatenaryGrid | None = None,
                    grid_tolerance_m: float = 25.0,
                    min_spacing_m: float = 50.0,
                    hp_eirp_dbm: float = constants.HP_EIRP_DBM,
                    lp_eirp_dbm: float = constants.LP_EIRP_DBM) -> LayoutReport:
    """Check a layout for installability.

    Parameters
    ----------
    grid:
        Catenary mast grid; defaults to the paper's 50 m grid.  Repeaters
        farther than ``grid_tolerance_m`` from a mast are flagged (a tolerance
        of half the grid spacing means "always mountable on the nearest mast").
    min_spacing_m:
        Minimum allowed distance between adjacent repeaters.
    """
    grid = grid or CatenaryGrid()
    issues: list[str] = []
    off_grid: list[float] = []

    for pos in layout.repeater_positions_m:
        offset = abs(grid.snap(pos) - pos)
        if offset > grid_tolerance_m:
            off_grid.append(pos)
            issues.append(
                f"repeater at {pos:.1f} m is {offset:.1f} m from the nearest catenary mast "
                f"(tolerance {grid_tolerance_m:.1f} m)")

    if layout.min_repeater_spacing_m() < min_spacing_m:
        issues.append(
            f"adjacent repeaters closer than {min_spacing_m:.0f} m "
            f"({layout.min_repeater_spacing_m():.1f} m)")

    if hp_eirp_dbm > MAX_HP_EIRP_DBM:
        issues.append(
            f"HP EIRP {hp_eirp_dbm:.1f} dBm exceeds the scenario limit {MAX_HP_EIRP_DBM:.1f} dBm")
    if lp_eirp_dbm > MAX_LP_EIRP_DBM:
        issues.append(
            f"LP EIRP {lp_eirp_dbm:.1f} dBm exceeds the scenario limit {MAX_LP_EIRP_DBM:.1f} dBm")

    if layout.n_repeaters and layout.edge_gap_m < min_spacing_m:
        issues.append(
            f"repeater within {layout.edge_gap_m:.1f} m of an HP mast (< {min_spacing_m:.0f} m)")

    return LayoutReport(ok=not issues, issues=tuple(issues),
                        off_grid_positions_m=tuple(off_grid))

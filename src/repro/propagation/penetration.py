"""Train-wagon penetration loss models.

Modern train wagons act as Faraday cages (paper Section I; refs. [8], [9]).
The paper folds the penetration loss of penetration-optimized (Low-E / FSS
treated) wagons into the Eq. (1) calibration constants.  This module makes the
penetration loss explicit so deployments for *untreated* rolling stock can be
studied: the effective calibration constant becomes
``calibration_db - treated_loss_db + window_loss_db``.

Representative values follow the measurement literature the paper cites:
uncoated windows ~5 dB, metal-coated (Low-E) windows 25-35 dB, and
laser-treated FSS windows recover most of the uncoated behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["WagonWindowType", "PenetrationLoss", "WINDOW_PRESETS"]


class WagonWindowType(enum.Enum):
    """Window treatment classes from refs. [9]-[11]."""

    UNCOATED = "uncoated"
    COATED_LOW_E = "coated_low_e"
    FSS_TREATED = "fss_treated"


@dataclass(frozen=True)
class PenetrationLoss:
    """Frequency-dependent wagon penetration loss.

    ``loss_at_ref_db`` is the loss at ``reference_hz``; the loss grows with
    ``slope_db_per_octave`` per frequency octave, a first-order fit of the
    measured frequency dependence of coated windows.
    """

    loss_at_ref_db: float
    reference_hz: float = 2.0e9
    slope_db_per_octave: float = 0.0

    def __post_init__(self) -> None:
        if self.loss_at_ref_db < 0:
            raise ConfigurationError(f"penetration loss must be >= 0 dB, got {self.loss_at_ref_db}")
        if self.reference_hz <= 0:
            raise ConfigurationError(f"reference frequency must be positive, got {self.reference_hz}")

    def loss_db(self, frequency_hz: float) -> float:
        """Penetration loss at the given carrier frequency (clamped at 0 dB)."""
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        octaves = np.log2(frequency_hz / self.reference_hz)
        return float(max(0.0, self.loss_at_ref_db + self.slope_db_per_octave * octaves))


#: Presets representative of the measurement campaigns cited by the paper.
WINDOW_PRESETS: dict[WagonWindowType, PenetrationLoss] = {
    WagonWindowType.UNCOATED: PenetrationLoss(loss_at_ref_db=5.0, slope_db_per_octave=1.0),
    WagonWindowType.COATED_LOW_E: PenetrationLoss(loss_at_ref_db=28.0, slope_db_per_octave=2.0),
    WagonWindowType.FSS_TREATED: PenetrationLoss(loss_at_ref_db=8.0, slope_db_per_octave=1.5),
}


def effective_calibration_db(base_calibration_db: float,
                             window: WagonWindowType,
                             frequency_hz: float,
                             treated_window: WagonWindowType = WagonWindowType.FSS_TREATED) -> float:
    """Adjust an Eq. (1) calibration constant for a different window treatment.

    The paper's calibration constants were measured with penetration-optimized
    wagons (``treated_window``).  Swapping the rolling stock replaces that
    window's contribution with the new window's loss.
    """
    treated = WINDOW_PRESETS[treated_window].loss_db(frequency_hz)
    actual = WINDOW_PRESETS[window].loss_db(frequency_hz)
    return base_calibration_db - treated + actual

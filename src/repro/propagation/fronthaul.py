"""mmWave donor fronthaul link budget (ref. [16] of the paper).

A donor repeater node at the high-power mast up-converts the cell signal to a
mmWave carrier; service nodes mix it back down and re-amplify it.  Because the
service node is an analog amplify-and-forward device, the *fronthaul* SNR at
the service node input bounds the SNR of its re-transmitted signal — this is
what makes far-away repeaters noisier and produces the diminishing ISD returns
observed in the paper's registered ISD list (see DESIGN.md #4.1).

Two topologies are modeled:

* ``STAR`` — every service node receives the fronthaul directly from its
  nearest donor node (each HP mast hosts one donor per direction).
* ``CHAIN`` — service nodes daisy-chain the fronthaul; per-hop noise
  accumulates along the chain.

The budget is parameterized by a single calibrated quantity: the fronthaul SNR
at a 1 km donor-service separation (`snr_at_1km_db`).  Under Friis propagation
the SNR then scales with -20 log10(r/1 km).  The default 33 dB was fit against
the paper's registered maximum-ISD list (total absolute error 550 m over the
ten entries).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FronthaulTopology", "FronthaulParams", "FronthaulBudget"]

_REFERENCE_DISTANCE_M = 1000.0


class FronthaulTopology(enum.Enum):
    """How service nodes receive the mmWave fronthaul."""

    STAR = "star"
    CHAIN = "chain"


@dataclass(frozen=True)
class FronthaulParams:
    """Calibrated mmWave fronthaul description.

    Parameters
    ----------
    snr_at_1km_db:
        Fronthaul SNR at 1 km donor-service separation (per subcarrier).
    topology:
        Direct star feed or daisy-chained relaying.
    mmwave_frequency_hz:
        Carrier of the fronthaul, informational (the budget is distance
        calibrated, so the frequency only matters for derived quantities).
    """

    snr_at_1km_db: float = 33.0
    topology: FronthaulTopology = FronthaulTopology.STAR
    mmwave_frequency_hz: float = 60.0e9

    def __post_init__(self) -> None:
        if self.mmwave_frequency_hz <= 6.0e9:
            raise ConfigurationError(
                f"fronthaul must use a mmWave carrier (> 6 GHz), got {self.mmwave_frequency_hz}")


@dataclass(frozen=True)
class FronthaulBudget:
    """Evaluates fronthaul SNR for a set of donor/service geometries."""

    params: FronthaulParams = FronthaulParams()

    def snr_linear_at(self, distance_m) -> np.ndarray:
        """Fronthaul SNR (linear) for direct donor-service distance(s)."""
        d = np.maximum(np.asarray(distance_m, dtype=float), 1.0)
        s0 = 10.0 ** (self.params.snr_at_1km_db / 10.0)
        return s0 * (_REFERENCE_DISTANCE_M / d) ** 2

    def output_snr_linear(self, donor_distances_m, hop_counts=None) -> np.ndarray:
        """SNR limit of each service node's re-transmitted signal.

        Parameters
        ----------
        donor_distances_m:
            STAR: direct distance from each service node to its donor.
            CHAIN: length of the *first* hop (donor to first node) for each
            node's chain.
        hop_counts:
            CHAIN only: number of additional equal-length relay hops after the
            first (0 for the node adjacent to the donor).  Hop length is taken
            as the node spacing embedded in ``chain_hop_m`` of each call.
        """
        if self.params.topology is FronthaulTopology.STAR:
            return self.snr_linear_at(donor_distances_m)
        raise ConfigurationError("CHAIN topology requires chain_output_snr_linear()")

    def chain_output_snr_linear(self, first_hop_m, hop_counts, hop_length_m: float) -> np.ndarray:
        """Accumulated SNR along a daisy chain.

        Noise adds per amplify-and-forward hop: ``1/SNR_total = sum 1/SNR_hop``.
        The first hop covers the donor-to-first-node gap; subsequent hops are
        ``hop_length_m`` long.
        """
        first = np.asarray(first_hop_m, dtype=float)
        hops = np.asarray(hop_counts, dtype=float)
        if np.any(hops < 0):
            raise ConfigurationError("hop counts must be >= 0")
        inv = 1.0 / self.snr_linear_at(first) + hops / self.snr_linear_at(hop_length_m)
        return 1.0 / inv

"""Generic path-loss model family.

The paper uses a calibrated Friis law (exponent 2).  For sensitivity studies
and for environments where the corridor geometry deviates from free space
(cuttings, tunnels, vegetation) the library also offers log-distance and
dual-slope laws behind one small protocol so the link layer can swap models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.propagation.friis import free_space_path_loss_db, friis_constant_db

__all__ = ["PathLossModel", "FreeSpaceModel", "LogDistanceModel", "DualSlopeModel"]


@runtime_checkable
class PathLossModel(Protocol):
    """Anything that maps a distance (m) to a path loss (dB)."""

    def path_loss_db(self, distance_m):  # pragma: no cover - protocol signature
        """Return path loss in dB for scalar or array distances."""
        ...


@dataclass(frozen=True)
class FreeSpaceModel:
    """Plain Friis free-space loss (exponent 2)."""

    frequency_hz: float

    def path_loss_db(self, distance_m):
        return free_space_path_loss_db(distance_m, self.frequency_hz)


@dataclass(frozen=True)
class LogDistanceModel:
    """Log-distance law ``PL(d) = PL(d0) + 10 n log10(d / d0)``.

    ``reference_loss_db`` defaults to the free-space loss at ``reference_m``
    when left as ``None``.
    """

    frequency_hz: float
    exponent: float = 2.0
    reference_m: float = 1.0
    reference_loss_db: float | None = None

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(f"path-loss exponent must be positive, got {self.exponent}")
        if self.reference_m <= 0:
            raise ConfigurationError(f"reference distance must be positive, got {self.reference_m}")

    def _pl0(self) -> float:
        if self.reference_loss_db is not None:
            return self.reference_loss_db
        return friis_constant_db(self.frequency_hz) + 20.0 * np.log10(self.reference_m)

    def path_loss_db(self, distance_m):
        d = np.maximum(np.asarray(distance_m, dtype=float), self.reference_m)
        out = self._pl0() + 10.0 * self.exponent * np.log10(d / self.reference_m)
        return float(out) if np.ndim(distance_m) == 0 else out


@dataclass(frozen=True)
class DualSlopeModel:
    """Two-slope law with a breakpoint, common for elevated line-of-sight links.

    Below ``breakpoint_m`` the loss follows ``exponent_near``; beyond it the
    slope steepens to ``exponent_far`` while staying continuous.
    """

    frequency_hz: float
    breakpoint_m: float
    exponent_near: float = 2.0
    exponent_far: float = 4.0

    def __post_init__(self) -> None:
        if self.breakpoint_m <= 0:
            raise ConfigurationError(f"breakpoint must be positive, got {self.breakpoint_m}")
        if self.exponent_near <= 0 or self.exponent_far <= 0:
            raise ConfigurationError("path-loss exponents must be positive")

    def path_loss_db(self, distance_m):
        d = np.maximum(np.asarray(distance_m, dtype=float), 1.0)
        near = LogDistanceModel(self.frequency_hz, self.exponent_near)
        loss_at_bp = near.path_loss_db(self.breakpoint_m)
        below = near.path_loss_db(d)
        above = loss_at_bp + 10.0 * self.exponent_far * np.log10(np.maximum(d, self.breakpoint_m) / self.breakpoint_m)
        out = np.where(d <= self.breakpoint_m, below, above)
        return float(out) if np.ndim(distance_m) == 0 else out

"""Radio propagation substrate.

Implements the paper's calibrated Friis port-to-port attenuation (Eq. 1) plus
the supporting propagation models the corridor system depends on: generic
path-loss laws, train-wagon penetration loss, the mmWave donor fronthaul link
budget, and log-normal shadowing for Monte-Carlo extensions.
"""

from repro.propagation.friis import (
    CalibratedFriis,
    free_space_path_loss_db,
    friis_constant_db,
)
from repro.propagation.pathloss import (
    DualSlopeModel,
    FreeSpaceModel,
    LogDistanceModel,
    PathLossModel,
)
from repro.propagation.penetration import (
    PenetrationLoss,
    WINDOW_PRESETS,
    WagonWindowType,
    effective_calibration_db,
)
from repro.propagation.fronthaul import (
    FronthaulBudget,
    FronthaulParams,
    FronthaulTopology,
)
from repro.propagation.fading import LogNormalShadowing

__all__ = [
    "CalibratedFriis",
    "free_space_path_loss_db",
    "friis_constant_db",
    "PathLossModel",
    "FreeSpaceModel",
    "LogDistanceModel",
    "DualSlopeModel",
    "PenetrationLoss",
    "WagonWindowType",
    "WINDOW_PRESETS",
    "effective_calibration_db",
    "FronthaulParams",
    "FronthaulTopology",
    "FronthaulBudget",
    "LogNormalShadowing",
]

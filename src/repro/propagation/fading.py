"""Large-scale fading for Monte-Carlo robustness studies.

The paper's evaluation is deterministic.  As an extension, the library can
overlay spatially correlated log-normal shadowing on the RSRP profiles to ask
how robust an ISD choice is to shadowing — see :mod:`repro.optimize.mc` (the
vectorized Monte-Carlo engine), ``benchmarks/bench_mc_shadowing.py`` and
``repro.optimize.isd``'s ``shadowing_margin_db`` parameter.

The Gudmundson AR(1) recurrence over a position grid is

    s[0] = sigma * z[0]
    s[i] = rho[i-1] * s[i-1] + innovation[i-1] * z[i]

with ``rho = exp(-dx / d_corr)`` and ``innovation = sigma * sqrt(1 - rho^2)``
per grid step and ``z`` i.i.d. standard normals.  ``rho``/``innovation``
depend only on the grid spacings (uniform grids collapse to a constant per
step), so they are precomputed once per spacing fingerprint and shared by the
scalar and batched sampling paths; :meth:`LogNormalShadowing.sample_batch`
runs the recurrence through the :func:`repro.kernels.ar1_scan` kernel with a
``[trial]`` leading axis — trial-for-trial bit-identical to
:meth:`LogNormalShadowing.sample` under ``backend="reference"``, and within
1e-9 under the fused default backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import ar1_scan

__all__ = ["LogNormalShadowing"]


@lru_cache(maxsize=256)
def _ar1_coefficients(sigma_db: float, decorrelation_m: float,
                      spacings_bytes: bytes) -> tuple[np.ndarray, np.ndarray]:
    """Memoized per-step (rho, innovation) for one spacing fingerprint.

    Grids with identical spacing sequences (every uniform candidate ladder at
    one resolution, every repeated Monte-Carlo call) share one entry; the
    returned arrays are read-only so sharing is safe.
    """
    spacings = np.frombuffer(spacings_bytes, dtype=np.float64)
    rho = np.exp(-spacings / decorrelation_m)
    innovation = sigma_db * np.sqrt(np.maximum(0.0, 1.0 - rho * rho))
    rho.flags.writeable = False
    innovation.flags.writeable = False
    return rho, innovation


def _validated_positions(positions_m) -> np.ndarray:
    pos = np.asarray(positions_m, dtype=float)
    if pos.ndim != 1 or pos.size == 0:
        raise ConfigurationError("positions must be a non-empty 1-D array")
    if np.any(np.diff(pos) < 0):
        raise ConfigurationError("positions must be sorted ascending")
    return pos


@dataclass(frozen=True)
class LogNormalShadowing:
    """Spatially correlated log-normal shadowing (Gudmundson model).

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing in dB (0 disables it).
    decorrelation_m:
        Distance at which the autocorrelation drops to 1/e.
    """

    sigma_db: float = 4.0
    decorrelation_m: float = 50.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ConfigurationError(f"sigma must be >= 0 dB, got {self.sigma_db}")
        if self.decorrelation_m <= 0:
            raise ConfigurationError(f"decorrelation distance must be positive, got {self.decorrelation_m}")

    def coefficients(self, positions_m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-step AR(1) ``(rho, innovation)`` vectors of a position grid.

        Both have length ``positions.size - 1`` and depend only on the grid
        spacings, so results are memoized per spacing fingerprint (read-only
        arrays shared between callers).
        """
        pos = _validated_positions(positions_m)
        return _ar1_coefficients(self.sigma_db, self.decorrelation_m,
                                 np.diff(pos).tobytes())

    def sample(self, positions_m: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one correlated shadowing trace (dB) over ordered positions.

        Uses the exact AR(1) discretization of the exponential autocorrelation
        so irregular position grids are handled correctly.  Consumes exactly
        one standard normal per position from ``rng`` (none when
        ``sigma_db == 0``, which short-circuits to zeros).
        """
        pos = _validated_positions(positions_m)
        if self.sigma_db == 0.0:
            return np.zeros_like(pos)
        rho, innovation = self.coefficients(pos)
        out = np.empty_like(pos)
        out[0] = self.sigma_db * rng.standard_normal()
        for i in range(1, pos.size):
            out[i] = rho[i - 1] * out[i - 1] + innovation[i - 1] * rng.standard_normal()
        return out

    def sample_batch(self, positions_m: np.ndarray, rngs,
                     backend: str | None = None) -> np.ndarray:
        """Draw one trace per generator, stacked as ``[trial, position]``.

        The recurrence runs through the :func:`repro.kernels.ar1_scan`
        kernel with a ``[trial]`` leading axis — position is the only
        sequential dimension.  Row ``t`` matches ``sample(positions_m,
        rngs[t])``: each generator is consumed in the same order (one
        standard normal per position), bit-identically under
        ``backend="reference"`` and to ``<= 1e-9`` under the fused default.

        Args:
            positions_m: Ordered position grid shared by every trial.
            rngs: Iterable of per-trial generators.
            backend: Kernel backend; ``None`` resolves via
                ``REPRO_BACKEND`` and then the ``"numpy"`` default.
        """
        pos = _validated_positions(positions_m)
        rngs = list(rngs)
        if self.sigma_db == 0.0:
            return np.zeros((len(rngs), pos.size))
        z = np.empty((len(rngs), pos.size))
        for t, rng in enumerate(rngs):
            z[t] = rng.standard_normal(pos.size)
        rho, innovation = self.coefficients(pos)
        return ar1_scan(z, rho, innovation, self.sigma_db, backend=backend)

"""Large-scale fading for Monte-Carlo robustness studies.

The paper's evaluation is deterministic.  As an extension, the library can
overlay spatially correlated log-normal shadowing on the RSRP profiles to ask
how robust an ISD choice is to shadowing — see
``benchmarks/bench_ablation_noise.py`` and ``repro.optimize.isd``'s
``shadowing_margin_db`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LogNormalShadowing"]


@dataclass(frozen=True)
class LogNormalShadowing:
    """Spatially correlated log-normal shadowing (Gudmundson model).

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing in dB (0 disables it).
    decorrelation_m:
        Distance at which the autocorrelation drops to 1/e.
    """

    sigma_db: float = 4.0
    decorrelation_m: float = 50.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ConfigurationError(f"sigma must be >= 0 dB, got {self.sigma_db}")
        if self.decorrelation_m <= 0:
            raise ConfigurationError(f"decorrelation distance must be positive, got {self.decorrelation_m}")

    def sample(self, positions_m: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one correlated shadowing trace (dB) over ordered positions.

        Uses the exact AR(1) discretization of the exponential autocorrelation
        so irregular position grids are handled correctly.
        """
        pos = np.asarray(positions_m, dtype=float)
        if pos.ndim != 1 or pos.size == 0:
            raise ConfigurationError("positions must be a non-empty 1-D array")
        if np.any(np.diff(pos) < 0):
            raise ConfigurationError("positions must be sorted ascending")
        if self.sigma_db == 0.0:
            return np.zeros_like(pos)
        out = np.empty_like(pos)
        out[0] = rng.normal(0.0, self.sigma_db)
        for i in range(1, pos.size):
            rho = float(np.exp(-(pos[i] - pos[i - 1]) / self.decorrelation_m))
            innovation = self.sigma_db * np.sqrt(max(0.0, 1.0 - rho * rho))
            out[i] = rho * out[i - 1] + rng.normal(0.0, innovation)
        return out

"""Calibrated Friis port-to-port attenuation — Eq. (1) of the paper.

The paper models the attenuation between a transmit antenna port at position
``d_a`` and the terminal inside the train at track position ``d`` as

    L_a(d) = (d - d_a)^2 * (4 * pi / lambda)^2 * L_calib

where ``L_calib`` absorbs antenna-dependent losses into the train wagons
(33 dB for high-power sites, 20 dB for the low-power repeater nodes, in line
with the measurement campaigns in refs. [17], [18]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import wavelength_m

__all__ = ["friis_constant_db", "free_space_path_loss_db", "CalibratedFriis"]

#: Distances below this are clamped to avoid the Friis near-field singularity.
_MIN_DISTANCE_M = 1.0


def friis_constant_db(frequency_hz: float) -> float:
    """Return ``20 log10(4 pi / lambda)`` — the 1 m free-space loss in dB."""
    lam = wavelength_m(frequency_hz)
    return 20.0 * np.log10(4.0 * np.pi / lam)


def free_space_path_loss_db(distance_m, frequency_hz: float):
    """Free-space path loss ``20 log10(4 pi d / lambda)`` in dB.

    Distances are clamped to 1 m; accepts scalars or arrays.
    """
    d = np.maximum(np.asarray(distance_m, dtype=float), _MIN_DISTANCE_M)
    out = friis_constant_db(frequency_hz) + 20.0 * np.log10(d)
    return float(out) if np.ndim(distance_m) == 0 else out


@dataclass(frozen=True)
class CalibratedFriis:
    """Port-to-port attenuation of Eq. (1) for one transmitter class.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency of the service signal.
    calibration_db:
        ``L_calib`` in dB: antenna-dependent losses into the train wagon
        (33 dB high-power, 20 dB low-power in the paper).
    """

    frequency_hz: float
    calibration_db: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {self.frequency_hz}")
        if self.calibration_db < 0:
            raise ConfigurationError(f"calibration loss must be >= 0 dB, got {self.calibration_db}")

    def attenuation_db(self, distance_m):
        """Total port-to-port attenuation ``L_a`` in dB at the given distance(s)."""
        return free_space_path_loss_db(distance_m, self.frequency_hz) + self.calibration_db

    def attenuation_linear(self, distance_m):
        """Linear attenuation factor ``L_a`` (power ratio >= 1)."""
        att = self.attenuation_db(distance_m)
        return np.power(10.0, np.asarray(att) / 10.0) if np.ndim(att) else 10.0 ** (att / 10.0)

    def received_power_dbm(self, transmit_power_dbm: float, distance_m):
        """Received power for a transmit power through this attenuation."""
        return transmit_power_dbm - self.attenuation_db(distance_m)

"""In-text result — registered maximum ISDs for N = 1..10 repeater nodes.

Paper: {1250, 1450, 1600, 1800, 1950, 2100, 2250, 2400, 2500, 2650} m.
The experiment reruns the sweep under a selectable repeater-noise model and
reports model-vs-paper deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.optimize.isd import IsdSweepResult, sweep_max_isd
from repro.radio.link import LinkParams
from repro.radio.noise import RepeaterNoiseModel
from repro.reporting.tables import format_table
from repro.scenario.cache import ProfileCache

__all__ = ["MaxIsdResult", "run_maxisd"]


@dataclass(frozen=True)
class MaxIsdResult:
    """Sweep outcome with paper comparison."""

    sweep: IsdSweepResult
    noise_model: RepeaterNoiseModel

    @property
    def model_list(self) -> list[float]:
        return self.sweep.as_list()

    @property
    def paper_list(self) -> tuple[float, ...]:
        return constants.PAPER_MAX_ISD_M

    @property
    def total_abs_error_m(self) -> float:
        return float(sum(abs(a - b) for a, b in zip(self.model_list, self.paper_list)))

    def series(self) -> dict[str, list]:
        n = list(range(1, len(self.model_list) + 1))
        return {
            "n_repeaters": n,
            "model_max_isd_m": self.model_list,
            "paper_max_isd_m": list(self.paper_list[:len(n)]),
            "min_snr_db": [self.sweep.min_snr_by_n[k] for k in n],
        }

    def table(self) -> str:
        rows = []
        for i, n in enumerate(range(1, len(self.model_list) + 1)):
            model = self.model_list[i]
            paper = self.paper_list[i]
            rows.append([n, model, paper, model - paper,
                         self.sweep.min_snr_by_n[n]])
        return format_table(
            ["N", "model ISD [m]", "paper ISD [m]", "delta [m]", "min SNR [dB]"],
            rows,
            title=(f"Max ISD sweep ({self.noise_model.value} noise model, "
                   f"threshold {self.sweep.threshold_db:.2f} dB)"))


def run_maxisd(noise_model: RepeaterNoiseModel = RepeaterNoiseModel.PAPER,
               n_max: int = 10,
               resolution_m: float = 1.0,
               isd_step_m: float = constants.ISD_STEP_M,
               exhaustive: bool = False,
               cache: ProfileCache | None = None,
               jobs: int | None = None) -> MaxIsdResult:
    """Run the Section V sweep under the requested noise model.

    ``exhaustive``, ``cache`` and ``jobs`` forward to
    :func:`repro.optimize.isd.sweep_max_isd`.
    """
    link = LinkParams(repeater_noise_model=noise_model)
    sweep = sweep_max_isd(n_max=n_max, link=link, include_zero=False,
                          resolution_m=resolution_m, isd_step_m=isd_step_m,
                          exhaustive=exhaustive, cache=cache, jobs=jobs)
    return MaxIsdResult(sweep=sweep, noise_model=noise_model)

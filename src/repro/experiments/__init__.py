"""Experiment runners — one per table/figure of the paper.

Each module exposes ``run(...)`` returning a structured result with
``.table()`` (human-readable) and ``.series()`` (CSV-able columns).  The
:mod:`repro.experiments.runner` drives them all and is what the CLI and
EXPERIMENTS.md generation use.
"""

from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.maxisd import run_maxisd
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment

__all__ = [
    "run_fig3",
    "run_fig4",
    "run_maxisd",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "ALL_EXPERIMENTS",
    "run_all",
    "run_experiment",
]

"""Extension experiments — analyses beyond the paper's figures.

These quantify claims the paper makes in passing (EMF-driven siting, uplink
closure, capacity experienced on board) and the deployment questions a
downstream operator asks next (cost, robustness, battery aging).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.corridor.deployment import CorridorDeployment
from repro.corridor.layout import CorridorLayout
from repro.economics.costmodel import CostAssumptions, corridor_cost
from repro.emf.compliance import node_compliance
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError
from repro.mobility.traversal import simulate_traversal
from repro.propagation.fading import LogNormalShadowing
from repro.radio.uplink import UplinkParams, compute_uplink_profile
from repro.reporting.tables import format_table
from repro.solar.climates import LOCATIONS
from repro.solar.degradation import project_lifetime

__all__ = [
    "run_emf", "EmfResult",
    "run_uplink", "UplinkResult",
    "run_traversal", "TraversalExperiment",
    "run_economics", "EconomicsResult",
    "run_robustness", "RobustnessResult",
    "run_robustness_grid", "RobustnessGridResult", "robustness_grid_study_spec",
    "run_lifetime", "LifetimeExperiment",
    "run_demand", "DemandExperiment",
    "run_cell_border", "CellBorderExperiment",
]


# --- EMF compliance -----------------------------------------------------------

@dataclass(frozen=True)
class EmfResult:
    hp: dict[str, float]
    lp: dict[str, float]

    def table(self) -> str:
        regimes = sorted(self.hp)
        rows = [[r, self.hp[r], self.lp[r]] for r in regimes]
        return format_table(
            ["regime", "HP (64 dBm) dist [m]", "LP (40 dBm) dist [m]"],
            rows, title="EMF compliance distances per regulatory regime")

    def series(self) -> dict[str, list]:
        regimes = sorted(self.hp)
        return {"regime": regimes,
                "hp_distance_m": [self.hp[r] for r in regimes],
                "lp_distance_m": [self.lp[r] for r in regimes]}


def run_emf() -> EmfResult:
    """Compliance distances of the corridor's two transmitter classes."""
    return EmfResult(hp=node_compliance(constants.HP_EIRP_DBM).distances_m,
                     lp=node_compliance(constants.LP_EIRP_DBM).distances_m)


# --- uplink closure -------------------------------------------------------------

@dataclass(frozen=True)
class UplinkResult:
    rows: list[tuple[int, float, float, float]]  # (N, ISD, UL min SNR, DL min SNR)

    def table(self) -> str:
        return format_table(
            ["N", "ISD [m]", "UL min SNR [dB]", "DL min SNR [dB]"],
            [list(r) for r in self.rows],
            title="Uplink closure at the registered maximum ISDs")

    def series(self) -> dict[str, list]:
        return {"n_repeaters": [r[0] for r in self.rows],
                "isd_m": [r[1] for r in self.rows],
                "ul_min_snr_db": [r[2] for r in self.rows],
                "dl_min_snr_db": [r[3] for r in self.rows]}


def run_uplink(resolution_m: float = 2.0) -> UplinkResult:
    """Uplink SNR at every registered (N, max ISD) operating point."""
    from repro.radio.link import compute_snr_profile

    rows = []
    params = UplinkParams()
    for n, isd in enumerate(constants.PAPER_MAX_ISD_M, start=1):
        layout = CorridorLayout.with_uniform_repeaters(isd, n)
        ul = compute_uplink_profile(layout, params, resolution_m)
        dl = compute_snr_profile(layout, resolution_m=resolution_m)
        rows.append((n, isd, ul.min_snr_db, dl.min_snr_db))
    return UplinkResult(rows=rows)


# --- onboard traversal -------------------------------------------------------------

@dataclass(frozen=True)
class TraversalExperiment:
    rows: list[tuple[str, float, float, float]]

    def table(self) -> str:
        return format_table(
            ["deployment", "duration [s]", "volume [Gbit]", "Gbit per km"],
            [list(r) for r in self.rows],
            title="Data volume available to one train traversal")

    def series(self) -> dict[str, list]:
        return {"deployment": [r[0] for r in self.rows],
                "duration_s": [r[1] for r in self.rows],
                "volume_gbit": [r[2] for r in self.rows],
                "gbit_per_km": [r[3] for r in self.rows]}


def run_traversal() -> TraversalExperiment:
    """Per-traversal data volume: conventional vs. repeater-extended."""
    cases = {"conventional 500 m": CorridorLayout.conventional(),
             "N=8 @ 2400 m": CorridorLayout.with_uniform_repeaters(2400.0, 8),
             "N=10 @ 2650 m": CorridorLayout.with_uniform_repeaters(2650.0, 10)}
    rows = []
    for name, layout in cases.items():
        result = simulate_traversal(layout)
        gbit = result.data_volume_bit / 1e9
        rows.append((name, result.duration_s, gbit, gbit / (layout.isd_m / 1000)))
    return TraversalExperiment(rows=rows)


# --- economics ---------------------------------------------------------------------

@dataclass(frozen=True)
class EconomicsResult:
    rows: list[tuple[str, float, float, float, float]]

    def table(self) -> str:
        return format_table(
            ["deployment", "CAPEX [MEUR]", "energy OPEX [MEUR]",
             "maint OPEX [MEUR]", "10 yr total [MEUR]"],
            [list(r) for r in self.rows],
            title="100 km corridor, 10-year cost comparison")

    def series(self) -> dict[str, list]:
        return {"deployment": [r[0] for r in self.rows],
                "capex_meur": [r[1] for r in self.rows],
                "energy_opex_meur": [r[2] for r in self.rows],
                "maintenance_opex_meur": [r[3] for r in self.rows],
                "total_meur": [r[4] for r in self.rows]}


def run_economics(corridor_km: float = 100.0,
                  horizon_years: float = 10.0,
                  assumptions: CostAssumptions | None = None) -> EconomicsResult:
    """Ten-year cost of the three deployment strategies."""
    cases = {
        "conventional": (CorridorDeployment.conventional(), OperatingMode.SLEEP),
        "repeaters, sleep": (CorridorDeployment.with_repeaters(2650.0, 10),
                             OperatingMode.SLEEP),
        "repeaters, solar": (CorridorDeployment.with_repeaters(2650.0, 10),
                             OperatingMode.SOLAR),
    }
    rows = []
    for name, (deployment, mode) in cases.items():
        cost = corridor_cost(deployment, mode, corridor_km, horizon_years,
                             assumptions)
        rows.append((name, cost.capex / 1e6, cost.energy_opex / 1e6,
                     cost.maintenance_opex / 1e6, cost.total / 1e6))
    return EconomicsResult(rows=rows)


# --- shadowing robustness --------------------------------------------------------------

@dataclass(frozen=True)
class RobustnessResult:
    rows: list[tuple[int, float, float, float, float]]
    sigma_db: float

    def table(self) -> str:
        return format_table(
            ["N", "registered ISD [m]", "outage probability", "95% CI low", "95% CI high"],
            [list(r) for r in self.rows],
            title=f"Shadowing outage at the registered ISDs (sigma {self.sigma_db} dB)")

    def series(self) -> dict[str, list]:
        return {"n_repeaters": [r[0] for r in self.rows],
                "isd_m": [r[1] for r in self.rows],
                "outage_probability": [r[2] for r in self.rows],
                "outage_ci95_low": [r[3] for r in self.rows],
                "outage_ci95_high": [r[4] for r in self.rows]}


def run_robustness(sigma_db: float = 4.0, trials: int = 60,
                   counts=(1, 4, 8, 10), jobs: int | None = None,
                   engine: str = "batched") -> RobustnessResult:
    """Outage probability of the paper's operating points under shadowing.

    The deterministic profiles of all operating points come from one
    batched-engine call and the Monte-Carlo trials of *all* points run as one
    stacked :func:`repro.optimize.mc.outage_matrix` evaluation under common
    random numbers, with a Wilson 95% interval per point.
    """
    from repro.optimize.mc import outage_matrix
    from repro.radio.batch import evaluate_scenarios
    from repro.scenario.spec import Scenario

    shadowing = LogNormalShadowing(sigma_db=sigma_db)
    layouts = [
        CorridorLayout.with_uniform_repeaters(constants.PAPER_MAX_ISD_M[n - 1], n)
        for n in counts
    ]
    profiles = evaluate_scenarios(
        [Scenario(layout=lo, resolution_m=10.0) for lo in layouts], jobs=jobs)
    matrix = outage_matrix(profiles, shadowing, trials=trials, engine=engine)
    ci_low, ci_high = matrix.ci95()
    rows = [
        (n, layout.isd_m, float(outage), float(low), float(high))
        for n, layout, outage, low, high in zip(
            counts, layouts, matrix.outage_probability, ci_low, ci_high)
    ]
    return RobustnessResult(rows=rows, sigma_db=sigma_db)


# --- robustness grid (ISD x sigma x decorrelation) -----------------------------------

@dataclass(frozen=True)
class RobustnessGridResult:
    """Outage across an (ISD x sigma x decorrelation) grid, fixed trial streams."""

    rows: list[tuple[float, float, float, float, float, float, float]]
    n_repeaters: int
    trials: int

    def table(self) -> str:
        return format_table(
            ["sigma [dB]", "decorrelation [m]", "ISD [m]", "outage",
             "95% CI low", "95% CI high", "median min SNR [dB]"],
            [list(r) for r in self.rows],
            title=(f"Shadowing robustness grid, N={self.n_repeaters}, "
                   f"{self.trials} trials per cell"))

    def series(self) -> dict[str, list]:
        return {"sigma_db": [r[0] for r in self.rows],
                "decorrelation_m": [r[1] for r in self.rows],
                "isd_m": [r[2] for r in self.rows],
                "outage_probability": [r[3] for r in self.rows],
                "outage_ci95_low": [r[4] for r in self.rows],
                "outage_ci95_high": [r[5] for r in self.rows],
                "median_min_snr_db": [r[6] for r in self.rows]}


def robustness_grid_study_spec(n_repeaters: int = 8,
                               isds_m=None,
                               sigmas=(2.0, 4.0, 6.0),
                               decorrelations_m=(25.0, 50.0, 100.0),
                               trials: int = 100,
                               resolution_m: float = 10.0,
                               seed: int = 2022,
                               engine: str = "batched"):
    """The robustness grid as a declarative :class:`~repro.study.spec.StudySpec`.

    Args:
        n_repeaters: Repeater count of every candidate layout.
        isds_m: ISD axis [m]; defaults to the registered maximum for
            ``n_repeaters`` and two back-offs (400 m, 200 m, 0 m).
        sigmas / decorrelations_m: Shadowing parameter axes.
        trials: Monte-Carlo trials per cell.
        resolution_m: Track grid step of the Eq. (2) profiles.
        seed: Root seed, shared across cells (common random numbers).
        engine: ``"batched"`` (default) or the ``"scalar"`` escape hatch of
            :func:`repro.optimize.mc.outage_matrix`.

    Returns:
        An ``mc``-engine spec with axes ``(sigma_db, decorrelation_m,
        isd_m)`` — the exact row order of :func:`run_robustness_grid`.
    """
    from repro.study.spec import StudySpec

    if isds_m is None:
        if not 1 <= n_repeaters <= len(constants.PAPER_MAX_ISD_M):
            raise ConfigurationError(
                f"default ISD anchor needs 1 <= n_repeaters <= "
                f"{len(constants.PAPER_MAX_ISD_M)}, got {n_repeaters}; "
                f"pass isds_m explicitly for other repeater counts")
        registered = constants.PAPER_MAX_ISD_M[n_repeaters - 1]
        isds_m = tuple(registered - backoff for backoff in (400.0, 200.0, 0.0))
    return StudySpec(
        name="robustness-grid",
        engine="mc",
        description="Shadowing outage over (ISD x sigma x decorrelation)",
        axes=(
            ("sigma_db", tuple(float(s) for s in sigmas)),
            ("decorrelation_m", tuple(float(d) for d in decorrelations_m)),
            ("isd_m", tuple(float(isd) for isd in isds_m)),
        ),
        fixed=(
            ("n_repeaters", int(n_repeaters)),
            ("trials", int(trials)),
            ("resolution_m", float(resolution_m)),
            ("engine", engine),
        ),
        seed=seed,
    )


def run_robustness_grid(n_repeaters: int = 8,
                        isds_m=None,
                        sigmas=(2.0, 4.0, 6.0),
                        decorrelations_m=(25.0, 50.0, 100.0),
                        trials: int = 100,
                        resolution_m: float = 10.0,
                        seed: int = 2022,
                        jobs: int | None = None,
                        cache=None,
                        engine: str = "batched") -> RobustnessGridResult:
    """Sweep outage over (ISD x sigma_db x decorrelation_m x trials).

    Compiles to a declarative ``mc``-engine study
    (:func:`robustness_grid_study_spec`) executed by the sharded runner.  The
    per-trial seeding (``default_rng([seed, t])``, common random numbers)
    makes every cell comparable — along the ISD axis *and* across shadowing
    parameters — and makes the grid bit-identical for any shard/job count,
    including to a stacked all-candidates ``outage_matrix`` evaluation
    (pinned in ``tests/test_study.py``).  ``isds_m`` defaults to the
    registered maximum for
    ``n_repeaters`` and two 200 m back-offs, i.e. the margin question an
    operator actually asks.

    Args:
        jobs: Worker processes for the study runner (``None``/1 = inline).
        cache: Optional :class:`~repro.scenario.cache.ProfileCache` memoizing
            the Eq. (2) profiles (honoured inline; worker processes share
            through its ``cache_dir`` when set).
        engine: ``"batched"`` (default) or the ``"scalar"`` audit path.

    Returns:
        The :class:`RobustnessGridResult` with one row per grid cell.
    """
    from repro.study.runner import run_study

    spec = robustness_grid_study_spec(
        n_repeaters=n_repeaters, isds_m=isds_m, sigmas=sigmas,
        decorrelations_m=decorrelations_m, trials=trials,
        resolution_m=resolution_m, seed=seed, engine=engine)
    context = {}
    if cache is not None:
        context["profile_cache"] = cache
        if getattr(cache, "cache_dir", None) is not None:
            context["cache_dir"] = str(cache.cache_dir)
    table = run_study(spec, jobs=jobs or 1, context=context).table
    columns = table.wide()
    rows = [
        (columns["sigma_db"][i], columns["decorrelation_m"][i],
         columns["isd_m"][i], columns["outage_probability"][i],
         columns["outage_ci95_low"][i], columns["outage_ci95_high"][i],
         columns["median_min_snr_db"][i])
        for i in range(len(table))
    ]
    return RobustnessGridResult(rows=rows, n_repeaters=n_repeaters, trials=trials)


# --- battery lifetime --------------------------------------------------------------------

@dataclass(frozen=True)
class LifetimeExperiment:
    rows: list[tuple[str, float, float, str]]

    def table(self) -> str:
        return format_table(
            ["location", "PV [Wp]", "battery [Wh]", "10-year outcome"],
            [list(r) for r in self.rows],
            title="Table IV systems over a 10-year service life")

    def series(self) -> dict[str, list]:
        return {"location": [r[0] for r in self.rows],
                "pv_peak_w": [r[1] for r in self.rows],
                "battery_wh": [r[2] for r in self.rows],
                "outcome": [r[3] for r in self.rows]}


def run_lifetime(service_years: int = 10, weather_cache=None) -> LifetimeExperiment:
    """Project the Table IV configurations across their service life.

    All service years of one configuration run as a single batched off-grid
    engine pass (:mod:`repro.solar.batch`); ``weather_cache`` optionally
    persists the per-year weather tensors across runs.
    """
    configs = {"madrid": (540.0, 720.0), "lyon": (540.0, 720.0),
               "vienna": (540.0, 1440.0), "berlin": (600.0, 1440.0)}
    rows = []
    for key, (pv, battery) in configs.items():
        result = project_lifetime(LOCATIONS[key], pv, battery,
                                  service_years=service_years,
                                  weather_cache=weather_cache)
        year = result.first_downtime_year
        outcome = "zero downtime" if year is None else f"downtime in year {year}"
        rows.append((LOCATIONS[key].name, pv, battery, outcome))
    return LifetimeExperiment(rows=rows)


# --- demand-driven load ---------------------------------------------------------

@dataclass(frozen=True)
class DemandExperiment:
    rows: list[tuple[str, float, float, float]]

    def table(self) -> str:
        return format_table(
            ["demand scenario", "load chi", "HP RRH avg [W]", "LP node avg [W]"],
            [list(r) for r in self.rows],
            title="Demand-driven load vs the paper's full-buffer assumption")

    def series(self) -> dict[str, list]:
        return {"scenario": [r[0] for r in self.rows],
                "chi": [r[1] for r in self.rows],
                "hp_avg_w": [r[2] for r in self.rows],
                "lp_avg_w": [r[3] for r in self.rows]}


def run_demand(isd_m: float = 2650.0) -> DemandExperiment:
    """Average powers under full-buffer vs realistic passenger demand."""
    from repro.power.profiles import HP_RRH_PROFILE, LP_REPEATER_PROFILE
    from repro.traffic.loadmodel import (
        DemandModel,
        average_power_with_demand_w,
        demand_load_fraction,
    )

    scenarios = {
        "full buffer (paper)": DemandModel(rate_per_active_bps=100e6),
        "busy commuter train": DemandModel(),
        "off-peak train": DemandModel(occupancy=0.25, active_share=0.25),
    }
    rows = []
    for name, demand in scenarios.items():
        chi = demand_load_fraction(demand)
        hp = average_power_with_demand_w(isd_m, HP_RRH_PROFILE.model, demand)
        lp = average_power_with_demand_w(
            constants.LP_NODE_SPACING_M, LP_REPEATER_PROFILE.model, demand)
        rows.append((name, chi, hp, lp))
    return DemandExperiment(rows=rows)


# --- BBU cell borders --------------------------------------------------------------

@dataclass(frozen=True)
class CellBorderExperiment:
    border_sinr_db: float
    outage_span_29db_m: float
    outage_span_10db_m: float

    def table(self) -> str:
        rows = [
            ["SINR at the border [dB]", self.border_sinr_db],
            ["below 29 dB (peak) per side [m]", self.outage_span_29db_m],
            ["below 10 dB per side [m]", self.outage_span_10db_m],
        ]
        return format_table(["quantity", "value"], rows,
                            title="Co-channel dip at a BBU cell border")

    def series(self) -> dict[str, list]:
        return {"quantity": ["border_sinr_db", "outage_29db_m", "outage_10db_m"],
                "value": [self.border_sinr_db, self.outage_span_29db_m,
                          self.outage_span_10db_m]}


def run_cell_border() -> CellBorderExperiment:
    """Quantify the SINR dip between adjacent same-carrier stretched cells."""
    from repro.radio.interference import cell_border_sinr, peak_outage_span_m

    profile = cell_border_sinr()
    return CellBorderExperiment(
        border_sinr_db=profile.border_sinr_db,
        outage_span_29db_m=peak_outage_span_m(),
        outage_span_10db_m=peak_outage_span_m(threshold_db=10.0),
    )

"""sim-grid — Monte-Carlo day-simulation sweep over the traffic scenario.

The paper's Table III fixes one traffic scenario (8 trains/h, 19 service
hours).  This experiment sweeps the *demand* axes instead: mean headway x
trains per day x sleep policy, each cell evaluated over a fleet of seeded
Poisson timetable realizations through the vectorized day engine
(:mod:`repro.simulation.batch`) — the traffic-demand-aware direction of
Pollakis et al.  Within a cell the three policies share one timetable fleet
(common random numbers), so the simulated policy gaps carry no timetable
noise; the analytic duty-cycle figure anchors each cell.

A (headway, trains/day) pair implies the service window: ``service_hours =
trains_per_day * headway / 3600``.  Pairs that need more than 24 h are
reported as infeasible (NaN) rows — demand that cannot be scheduled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError
from repro.reporting.tables import format_table
from repro.simulation.batch import simulate_days
from repro.traffic.timetable import day_timetables
from repro.traffic.trains import TrafficParams

__all__ = ["SimGridRow", "SimGridResult", "run_sim_grid"]


@dataclass(frozen=True)
class SimGridRow:
    """One (headway, trains/day, policy) cell of the sweep."""

    headway_s: float
    trains_per_day: float
    service_hours: float
    mode: OperatingMode
    realizations: int
    mean_w_per_km: float
    std_w_per_km: float
    ci95_low: float
    ci95_high: float
    analytic_w_per_km: float

    @property
    def feasible(self) -> bool:
        return not math.isnan(self.mean_w_per_km)

    @property
    def bias_pct(self) -> float:
        """Simulated-minus-analytic bias in percent (NaN when infeasible)."""
        return 100.0 * (self.mean_w_per_km / self.analytic_w_per_km - 1.0)


@dataclass(frozen=True)
class SimGridResult:
    """All sweep cells plus the engine/seed provenance."""

    isd_m: float
    n_repeaters: int
    rows: list[SimGridRow]
    seed: int
    engine: str

    def series(self) -> dict[str, list]:
        return {
            "headway_s": [r.headway_s for r in self.rows],
            "trains_per_day": [r.trains_per_day for r in self.rows],
            "service_hours": [r.service_hours for r in self.rows],
            "mode": [r.mode.value for r in self.rows],
            "realizations": [r.realizations for r in self.rows],
            "mean_w_per_km": [r.mean_w_per_km for r in self.rows],
            "std_w_per_km": [r.std_w_per_km for r in self.rows],
            "ci95_low": [r.ci95_low for r in self.rows],
            "ci95_high": [r.ci95_high for r in self.rows],
            "analytic_w_per_km": [r.analytic_w_per_km for r in self.rows],
        }

    def table(self) -> str:
        rows = [[r.headway_s, r.trains_per_day, r.mode.value,
                 r.mean_w_per_km, r.std_w_per_km, r.analytic_w_per_km,
                 r.bias_pct]
                for r in self.rows]
        return format_table(
            ["headway [s]", "trains/day", "policy", "sim [W/km]",
             "std", "analytic [W/km]", "bias %"],
            rows,
            title=(f"sim-grid: ISD {self.isd_m:.0f} m, N={self.n_repeaters}, "
                   f"{self.engine} engine, seed {self.seed}"))


def run_sim_grid(isd_m: float = 2400.0,
                 n_repeaters: int = 8,
                 headways=(300.0, 450.0, 900.0),
                 trains_per_day=(76.0, 152.0),
                 realizations: int = 25,
                 seed: int = 0,
                 transition_s: float = constants.SLEEP_TRANSITION_S,
                 wake_lead_m: float = 50.0,
                 engine: str = "batch") -> SimGridResult:
    """Sweep (headway x trains/day x policy) through the day engine."""
    if realizations < 1:
        raise ConfigurationError(
            f"realizations must be >= 1, got {realizations}")
    if not headways or any(h <= 0 for h in headways):
        raise ConfigurationError(f"headways must be positive, got {headways}")
    if not trains_per_day or any(n <= 0 for n in trains_per_day):
        raise ConfigurationError(
            f"trains/day must be positive, got {trains_per_day}")
    layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)

    rows: list[SimGridRow] = []
    nan = float("nan")
    for headway in headways:
        for tpd in trains_per_day:
            service_hours = tpd * headway / 3600.0
            feasible = service_hours <= 24.0
            if feasible:
                traffic = TrafficParams(trains_per_hour=3600.0 / headway,
                                        night_quiet_hours=24.0 - service_hours)
                params = EnergyParams(traffic=traffic)
                timetables = day_timetables(traffic, realizations=realizations,
                                            seed=seed, segment_length_m=isd_m)
            for mode in OperatingMode:
                if not feasible:
                    rows.append(SimGridRow(
                        headway_s=headway, trains_per_day=tpd,
                        service_hours=service_hours, mode=mode,
                        realizations=0, mean_w_per_km=nan, std_w_per_km=nan,
                        ci95_low=nan, ci95_high=nan, analytic_w_per_km=nan))
                    continue
                sim = simulate_days(layout, mode=mode, params=params,
                                    timetables=timetables,
                                    transition_s=transition_s,
                                    wake_lead_m=wake_lead_m, engine=engine)
                ci_low, ci_high = sim.ci95_w_per_km()
                rows.append(SimGridRow(
                    headway_s=headway, trains_per_day=tpd,
                    service_hours=service_hours, mode=mode,
                    realizations=sim.realizations,
                    mean_w_per_km=sim.mean_w_per_km(),
                    std_w_per_km=sim.std_w_per_km(),
                    ci95_low=ci_low, ci95_high=ci_high,
                    analytic_w_per_km=segment_energy(layout, mode,
                                                     params).w_per_km))
    return SimGridResult(isd_m=isd_m, n_repeaters=n_repeaters, rows=rows,
                         seed=seed, engine=engine)

"""sim-grid — Monte-Carlo day-simulation sweep over the traffic scenario.

The paper's Table III fixes one traffic scenario (8 trains/h, 19 service
hours).  This experiment sweeps the *demand* axes instead: mean headway x
trains per day x sleep policy, each cell evaluated over a fleet of seeded
Poisson timetable realizations through the vectorized day engine
(:mod:`repro.simulation.batch`) — the traffic-demand-aware direction of
Pollakis et al.  Within a cell the three policies share one timetable fleet
(common random numbers), so the simulated policy gaps carry no timetable
noise; the analytic duty-cycle figure anchors each cell.

A (headway, trains/day) pair implies the service window: ``service_hours =
trains_per_day * headway / 3600``.  Pairs that need more than 24 h are
reported as infeasible (NaN) rows — demand that cannot be scheduled.

The sweep itself is declarative: :func:`sim_grid_study_spec` builds the
equivalent :class:`~repro.study.spec.StudySpec` and :func:`run_sim_grid`
executes it through the sharded study runner (``studies/sim_grid.yaml``
ships the file-based variant with an additional ISD axis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError
from repro.reporting.tables import format_table

__all__ = ["SimGridRow", "SimGridResult", "run_sim_grid",
           "sim_grid_study_spec"]


@dataclass(frozen=True)
class SimGridRow:
    """One (headway, trains/day, policy) cell of the sweep."""

    headway_s: float
    trains_per_day: float
    service_hours: float
    mode: OperatingMode
    realizations: int
    mean_w_per_km: float
    std_w_per_km: float
    ci95_low: float
    ci95_high: float
    analytic_w_per_km: float

    @property
    def feasible(self) -> bool:
        return not math.isnan(self.mean_w_per_km)

    @property
    def bias_pct(self) -> float:
        """Simulated-minus-analytic bias in percent (NaN when infeasible)."""
        return 100.0 * (self.mean_w_per_km / self.analytic_w_per_km - 1.0)


@dataclass(frozen=True)
class SimGridResult:
    """All sweep cells plus the engine/seed provenance."""

    isd_m: float
    n_repeaters: int
    rows: list[SimGridRow]
    seed: int
    engine: str

    def series(self) -> dict[str, list]:
        return {
            "headway_s": [r.headway_s for r in self.rows],
            "trains_per_day": [r.trains_per_day for r in self.rows],
            "service_hours": [r.service_hours for r in self.rows],
            "mode": [r.mode.value for r in self.rows],
            "realizations": [r.realizations for r in self.rows],
            "mean_w_per_km": [r.mean_w_per_km for r in self.rows],
            "std_w_per_km": [r.std_w_per_km for r in self.rows],
            "ci95_low": [r.ci95_low for r in self.rows],
            "ci95_high": [r.ci95_high for r in self.rows],
            "analytic_w_per_km": [r.analytic_w_per_km for r in self.rows],
        }

    def table(self) -> str:
        rows = [[r.headway_s, r.trains_per_day, r.mode.value,
                 r.mean_w_per_km, r.std_w_per_km, r.analytic_w_per_km,
                 r.bias_pct]
                for r in self.rows]
        return format_table(
            ["headway [s]", "trains/day", "policy", "sim [W/km]",
             "std", "analytic [W/km]", "bias %"],
            rows,
            title=(f"sim-grid: ISD {self.isd_m:.0f} m, N={self.n_repeaters}, "
                   f"{self.engine} engine, seed {self.seed}"))


def sim_grid_study_spec(isd_m: float = 2400.0,
                        n_repeaters: int = 8,
                        headways=(300.0, 450.0, 900.0),
                        trains_per_day=(76.0, 152.0),
                        realizations: int = 25,
                        seed: int = 0,
                        transition_s: float = constants.SLEEP_TRANSITION_S,
                        wake_lead_m: float = 50.0,
                        engine: str = "batch"):
    """The sim-grid sweep as a declarative :class:`~repro.study.spec.StudySpec`.

    Args:
        isd_m / n_repeaters: Corridor geometry of every cell.
        headways: Mean headway axis [s].
        trains_per_day: Demand axis.
        realizations: Seeded Poisson timetable days per cell.
        seed: Root seed, shared across cells (common random numbers).
        transition_s / wake_lead_m: Sleep-transition parameters.
        engine: ``"batch"`` (default) or the ``"event"`` scalar escape hatch.

    Returns:
        A ``sim``-engine spec with axes ``(headway_s, trains_per_day,
        policy)`` — the exact cell order of :func:`run_sim_grid`.
    """
    from repro.study.spec import StudySpec

    return StudySpec(
        name="sim-grid",
        engine="sim",
        description="Monte-Carlo day simulation (headway x trains/day x policy)",
        axes=(
            ("headway_s", tuple(headways)),
            ("trains_per_day", tuple(trains_per_day)),
            ("policy", tuple(mode.value for mode in OperatingMode)),
        ),
        fixed=(
            ("isd_m", float(isd_m)),
            ("n_repeaters", int(n_repeaters)),
            ("realizations", int(realizations)),
            ("transition_s", float(transition_s)),
            ("wake_lead_m", float(wake_lead_m)),
            ("engine", engine),
        ),
        seed=seed,
    )


def run_sim_grid(isd_m: float = 2400.0,
                 n_repeaters: int = 8,
                 headways=(300.0, 450.0, 900.0),
                 trains_per_day=(76.0, 152.0),
                 realizations: int = 25,
                 seed: int = 0,
                 transition_s: float = constants.SLEEP_TRANSITION_S,
                 wake_lead_m: float = 50.0,
                 engine: str = "batch",
                 jobs: int = 1) -> SimGridResult:
    """Sweep (headway x trains/day x policy) through the day engine.

    Compiles to a declarative study (:func:`sim_grid_study_spec`) executed by
    the sharded runner — ``jobs > 1`` evaluates cells on a process pool, with
    results bit-identical to the inline run (the CRN contract of
    :mod:`repro.study.runner`).  Cells whose demand cannot be scheduled
    within 24 h come back as NaN rows.

    Args:
        jobs: Worker processes for the study runner (default inline).
        engine: ``"batch"`` (default) or ``"event"`` — forwarded to
            :func:`repro.simulation.batch.simulate_days` per cell.

    Returns:
        The :class:`SimGridResult` with one :class:`SimGridRow` per
        (headway, trains/day, policy) cell.
    """
    from repro.study.runner import run_study

    if realizations < 1:
        raise ConfigurationError(
            f"realizations must be >= 1, got {realizations}")
    if not headways or any(h <= 0 for h in headways):
        raise ConfigurationError(f"headways must be positive, got {headways}")
    if not trains_per_day or any(n <= 0 for n in trains_per_day):
        raise ConfigurationError(
            f"trains/day must be positive, got {trains_per_day}")
    CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)  # validate early

    spec = sim_grid_study_spec(isd_m=isd_m, n_repeaters=n_repeaters,
                               headways=headways,
                               trains_per_day=trains_per_day,
                               realizations=realizations, seed=seed,
                               transition_s=transition_s,
                               wake_lead_m=wake_lead_m, engine=engine)
    table = run_study(spec, jobs=jobs).table
    columns = table.wide()
    rows = [
        SimGridRow(
            headway_s=columns["headway_s"][i],
            trains_per_day=columns["trains_per_day"][i],
            service_hours=columns["service_hours"][i],
            mode=OperatingMode(columns["policy"][i]),
            realizations=int(columns["realizations"][i]),
            mean_w_per_km=columns["mean_w_per_km"][i],
            std_w_per_km=columns["std_w_per_km"][i],
            ci95_low=columns["ci95_low"][i],
            ci95_high=columns["ci95_high"][i],
            analytic_w_per_km=columns["analytic_w_per_km"][i])
        for i in range(len(table))
    ]
    return SimGridResult(isd_m=isd_m, n_repeaters=n_repeaters, rows=rows,
                         seed=seed, engine=engine)

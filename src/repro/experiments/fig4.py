"""Fig. 4 — average energy consumption per km for the three policies.

Bars: conventional corridor (left) and N = 1..10 repeater deployments at
their maximum ISDs, each under continuous / sleep / solar repeater operation.
The headline numbers checked against the text: savings of 57 % (N=1, sleep),
74 % (N=10, sleep), 59 %/79 % solar, and the >50 % threshold from N=3 with
continuously powered repeaters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.energy.analysis import Fig4Row, fig4_rows
from repro.energy.duty import EnergyParams
from repro.reporting.tables import format_table

__all__ = ["Fig4Result", "run_fig4"]


@dataclass(frozen=True)
class Fig4Result:
    """All Fig. 4 bars plus the conventional reference."""

    rows: list[Fig4Row]
    isd_source: str

    def series(self) -> dict[str, list]:
        return {
            "n_repeaters": [r.n_repeaters for r in self.rows],
            "isd_m": [r.isd_m for r in self.rows],
            "continuous_w_per_km": [r.continuous_w_per_km for r in self.rows],
            "sleep_w_per_km": [r.sleep_w_per_km for r in self.rows],
            "solar_w_per_km": [r.solar_w_per_km for r in self.rows],
            "continuous_savings_pct": [100 * r.continuous_savings for r in self.rows],
            "sleep_savings_pct": [100 * r.sleep_savings for r in self.rows],
            "solar_savings_pct": [100 * r.solar_savings for r in self.rows],
        }

    def table(self) -> str:
        rows = [[r.n_repeaters, r.isd_m,
                 r.continuous_w_per_km, 100 * r.continuous_savings,
                 r.sleep_w_per_km, 100 * r.sleep_savings,
                 r.solar_w_per_km, 100 * r.solar_savings]
                for r in self.rows]
        return format_table(
            ["N", "ISD [m]", "cont [W/km]", "cont sav %",
             "sleep [W/km]", "sleep sav %", "solar [W/km]", "solar sav %"],
            rows,
            title=f"Fig. 4: average energy per km ({self.isd_source} ISDs)")

    def row_for(self, n_repeaters: int) -> Fig4Row:
        for row in self.rows:
            if row.n_repeaters == n_repeaters:
                return row
        raise KeyError(f"no row for N = {n_repeaters}")


def run_fig4(isd_by_n: dict[int, float] | None = None,
             params: EnergyParams | None = None) -> Fig4Result:
    """Compute Fig. 4.  Defaults to the paper's registered ISD list; pass a
    model-derived mapping (e.g. from :func:`repro.optimize.sweep_max_isd`) to
    regenerate the figure end-to-end from the capacity model."""
    source = "paper-registered" if isd_by_n is None else "model-derived"
    return Fig4Result(rows=fig4_rows(isd_by_n, params), isd_source=source)

"""network — demand x budget x technology-mix sweep over a corridor graph.

The national-network headline table: for every (demand scale, energy
budget, technology mix) cell the ``network`` study engine builds the named
corridor graph, computes the per-segment technology frontiers in one
batched pass, and runs the Lagrangian assignment
(:func:`repro.network.optimize.optimize_network`).  Budgets are expressed
per track km so the same ladder is meaningful at any graph size; cells
whose budget lies below the minimum achievable come back as infeasible
(NaN) rows — the optimizer raises only after the full frontier scan, so
the ``min_w_per_km`` column still reports how far away feasibility is.

The sweep is declarative: :func:`network_study_spec` builds the
:class:`~repro.study.spec.StudySpec` that ``studies/national_network.yaml``
mirrors (same hash), and :func:`run_network` executes it through the
sharded study runner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.reporting.tables import format_table

__all__ = ["NetworkRow", "NetworkResult", "run_network",
           "network_study_spec"]

#: Budget ladder [W/km]: 0 = unconstrained; 100 and 125 sit below the
#: scale-2.0 minimum (~159 W/km on the national graph — infeasible cells),
#: 175 is feasible everywhere but tight at high demand.
_DEFAULT_BUDGETS = (0.0, 100.0, 125.0, 175.0)
_DEFAULT_MIXES = ("conventional,repeater,mobile_relay", "conventional,repeater")


@dataclass(frozen=True)
class NetworkRow:
    """One (demand scale, energy budget, technology mix) cell."""

    demand_scale: float
    energy_budget_w_per_km: float
    technologies: str
    total_cost_meur: float
    total_energy_kw: float
    min_w_per_km: float
    mean_w_per_km: float
    sleeping_segments: int
    sleeping_fraction: float
    n_conventional: int
    n_repeater: int
    n_mobile_relay: int
    n_solar: int

    @property
    def feasible(self) -> bool:
        """Whether the budget was achievable (NaN row otherwise)."""
        return not math.isnan(self.total_cost_meur)


@dataclass(frozen=True)
class NetworkResult:
    """All sweep cells plus the graph provenance."""

    graph: str
    segments: int
    rows: list[NetworkRow]
    seed: int

    def series(self) -> dict[str, list]:
        """Column-oriented view (the golden-snapshot surface)."""
        return {
            "demand_scale": [r.demand_scale for r in self.rows],
            "energy_budget_w_per_km": [r.energy_budget_w_per_km
                                       for r in self.rows],
            "technologies": [r.technologies for r in self.rows],
            "feasible": [int(r.feasible) for r in self.rows],
            "total_cost_meur": [r.total_cost_meur for r in self.rows],
            "total_energy_kw": [r.total_energy_kw for r in self.rows],
            "min_w_per_km": [r.min_w_per_km for r in self.rows],
            "mean_w_per_km": [r.mean_w_per_km for r in self.rows],
            "sleeping_segments": [r.sleeping_segments for r in self.rows],
            "sleeping_fraction": [r.sleeping_fraction for r in self.rows],
            "n_conventional": [r.n_conventional for r in self.rows],
            "n_repeater": [r.n_repeater for r in self.rows],
            "n_mobile_relay": [r.n_mobile_relay for r in self.rows],
            "n_solar": [r.n_solar for r in self.rows],
        }

    def table(self) -> str:
        """Render the headline table."""
        rows = [[r.demand_scale, r.energy_budget_w_per_km,
                 r.technologies.count(",") + 1,
                 "yes" if r.feasible else "no",
                 r.total_cost_meur, r.mean_w_per_km, r.sleeping_fraction,
                 r.n_repeater, r.n_mobile_relay, r.n_solar]
                for r in self.rows]
        return format_table(
            ["demand x", "budget [W/km]", "techs", "feasible", "cost [MEUR]",
             "energy [W/km]", "sleep frac", "n rep", "n relay", "n solar"],
            rows,
            title=(f"network: {self.graph} graph, {self.segments} segments, "
                   f"seed {self.seed}"))


def network_study_spec(graph: str = "national",
                       segments: int = 10_000,
                       demand_scales=(0.5, 1.0, 2.0),
                       energy_budgets_w_per_km=_DEFAULT_BUDGETS,
                       technology_mixes=_DEFAULT_MIXES,
                       resolution_m: float = 25.0,
                       horizon_years: float = 10.0,
                       seed: int = 0):
    """The network sweep as a declarative :class:`~repro.study.spec.StudySpec`.

    Args:
        graph: Named graph from :data:`repro.network.presets.NAMED_GRAPHS`.
        segments: Total segment count (0 = the named default).
        demand_scales: Multipliers on every corridor's trains/h.
        energy_budgets_w_per_km: Global energy budget per track km
            (<= 0 = unconstrained).
        technology_mixes: Comma-joined technology lists (study axes must be
            scalars).
        resolution_m / horizon_years: Frontier evaluation knobs.
        seed: Root seed (the engine is deterministic; the seed only feeds
            the CRN case-seed contract).

    Returns:
        A ``network``-engine spec with axes ``(demand_scale,
        energy_budget_w_per_km, technologies)`` — the exact cell order of
        :func:`run_network`.
    """
    from repro.study.spec import StudySpec

    return StudySpec(
        name="national-network",
        engine="network",
        description="Topology optimization (demand x energy budget x mix)",
        axes=(
            ("demand_scale", tuple(demand_scales)),
            ("energy_budget_w_per_km", tuple(energy_budgets_w_per_km)),
            ("technologies", tuple(technology_mixes)),
        ),
        fixed=(
            ("graph", str(graph)),
            ("segments", int(segments)),
            ("resolution_m", float(resolution_m)),
            ("horizon_years", float(horizon_years)),
        ),
        seed=seed,
    )


def run_network(graph: str = "national",
                segments: int = 1500,
                demand_scales=(0.5, 1.0, 2.0),
                energy_budgets_w_per_km=_DEFAULT_BUDGETS,
                technology_mixes=_DEFAULT_MIXES,
                resolution_m: float = 25.0,
                horizon_years: float = 10.0,
                seed: int = 0,
                jobs: int = 1) -> NetworkResult:
    """Sweep (demand x budget x mix) through the network optimizer.

    Compiles to a declarative study (:func:`network_study_spec`) executed
    by the sharded runner — ``jobs > 1`` evaluates cells on a process pool,
    bit-identical to the inline run.  The default ``segments=1500`` keeps
    the in-process table (and its golden snapshot) fast; the shipped
    ``studies/national_network.yaml`` runs the full 10 000-segment graph.

    Args:
        jobs: Worker processes for the study runner (default inline).
        (Other arguments as in :func:`network_study_spec`.)

    Returns:
        The :class:`NetworkResult` with one :class:`NetworkRow` per cell.
    """
    from repro.study.runner import run_study

    if not demand_scales or any(s < 0 for s in demand_scales):
        raise ConfigurationError(
            f"demand scales must be >= 0, got {demand_scales}")
    if not energy_budgets_w_per_km:
        raise ConfigurationError("need at least one energy budget")
    if not technology_mixes:
        raise ConfigurationError("need at least one technology mix")

    spec = network_study_spec(graph=graph, segments=segments,
                              demand_scales=demand_scales,
                              energy_budgets_w_per_km=energy_budgets_w_per_km,
                              technology_mixes=technology_mixes,
                              resolution_m=resolution_m,
                              horizon_years=horizon_years, seed=seed)
    table = run_study(spec, jobs=jobs).table
    columns = table.wide()
    rows = [
        NetworkRow(
            demand_scale=columns["demand_scale"][i],
            energy_budget_w_per_km=columns["energy_budget_w_per_km"][i],
            technologies=columns["technologies"][i],
            total_cost_meur=columns["total_cost_meur"][i],
            total_energy_kw=columns["total_energy_kw"][i],
            min_w_per_km=columns["min_w_per_km"][i],
            mean_w_per_km=columns["mean_w_per_km"][i],
            sleeping_segments=int(columns["sleeping_segments"][i]),
            sleeping_fraction=columns["sleeping_fraction"][i],
            n_conventional=int(columns["n_conventional"][i]),
            n_repeater=int(columns["n_repeater"][i]),
            n_mobile_relay=int(columns["n_mobile_relay"][i]),
            n_solar=int(columns["n_solar"][i]))
        for i in range(len(table))
    ]
    return NetworkResult(graph=graph, segments=segments, rows=rows,
                         seed=seed)

"""Table II — EARTH power-model parameters and derived site powers.

Checks the Section III-B site figures: a two-sector high-power mast draws
560 W at full load, 336 W at no load, 224 W asleep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.power.earth_model import PowerState
from repro.power.profiles import HP_RRH_PROFILE, LP_REPEATER_PROFILE, PowerProfile, hp_site_power_w
from repro.reporting.tables import format_table

__all__ = ["Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Result:
    """Model parameters plus derived per-unit and per-site powers."""

    profiles: tuple[PowerProfile, ...]

    def series(self) -> dict[str, list]:
        return {
            "node_type": [p.name for p in self.profiles],
            "p_max_w": [p.model.p_max_w for p in self.profiles],
            "p0_w": [p.model.p0_w for p in self.profiles],
            "delta_p": [p.model.delta_p for p in self.profiles],
            "p_sleep_w": [p.model.p_sleep_w for p in self.profiles],
            "full_load_w": [p.model.full_load_w for p in self.profiles],
        }

    def table(self) -> str:
        rows = [[p.name, p.model.p_max_w, p.model.p0_w, p.model.delta_p,
                 p.model.p_sleep_w, p.model.full_load_w]
                for p in self.profiles]
        rows.append(["HP site (2 RRH) full", "", "", "",
                     "", hp_site_power_w(PowerState.FULL_LOAD)])
        rows.append(["HP site (2 RRH) no load", "", "", "",
                     "", hp_site_power_w(PowerState.NO_LOAD)])
        rows.append(["HP site (2 RRH) sleep", "", "", "",
                     "", hp_site_power_w(PowerState.SLEEP)])
        return format_table(
            ["node type", "Pmax [W]", "P0 [W]", "dp", "Psleep [W]", "full [W]"],
            rows, title="Table II: power model parameters")

    @property
    def hp_site_full_w(self) -> float:
        return hp_site_power_w(PowerState.FULL_LOAD)

    @property
    def hp_site_no_load_w(self) -> float:
        return hp_site_power_w(PowerState.NO_LOAD)

    @property
    def hp_site_sleep_w(self) -> float:
        return hp_site_power_w(PowerState.SLEEP)

    @property
    def repeater_energy_share_of_site(self) -> float:
        """The abstract's "repeaters consume only 5 % of a regular cell site"."""
        return constants.LP_REPEATER_FULL_LOAD_W / self.hp_site_full_w


def run_table2() -> Table2Result:
    """Assemble the Table II profiles."""
    return Table2Result(profiles=(HP_RRH_PROFILE, LP_REPEATER_PROFILE))

"""Fig. 3 — signal and noise power profile for d_ISD = 2400 m, N = 8.

Regenerates the figure's series: per-source RSRP curves (HP left/right,
8 repeaters), total signal power and total noise power along the track.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corridor.layout import CorridorLayout
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams, SnrProfile
from repro.reporting.tables import format_table
from repro.scenario.cache import ProfileCache
from repro.scenario.spec import Scenario

__all__ = ["Fig3Result", "run_fig3"]

#: The paper's example scenario.
FIG3_ISD_M = 2400.0
FIG3_N_REPEATERS = 8


@dataclass(frozen=True)
class Fig3Result:
    """Series of Fig. 3 plus summary scalars."""

    profile: SnrProfile
    layout: CorridorLayout
    hp_below_100dbm_after_m: float

    def series(self) -> dict[str, np.ndarray]:
        """Columns to regenerate the figure."""
        cols: dict[str, np.ndarray] = {"position_m": self.profile.positions_m}
        cols["hp_left_dbm"] = self.profile.source_rsrp_dbm[0]
        cols["hp_right_dbm"] = self.profile.source_rsrp_dbm[1]
        for i in range(self.layout.n_repeaters):
            cols[f"repeater_{i + 1}_dbm"] = self.profile.source_rsrp_dbm[2 + i]
        cols["total_signal_dbm"] = self.profile.total_signal_dbm
        cols["total_noise_dbm"] = self.profile.total_noise_dbm
        cols["snr_db"] = self.profile.snr_db
        return cols

    def table(self) -> str:
        """Summary statistics (the figure itself is the CSV series)."""
        rows = [
            ["min SNR [dB]", self.profile.min_snr_db],
            ["mean SNR [dB]", self.profile.mean_snr_db],
            ["min total signal [dBm]", float(np.min(self.profile.total_signal_dbm))],
            ["max total noise [dBm]", float(np.max(self.profile.total_noise_dbm))],
            ["HP signal < -100 dBm after [m]", self.hp_below_100dbm_after_m],
        ]
        return format_table(["quantity", "value"], rows,
                            title=f"Fig. 3: d_ISD = {FIG3_ISD_M:.0f} m, N = {FIG3_N_REPEATERS}")


def run_fig3(link: LinkParams | None = None,
             isd_m: float = FIG3_ISD_M,
             n_repeaters: int = FIG3_N_REPEATERS,
             resolution_m: float = 1.0,
             cache: ProfileCache | None = None) -> Fig3Result:
    """Compute the Fig. 3 profile through the scenario engine.

    Also extracts the in-text observation that the serving HP signal "drops
    below -100 dBm after around 250 m".
    """
    layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)
    scenario = Scenario(layout=layout, link=link or LinkParams(),
                        resolution_m=resolution_m)
    profile = evaluate_scenarios([scenario], cache=cache)[0]

    hp_left = profile.source_rsrp_dbm[0]
    below = np.nonzero(hp_left < -100.0)[0]
    crossing = float(profile.positions_m[below[0]]) if below.size else float("inf")

    return Fig3Result(profile=profile, layout=layout,
                      hp_below_100dbm_after_m=crossing)

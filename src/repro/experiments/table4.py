"""Table IV — off-grid PV dimensioning at the four example regions.

For each location the sizing ladder is walked until zero downtime, expected
to land on the paper's configurations: Madrid/Lyon 540 Wp + 720 Wh, Vienna
540 Wp + 1440 Wh, Berlin 600 Wp + 1440 Wh, and to show the published
"days with full battery" ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.reporting.tables import format_table
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import LoadProfile
from repro.solar.sizing import SizingResult, find_minimal_system

__all__ = ["Table4Result", "run_table4"]

#: Location order as printed in the paper.
LOCATION_ORDER = ("madrid", "lyon", "vienna", "berlin")


@dataclass(frozen=True)
class Table4Result:
    """Sizing outcome per location."""

    sizings: dict[str, SizingResult]

    def series(self) -> dict[str, list]:
        keys = [k for k in LOCATION_ORDER if k in self.sizings]
        return {
            "location": keys,
            "pv_peak_w": [self.sizings[k].pv_peak_w for k in keys],
            "battery_wh": [self.sizings[k].battery_capacity_wh for k in keys],
            "full_battery_days_pct": [self.sizings[k].result.full_battery_days_pct
                                      for k in keys],
            "paper_full_battery_days_pct": [constants.PAPER_FULL_BATTERY_DAYS_PCT[k]
                                            for k in keys],
            "unmet_hours": [self.sizings[k].result.unmet_hours for k in keys],
            "annual_pv_kwh": [self.sizings[k].result.annual_pv_kwh for k in keys],
        }

    def table(self) -> str:
        rows = []
        for key in LOCATION_ORDER:
            if key not in self.sizings:
                continue
            s = self.sizings[key]
            rows.append([s.location_name, s.pv_peak_w, s.battery_capacity_wh,
                         s.result.full_battery_days_pct,
                         constants.PAPER_FULL_BATTERY_DAYS_PCT[key],
                         s.result.unmet_hours])
        return format_table(
            ["location", "PV [Wp]", "battery [Wh]", "full days [%]",
             "paper [%]", "unmet [h]"],
            rows, title="Table IV: off-grid PV dimensioning (zero-downtime sizing)")

    def full_days_ordering(self) -> list[str]:
        """Locations sorted by decreasing full-battery-day percentage."""
        keys = [k for k in LOCATION_ORDER if k in self.sizings]
        return sorted(keys, key=lambda k: -self.sizings[k].result.full_battery_days_pct)


def run_table4(load: LoadProfile | None = None, seed: int = 2022) -> Table4Result:
    """Run the sizing search at all four locations."""
    sizings = {key: find_minimal_system(LOCATIONS[key], load=load, seed=seed)
               for key in LOCATION_ORDER}
    return Table4Result(sizings=sizings)

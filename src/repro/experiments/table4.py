"""Table IV — off-grid PV dimensioning at the four example regions.

For each location the sizing ladder is walked until zero downtime, expected
to land on the paper's configurations: Madrid/Lyon 540 Wp + 720 Wh, Vienna
540 Wp + 1440 Wh, Berlin 600 Wp + 1440 Wh, and to show the published
"days with full battery" ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.reporting.tables import format_table
from repro.solar.batch import candidate_grid, simulate_candidates
from repro.solar.climates import LOCATIONS
from repro.solar.offgrid import LoadProfile, OffGridResult
from repro.solar.sizing import SizingResult, find_minimal_system

__all__ = ["Table4Result", "run_table4", "Table4GridResult", "run_table4_grid",
           "table4_grid_study_spec"]

#: Location order as printed in the paper.
LOCATION_ORDER = ("madrid", "lyon", "vienna", "berlin")


@dataclass(frozen=True)
class Table4Result:
    """Sizing outcome per location."""

    sizings: dict[str, SizingResult]

    def series(self) -> dict[str, list]:
        keys = [k for k in LOCATION_ORDER if k in self.sizings]
        return {
            "location": keys,
            "pv_peak_w": [self.sizings[k].pv_peak_w for k in keys],
            "battery_wh": [self.sizings[k].battery_capacity_wh for k in keys],
            "full_battery_days_pct": [self.sizings[k].result.full_battery_days_pct
                                      for k in keys],
            "paper_full_battery_days_pct": [constants.PAPER_FULL_BATTERY_DAYS_PCT[k]
                                            for k in keys],
            "unmet_hours": [self.sizings[k].result.unmet_hours for k in keys],
            "annual_pv_kwh": [self.sizings[k].result.annual_pv_kwh for k in keys],
        }

    def table(self) -> str:
        rows = []
        for key in LOCATION_ORDER:
            if key not in self.sizings:
                continue
            s = self.sizings[key]
            rows.append([s.location_name, s.pv_peak_w, s.battery_capacity_wh,
                         s.result.full_battery_days_pct,
                         constants.PAPER_FULL_BATTERY_DAYS_PCT[key],
                         s.result.unmet_hours])
        return format_table(
            ["location", "PV [Wp]", "battery [Wh]", "full days [%]",
             "paper [%]", "unmet [h]"],
            rows, title="Table IV: off-grid PV dimensioning (zero-downtime sizing)")

    def full_days_ordering(self) -> list[str]:
        """Locations sorted by decreasing full-battery-day percentage."""
        keys = [k for k in LOCATION_ORDER if k in self.sizings]
        return sorted(keys, key=lambda k: -self.sizings[k].result.full_battery_days_pct)


def run_table4(load: LoadProfile | None = None, seed: int = 2022,
               weather_cache=None) -> Table4Result:
    """Run the sizing search at all four locations.

    Each location's candidate ladder is evaluated in one batched pass
    (:mod:`repro.solar.batch`); ``weather_cache`` optionally persists the
    synthesized weather years across runs.
    """
    sizings = {key: find_minimal_system(LOCATIONS[key], load=load, seed=seed,
                                        weather_cache=weather_cache)
               for key in LOCATION_ORDER}
    return Table4Result(sizings=sizings)


#: Default candidate-grid axes for ``table4-grid``: a denser sweep around the
#: paper's 5-rung ladder (PV peaks around the 1-4 module range x battery
#: banks from the standard 720 Wh to triple capacity).
DEFAULT_PV_PEAKS_W = (360.0, 420.0, 480.0, 540.0, 600.0, 660.0, 720.0)
DEFAULT_BATTERY_WHS = (720.0, 1080.0, 1440.0, 1800.0, 2160.0)


@dataclass(frozen=True)
class Table4GridResult:
    """Zero-downtime feasibility over a full (PV peak × battery Wh) grid."""

    pv_peaks_w: tuple[float, ...]
    battery_whs: tuple[float, ...]
    #: ``results[location_key][(pv_peak_w, battery_wh)]`` for every combo.
    results: dict[str, dict[tuple[float, float], OffGridResult]]

    def minimal_battery_wh(self, location_key: str, pv_peak_w: float) -> float | None:
        """Smallest zero-downtime battery for a PV size (None if infeasible)."""
        feasible = [wh for wh in self.battery_whs
                    if self.results[location_key][(pv_peak_w, wh)].zero_downtime]
        return min(feasible) if feasible else None

    def series(self) -> dict[str, list]:
        keys = [k for k in LOCATION_ORDER if k in self.results]
        rows = [(k, pv, wh, self.results[k][(pv, wh)])
                for k in keys for pv in self.pv_peaks_w for wh in self.battery_whs]
        return {
            "location": [k for k, _, _, _ in rows],
            "pv_peak_w": [pv for _, pv, _, _ in rows],
            "battery_wh": [wh for _, _, wh, _ in rows],
            "zero_downtime": [int(r.zero_downtime) for _, _, _, r in rows],
            "unmet_hours": [r.unmet_hours for _, _, _, r in rows],
            "full_battery_days_pct": [r.full_battery_days_pct for _, _, _, r in rows],
            "annual_pv_kwh": [r.annual_pv_kwh for _, _, _, r in rows],
        }

    def table(self) -> str:
        rows = []
        for key in LOCATION_ORDER:
            if key not in self.results:
                continue
            for pv in self.pv_peaks_w:
                minimal = self.minimal_battery_wh(key, pv)
                feasible = sum(self.results[key][(pv, wh)].zero_downtime
                               for wh in self.battery_whs)
                rows.append([LOCATIONS[key].name, pv,
                             "-" if minimal is None else minimal,
                             f"{feasible}/{len(self.battery_whs)}"])
        return format_table(
            ["location", "PV [Wp]", "min zero-downtime battery [Wh]", "feasible"],
            rows, title="Table IV grid: zero-downtime frontier over the "
                        "(PV peak x battery) candidate grid")


def table4_grid_study_spec(pv_peaks=None, battery_whs=None, seed: int = 2022):
    """The Table IV candidate grid as a declarative study.

    The ``solar`` study engine evaluates each (location, PV peak, battery)
    case through the same batched :func:`repro.solar.batch.simulate_systems`
    pass as :func:`run_table4_grid`; ``tests/test_study.py`` pins the study
    table equal to the experiment's ``series()`` cell for cell.

    Args:
        pv_peaks / battery_whs: Candidate axes (defaults:
            :data:`DEFAULT_PV_PEAKS_W` / :data:`DEFAULT_BATTERY_WHS`).
        seed: Weather-year seed, shared by every case.

    Returns:
        A ``solar``-engine :class:`~repro.study.spec.StudySpec` with axes
        ``(location, pv_peak_w, battery_wh)`` — the exact row order of
        :meth:`Table4GridResult.series`.
    """
    from repro.study.spec import StudySpec

    return StudySpec(
        name="table4-grid",
        engine="solar",
        description="Off-grid candidate grid (PV peak x battery Wh), "
                    "four regions",
        axes=(
            ("location", tuple(LOCATION_ORDER)),
            ("pv_peak_w", tuple(float(v) for v in (pv_peaks or DEFAULT_PV_PEAKS_W))),
            ("battery_wh", tuple(float(v) for v in (battery_whs or DEFAULT_BATTERY_WHS))),
        ),
        seed=seed,
    )


def run_table4_grid(pv_peaks=None, battery_whs=None,
                    load: LoadProfile | None = None, seed: int = 2022,
                    weather_cache=None,
                    backend: str | None = None) -> Table4GridResult:
    """Sweep a full (PV peak × battery Wh) grid at all four locations.

    The whole grid — every candidate at every location — is evaluated as one
    batched engine pass per location sharing four cached weather tensors,
    which is what makes sweeps far beyond the paper's 5-rung ladder cheap.
    (:func:`table4_grid_study_spec` is the declarative equivalent, shipped
    as ``studies/table4_grid.yaml``; it carries the scalar metric columns of
    ``series()``, while this runner returns the full
    :class:`~repro.solar.offgrid.OffGridResult` objects.)

    Args:
        pv_peaks / battery_whs: Candidate axes [Wp] / [Wh].
        load: Optional load profile override (default: the repeater load).
        seed: Weather-year seed shared by every candidate.
        weather_cache: Optional :class:`~repro.solar.batch.WeatherCache`.
        backend: Kernel backend forwarded to
            :func:`~repro.solar.batch.simulate_candidates`.

    Returns:
        The :class:`Table4GridResult` over the full candidate grid.
    """
    pv_peaks = tuple(float(v) for v in (pv_peaks or DEFAULT_PV_PEAKS_W))
    battery_whs = tuple(float(v) for v in (battery_whs or DEFAULT_BATTERY_WHS))
    candidates = candidate_grid(pv_peaks, battery_whs)
    results: dict[str, dict[tuple[float, float], OffGridResult]] = {}
    for key in LOCATION_ORDER:
        evaluated = simulate_candidates(LOCATIONS[key], candidates, load=load,
                                        seed=seed, weather_cache=weather_cache,
                                        backend=backend)
        results[key] = dict(zip(candidates, evaluated))
    return Table4GridResult(pv_peaks_w=pv_peaks, battery_whs=battery_whs,
                            results=results)

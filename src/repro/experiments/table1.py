"""Table I — low-power repeater node power consumption breakdown."""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.power.components import ComponentMode, RepeaterBill, repeater_prototype_bill
from repro.reporting.tables import format_table

__all__ = ["Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Result:
    """Component bill with the reconciled totals."""

    bill: RepeaterBill

    @property
    def sleep_w(self) -> float:
        return self.bill.sleep_w()

    @property
    def no_load_w(self) -> float:
        return self.bill.no_load_w()

    @property
    def full_load_tdd_w(self) -> float:
        return self.bill.full_load_tdd_w()

    @property
    def full_load_simultaneous_w(self) -> float:
        return self.bill.full_load_simultaneous_w()

    def series(self) -> dict[str, list]:
        comps = self.bill.components
        return {
            "component": [c.name for c in comps],
            "mode": [c.mode.value for c in comps],
            "count": [c.count for c in comps],
            "active_w": [c.active_w for c in comps],
            "idle_w": [c.idle_w for c in comps],
            "sleep_w": [c.sleep_w for c in comps],
        }

    def table(self) -> str:
        rows = [[c.name, c.mode.value, c.count, c.active_w, c.idle_w, c.sleep_w]
                for c in self.bill.components]
        rows.append(["TOTAL sleep", "", "", "", "", self.sleep_w])
        rows.append(["TOTAL no-load (P0)", "", "", "", self.no_load_w, ""])
        rows.append(["TOTAL full load (TDD)", "", "", self.full_load_tdd_w, "", ""])
        rows.append(["TOTAL full (all paths)", "", "", self.full_load_simultaneous_w, "", ""])
        rows.append(["paper full-load figure", "", "",
                     constants.LP_REPEATER_FULL_LOAD_W, "", ""])
        return format_table(
            ["component", "mode", "count", "active [W]", "idle [W]", "sleep [W]"],
            rows, title="Table I: repeater node power breakdown")


def run_table1() -> Table1Result:
    """Build the prototype's bill of materials and totals."""
    return Table1Result(bill=repeater_prototype_bill())

"""Experiment registry and batch runner.

Used by the CLI (``repro <id>``); the registry IDs are documented in the
repository's ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    run_noise_ablation,
    run_placement_ablation,
    run_sleep_ablation,
)
from repro.experiments.extensions import (
    run_cell_border,
    run_demand,
    run_economics,
    run_emf,
    run_lifetime,
    run_robustness,
    run_robustness_grid,
    run_traversal,
    run_uplink,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.maxisd import run_maxisd
from repro.experiments.network import run_network
from repro.experiments.simgrid import run_sim_grid
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4, run_table4_grid
from repro.reporting.series import write_csv

__all__ = ["ALL_EXPERIMENTS", "ENGINE_KWARGS", "run_experiment", "run_all"]

#: Shared engine options every experiment may receive (and may ignore).
#: ``weather_cache`` memoizes off-grid weather-year tensors; ``pv_peaks`` /
#: ``battery_whs`` set the candidate axes of the ``table4-grid`` sweep;
#: ``trials`` (``robustness-grid``, ``ext-robust``, ``abl-noise``) and
#: ``sigmas`` (``robustness-grid``, ``abl-noise``) parameterize the
#: Monte-Carlo shadowing studies; ``realizations`` / ``headways`` set the
#: timetable fleet and headway axis of the ``sim-grid`` day-simulation sweep.
ENGINE_KWARGS = frozenset({"jobs", "cache", "exhaustive", "weather_cache",
                           "pv_peaks", "battery_whs", "trials", "sigmas",
                           "realizations", "headways"})


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: id, description, and a runner with keyword overrides."""

    experiment_id: str
    description: str
    runner: Callable[..., object]

    def accepted_kwargs(self, overrides: dict) -> dict:
        """Subset of ``overrides`` this runner's signature accepts.

        Shared engine options (:data:`ENGINE_KWARGS`) are passed to every
        experiment from the CLI; experiments that don't take them simply
        ignore them.  Any other unaccepted keyword is a caller error (most
        likely a typo) and raises instead of silently running with defaults.
        """
        parameters = inspect.signature(self.runner).parameters
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
            return dict(overrides)
        unknown = set(overrides) - set(parameters) - ENGINE_KWARGS
        if unknown:
            raise ConfigurationError(
                f"experiment {self.experiment_id!r} does not accept "
                f"{sorted(unknown)}; accepted: {sorted(parameters)}")
        return {k: v for k, v in overrides.items() if k in parameters}


ALL_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in (
        ExperimentSpec("fig3", "Signal/noise profile, d_ISD=2400 m, N=8", run_fig3),
        ExperimentSpec("maxisd", "Registered maximum ISDs for N=1..10", run_maxisd),
        ExperimentSpec("fig4", "Average energy per km, three policies", run_fig4),
        ExperimentSpec("table1", "Repeater component power breakdown", run_table1),
        ExperimentSpec("table2", "EARTH power-model parameters", run_table2),
        ExperimentSpec("table3", "Traffic scenario and duty cycles", run_table3),
        ExperimentSpec("table4", "Off-grid PV dimensioning, four regions", run_table4),
        ExperimentSpec("table4-grid", "Off-grid candidate grid (PV x battery), four regions",
                       run_table4_grid),
        ExperimentSpec("sim-grid",
                       "Monte-Carlo day simulation (headway x trains/day x policy)",
                       run_sim_grid),
        ExperimentSpec("network",
                       "Topology optimization (demand x energy budget x mix)",
                       run_network),
        ExperimentSpec("abl-noise", "Ablation: repeater-noise models", run_noise_ablation),
        ExperimentSpec("abl-place", "Ablation: repeater placement", run_placement_ablation),
        ExperimentSpec("abl-sleep", "Ablation: wake-transition time", run_sleep_ablation),
        ExperimentSpec("ext-emf", "Extension: EMF compliance distances", run_emf),
        ExperimentSpec("ext-uplink", "Extension: uplink closure at max ISDs", run_uplink),
        ExperimentSpec("ext-traversal", "Extension: per-traversal data volume", run_traversal),
        ExperimentSpec("ext-econ", "Extension: 10-year cost comparison", run_economics),
        ExperimentSpec("ext-robust", "Extension: shadowing outage", run_robustness),
        ExperimentSpec("robustness-grid",
                       "Extension: outage over (ISD x sigma x decorrelation) grid",
                       run_robustness_grid),
        ExperimentSpec("ext-lifetime", "Extension: PV system aging", run_lifetime),
        ExperimentSpec("ext-demand", "Extension: demand-driven load", run_demand),
        ExperimentSpec("ext-border", "Extension: BBU cell-border SINR", run_cell_border),
    )
}


def run_experiment(experiment_id: str, output_dir: str | Path | None = None,
                   **kwargs):
    """Run one experiment; optionally dump its CSV series to ``output_dir``.

    Keyword overrides (e.g. ``jobs``, ``cache``, ``resolution_m``) are
    forwarded to the experiment runner.  Shared engine options
    (:data:`ENGINE_KWARGS`) are dropped when the runner doesn't take them, so
    they can be applied across heterogeneous experiments; any other
    unaccepted keyword raises :class:`ConfigurationError`.

    Returns the experiment's structured result object.
    """
    spec = ALL_EXPERIMENTS.get(experiment_id)
    if spec is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(ALL_EXPERIMENTS)}")
    result = spec.runner(**spec.accepted_kwargs(kwargs))
    if output_dir is not None and hasattr(result, "series"):
        write_csv(Path(output_dir) / f"{experiment_id}.csv", result.series())
    return result


def run_all(output_dir: str | Path | None = None,
            ids=None,
            progress: Callable[[int, int, str], None] | None = None,
            **kwargs) -> dict[str, object]:
    """Run every registered experiment (or a subset) and collect results.

    ``progress(index, total, experiment_id)`` is invoked before each
    experiment starts (1-based index), giving long grid runs a heartbeat.
    Keyword overrides are forwarded as in :func:`run_experiment`.
    """
    ids = list(ALL_EXPERIMENTS) if ids is None else list(ids)
    results: dict[str, object] = {}
    for i, eid in enumerate(ids, start=1):
        if progress is not None:
            progress(i, len(ids), eid)
        results[eid] = run_experiment(eid, output_dir, **kwargs)
    return results

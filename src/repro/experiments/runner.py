"""Experiment registry and batch runner (used by the CLI and EXPERIMENTS.md)."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    run_noise_ablation,
    run_placement_ablation,
    run_sleep_ablation,
)
from repro.experiments.extensions import (
    run_cell_border,
    run_demand,
    run_economics,
    run_emf,
    run_lifetime,
    run_robustness,
    run_traversal,
    run_uplink,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.maxisd import run_maxisd
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.reporting.series import write_csv

__all__ = ["ALL_EXPERIMENTS", "run_experiment", "run_all"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: id, description, and a zero-argument runner."""

    experiment_id: str
    description: str
    runner: Callable[[], object]


ALL_EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in (
        ExperimentSpec("fig3", "Signal/noise profile, d_ISD=2400 m, N=8", run_fig3),
        ExperimentSpec("maxisd", "Registered maximum ISDs for N=1..10", run_maxisd),
        ExperimentSpec("fig4", "Average energy per km, three policies", run_fig4),
        ExperimentSpec("table1", "Repeater component power breakdown", run_table1),
        ExperimentSpec("table2", "EARTH power-model parameters", run_table2),
        ExperimentSpec("table3", "Traffic scenario and duty cycles", run_table3),
        ExperimentSpec("table4", "Off-grid PV dimensioning, four regions", run_table4),
        ExperimentSpec("abl-noise", "Ablation: repeater-noise models", run_noise_ablation),
        ExperimentSpec("abl-place", "Ablation: repeater placement", run_placement_ablation),
        ExperimentSpec("abl-sleep", "Ablation: wake-transition time", run_sleep_ablation),
        ExperimentSpec("ext-emf", "Extension: EMF compliance distances", run_emf),
        ExperimentSpec("ext-uplink", "Extension: uplink closure at max ISDs", run_uplink),
        ExperimentSpec("ext-traversal", "Extension: per-traversal data volume", run_traversal),
        ExperimentSpec("ext-econ", "Extension: 10-year cost comparison", run_economics),
        ExperimentSpec("ext-robust", "Extension: shadowing outage", run_robustness),
        ExperimentSpec("ext-lifetime", "Extension: PV system aging", run_lifetime),
        ExperimentSpec("ext-demand", "Extension: demand-driven load", run_demand),
        ExperimentSpec("ext-border", "Extension: BBU cell-border SINR", run_cell_border),
    )
}


def run_experiment(experiment_id: str, output_dir: str | Path | None = None):
    """Run one experiment; optionally dump its CSV series to ``output_dir``.

    Returns the experiment's structured result object.
    """
    spec = ALL_EXPERIMENTS.get(experiment_id)
    if spec is None:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(ALL_EXPERIMENTS)}")
    result = spec.runner()
    if output_dir is not None and hasattr(result, "series"):
        write_csv(Path(output_dir) / f"{experiment_id}.csv", result.series())
    return result


def run_all(output_dir: str | Path | None = None,
            ids=None) -> dict[str, object]:
    """Run every registered experiment (or a subset) and collect results."""
    ids = list(ALL_EXPERIMENTS) if ids is None else list(ids)
    return {eid: run_experiment(eid, output_dir) for eid in ids}

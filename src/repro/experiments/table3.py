"""Table III — energy-scenario parameters and the duty cycles they imply.

Verifies the in-text derived quantities: 16-55 s of full load per train,
2.85 % / 9.66 % full-load fractions at 500 / 2650 m ISD, the sleeping
repeater's 5.17 W (124.1 Wh/day) average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.energy.duty import EnergyParams, lp_node_average_power_w
from repro.reporting.tables import format_table
from repro.traffic.occupancy import duty_cycle, full_load_seconds_per_train
from repro.traffic.trains import TrafficParams

__all__ = ["Table3Result", "run_table3"]


@dataclass(frozen=True)
class Table3Result:
    """Scenario parameters plus all derived duty quantities."""

    traffic: TrafficParams
    energy: EnergyParams

    @property
    def full_load_s_at_500m(self) -> float:
        return full_load_seconds_per_train(500.0, self.traffic)

    @property
    def full_load_s_at_2650m(self) -> float:
        return full_load_seconds_per_train(2650.0, self.traffic)

    @property
    def duty_at_500m(self) -> float:
        return duty_cycle(500.0, self.traffic)

    @property
    def duty_at_2650m(self) -> float:
        return duty_cycle(2650.0, self.traffic)

    @property
    def lp_sleeping_avg_w(self) -> float:
        return lp_node_average_power_w(self.energy, sleeping=True)

    @property
    def lp_sleeping_wh_per_day(self) -> float:
        return self.lp_sleeping_avg_w * 24.0

    def series(self) -> dict[str, list]:
        isds = [500.0, 1000.0, 1500.0, 2000.0, 2650.0]
        return {
            "isd_m": isds,
            "full_load_s_per_train": [full_load_seconds_per_train(i, self.traffic) for i in isds],
            "duty_pct": [100 * duty_cycle(i, self.traffic) for i in isds],
        }

    def table(self) -> str:
        rows = [
            ["trains per hour", self.traffic.trains_per_hour],
            ["night quiet hours", self.traffic.night_quiet_hours],
            ["train length [m]", self.traffic.train.length_m],
            ["train speed [km/h]", self.traffic.train.speed_kmh],
            ["LP node spacing [m]", self.energy.lp_section_m],
            ["full load per train @500 m [s]", self.full_load_s_at_500m],
            ["full load per train @2650 m [s]", self.full_load_s_at_2650m],
            ["duty @500 m [%]", 100 * self.duty_at_500m],
            ["duty @2650 m [%]", 100 * self.duty_at_2650m],
            ["LP sleeping average [W]", self.lp_sleeping_avg_w],
            ["LP sleeping [Wh/day]", self.lp_sleeping_wh_per_day],
            ["HP site full load [W]", constants.HP_SITE_FULL_LOAD_W],
            ["HP site sleep [W]", constants.HP_SITE_SLEEP_W],
            ["LP full load [W]", constants.LP_REPEATER_FULL_LOAD_W],
            ["LP no load [W]", constants.LP_REPEATER_P0_W],
            ["LP sleep [W]", constants.LP_REPEATER_PSLEEP_W],
        ]
        return format_table(["parameter", "value"], rows,
                            title="Table III: scenario parameters and derived duty cycles")


def run_table3(traffic: TrafficParams | None = None,
               energy: EnergyParams | None = None) -> Table3Result:
    """Assemble the Table III scenario and its derived quantities."""
    traffic = traffic or TrafficParams()
    energy = energy or EnergyParams(traffic=traffic)
    return Table3Result(traffic=traffic, energy=energy)

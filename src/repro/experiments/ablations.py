"""Ablation experiments — design-choice studies beyond the paper's figures.

* noise-model ablation: how the max-ISD list changes between the literal
  Eq. (2) repeater-noise term and the amplify-and-forward fronthaul models,
* placement ablation: centered 200 m spacing vs. equal division vs. optimized
  placement,
* sleep ablation: energy effect of wake latency and detection lead in the
  event-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.scenario import OperatingMode
from repro.optimize.placement import optimize_placement
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams
from repro.radio.noise import RepeaterNoiseModel
from repro.reporting.tables import format_table
from repro.scenario.cache import ProfileCache
from repro.scenario.spec import Scenario
from repro.simulation.corridor_sim import CorridorSimulation
from repro.optimize.isd import sweep_max_isd

__all__ = [
    "NoiseAblationResult",
    "run_noise_ablation",
    "PlacementAblationResult",
    "run_placement_ablation",
    "SleepAblationResult",
    "run_sleep_ablation",
]


# --- noise-model ablation ------------------------------------------------------

@dataclass(frozen=True)
class NoiseAblationResult:
    lists: dict[str, list[float]]

    def series(self) -> dict[str, list]:
        out: dict[str, list] = {"n_repeaters": list(range(1, 11))}
        out.update({name: values for name, values in self.lists.items()})
        out["paper"] = list(constants.PAPER_MAX_ISD_M)
        return out

    def table(self) -> str:
        headers = ["N"] + list(self.lists) + ["paper"]
        rows = []
        for i in range(10):
            row = [i + 1] + [self.lists[k][i] for k in self.lists]
            row.append(constants.PAPER_MAX_ISD_M[i])
            rows.append(row)
        return format_table(headers, rows, title="Ablation: repeater-noise models")


def run_noise_ablation(n_max: int = 10, resolution_m: float = 2.0,
                       isd_step_m: float = 50.0,
                       cache: ProfileCache | None = None,
                       jobs: int | None = None) -> NoiseAblationResult:
    """Max-ISD list under each repeater-noise model."""
    lists = {}
    for model in (RepeaterNoiseModel.PAPER, RepeaterNoiseModel.FRONTHAUL_STAR,
                  RepeaterNoiseModel.FRONTHAUL_CHAIN):
        link = LinkParams(repeater_noise_model=model)
        sweep = sweep_max_isd(n_max=n_max, link=link, include_zero=False,
                              resolution_m=resolution_m, isd_step_m=isd_step_m,
                              cache=cache, jobs=jobs)
        lists[model.value] = sweep.as_list()
    return NoiseAblationResult(lists=lists)


# --- placement ablation ----------------------------------------------------------

@dataclass(frozen=True)
class PlacementAblationResult:
    isd_m: float
    n_repeaters: int
    centered_min_snr_db: float
    equal_division_min_snr_db: float
    optimized_min_snr_db: float
    optimized_positions_m: tuple[float, ...]

    def table(self) -> str:
        rows = [
            ["centered 200 m (paper)", self.centered_min_snr_db],
            ["equal division", self.equal_division_min_snr_db],
            ["grid-optimized", self.optimized_min_snr_db],
        ]
        return format_table(["placement", "min SNR [dB]"], rows,
                            title=f"Ablation: placement at ISD {self.isd_m:.0f} m, N={self.n_repeaters}")

    def series(self) -> dict[str, list]:
        return {
            "placement": ["centered", "equal_division", "optimized"],
            "min_snr_db": [self.centered_min_snr_db, self.equal_division_min_snr_db,
                           self.optimized_min_snr_db],
        }


def run_placement_ablation(isd_m: float = 2400.0, n_repeaters: int = 8,
                           link: LinkParams | None = None,
                           resolution_m: float = 2.0,
                           cache: ProfileCache | None = None) -> PlacementAblationResult:
    """Compare repeater placement strategies by worst-case SNR."""
    link = link or LinkParams()
    centered = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)
    equal = CorridorLayout.with_equally_divided_repeaters(isd_m, n_repeaters)
    baselines = evaluate_scenarios(
        [Scenario(layout=lo, link=link, resolution_m=resolution_m)
         for lo in (centered, equal)], cache=cache)
    # The descent loop evaluates hundreds of one-off trial layouts; keep
    # those out of any disk-backed cache and let the optimizer use its
    # internal LRU instead.
    trial_cache = cache if cache is not None and cache.cache_dir is None else None
    opt = optimize_placement(isd_m, n_repeaters, link=link,
                             resolution_m=resolution_m, cache=trial_cache)
    return PlacementAblationResult(
        isd_m=isd_m,
        n_repeaters=n_repeaters,
        centered_min_snr_db=baselines[0].min_snr_db,
        equal_division_min_snr_db=baselines[1].min_snr_db,
        optimized_min_snr_db=opt.min_snr_db,
        optimized_positions_m=opt.layout.repeater_positions_m,
    )


# --- sleep/wake-latency ablation ---------------------------------------------------

@dataclass(frozen=True)
class SleepAblationResult:
    transitions_s: tuple[float, ...]
    w_per_km: tuple[float, ...]

    def table(self) -> str:
        rows = [[t, w] for t, w in zip(self.transitions_s, self.w_per_km)]
        return format_table(["transition [s]", "avg power [W/km]"], rows,
                            title="Ablation: wake-transition time (DES, sleep mode)")

    def series(self) -> dict[str, list]:
        return {"transition_s": list(self.transitions_s),
                "w_per_km": list(self.w_per_km)}


def run_sleep_ablation(isd_m: float = 2650.0, n_repeaters: int = 10,
                       transitions_s=(0.0, 0.3, 1.0, 2.0, 5.0)) -> SleepAblationResult:
    """Energy sensitivity to the sleep/active transition time."""
    layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)
    results = []
    for t in transitions_s:
        sim = CorridorSimulation(layout, mode=OperatingMode.SLEEP, transition_s=t,
                                 wake_lead_m=max(50.0, t * 60.0))
        results.append(sim.run().avg_w_per_km)
    return SleepAblationResult(transitions_s=tuple(transitions_s),
                               w_per_km=tuple(results))

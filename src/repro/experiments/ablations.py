"""Ablation experiments — design-choice studies beyond the paper's figures.

* noise-model ablation: how the max-ISD list changes between the literal
  Eq. (2) repeater-noise term and the amplify-and-forward fronthaul models,
* placement ablation: centered 200 m spacing vs. equal division vs. optimized
  placement,
* sleep ablation: energy effect of wake latency and detection lead in the
  event-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.energy.scenario import OperatingMode
from repro.errors import ConfigurationError, InfeasibleError
from repro.optimize.placement import optimize_placement
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams
from repro.radio.noise import RepeaterNoiseModel
from repro.reporting.tables import format_table
from repro.scenario.cache import ProfileCache
from repro.scenario.spec import Scenario
from repro.simulation.corridor_sim import CorridorSimulation
from repro.optimize.isd import sweep_max_isd

__all__ = [
    "NoiseAblationResult",
    "run_noise_ablation",
    "PlacementAblationResult",
    "run_placement_ablation",
    "SleepAblationResult",
    "run_sleep_ablation",
]


# --- noise-model ablation ------------------------------------------------------

@dataclass(frozen=True)
class NoiseAblationResult:
    lists: dict[str, list[float]]
    #: Optional robustness overlay: model -> {sigma_db -> robust max ISD at
    #: n_max}, computed through the Monte-Carlo engine when ``sigmas`` is
    #: passed to :func:`run_noise_ablation`.
    robust: dict[str, dict[float, float]] | None = None

    def _n_count(self) -> int:
        return min(len(values) for values in self.lists.values())

    @staticmethod
    def _registered(index: int) -> float:
        """Registered paper maximum for row ``index``; NaN past the list."""
        if index < len(constants.PAPER_MAX_ISD_M):
            return float(constants.PAPER_MAX_ISD_M[index])
        return float("nan")

    def series(self) -> dict[str, list]:
        n_count = self._n_count()
        out: dict[str, list] = {"n_repeaters": list(range(1, n_count + 1))}
        out.update({name: values[:n_count] for name, values in self.lists.items()})
        # "paper" is already taken by the literal Eq. (2) noise model
        # (RepeaterNoiseModel.PAPER.value); name the registered list apart so
        # it doesn't overwrite that column in the CSV export.
        out["paper_registered"] = [self._registered(i) for i in range(n_count)]
        if self.robust:
            # Flatten the (model x sigma) robust overlay into constant
            # columns so the CSV export carries it too.
            for name, per_model in self.robust.items():
                for sigma, isd in per_model.items():
                    out[f"robust_{name}_sigma_{sigma:g}db"] = [isd] * n_count
        return out

    def table(self) -> str:
        headers = ["N"] + list(self.lists) + ["paper_registered"]
        rows = []
        for i in range(self._n_count()):
            row = [i + 1] + [self.lists[k][i] for k in self.lists]
            row.append(self._registered(i))
            rows.append(row)
        out = format_table(headers, rows, title="Ablation: repeater-noise models")
        if self.robust:
            sigmas = sorted({s for per_model in self.robust.values()
                             for s in per_model})
            robust_rows = [[name] + [per_model[s] for s in sigmas]
                           for name, per_model in self.robust.items()]
            out += "\n" + format_table(
                ["model"] + [f"sigma {s:g} dB" for s in sigmas], robust_rows,
                title="Robust max ISD under shadowing (Monte-Carlo engine)")
        return out


def run_noise_ablation(n_max: int = 10, resolution_m: float = 2.0,
                       isd_step_m: float = 50.0,
                       cache: ProfileCache | None = None,
                       jobs: int | None = None,
                       sigmas=None, trials: int = 60,
                       robust_target_outage: float = 0.05) -> NoiseAblationResult:
    """Max-ISD list under each repeater-noise model.

    When ``sigmas`` is given (e.g. via the CLI's ``--sigmas``), the study also
    reports the *robust* maximum ISD of each noise model at ``n_max`` for each
    shadowing sigma — :func:`repro.optimize.robustness.robust_max_isd` through
    the vectorized Monte-Carlo engine with common random numbers, so the
    robust ISDs are comparable across noise models.
    """
    from repro.optimize.robustness import robust_max_isd
    from repro.propagation.fading import LogNormalShadowing

    if sigmas:
        # Validate the Monte-Carlo inputs eagerly so bad parameters fail
        # here, before the deterministic sweeps run, rather than masquerade
        # as infeasible cells in the search loop.
        if trials <= 0:
            raise ConfigurationError(f"trials must be positive, got {trials}")
        if not 0.0 < robust_target_outage < 1.0:
            raise ConfigurationError(
                f"target outage must be in (0,1), got {robust_target_outage}")
        shadowings = {float(sigma): LogNormalShadowing(sigma_db=float(sigma))
                      for sigma in sigmas}

    lists = {}
    robust: dict[str, dict[float, float]] = {}
    for model in (RepeaterNoiseModel.PAPER, RepeaterNoiseModel.FRONTHAUL_STAR,
                  RepeaterNoiseModel.FRONTHAUL_CHAIN):
        link = LinkParams(repeater_noise_model=model)
        sweep = sweep_max_isd(n_max=n_max, link=link, include_zero=False,
                              resolution_m=resolution_m, isd_step_m=isd_step_m,
                              cache=cache, jobs=jobs)
        lists[model.value] = sweep.as_list()
        if sigmas:
            # The deterministic ladder is identical across sigmas; a local
            # profile cache keeps it to one evaluation per noise model.
            robust_cache = cache if cache is not None else ProfileCache(maxsize=256)
            robust[model.value] = {}
            for sigma, shadowing in shadowings.items():
                try:
                    isd, _ = robust_max_isd(
                        n_max, target_outage=robust_target_outage,
                        shadowing=shadowing,
                        link=link, isd_step_m=isd_step_m, trials=trials,
                        resolution_m=resolution_m, cache=robust_cache,
                        jobs=jobs)
                except InfeasibleError:
                    # No candidate meets the outage target under this sigma —
                    # that infeasibility is itself the study's finding.
                    # Parameter errors (ConfigurationError) propagate.
                    isd = float("nan")
                robust[model.value][sigma] = isd
    return NoiseAblationResult(lists=lists, robust=robust or None)


# --- placement ablation ----------------------------------------------------------

@dataclass(frozen=True)
class PlacementAblationResult:
    isd_m: float
    n_repeaters: int
    centered_min_snr_db: float
    equal_division_min_snr_db: float
    optimized_min_snr_db: float
    optimized_positions_m: tuple[float, ...]

    def table(self) -> str:
        rows = [
            ["centered 200 m (paper)", self.centered_min_snr_db],
            ["equal division", self.equal_division_min_snr_db],
            ["grid-optimized", self.optimized_min_snr_db],
        ]
        return format_table(["placement", "min SNR [dB]"], rows,
                            title=f"Ablation: placement at ISD {self.isd_m:.0f} m, N={self.n_repeaters}")

    def series(self) -> dict[str, list]:
        return {
            "placement": ["centered", "equal_division", "optimized"],
            "min_snr_db": [self.centered_min_snr_db, self.equal_division_min_snr_db,
                           self.optimized_min_snr_db],
        }


def run_placement_ablation(isd_m: float = 2400.0, n_repeaters: int = 8,
                           link: LinkParams | None = None,
                           resolution_m: float = 2.0,
                           cache: ProfileCache | None = None) -> PlacementAblationResult:
    """Compare repeater placement strategies by worst-case SNR."""
    link = link or LinkParams()
    centered = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)
    equal = CorridorLayout.with_equally_divided_repeaters(isd_m, n_repeaters)
    baselines = evaluate_scenarios(
        [Scenario(layout=lo, link=link, resolution_m=resolution_m)
         for lo in (centered, equal)], cache=cache)
    # The descent loop evaluates hundreds of one-off trial layouts; keep
    # those out of any disk-backed cache and let the optimizer use its
    # internal LRU instead.
    trial_cache = cache if cache is not None and cache.cache_dir is None else None
    opt = optimize_placement(isd_m, n_repeaters, link=link,
                             resolution_m=resolution_m, cache=trial_cache)
    return PlacementAblationResult(
        isd_m=isd_m,
        n_repeaters=n_repeaters,
        centered_min_snr_db=baselines[0].min_snr_db,
        equal_division_min_snr_db=baselines[1].min_snr_db,
        optimized_min_snr_db=opt.min_snr_db,
        optimized_positions_m=opt.layout.repeater_positions_m,
    )


# --- sleep/wake-latency ablation ---------------------------------------------------

@dataclass(frozen=True)
class SleepAblationResult:
    transitions_s: tuple[float, ...]
    w_per_km: tuple[float, ...]

    def table(self) -> str:
        rows = [[t, w] for t, w in zip(self.transitions_s, self.w_per_km)]
        return format_table(["transition [s]", "avg power [W/km]"], rows,
                            title="Ablation: wake-transition time (DES, sleep mode)")

    def series(self) -> dict[str, list]:
        return {"transition_s": list(self.transitions_s),
                "w_per_km": list(self.w_per_km)}


def run_sleep_ablation(isd_m: float = 2650.0, n_repeaters: int = 10,
                       transitions_s=(0.0, 0.3, 1.0, 2.0, 5.0)) -> SleepAblationResult:
    """Energy sensitivity to the sleep/active transition time."""
    layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)
    results = []
    for t in transitions_s:
        sim = CorridorSimulation(layout, mode=OperatingMode.SLEEP, transition_s=t,
                                 wake_lead_m=max(50.0, t * 60.0))
        results.append(sim.run().avg_w_per_km)
    return SleepAblationResult(transitions_s=tuple(transitions_s),
                               w_per_km=tuple(results))

"""The conventional cellular-corridor baseline: HP masts only, every 500 m."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.capacity.shannon import TruncatedShannonModel
from repro.capacity.throughput import throughput_profile
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, SegmentEnergy, segment_energy
from repro.radio.link import LinkParams, compute_snr_profile

__all__ = ["ConventionalCorridor"]


@dataclass(frozen=True)
class ConventionalCorridor:
    """HP-only corridor used as the reference throughout the paper.

    Exposes the same capacity/energy interface as repeater-extended layouts so
    experiments can treat baselines and proposals uniformly.
    """

    isd_m: float = constants.CONVENTIONAL_ISD_M
    link: LinkParams = field(default_factory=LinkParams)
    energy: EnergyParams = field(default_factory=EnergyParams)

    @property
    def layout(self) -> CorridorLayout:
        return CorridorLayout.conventional(self.isd_m)

    def min_snr_db(self, resolution_m: float = 1.0) -> float:
        """Worst-case SNR of the baseline segment."""
        return compute_snr_profile(self.layout, self.link, resolution_m).min_snr_db

    def sustains_peak(self, capacity: TruncatedShannonModel | None = None,
                      resolution_m: float = 1.0) -> bool:
        """Whether the baseline sustains peak throughput everywhere."""
        capacity = capacity or TruncatedShannonModel()
        snr = compute_snr_profile(self.layout, self.link, resolution_m)
        return throughput_profile(snr, capacity).sustains_peak_everywhere

    def segment_energy(self) -> SegmentEnergy:
        """Energy of the baseline (HP RRHs with sleep mode, per Fig. 4)."""
        return segment_energy(self.layout, OperatingMode.SLEEP, self.energy)

    @property
    def w_per_km(self) -> float:
        return self.segment_energy().w_per_km

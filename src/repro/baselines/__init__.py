"""Baseline deployments the paper compares against (or displaced).

* :mod:`repro.baselines.conventional` — the HP-only 500 m corridor baseline,
* :mod:`repro.baselines.onboard_relay` — active onboard train relays (650 W),
  the legacy alternative the introduction discusses,
* :mod:`repro.baselines.inband` — in-band repeater isolation feasibility,
  explaining why the paper uses out-of-band repeaters outdoors.
"""

from repro.baselines.conventional import ConventionalCorridor
from repro.baselines.onboard_relay import OnboardRelayFleet
from repro.baselines.inband import InbandFeasibility, inband_isolation_margin_db

__all__ = [
    "ConventionalCorridor",
    "OnboardRelayFleet",
    "InbandFeasibility",
    "inband_isolation_margin_db",
]

"""Active onboard relay baseline.

Before penetration-optimized (FSS) windows became state of the art, operators
installed active relays inside train wagons to overcome the Faraday-cage
attenuation.  The paper's introduction quantifies them: 650 W for five
frequency bands per relay, plus the cooling burden, and notes they are hard to
upgrade.  This module models the fleet-level energy of that approach so the
corridor comparison can include it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["OnboardRelayFleet"]


@dataclass(frozen=True)
class OnboardRelayFleet:
    """Energy model of onboard relays across a train fleet.

    Parameters
    ----------
    relays_per_train:
        Relay units per trainset (roughly one per few wagons).
    relay_power_w:
        Electrical power per relay (the paper's 650 W figure).
    cooling_overhead:
        Extra fraction of relay power spent on cooling inside the wagon.
    duty:
        Fraction of time relays run (they serve passengers whenever the train
        operates, i.e. close to the service-hours share of the day).
    """

    relays_per_train: int = 2
    relay_power_w: float = constants.ONBOARD_RELAY_POWER_W
    cooling_overhead: float = 0.30
    duty: float = 19.0 / 24.0

    def __post_init__(self) -> None:
        if self.relays_per_train < 1:
            raise ConfigurationError(f"need >= 1 relay per train, got {self.relays_per_train}")
        if self.relay_power_w <= 0:
            raise ConfigurationError(f"relay power must be positive, got {self.relay_power_w}")
        if self.cooling_overhead < 0:
            raise ConfigurationError(f"cooling overhead must be >= 0, got {self.cooling_overhead}")
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError(f"duty must be in [0, 1], got {self.duty}")

    @property
    def active_power_per_train_w(self) -> float:
        """Electrical power of one train's relays while they operate [W].

        No duty factor: this is the draw during operation, the quantity to
        multiply by actual occupancy (e.g. the network optimizer attributes
        it per segment via train-presence time).
        """
        return (self.relays_per_train * self.relay_power_w
                * (1.0 + self.cooling_overhead))

    @property
    def average_power_per_train_w(self) -> float:
        """24 h-average electrical power of one train's relays."""
        return self.active_power_per_train_w * self.duty

    def fleet_average_power_w(self, n_trains: int) -> float:
        """24 h-average power of a whole fleet."""
        if n_trains < 0:
            raise ConfigurationError(f"train count must be >= 0, got {n_trains}")
        return n_trains * self.average_power_per_train_w

    def per_km_equivalent_w(self, n_trains: int, corridor_km: float) -> float:
        """Fleet power normalized per corridor km (for Fig. 4-style comparison)."""
        if corridor_km <= 0:
            raise ConfigurationError(f"corridor length must be positive, got {corridor_km}")
        return self.fleet_average_power_w(n_trains) / corridor_km

    def annual_energy_mwh(self, n_trains: int) -> float:
        """Yearly fleet energy [MWh]."""
        return self.fleet_average_power_w(n_trains) * 24 * 365 / 1e6

"""In-band repeater feasibility — why the paper goes out-of-band.

"In-band repeaters require high isolation between the antenna directed at the
donor cell and the antenna for the service cell.  Hence, in-band repeaters are
rarely considered for outdoor scenarios ..." (Section III)

An in-band amplify-and-forward repeater oscillates (or must back its gain off)
unless the donor-service antenna isolation exceeds the repeater gain by a
stability margin.  This module computes the isolation an outdoor catenary-mast
installation would need, showing it is unattainable — the quantitative
justification for the mmWave out-of-band design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["InbandFeasibility", "inband_isolation_margin_db"]

#: Gain margin below the isolation required for stable operation.  15 dB is a
#: common engineering rule for AF repeaters (loop gain <= -15 dB).
DEFAULT_STABILITY_MARGIN_DB = 15.0


def inband_isolation_margin_db(repeater_gain_db: float,
                               antenna_isolation_db: float,
                               stability_margin_db: float = DEFAULT_STABILITY_MARGIN_DB) -> float:
    """Isolation headroom (positive = stable) of an in-band repeater."""
    if repeater_gain_db < 0:
        raise ConfigurationError(f"repeater gain must be >= 0 dB, got {repeater_gain_db}")
    return antenna_isolation_db - repeater_gain_db - stability_margin_db


@dataclass(frozen=True)
class InbandFeasibility:
    """Feasibility assessment of an in-band repeater installation.

    ``required_gain_db`` is the end-to-end gain the service area needs (input
    RSRP to output RSTP); ``achievable_isolation_db`` what the mounting
    geometry provides (back-to-back antennas on a catenary mast reach roughly
    60-80 dB outdoors; indoor wall-separated deployments exceed 100 dB).
    """

    required_gain_db: float
    achievable_isolation_db: float = 70.0
    stability_margin_db: float = DEFAULT_STABILITY_MARGIN_DB

    def __post_init__(self) -> None:
        if self.achievable_isolation_db < 0:
            raise ConfigurationError(
                f"isolation must be >= 0 dB, got {self.achievable_isolation_db}")

    @property
    def margin_db(self) -> float:
        """Positive when the repeater is stable at the required gain."""
        return inband_isolation_margin_db(self.required_gain_db,
                                          self.achievable_isolation_db,
                                          self.stability_margin_db)

    @property
    def feasible(self) -> bool:
        return self.margin_db >= 0.0

    @property
    def max_stable_gain_db(self) -> float:
        """Largest gain the isolation supports."""
        return self.achievable_isolation_db - self.stability_margin_db

    @classmethod
    def for_corridor_node(cls, donor_rsrp_dbm: float, target_rstp_dbm: float,
                          achievable_isolation_db: float = 70.0) -> "InbandFeasibility":
        """Assessment for a corridor repeater that must re-transmit at
        ``target_rstp_dbm`` from a donor signal received at ``donor_rsrp_dbm``."""
        gain = target_rstp_dbm - donor_rsrp_dbm
        if gain < 0:
            raise ConfigurationError(
                f"target RSTP {target_rstp_dbm} below donor RSRP {donor_rsrp_dbm}: "
                "no repeater needed")
        return cls(required_gain_db=gain,
                   achievable_isolation_db=achievable_isolation_db)

"""CSV export of experiment data series (figure regeneration artifacts)."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["series_to_csv", "write_csv"]


def series_to_csv(columns: Mapping[str, Sequence]) -> str:
    """Turn named, equal-length columns into CSV text."""
    if not columns:
        raise ConfigurationError("need at least one column")
    lengths = {name: len(values) for name, values in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ConfigurationError(f"column lengths differ: {lengths}")

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = list(columns)
    writer.writerow(names)
    for row in zip(*(columns[n] for n in names)):
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(path: str | Path, columns: Mapping[str, Sequence]) -> Path:
    """Write named columns to a CSV file; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series_to_csv(columns))
    return path

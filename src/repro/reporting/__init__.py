"""Output helpers: ASCII tables and CSV series for the experiment runners."""

from repro.reporting.tables import format_table
from repro.reporting.series import series_to_csv, write_csv

__all__ = ["format_table", "series_to_csv", "write_csv"]

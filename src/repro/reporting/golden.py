"""Golden-regression snapshots of the paper's tables and figures.

A *golden spec* names one experiment, the (JSON-able) kwargs it is run with,
and per-field numeric tolerances.  ``tools/refresh_golden.py`` runs every
spec and snapshots its data series to ``tests/golden/<id>.json``;
``tests/test_golden_regression.py`` re-runs the specs and diffs against the
snapshots, so any drift in the reproduced Table I-IV / Fig. 3-4 numbers —
from a refactor, an engine change, or a dependency bump — fails loudly with
a per-field report instead of silently shifting the paper's results.

Numeric fields compare with ``abs(cur - ref) <= atol + rtol * abs(ref)``
(NaN matches NaN — infeasible cells are stable results too); everything else
compares exactly.  NaN/inf are stored as JSON strings since JSON has no
representation for them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["GoldenSpec", "GOLDEN_SPECS", "spec_for", "compute_series",
           "save_snapshot", "load_snapshot", "compare_series", "golden_path"]

#: Default tolerances: tight enough to catch any real modelling drift, loose
#: enough to absorb libm / summation-order differences across platforms.
_RTOL = 1e-9
_ATOL = 1e-12


@dataclass(frozen=True)
class GoldenSpec:
    """One snapshotted experiment: id, kwargs, and numeric tolerances."""

    experiment_id: str
    kwargs: dict = field(default_factory=dict)
    rtol: float = _RTOL
    atol: float = _ATOL
    #: Per-field (rtol, atol) overrides, e.g. for Monte-Carlo-derived columns.
    field_tolerances: dict = field(default_factory=dict)

    def tolerances(self, field_name: str) -> tuple[float, float]:
        return self.field_tolerances.get(field_name, (self.rtol, self.atol))


#: The snapshotted set: Table I-IV, the Fig. 3/4 series, and the network
#: optimizer's headline table.  Fig. 3 uses a 10 m grid to keep the snapshot
#: compact; the fidelity tests cover the fine grid separately.  The network
#: sweep runs a 1500-segment graph — the same code path as the shipped
#: 10 000-segment study, at snapshot-friendly size.
GOLDEN_SPECS: tuple[GoldenSpec, ...] = (
    GoldenSpec("table1"),
    GoldenSpec("table2"),
    GoldenSpec("table3"),
    GoldenSpec("table4"),
    GoldenSpec("fig3", kwargs={"resolution_m": 10.0}),
    GoldenSpec("fig4"),
    # The network optimizer is deterministic, but its totals aggregate ~1500
    # segments and the Lagrangian bisection sits on knife-edge tie-breaks —
    # give the summed monetary/energy columns a little extra room.
    GoldenSpec("network", kwargs={"segments": 1500},
               field_tolerances={
                   "total_cost_meur": (1e-6, 1e-9),
                   "total_energy_kw": (1e-6, 1e-9),
                   "mean_w_per_km": (1e-6, 1e-9),
                   "sleeping_fraction": (1e-9, 1e-12),
               }),
)


def spec_for(experiment_id: str) -> GoldenSpec:
    for spec in GOLDEN_SPECS:
        if spec.experiment_id == experiment_id:
            return spec
    raise ConfigurationError(
        f"no golden spec for {experiment_id!r}; "
        f"available: {[s.experiment_id for s in GOLDEN_SPECS]}")


def golden_path(directory: str | Path, spec: GoldenSpec) -> Path:
    return Path(directory) / f"{spec.experiment_id}.json"


def _sanitize(value):
    """JSON-able snapshot of one series cell (NaN/inf become strings)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    return number


def _restore(value):
    if value == "NaN":
        return float("nan")
    if value == "Infinity":
        return float("inf")
    if value == "-Infinity":
        return float("-inf")
    return value


def compute_series(spec: GoldenSpec) -> dict[str, list]:
    """Run the experiment and return its sanitized data series."""
    from repro.experiments.runner import run_experiment

    result = run_experiment(spec.experiment_id, **spec.kwargs)
    if not hasattr(result, "series"):
        raise ConfigurationError(
            f"experiment {spec.experiment_id!r} has no series() to snapshot")
    return {name: [_sanitize(v) for v in values]
            for name, values in result.series().items()}


def save_snapshot(spec: GoldenSpec, directory: str | Path) -> Path:
    """Run one spec and write its snapshot; returns the written path."""
    path = golden_path(directory, spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": spec.experiment_id,
        "kwargs": spec.kwargs,
        "series": compute_series(spec),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_snapshot(spec: GoldenSpec, directory: str | Path) -> dict[str, list]:
    path = golden_path(directory, spec)
    if not path.exists():
        raise ConfigurationError(
            f"missing golden snapshot {path}; run tools/refresh_golden.py")
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("kwargs", {}) != spec.kwargs:
        raise ConfigurationError(
            f"snapshot {path} was taken with kwargs {payload.get('kwargs')}, "
            f"spec now says {spec.kwargs}; refresh the snapshot")
    return {name: [_restore(v) for v in values]
            for name, values in payload["series"].items()}


def _cells_match(cur, ref, rtol: float, atol: float) -> bool:
    cur, ref = _restore(cur), _restore(ref)
    if isinstance(cur, (int, float)) and isinstance(ref, (int, float)) \
            and not isinstance(cur, bool) and not isinstance(ref, bool):
        if math.isnan(cur) or math.isnan(ref):
            return math.isnan(cur) and math.isnan(ref)
        if math.isinf(cur) or math.isinf(ref):
            return cur == ref
        return abs(cur - ref) <= atol + rtol * abs(ref)
    return cur == ref


def compare_series(spec: GoldenSpec, current: dict[str, list],
                   reference: dict[str, list]) -> list[str]:
    """Per-field diff report; empty when the run matches its snapshot."""
    problems: list[str] = []
    missing = set(reference) - set(current)
    extra = set(current) - set(reference)
    if missing:
        problems.append(f"fields missing from current run: {sorted(missing)}")
    if extra:
        problems.append(f"fields not in snapshot: {sorted(extra)}")
    for name in sorted(set(current) & set(reference)):
        cur, ref = current[name], reference[name]
        if len(cur) != len(ref):
            problems.append(f"{name}: length {len(cur)} != snapshot {len(ref)}")
            continue
        rtol, atol = spec.tolerances(name)
        bad = [i for i, (c, r) in enumerate(zip(cur, ref))
               if not _cells_match(c, r, rtol, atol)]
        if bad:
            i = bad[0]
            problems.append(
                f"{name}: {len(bad)} cell(s) drifted, first at [{i}]: "
                f"{current[name][i]!r} != snapshot {reference[name][i]!r} "
                f"(rtol={rtol}, atol={atol})")
    return problems

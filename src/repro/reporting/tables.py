"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render a fixed-width ASCII table.

    Numbers are formatted with two decimals; column widths adapt to content.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells for {len(headers)} columns")

    widths = [len(h) for h in headers]
    for row in str_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)

"""Merge per-benchmark ``BENCH_<name>.json`` records into one summary.

The benchmark suite emits one small JSON document per speedup gate when
``BENCH_JSON_DIR`` is set (see ``benchmarks/conftest.py``).  CI uploads the
directory as an artifact; this module folds the individual records into a
single deterministic ``BENCH_summary.json`` — payloads keyed by benchmark
name plus a flat table of every ``(speedup, threshold)`` gate found anywhere
in the records — so one file answers "did every gate clear, and by how
much?" across PRs.

The summary is a pure function of the input records: keys are sorted, no
timestamps or host details are added, and re-running on the same directory
writes byte-identical output.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["SUMMARY_NAME", "collect_records", "merge_records",
           "summarize_directory"]

#: File name of the merged document (skipped when re-collecting).
SUMMARY_NAME = "BENCH_summary.json"


def collect_records(directory: str | Path) -> dict[str, dict]:
    """Load every ``BENCH_<name>.json`` record under ``directory``.

    Args:
        directory: Directory the benchmark run pointed ``BENCH_JSON_DIR`` at.

    Returns:
        Mapping of benchmark name (the ``<name>`` part) to its parsed
        payload, sorted by name.  A previous summary file is ignored.

    Raises:
        ConfigurationError: When the directory is missing, holds no records,
            or a record is not valid JSON.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"no such benchmark directory: {directory}")
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            raise ConfigurationError(f"invalid benchmark record {path}: {exc}")
        records[path.stem[len("BENCH_"):]] = payload
    if not records:
        raise ConfigurationError(
            f"no BENCH_*.json records under {directory} (run the benchmark "
            "suite with BENCH_JSON_DIR set)")
    return records


def _walk_gates(name: str, node, path: tuple[str, ...], gates: list[dict]):
    if not isinstance(node, dict):
        return
    if "speedup" in node and "threshold" in node:
        gates.append({
            "benchmark": name,
            "gate": ".".join(path) if path else name,
            "speedup": node["speedup"],
            "threshold": node["threshold"],
            # Gates a record marks unenforced (e.g. a pool speedup on a
            # too-small machine) are advisory: reported, never failed.
            "enforced": bool(node.get("enforced", True)),
            "passed": bool(node["speedup"] >= node["threshold"]
                           or not node.get("enforced", True)),
        })
    for key in sorted(node):
        _walk_gates(name, node[key], path + (key,), gates)


def merge_records(records: dict[str, dict]) -> dict:
    """Fold benchmark records into the summary document.

    Args:
        records: Output of :func:`collect_records`.

    Returns:
        The summary: ``{"benchmarks": records, "gates": [...]}`` with one
        gate row per ``(speedup, threshold)`` pair found at any nesting
        depth, ordered by benchmark name then gate path.
    """
    gates: list[dict] = []
    for name in sorted(records):
        _walk_gates(name, records[name], (), gates)
    return {"benchmarks": dict(sorted(records.items())), "gates": gates}


def summarize_directory(directory: str | Path,
                        output: str | Path | None = None) -> Path:
    """Write the merged summary for one benchmark-artifact directory.

    Args:
        directory: Directory holding the ``BENCH_*.json`` records.
        output: Target file; default ``directory / BENCH_summary.json``.

    Returns:
        The path written.  Output is deterministic (sorted keys, trailing
        newline) so identical records always produce identical bytes.
    """
    summary = merge_records(collect_records(directory))
    path = Path(output) if output is not None else Path(directory) / SUMMARY_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return path

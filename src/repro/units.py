"""Unit conversions used throughout the library.

All radio computations in :mod:`repro` use explicit unit suffixes:

* ``_db`` / ``_dbm`` — decibel quantities (ratios / absolute power vs. 1 mW)
* ``_w`` / ``_mw`` — linear power in watts / milliwatts
* ``_hz`` / ``_m`` / ``_s`` — SI frequency, length, time

This module centralizes the dB <-> linear conversions so rounding and
vectorization behaviour is uniform.  Every function accepts scalars or numpy
arrays and returns the matching type.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT_M_S

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "dbm_to_w",
    "w_to_dbm",
    "wavelength_m",
    "sum_powers_dbm",
    "kmh_to_ms",
    "ms_to_kmh",
]


def db_to_linear(value_db):
    """Convert a dB ratio to a linear ratio (``10 ** (dB / 10)``)."""
    return np.power(10.0, np.asarray(value_db, dtype=float) / 10.0) if np.ndim(value_db) else 10.0 ** (value_db / 10.0)


def linear_to_db(value):
    """Convert a linear ratio to dB (``10 * log10``).

    Raises :class:`ValueError` for non-positive scalar input; for arrays the
    caller is responsible for masking zeros (numpy will emit ``-inf``).
    """
    if np.ndim(value) == 0:
        if value <= 0:
            raise ValueError(f"cannot convert non-positive ratio {value!r} to dB")
        return 10.0 * np.log10(value)
    return 10.0 * np.log10(np.asarray(value, dtype=float))


def dbm_to_mw(power_dbm):
    """Convert absolute power in dBm to milliwatts."""
    return db_to_linear(power_dbm)


def mw_to_dbm(power_mw):
    """Convert absolute power in milliwatts to dBm."""
    return linear_to_db(power_mw)


def dbm_to_w(power_dbm):
    """Convert absolute power in dBm to watts."""
    return dbm_to_mw(power_dbm) / 1e3


def w_to_dbm(power_w):
    """Convert absolute power in watts to dBm."""
    if np.ndim(power_w) == 0 and power_w <= 0:
        raise ValueError(f"cannot convert non-positive power {power_w!r} W to dBm")
    return mw_to_dbm(np.asarray(power_w, dtype=float) * 1e3) if np.ndim(power_w) else mw_to_dbm(power_w * 1e3)


def wavelength_m(frequency_hz: float) -> float:
    """Free-space wavelength for a carrier frequency."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
    return SPEED_OF_LIGHT_M_S / frequency_hz


def sum_powers_dbm(*powers_dbm):
    """Combine absolute powers given in dBm (non-coherent power sum).

    Accepts any mix of scalars and equally shaped arrays; returns dBm.
    """
    if not powers_dbm:
        raise ValueError("need at least one power to sum")
    total_mw = sum(dbm_to_mw(p) for p in powers_dbm)
    return mw_to_dbm(total_mw)


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert km/h to m/s."""
    return speed_kmh / 3.6


def ms_to_kmh(speed_ms: float) -> float:
    """Convert m/s to km/h."""
    return speed_ms * 3.6

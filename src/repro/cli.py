"""Command-line interface: ``repro <experiment>`` or ``python -m repro ...``.

Examples::

    repro list                  # available experiments
    repro fig4                  # print the Fig. 4 table
    repro table4 --csv out/     # also dump the CSV series
    repro all --csv out/        # run everything
    repro maxisd --jobs 4       # shard sweep evaluation across threads
    repro all --cache-dir .cache  # persist Eq. (2) profiles across runs

    repro study list                                  # shipped study files
    repro study run studies/sim_grid.yaml --jobs 4    # declarative sweep
    repro study resume studies/sim_grid.yaml --store .study  # pick up shards

    repro docs build --strict   # build the documentation site from source
    repro docs api --check      # verify the generated API reference is fresh

    repro serve --store .service --port 8765   # scenario-planning HTTP API

    repro network list                             # named corridor graphs
    repro network optimize --graph national --energy-budget 125
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment
from repro.scenario.cache import ProfileCache
from repro.solar.batch import WeatherCache

__all__ = ["main", "build_parser", "study_main", "docs_main", "serve_main",
           "network_main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Increasing Cellular Network Energy "
                     "Efficiency for Railway Corridors' (DATE 2022)"),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'all', or 'list'; "
             "'repro study ...' runs declarative YAML/TOML studies and "
             "'repro docs ...' builds the documentation site",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's data series as CSV into DIR",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the formatted tables (useful with --csv)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="shard batched scenario evaluation across N threads; for the "
             "study-routed grids (sim-grid, robustness-grid) N worker "
             "processes of the study runner",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist evaluated SNR profiles (and synthesized weather years, "
             "under DIR/weather) to DIR, reused across runs",
    )
    parser.add_argument(
        "--pv-peaks",
        metavar="W[,W...]",
        default=None,
        help="PV peak-power axis [Wp] of the table4-grid candidate sweep, "
             "comma separated (e.g. 360,540,720)",
    )
    parser.add_argument(
        "--battery-whs",
        metavar="WH[,WH...]",
        default=None,
        help="battery-capacity axis [Wh] of the table4-grid candidate sweep, "
             "comma separated (e.g. 720,1440,2160)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        metavar="T",
        default=None,
        help="Monte-Carlo trial count of the shadowing studies "
             "(robustness-grid, ext-robust, abl-noise)",
    )
    parser.add_argument(
        "--sigmas",
        metavar="DB[,DB...]",
        default=None,
        help="shadowing sigma axis [dB] of robustness-grid, comma separated "
             "(e.g. 2,4,6); also enables the robust max-ISD overlay of "
             "abl-noise",
    )
    parser.add_argument(
        "--realizations",
        type=int,
        metavar="R",
        default=None,
        help="seeded Poisson timetable realizations per cell of the sim-grid "
             "day-simulation sweep",
    )
    parser.add_argument(
        "--headways",
        metavar="S[,S...]",
        default=None,
        help="mean headway axis [s] of the sim-grid sweep, comma separated "
             "(e.g. 300,450,900)",
    )
    return parser


def _parse_axis(text: str, flag: str, allow_zero: bool = False) -> tuple[float, ...]:
    try:
        values = tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated numbers, got {text!r}")
    if not values or any(v < 0 if allow_zero else v <= 0 for v in values):
        kind = "non-negative" if allow_zero else "positive"
        raise SystemExit(f"{flag} expects {kind} values, got {text!r}")
    return values


def _print_result(experiment_id: str, result, quiet: bool) -> None:
    if quiet:
        return
    if hasattr(result, "table"):
        print(result.table())
    else:
        print(f"[{experiment_id}] {result!r}")
    print()


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Shared engine options forwarded to every experiment runner."""
    kwargs: dict = {}
    if args.jobs is not None:
        if args.jobs < 1:
            raise SystemExit("--jobs must be >= 1")
        kwargs["jobs"] = args.jobs
    if args.cache_dir is not None:
        kwargs["cache"] = ProfileCache(maxsize=1024, cache_dir=args.cache_dir)
        kwargs["weather_cache"] = WeatherCache(
            maxsize=256, cache_dir=Path(args.cache_dir) / "weather")
    if args.pv_peaks is not None:
        kwargs["pv_peaks"] = _parse_axis(args.pv_peaks, "--pv-peaks")
    if args.battery_whs is not None:
        kwargs["battery_whs"] = _parse_axis(args.battery_whs, "--battery-whs")
    if args.trials is not None:
        if args.trials < 1:
            raise SystemExit("--trials must be >= 1")
        kwargs["trials"] = args.trials
    if args.sigmas is not None:
        # sigma 0 is the valid no-shadowing anchor of a grid study.
        kwargs["sigmas"] = _parse_axis(args.sigmas, "--sigmas", allow_zero=True)
    if args.realizations is not None:
        if args.realizations < 1:
            raise SystemExit("--realizations must be >= 1")
        kwargs["realizations"] = args.realizations
    if args.headways is not None:
        kwargs["headways"] = _parse_axis(args.headways, "--headways")
    return kwargs


# -- declarative studies ------------------------------------------------------


def build_study_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro study",
        description="Run declarative YAML/TOML studies through the sharded "
                    "study runner (see docs/studies.md for the schema)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run a study file end to end")
    resume_parser = sub.add_parser(
        "resume", help="continue a partially run study from its store")
    shard_parser = sub.add_parser(
        "shard", help="run one worker's slice of a study and sign a shard "
                      "manifest (distributed execution; see "
                      "docs/distributed.md)")
    for p in (run_parser, resume_parser, shard_parser):
        p.add_argument("study_file", help="path to the .yaml/.yml/.toml study")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: run inline)")
        p.add_argument("--shards", type=int, default=None, metavar="K",
                       help="contiguous case chunks (default: min(cases, 16); "
                            "a resume must reuse the layout that filled the "
                            "store)")
        p.add_argument("--store", metavar="DIR", default=None,
                       help="persist completed shards to DIR and reuse them "
                            "on later runs (resume); a run.jsonl event "
                            "journal is written beside the shards")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="re-attempt a failing shard up to N times with "
                            "deterministic capped exponential backoff "
                            "(default: fail fast)")
        p.add_argument("--shard-timeout", type=float, default=None,
                       metavar="S",
                       help="wall-clock budget per shard attempt [s]; a hung "
                            "worker is terminated and the shard rescheduled "
                            "(needs --jobs >= 2)")
        p.add_argument("--keep-going", action="store_true",
                       help="quarantine shards that exhaust their retries "
                            "into the report (exit 4) instead of aborting")
        p.add_argument("--fault-plan", metavar="FILE", default=None,
                       help="JSON fault-injection plan executed by the "
                            "workers on themselves (chaos testing; see "
                            "repro.faults)")
        p.add_argument("--max-shards", type=int, default=None, metavar="K",
                       help="stop after computing K new shards (partial run; "
                            "resume later with the same --store)")
        p.add_argument("--csv", metavar="FILE", default=None,
                       help="write the merged results table as CSV")
        p.add_argument("--layout", choices=("long", "wide"), default="long",
                       help="CSV layout: tidy long format (default) or one "
                            "row per case")
        p.add_argument("--json", metavar="FILE", default=None,
                       help="write the merged results as a JSON document")
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist Eq. (2) profiles / weather years under "
                            "DIR, shared by worker processes")
        p.add_argument("--backend", metavar="NAME", default=None,
                       help="kernel backend for the stochastic engines "
                            "(reference | numpy | numba; default: "
                            "REPRO_BACKEND or the fused numpy kernels)")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the results preview table")
        p.add_argument("--force", action="store_true",
                       help="accept a --backend that differs from the one "
                            "recorded in the store's run metadata (normally "
                            "refused: mixing backends breaks bit-identical "
                            "resume)")
    for p in (run_parser, resume_parser):
        p.add_argument("--manifest", metavar="FILE", default=None,
                       help="also sign a 1-of-1 shard manifest over the "
                            "completed shards (needs --store); the file a "
                            "later 'repro study merge' validates")
    shard_parser.add_argument("--index", type=int, required=True, metavar="K",
                              help="this worker's 0-based position in the "
                                   "split")
    shard_parser.add_argument("--of", type=int, required=True, metavar="N",
                              help="total workers in the split")
    shard_parser.add_argument("--manifest", metavar="FILE", default=None,
                              help="manifest output file (default: a "
                                   "hash-derived name inside --store)")
    resume_parser.set_defaults(resume=True)
    run_parser.set_defaults(resume=False)
    shard_parser.set_defaults(resume=False)

    merge_parser = sub.add_parser(
        "merge", help="validate worker manifests and reassemble the "
                      "single-machine results table")
    merge_parser.add_argument("study_file",
                              help="path to the .yaml/.yml/.toml study the "
                                   "manifests must attest")
    merge_parser.add_argument("manifests", nargs="+", metavar="MANIFEST",
                              help="worker manifest files (shard bundles "
                                   "are read from each manifest's "
                                   "directory)")
    merge_parser.add_argument("--out-store", metavar="DIR", default=None,
                              help="copy the verified shard bundles into "
                                   "DIR (a normal resumable store) and "
                                   "write the merged provenance journal "
                                   "there")
    merge_parser.add_argument("--journal", metavar="FILE", default=None,
                              help="merged provenance journal (default: "
                                   "merge.jsonl inside --out-store)")
    merge_parser.add_argument("--crn-sample", type=int, default=3,
                              metavar="N",
                              help="cases recomputed inline for the CRN "
                                   "bit-identity spot-check "
                                   "(default: %(default)s)")
    merge_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                              help="profile/weather cache for the CRN "
                                   "spot-check recomputation")
    merge_parser.add_argument("--csv", metavar="FILE", default=None,
                              help="write the merged results table as CSV")
    merge_parser.add_argument("--layout", choices=("long", "wide"),
                              default="long",
                              help="CSV layout (default: %(default)s)")
    merge_parser.add_argument("--json", metavar="FILE", default=None,
                              help="write the merged results as a JSON "
                                   "document")
    merge_parser.add_argument("--quiet", action="store_true",
                              help="suppress the results preview table")

    refresh_parser = sub.add_parser(
        "refresh", help="re-evaluate an updated study, recomputing only "
                        "the cases whose content hash changed")
    refresh_parser.add_argument("study_file",
                                help="path to the *updated* study document")
    refresh_parser.add_argument("--previous", metavar="FILE", required=True,
                                help="the superseded study document whose "
                                     "results already live in --store")
    refresh_parser.add_argument("--store", metavar="DIR", required=True,
                                help="store holding the previous run's "
                                     "shards; receives the updated spec's")
    refresh_parser.add_argument("--shards", type=int, default=None,
                                metavar="K",
                                help="shard count of the updated layout "
                                     "(default: min(cases, 16))")
    refresh_parser.add_argument("--backend", metavar="NAME", default=None,
                                help="kernel backend (must match the "
                                     "previous run's recorded backend "
                                     "unless --force)")
    refresh_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                                help="profile/weather cache for the "
                                     "recomputed cases")
    refresh_parser.add_argument("--force", action="store_true",
                                help="accept a backend differing from the "
                                     "previous run's recorded one")
    refresh_parser.add_argument("--csv", metavar="FILE", default=None,
                                help="write the refreshed table as CSV")
    refresh_parser.add_argument("--layout", choices=("long", "wide"),
                                default="long",
                                help="CSV layout (default: %(default)s)")
    refresh_parser.add_argument("--json", metavar="FILE", default=None,
                                help="write the refreshed table as JSON")
    refresh_parser.add_argument("--quiet", action="store_true",
                                help="suppress the results preview table")

    list_parser = sub.add_parser("list", help="list study files")
    list_parser.add_argument("directory", nargs="?", default="studies",
                             help="directory to scan (default: studies/)")
    return parser


def study_main(argv: list[str]) -> int:
    """Entry point of the ``repro study`` subcommands.

    Exit codes (``run`` / ``resume`` / ``shard``): 0 complete, 1 error,
    2 unloadable study, 3 partial run, 4 completed with quarantined
    shards.  ``merge``: 0 merged, 4 rejected shard set (validation or
    manifest failure), 2 unloadable study, 1 other error.  ``refresh``:
    0 refreshed, 1 error, 2 unloadable study.
    """
    from repro.errors import ReproError
    from repro.study import StudyStore, load_study, run_study

    args = build_study_parser().parse_args(argv)

    if args.command == "merge":
        return _study_merge(args)
    if args.command == "refresh":
        return _study_refresh(args)

    if args.command == "list":
        directory = Path(args.directory)
        files = sorted(list(directory.glob("*.yaml"))
                       + list(directory.glob("*.yml"))
                       + list(directory.glob("*.toml")))
        if not files:
            print(f"no study files under {directory}/", file=sys.stderr)
            return 1
        for path in files:
            try:
                spec = load_study(path)
            except ReproError as exc:
                print(f"{path}  [invalid: {exc}]")
                continue
            print(f"{path}  {spec.engine} engine, {spec.case_count} cases"
                  f"{' — ' + spec.description if spec.description else ''}")
        return 0

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.resume and args.store is None:
        raise SystemExit("repro study resume needs --store DIR (the store "
                         "the interrupted run was writing to)")
    if args.command == "shard" and args.store is None:
        raise SystemExit("repro study shard needs --store DIR (the worker's "
                         "own shard/manifest directory)")
    if args.manifest is not None and args.store is None:
        raise SystemExit("--manifest needs --store (it attests on-disk "
                         "shard bundles)")
    if args.max_shards is not None and (args.command == "shard"
                                        or args.manifest is not None):
        raise SystemExit("--max-shards cannot be combined with shard "
                         "slices or --manifest (a capped run attests "
                         "nothing useful)")
    try:
        spec = load_study(args.study_file)
    except (ReproError, OSError) as exc:
        print(f"cannot load study {args.study_file!r}: {exc}", file=sys.stderr)
        return 2

    store = None
    if args.store is not None:
        store = StudyStore(maxsize=1024, cache_dir=args.store)

    def progress(done: int, total: int, label: str) -> None:
        if not args.quiet:
            print(f"[{done}/{total}] {label}", file=sys.stderr)

    context = {}
    if args.cache_dir is not None:
        context["cache_dir"] = args.cache_dir
    try:
        from repro.backend import resolve_backend_name
        resolved_backend = resolve_backend_name(args.backend)
    except ReproError as exc:
        print(f"study failed: {exc}", file=sys.stderr)
        return 1
    if args.backend is not None:
        context["backend"] = resolved_backend
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")
    if args.fault_plan is not None:
        from repro.faults import load_fault_plan
        try:
            plan = load_fault_plan(args.fault_plan)
        except ReproError as exc:
            print(f"study failed: {exc}", file=sys.stderr)
            return 1
        context["fault_plan"] = plan.to_context()
    slice_result = None
    try:
        if args.command == "shard" or args.manifest is not None:
            from repro.study import run_shard_slice

            index = args.index if args.command == "shard" else 0
            of = args.of if args.command == "shard" else 1
            slice_result = run_shard_slice(
                spec, index, of, store, jobs=args.jobs, shards=args.shards,
                context=context, retries=args.retries,
                shard_timeout=args.shard_timeout,
                keep_going=args.keep_going, progress=progress,
                manifest_path=args.manifest, force_backend=args.force)
            report = slice_result.report
        else:
            report = run_study(spec, jobs=args.jobs, shards=args.shards,
                               store=store, progress=progress,
                               max_shards=args.max_shards, context=context,
                               retries=args.retries,
                               shard_timeout=args.shard_timeout,
                               keep_going=args.keep_going,
                               force_backend=args.force)
    except ReproError as exc:
        print(f"study failed: {exc}", file=sys.stderr)
        return 1

    if slice_result is not None:
        print(slice_result.summary(), file=sys.stderr)
        if report is None:  # more workers than shards: an empty slice
            return 0
    if not args.quiet:
        print(report.table.table())
        print(report.summary(), file=sys.stderr)
    for shard in report.failed_shards:
        print(f"failed shard {shard.index} (cases [{shard.start}:"
              f"{shard.stop})): {shard.kind} after {shard.attempts} "
              f"attempt(s) — {shard.error}", file=sys.stderr)
    if args.csv is not None:
        report.table.write_csv(args.csv, layout=args.layout)
    if args.json is not None:
        report.table.write_json(args.json,
                                metadata={"backend": resolved_backend})
    if report.failed_shards:
        return 4  # completed with quarantined shards (--keep-going)
    return 3 if report.partial else 0


def _study_merge(args: argparse.Namespace) -> int:
    """``repro study merge``: validate manifests, emit the merged table."""
    from repro.errors import ManifestError, MergeValidationError, ReproError
    from repro.study import StudyStore, load_study, merge_manifests

    try:
        spec = load_study(args.study_file)
    except (ReproError, OSError) as exc:
        print(f"cannot load study {args.study_file!r}: {exc}",
              file=sys.stderr)
        return 2
    out_store = None
    if args.out_store is not None:
        out_store = StudyStore(maxsize=1024, cache_dir=args.out_store)
    context = {}
    if args.cache_dir is not None:
        context["cache_dir"] = args.cache_dir
    try:
        merged = merge_manifests(spec, args.manifests, out_store=out_store,
                                 journal=args.journal,
                                 crn_sample=args.crn_sample, context=context)
    except (ManifestError, MergeValidationError) as exc:
        kind = getattr(exc, "kind", "manifest")
        print(f"merge rejected [{kind}]: {exc}", file=sys.stderr)
        return 4
    except ReproError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        print(merged.table.table())
        print(merged.summary(), file=sys.stderr)
    if args.csv is not None:
        merged.table.write_csv(args.csv, layout=args.layout)
    if args.json is not None:
        merged.table.write_json(args.json,
                                metadata={"backend": merged.backend,
                                          "workers": len(merged.manifests)})
    return 0


def _study_refresh(args: argparse.Namespace) -> int:
    """``repro study refresh``: re-run only hash-changed cases."""
    from repro.errors import ReproError
    from repro.study import StudyStore, load_study, refresh_study

    specs = []
    for label, path in (("study", args.study_file),
                        ("previous study", args.previous)):
        try:
            specs.append(load_study(path))
        except (ReproError, OSError) as exc:
            print(f"cannot load {label} {path!r}: {exc}", file=sys.stderr)
            return 2
    spec, previous = specs
    store = StudyStore(maxsize=1024, cache_dir=args.store)
    context = {}
    if args.cache_dir is not None:
        context["cache_dir"] = args.cache_dir
    if args.backend is not None:
        context["backend"] = args.backend

    def progress(done: int, total: int, label: str) -> None:
        if not args.quiet:
            print(f"[{done}/{total}] {label}", file=sys.stderr)

    try:
        refreshed = refresh_study(spec, previous, store, context=context,
                                  shards=args.shards,
                                  force_backend=args.force,
                                  progress=progress)
    except ReproError as exc:
        print(f"refresh failed: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        print(refreshed.table.table())
        print(refreshed.summary(), file=sys.stderr)
    if args.csv is not None:
        refreshed.table.write_csv(args.csv, layout=args.layout)
    if args.json is not None:
        refreshed.table.write_json(args.json)
    return 0


# -- network optimizer --------------------------------------------------------


def build_network_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro network",
        description=("Optimize technology assignment and sleep policy over "
                     "a corridor graph (see docs/network.md)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named corridor graphs")

    opt = sub.add_parser("optimize",
                         help="assign one technology option per segment "
                              "under global budgets")
    opt.add_argument("--graph", default="national",
                     help="named graph (default: %(default)s; see "
                          "'repro network list')")
    opt.add_argument("--segments", type=int, default=0, metavar="N",
                     help="total segment count (default: the graph's "
                          "named size)")
    opt.add_argument("--demand-scale", type=float, default=1.0, metavar="X",
                     help="multiplier on every corridor's trains/h "
                          "(default: %(default)s)")
    opt.add_argument("--energy-budget", type=float, default=None,
                     metavar="W_PER_KM",
                     help="global energy budget per track km [W/km] "
                          "(default: unconstrained)")
    opt.add_argument("--cost-budget", type=float, default=None,
                     metavar="KEUR_PER_KM",
                     help="global cost budget per track km [kEUR/km] over "
                          "the horizon (default: unconstrained)")
    opt.add_argument("--technologies",
                     default="conventional,repeater,mobile_relay",
                     metavar="A,B,...",
                     help="candidate technology families, comma separated "
                          "(default: %(default)s)")
    opt.add_argument("--min-sleep-headway", type=float, default=300.0,
                     metavar="S",
                     help="a segment may sleep iff its mean headway is at "
                          "least S seconds (default: %(default)s)")
    opt.add_argument("--resolution", type=float, default=25.0, metavar="M",
                     help="track grid of the radio feasibility check [m] "
                          "(default: %(default)s)")
    opt.add_argument("--horizon-years", type=float, default=10.0, metavar="Y",
                     help="cost horizon [years] (default: %(default)s)")
    opt.add_argument("--engine", choices=("batched", "scalar"),
                     default="batched",
                     help="frontier engine (scalar is the bit-identical "
                          "per-segment reference; default: %(default)s)")
    opt.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="thread sharding of the batched radio pass")
    opt.add_argument("--limit", type=int, default=20, metavar="N",
                     help="per-segment rows shown in the assignment table "
                          "(default: %(default)s)")
    opt.add_argument("--csv", metavar="FILE", default=None,
                     help="write the full per-segment assignment as CSV")
    opt.add_argument("--quiet", action="store_true",
                     help="suppress the assignment table")
    return parser


def network_main(argv: list[str]) -> int:
    """Entry point of the ``repro network`` subcommands."""
    from repro.errors import ReproError
    from repro.network import NAMED_GRAPHS, TechnologyCatalog, build_graph
    from repro.network.optimize import optimize_network

    args = build_network_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in NAMED_GRAPHS)
        for name, default_segments in sorted(NAMED_GRAPHS.items()):
            print(f"{name:<{width}}  {default_segments} segments (default)")
        return 0

    try:
        graph = build_graph(args.graph, n_segments=args.segments,
                            demand_scale=args.demand_scale)
        catalog = TechnologyCatalog.from_names(
            args.technologies, min_sleep_headway_s=args.min_sleep_headway)
        plan = optimize_network(
            graph, catalog,
            energy_budget_w=(None if args.energy_budget is None
                             else args.energy_budget * graph.length_km),
            cost_budget_eur=(None if args.cost_budget is None
                             else args.cost_budget * 1e3 * graph.length_km),
            resolution_m=args.resolution,
            horizon_years=args.horizon_years,
            jobs=args.jobs, engine=args.engine)
    except ReproError as exc:
        print(f"network optimization failed: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        print(plan.table(limit=args.limit))
    if args.csv is not None:
        from repro.reporting.series import write_csv

        names, labels, energy, cost, sleeping = zip(*plan.rows())
        write_csv(args.csv, {
            "segment": list(names), "option": list(labels),
            "avg_power_w": list(energy), "cost_eur": list(cost),
            "sleeping": [int(s) for s in sleeping],
        })
    return 0


# -- documentation ------------------------------------------------------------


def docs_main(argv: list[str]) -> int:
    """Entry point of the ``repro docs`` subcommands (build / api)."""
    from repro.docs.cli import docs_command

    return docs_command(argv)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=("Run the scenario-planning HTTP service (JSON job API "
                     "over the study runner; see docs/service.md)"),
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port, 0 picks a free one "
                             "(default: %(default)s)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="service state directory: study shards, "
                             "jobs.jsonl and per-job run journals; enables "
                             "crash recovery and resume (default: in-memory)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="concurrent job-executing threads "
                             "(default: %(default)s)")
    parser.add_argument("--queue-depth", type=int, default=8, metavar="N",
                        help="admission bound on waiting jobs; beyond it "
                             "submissions get 429 (default: %(default)s)")
    parser.add_argument("--per-client", type=int, default=4, metavar="N",
                        help="per-client open-job cap (default: %(default)s)")
    parser.add_argument("--max-job-procs", type=int, default=1, metavar="N",
                        help="clamp on worker processes per job "
                             "(default: %(default)s)")
    parser.add_argument("--drain-grace", type=float, default=30.0,
                        metavar="S",
                        help="SIGTERM drain budget [s] before in-flight "
                             "jobs are checkpointed (default: %(default)s)")
    return parser


def serve_main(argv: list[str]) -> int:
    """Entry point of ``repro serve`` (runs until SIGTERM/SIGINT drains)."""
    import signal

    from repro.errors import ReproError
    from repro.service import ScenarioService

    args = build_serve_parser().parse_args(argv)
    try:
        service = ScenarioService(args.host, args.port, args.store,
                                  workers=args.workers,
                                  max_queue=args.queue_depth,
                                  max_per_client=args.per_client,
                                  max_job_procs=args.max_job_procs,
                                  drain_grace_s=args.drain_grace)
        service.start()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: service.initiate_shutdown())
    store = args.store if args.store is not None else "<in-memory>"
    print(f"serving on http://{args.host}:{service.port}  "
          f"(store: {store}, workers: {args.workers})", file=sys.stderr,
          flush=True)
    service.serve_forever()
    stats = service.queue.stats()
    open_jobs = stats["queued"] + stats["running"]
    return 0 if open_jobs == 0 else 3


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["study"]:
        return study_main(list(argv[1:]))
    if argv[:1] == ["docs"]:
        return docs_main(list(argv[1:]))
    if argv[:1] == ["serve"]:
        return serve_main(list(argv[1:]))
    if argv[:1] == ["network"]:
        return network_main(list(argv[1:]))
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in ALL_EXPERIMENTS)
        for spec in ALL_EXPERIMENTS.values():
            print(f"{spec.experiment_id:<{width}}  {spec.description}")
        return 0

    kwargs = _engine_kwargs(args)

    if args.experiment == "all":
        def progress(index: int, total: int, experiment_id: str) -> None:
            if not args.quiet:
                print(f"[{index}/{total}] {experiment_id}", file=sys.stderr)

        results = run_all(output_dir=args.csv, progress=progress, **kwargs)
        for eid, result in results.items():
            _print_result(eid, result, args.quiet)
        return 0

    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'repro list'",
              file=sys.stderr)
        return 2

    result = run_experiment(args.experiment, output_dir=args.csv, **kwargs)
    _print_result(args.experiment, result, args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``repro <experiment>`` or ``python -m repro ...``.

Examples::

    repro list                  # available experiments
    repro fig4                  # print the Fig. 4 table
    repro table4 --csv out/     # also dump the CSV series
    repro all --csv out/        # run everything
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Increasing Cellular Network Energy "
                     "Efficiency for Railway Corridors' (DATE 2022)"),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's data series as CSV into DIR",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the formatted tables (useful with --csv)",
    )
    return parser


def _print_result(experiment_id: str, result, quiet: bool) -> None:
    if quiet:
        return
    if hasattr(result, "table"):
        print(result.table())
    else:
        print(f"[{experiment_id}] {result!r}")
    print()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in ALL_EXPERIMENTS)
        for spec in ALL_EXPERIMENTS.values():
            print(f"{spec.experiment_id:<{width}}  {spec.description}")
        return 0

    if args.experiment == "all":
        results = run_all(output_dir=args.csv)
        for eid, result in results.items():
            _print_result(eid, result, args.quiet)
        return 0

    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'repro list'",
              file=sys.stderr)
        return 2

    result = run_experiment(args.experiment, output_dir=args.csv)
    _print_result(args.experiment, result, args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``repro <experiment>`` or ``python -m repro ...``.

Examples::

    repro list                  # available experiments
    repro fig4                  # print the Fig. 4 table
    repro table4 --csv out/     # also dump the CSV series
    repro all --csv out/        # run everything
    repro maxisd --jobs 4       # shard sweep evaluation across threads
    repro all --cache-dir .cache  # persist Eq. (2) profiles across runs
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.runner import ALL_EXPERIMENTS, run_all, run_experiment
from repro.scenario.cache import ProfileCache
from repro.solar.batch import WeatherCache

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Increasing Cellular Network Energy "
                     "Efficiency for Railway Corridors' (DATE 2022)"),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each experiment's data series as CSV into DIR",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the formatted tables (useful with --csv)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="shard batched scenario evaluation across N threads",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist evaluated SNR profiles (and synthesized weather years, "
             "under DIR/weather) to DIR, reused across runs",
    )
    parser.add_argument(
        "--pv-peaks",
        metavar="W[,W...]",
        default=None,
        help="PV peak-power axis [Wp] of the table4-grid candidate sweep, "
             "comma separated (e.g. 360,540,720)",
    )
    parser.add_argument(
        "--battery-whs",
        metavar="WH[,WH...]",
        default=None,
        help="battery-capacity axis [Wh] of the table4-grid candidate sweep, "
             "comma separated (e.g. 720,1440,2160)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        metavar="T",
        default=None,
        help="Monte-Carlo trial count of the shadowing studies "
             "(robustness-grid, ext-robust, abl-noise)",
    )
    parser.add_argument(
        "--sigmas",
        metavar="DB[,DB...]",
        default=None,
        help="shadowing sigma axis [dB] of robustness-grid, comma separated "
             "(e.g. 2,4,6); also enables the robust max-ISD overlay of "
             "abl-noise",
    )
    parser.add_argument(
        "--realizations",
        type=int,
        metavar="R",
        default=None,
        help="seeded Poisson timetable realizations per cell of the sim-grid "
             "day-simulation sweep",
    )
    parser.add_argument(
        "--headways",
        metavar="S[,S...]",
        default=None,
        help="mean headway axis [s] of the sim-grid sweep, comma separated "
             "(e.g. 300,450,900)",
    )
    return parser


def _parse_axis(text: str, flag: str, allow_zero: bool = False) -> tuple[float, ...]:
    try:
        values = tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated numbers, got {text!r}")
    if not values or any(v < 0 if allow_zero else v <= 0 for v in values):
        kind = "non-negative" if allow_zero else "positive"
        raise SystemExit(f"{flag} expects {kind} values, got {text!r}")
    return values


def _print_result(experiment_id: str, result, quiet: bool) -> None:
    if quiet:
        return
    if hasattr(result, "table"):
        print(result.table())
    else:
        print(f"[{experiment_id}] {result!r}")
    print()


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Shared engine options forwarded to every experiment runner."""
    kwargs: dict = {}
    if args.jobs is not None:
        if args.jobs < 1:
            raise SystemExit("--jobs must be >= 1")
        kwargs["jobs"] = args.jobs
    if args.cache_dir is not None:
        kwargs["cache"] = ProfileCache(maxsize=1024, cache_dir=args.cache_dir)
        kwargs["weather_cache"] = WeatherCache(
            maxsize=256, cache_dir=Path(args.cache_dir) / "weather")
    if args.pv_peaks is not None:
        kwargs["pv_peaks"] = _parse_axis(args.pv_peaks, "--pv-peaks")
    if args.battery_whs is not None:
        kwargs["battery_whs"] = _parse_axis(args.battery_whs, "--battery-whs")
    if args.trials is not None:
        if args.trials < 1:
            raise SystemExit("--trials must be >= 1")
        kwargs["trials"] = args.trials
    if args.sigmas is not None:
        # sigma 0 is the valid no-shadowing anchor of a grid study.
        kwargs["sigmas"] = _parse_axis(args.sigmas, "--sigmas", allow_zero=True)
    if args.realizations is not None:
        if args.realizations < 1:
            raise SystemExit("--realizations must be >= 1")
        kwargs["realizations"] = args.realizations
    if args.headways is not None:
        kwargs["headways"] = _parse_axis(args.headways, "--headways")
    return kwargs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        width = max(len(k) for k in ALL_EXPERIMENTS)
        for spec in ALL_EXPERIMENTS.values():
            print(f"{spec.experiment_id:<{width}}  {spec.description}")
        return 0

    kwargs = _engine_kwargs(args)

    if args.experiment == "all":
        def progress(index: int, total: int, experiment_id: str) -> None:
            if not args.quiet:
                print(f"[{index}/{total}] {experiment_id}", file=sys.stderr)

        results = run_all(output_dir=args.csv, progress=progress, **kwargs)
        for eid, result in results.items():
            _print_result(eid, result, args.quiet)
        return 0

    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'repro list'",
              file=sys.stderr)
        return 2

    result = run_experiment(args.experiment, output_dir=args.csv, **kwargs)
    _print_result(args.experiment, result, args.quiet)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

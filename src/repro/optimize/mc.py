"""Vectorized Monte-Carlo shadowing engine.

The scalar robustness path (:mod:`repro.optimize.robustness`) asks, one trial
at a time, whether a shadowing trace pushes some track position of a profile
below the SNR threshold.  This module batches that question across **every
(candidate, trial, position)** at once:

* per-trial generators are seeded as ``default_rng([seed, t])`` — the
  *common-random-number* (CRN) contract: trial ``t``'s standard-normal stream
  depends only on ``(seed, t)``, never on the candidate, so every candidate
  consumes a prefix of the same trial streams and Monte-Carlo noise cancels
  out of cross-candidate comparisons (the empirical outage-vs-ISD curve
  tracks the monotone deterministic profiles, which makes bisection over its
  feasibility boundary sound — see
  :func:`repro.optimize.robustness.robust_max_isd`, pinned equal to the
  exhaustive scan across seed sweeps in the tests);
* one standard-normal matrix ``[trial, position]`` is drawn per evaluation
  and shared by all candidates;
* the Gudmundson AR(1) recurrence advances a ``[candidate, trial]`` shadow
  state with position as the only sequential loop, using the per-step
  ``rho``/``innovation`` vectors precomputed (and memoized) by
  :meth:`repro.propagation.fading.LogNormalShadowing.coefficients`;
* ragged per-candidate position grids are handled by padding: deterministic
  SNR is padded with ``+inf`` (never the minimum) and the AR(1) coefficients
  with zeros, so no validity mask is needed in the reduction.

The scan itself is the :func:`repro.kernels.ar1_min_scan` kernel, selected
per call via ``backend=`` / ``REPRO_BACKEND``.  ``engine="scalar"`` replays
the same trials through :meth:`LogNormalShadowing.sample` one (candidate,
trial) at a time and is trial-for-trial bit-identical to the batched engine
under ``backend="reference"`` (same generator seeding, same draw order,
elementwise-identical arithmetic) — asserted in ``tests/test_mc_engine.py``.
The fused default backend matches within 1e-9 while preserving the CRN
candidate-independence bitwise; ``benchmarks/bench_backend.py`` gates its
speedup over the reference kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.kernels import ar1_min_scan
from repro.propagation.fading import LogNormalShadowing

__all__ = ["OutageMatrix", "outage_matrix", "readonly_array",
           "trial_generators", "wilson_interval"]


def readonly_array(values) -> np.ndarray:
    """Float ndarray snapshot, frozen against writes.

    Copies when the input is a writeable array so a caller-owned buffer is
    never mutated; already-frozen arrays pass through without a copy.  Shared
    by the result dataclasses that hold ndarray fields (:class:`OutageMatrix`,
    :class:`repro.optimize.robustness.OutageResult`).

    Args:
        values: Anything :func:`numpy.asarray` accepts.

    Returns:
        A float64 ndarray with ``writeable=False``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.flags.writeable:
        arr = arr.copy()
        arr.flags.writeable = False
    return arr


def trial_generators(seed: int, trials: int) -> list[np.random.Generator]:
    """Independent per-trial generators — the common-random-number contract.

    Trial ``t``'s stream is a pure function of ``(seed, t)``; candidates and
    repeated calls all see the same streams.

    Args:
        seed: Root seed of the trial family.
        trials: Number of generators to derive.

    Returns:
        ``trials`` generators, one per trial, each seeded
        ``default_rng([seed, t])`` — the convention shared with
        :func:`repro.traffic.timetable.day_timetables` and the study layer's
        :meth:`repro.study.spec.StudySpec.case_seed`.
    """
    return [np.random.default_rng([seed, t]) for t in range(trials)]


def wilson_interval(successes, trials: int, z: float = 1.959963984540054):
    """Wilson score interval for a binomial proportion (default 95%).

    Vectorizes over ``successes``.  Unlike the normal-approximation interval
    it stays inside [0, 1] and behaves at 0 or ``trials`` successes, which
    outage counts routinely hit.

    Args:
        successes: Success counts (scalar or array).
        trials: Number of Bernoulli trials (> 0).
        z: Normal quantile (default: the two-sided 95% value).

    Returns:
        ``(low, high)`` bound arrays, clipped to [0, 1] and guaranteed to
        bracket the point estimate.

    Raises:
        ConfigurationError: When ``trials`` is not positive.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    successes = np.asarray(successes, dtype=float)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2.0 * trials)) / denom
    half = (z / denom) * np.sqrt(p * (1.0 - p) / trials
                                 + z * z / (4.0 * trials * trials))
    # The point estimate lies inside the interval and the bounds inside
    # [0, 1] by construction; enforce both against floating-point rounding
    # at the p = 0 / p = 1 boundaries.
    return (np.clip(np.minimum(center - half, p), 0.0, 1.0),
            np.clip(np.maximum(center + half, p), 0.0, 1.0))


@dataclass(frozen=True, eq=False)
class OutageMatrix:
    """Stacked Monte-Carlo outcome: one row per candidate, one column per trial.

    ``min_snr_db[c, t]`` is the worst shadowed SNR along candidate ``c``'s
    track in trial ``t``; everything else derives from it.  The matrix is
    stored read-only; equality and hashing are defined explicitly (the
    generated ones choke on ndarray fields).
    """

    min_snr_db: np.ndarray
    threshold_db: float
    seed: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "min_snr_db", readonly_array(self.min_snr_db))

    def __eq__(self, other) -> bool:
        if not isinstance(other, OutageMatrix):
            return NotImplemented
        return (self.threshold_db == other.threshold_db
                and self.seed == other.seed
                and np.array_equal(self.min_snr_db, other.min_snr_db))

    def __hash__(self) -> int:
        return hash((self.threshold_db, self.seed, self.min_snr_db.shape))

    @property
    def trials(self) -> int:
        return self.min_snr_db.shape[1]

    @property
    def outage_counts(self) -> np.ndarray:
        """Trials below the threshold, per candidate."""
        return np.count_nonzero(self.min_snr_db < self.threshold_db, axis=1)

    @property
    def outage_probability(self) -> np.ndarray:
        return self.outage_counts / self.trials

    def ci95(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-candidate Wilson 95% interval on the outage probability."""
        return wilson_interval(self.outage_counts, self.trials)

    def quantile(self, q) -> np.ndarray:
        """Per-candidate quantile(s) of the min-SNR samples."""
        return np.quantile(self.min_snr_db, q, axis=1)


#: Standard-normal matrix memo keyed by (seed, trials).  Each entry holds the
#: longest matrix drawn so far for that key; shorter position counts are
#: served as prefix views (bit-identical — trial t's row IS the prefix of
#: ``default_rng([seed, t])``'s stream).  Grid studies re-evaluate the same
#: (seed, trials) across many shadowing parameters; this avoids redrawing
#: identical normals per cell.  Matrices above the byte cap are returned
#: without being stored, so huge trial counts never pin gigabytes in module
#: state.
_Z_CACHE: OrderedDict[tuple, np.ndarray] = OrderedDict()
_Z_CACHE_MAX = 4
_Z_CACHE_MAX_BYTES = 64 * 1024 * 1024


def _standard_normal_matrix(seed: int, trials: int, p_max: int) -> np.ndarray:
    """Read-only ``[trials, p_max]`` matrix of per-trial standard normals."""
    key = (seed, trials)
    hit = _Z_CACHE.get(key)
    if hit is None or hit.shape[1] < p_max:
        z = np.empty((trials, p_max))
        for t, rng in enumerate(trial_generators(seed, trials)):
            z[t] = rng.standard_normal(p_max)
        z.flags.writeable = False
        if z.nbytes <= _Z_CACHE_MAX_BYTES:
            _Z_CACHE[key] = z
            _Z_CACHE.move_to_end(key)  # replacing a key keeps its old slot
            if len(_Z_CACHE) > _Z_CACHE_MAX:
                _Z_CACHE.popitem(last=False)
        return z
    _Z_CACHE.move_to_end(key)
    return hit[:, :p_max]


def _outage_matrix_scalar(profiles, shadowing: LogNormalShadowing,
                          trials: int, seed: int) -> np.ndarray:
    """Reference path: one :meth:`sample` walk per (candidate, trial)."""
    mins = np.empty((len(profiles), trials))
    for c, profile in enumerate(profiles):
        for t, rng in enumerate(trial_generators(seed, trials)):
            trace = shadowing.sample(profile.positions_m, rng)
            mins[c, t] = np.min(profile.snr_db + trace)
    mins.flags.writeable = False
    return mins


def _outage_matrix_batched(profiles, shadowing: LogNormalShadowing,
                           trials: int, seed: int,
                           backend: str | None = None) -> np.ndarray:
    """Batched kernel: AR(1) over a [candidate, trial] state, running min.

    The recurrence mirrors :meth:`LogNormalShadowing.sample_batch` but cannot
    delegate to it: folding the candidate axis into the state (with padding)
    and reducing to a running minimum is what keeps one sequential loop for
    the whole batch and avoids materializing [candidate, trial, position].
    The scan itself is the :func:`repro.kernels.ar1_min_scan` kernel —
    ``backend="reference"`` is the historical step loop, pinned
    bit-identical to the scalar ``sample`` walk in ``tests/test_mc_engine.py``;
    the fused default matches it within 1e-9 and preserves the CRN
    candidate-independence property bitwise (prefix-stable scans).
    """
    positions = [np.asarray(p.positions_m, dtype=float) for p in profiles]
    sizes = [pos.size for pos in positions]
    n_cand, p_max = len(profiles), max(sizes)

    # Deterministic SNR padded with +inf: padded positions never win the min,
    # so the ragged grids need no validity mask.
    snr = np.full((n_cand, p_max), np.inf)
    for c, profile in enumerate(profiles):
        snr[c, :sizes[c]] = profile.snr_db

    # Per-candidate AR(1) coefficients, zero-padded: past a candidate's grid
    # end the shadow state collapses to 0 and the (inf) SNR keeps it inert.
    rho = np.zeros((n_cand, max(p_max - 1, 1)))
    innovation = np.zeros_like(rho)
    for c, pos in enumerate(positions):
        if pos.size > 1:
            r, inn = shadowing.coefficients(pos)
            rho[c, :pos.size - 1] = r
            innovation[c, :pos.size - 1] = inn

    sigma = shadowing.sigma_db
    if sigma == 0.0:
        # No shadowing: every trial reduces to the deterministic minimum
        # (bit-identical to the scalar path, which adds an all-zeros trace).
        det = np.array([np.min(profile.snr_db) for profile in profiles])
        mins = np.broadcast_to(det[:, None], (n_cand, trials)).copy()
        mins.flags.writeable = False
        return mins

    # One standard-normal draw per (trial, position), shared by all
    # candidates: candidate c consumes the first sizes[c] columns of each
    # trial's stream — exactly what the scalar path draws.  Memoized per
    # (seed, trials) so repeated evaluations (grid cells, bisection probes)
    # don't redraw identical normals.
    z = _standard_normal_matrix(seed, trials, p_max)
    mins = ar1_min_scan(snr, rho, innovation, z, sigma,
                        np.asarray(sizes), backend=backend)
    mins.flags.writeable = False
    return mins


def outage_matrix(profiles,
                  shadowing: LogNormalShadowing | None = None,
                  threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                  trials: int = 200,
                  seed: int = 2022,
                  engine: str = "batched",
                  backend: str | None = None) -> OutageMatrix:
    """Monte-Carlo shadowing outage of many profiles, common random numbers.

    Parameters
    ----------
    profiles:
        :class:`repro.radio.link.SnrProfile` sequence (e.g. from
        :func:`repro.radio.batch.evaluate_scenarios`); position grids may be
        ragged across profiles.
    shadowing:
        The :class:`LogNormalShadowing` overlay (default parameters if None).
    engine:
        ``"batched"`` (default) or ``"scalar"``; the scalar path is the
        audit/reference implementation.  The batched engine under
        ``backend="reference"`` is bit-identical to it; the fused default
        backend matches within 1e-9.
    backend:
        Kernel backend for the batched engine (``"numpy"``, ``"reference"``
        or ``"numba"``); ``None`` resolves via the ``REPRO_BACKEND``
        environment variable and then the ``"numpy"`` default.  Ignored by
        ``engine="scalar"``.

    Each profile sees the same per-trial shadowing streams (CRN), so
    cross-profile comparisons — outage-vs-ISD curves, bisection over the
    feasibility boundary — are free of independent sampling noise.  The CRN
    seeding also makes a candidate's column independent of which *other*
    candidates share the call: evaluating profiles one by one or stacked
    yields identical per-candidate results (the property the study layer's
    sharding relies on).

    Returns
    -------
    The :class:`OutageMatrix` holding the ``[candidate, trial]`` worst-case
    shadowed SNRs, with outage probabilities, Wilson intervals and quantiles
    derived lazily.
    """
    profiles = list(profiles)
    if not profiles:
        raise ConfigurationError("outage_matrix needs at least one profile")
    if any(np.asarray(p.positions_m).size == 0 for p in profiles):
        raise ConfigurationError("profiles must have at least one position")
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    shadowing = shadowing or LogNormalShadowing()
    if engine == "scalar":
        mins = _outage_matrix_scalar(profiles, shadowing, trials, seed)
    elif engine == "batched":
        mins = _outage_matrix_batched(profiles, shadowing, trials, seed,
                                      backend=backend)
    else:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'batched' or 'scalar'")
    return OutageMatrix(min_snr_db=mins, threshold_db=threshold_db, seed=seed)

"""Maximum inter-site distance sweep — the paper's core optimization.

"Based on the path loss and capacity models in Section III-A, the throughput
can be calculated for every scenario (ISD in 50 m steps, number of low-power
repeater nodes {0, ..., 10}).  For each number of nodes, the maximum ISD is
registered with which the throughput still matches the peak throughput of 5G
NR at an SNR > 29 dB."

The sweep evaluates min-SNR over a fine position grid for each candidate ISD
and returns the largest feasible one.  Candidate evaluation routes through the
batched scenario engine (:mod:`repro.radio.batch`); because feasibility is
monotone in ISD the default search bisects the candidate list (~log2 instead
of ~linear evaluations), with ``exhaustive=True`` as the escape hatch that
scans every candidate like the original implementation (and is verified equal
to the bisection path in the tests).  An optional shadowing margin tightens
the SNR constraint for robustness studies.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.capacity.shannon import TruncatedShannonModel
from repro.corridor.layout import CorridorLayout
from repro.errors import InfeasibleError
from repro.radio.batch import evaluate_scenarios, min_snr_batch
from repro.radio.link import LinkParams
from repro.scenario.cache import ProfileCache
from repro.scenario.grid import isd_candidates
from repro.scenario.spec import Scenario

__all__ = ["IsdSweepResult", "max_isd_for_n", "sweep_max_isd"]


@dataclass(frozen=True)
class IsdSweepResult:
    """Outcome of a full N = 0..n_max sweep."""

    max_isd_by_n: dict[int, float]
    min_snr_by_n: dict[int, float]
    threshold_db: float
    link: LinkParams = field(default_factory=LinkParams, repr=False)

    def as_list(self) -> list[float]:
        """Maximum ISDs for N = 1.. in ascending N order (paper's list shape)."""
        return [self.max_isd_by_n[n] for n in sorted(self.max_isd_by_n) if n >= 1]


def _resolve_threshold(capacity: TruncatedShannonModel | None,
                       threshold_db: float | None) -> float:
    """SNR constraint of the sweep.

    Priority: explicit ``threshold_db`` > ``capacity.peak_snr_db`` (when a
    capacity model is supplied) > the paper's stated "SNR > 29 dB" criterion.
    """
    if threshold_db is not None:
        return threshold_db
    if capacity is not None:
        return capacity.peak_snr_db
    return constants.PEAK_SNR_CRITERION_DB


def max_isd_for_n(n_repeaters: int,
                  link: LinkParams | None = None,
                  capacity: TruncatedShannonModel | None = None,
                  spacing_m: float = constants.LP_NODE_SPACING_M,
                  isd_step_m: float = constants.ISD_STEP_M,
                  isd_max_m: float = 4000.0,
                  resolution_m: float = 1.0,
                  shadowing_margin_db: float = 0.0,
                  threshold_db: float | None = None,
                  exhaustive: bool = False,
                  cache: ProfileCache | None = None,
                  jobs: int | None = None) -> tuple[float, float]:
    """Largest ISD sustaining peak throughput everywhere with N repeaters.

    Returns ``(max_isd_m, min_snr_db_at_max)``.  The candidate set walks up in
    ``isd_step_m`` steps from the smallest geometry that fits the repeater
    field.  By default the search bisects the candidates — feasibility is
    monotone in ISD for every supported noise model — evaluating only
    ~log2(candidates) profiles; ``exhaustive=True`` scans all candidates
    through the batched engine and keeps the largest feasible one, handling
    hypothetical non-monotone profiles exactly like the original sweep.

    The default SNR constraint is the paper's stated "SNR > 29 dB"; pass a
    ``capacity`` model to use its exact saturation point (29.30 dB with paper
    parameters) or ``threshold_db`` for an arbitrary constraint.

    Raises :class:`InfeasibleError` when no candidate ISD satisfies the
    constraint.
    """
    link = link or LinkParams()
    threshold = _resolve_threshold(capacity, threshold_db)

    candidates = isd_candidates(n_repeaters, spacing_m, isd_step_m, isd_max_m)
    scenarios = [
        Scenario(
            layout=CorridorLayout.with_uniform_repeaters(
                float(isd), n_repeaters, spacing_m),
            link=link, resolution_m=resolution_m)
        for isd in candidates
    ]
    infeasible = InfeasibleError(
        f"no ISD up to {isd_max_m} m sustains peak throughput with "
        f"{n_repeaters} repeaters (threshold {threshold:.2f} dB)")
    if not scenarios:
        raise infeasible

    if exhaustive:
        snrs = min_snr_batch(scenarios, cache=cache, jobs=jobs) - shadowing_margin_db
        feasible = np.nonzero(snrs >= threshold)[0]
        if feasible.size == 0:
            raise infeasible
        best = int(feasible[-1])
        return float(candidates[best]), float(snrs[best])

    snr_memo: dict[int, float] = {}

    def snr_at(index: int) -> float:
        if index not in snr_memo:
            profile = evaluate_scenarios([scenarios[index]], cache=cache)[0]
            snr_memo[index] = profile.min_snr_db - shadowing_margin_db
        return snr_memo[index]

    lo, hi = 0, len(scenarios) - 1
    # Evaluate the bracket in one batched call, then bisect the boundary.
    for index, snr in zip((lo, hi), min_snr_batch(
            [scenarios[lo], scenarios[hi]], cache=cache)):
        snr_memo[index] = float(snr) - shadowing_margin_db
    if snr_at(lo) < threshold:
        raise infeasible
    if snr_at(hi) >= threshold:
        best = hi
    else:
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if snr_at(mid) >= threshold:
                lo = mid
            else:
                hi = mid
        best = lo
    return float(candidates[best]), float(snr_at(best))


def sweep_max_isd(n_max: int = 10,
                  link: LinkParams | None = None,
                  capacity: TruncatedShannonModel | None = None,
                  spacing_m: float = constants.LP_NODE_SPACING_M,
                  isd_step_m: float = constants.ISD_STEP_M,
                  isd_max_m: float = 4000.0,
                  resolution_m: float = 1.0,
                  include_zero: bool = True,
                  shadowing_margin_db: float = 0.0,
                  threshold_db: float | None = None,
                  exhaustive: bool = False,
                  cache: ProfileCache | None = None,
                  jobs: int | None = None) -> IsdSweepResult:
    """The full Section V sweep: max ISD for each repeater count.

    With default (paper-literal) link parameters and the paper's stated
    29 dB criterion the result matches the registered list exactly for
    N = 1..4 and exceeds it for large N (see DESIGN.md #4.1); with
    ``RepeaterNoiseModel.FRONTHAUL_STAR`` the diminishing-returns tail is
    also reproduced.

    ``jobs`` > 1 evaluates the repeater counts concurrently; ``cache`` memoizes
    profiles across calls; ``exhaustive`` forwards to :func:`max_isd_for_n`.
    """
    link = link or LinkParams()
    threshold = _resolve_threshold(capacity, threshold_db)
    start = 0 if include_zero else 1
    counts = list(range(start, n_max + 1))

    def one(n: int) -> tuple[float, float]:
        return max_isd_for_n(
            n, link, None, spacing_m, isd_step_m, isd_max_m,
            resolution_m, shadowing_margin_db, threshold_db=threshold,
            exhaustive=exhaustive, cache=cache)

    if jobs is not None and jobs > 1 and len(counts) > 1:
        with ThreadPoolExecutor(max_workers=min(jobs, len(counts))) as pool:
            outcomes = list(pool.map(one, counts))
    else:
        outcomes = [one(n) for n in counts]

    max_isd = {n: isd for n, (isd, _) in zip(counts, outcomes)}
    min_snr = {n: snr for n, (_, snr) in zip(counts, outcomes)}
    return IsdSweepResult(max_isd_by_n=max_isd, min_snr_by_n=min_snr,
                          threshold_db=threshold, link=link)

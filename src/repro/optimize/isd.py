"""Maximum inter-site distance sweep — the paper's core optimization.

"Based on the path loss and capacity models in Section III-A, the throughput
can be calculated for every scenario (ISD in 50 m steps, number of low-power
repeater nodes {0, ..., 10}).  For each number of nodes, the maximum ISD is
registered with which the throughput still matches the peak throughput of 5G
NR at an SNR > 29 dB."

The sweep evaluates min-SNR over a fine position grid for each candidate ISD
and returns the largest feasible one.  An optional shadowing margin tightens
the SNR constraint for robustness studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.capacity.shannon import TruncatedShannonModel
from repro.corridor.layout import CorridorLayout
from repro.errors import InfeasibleError
from repro.radio.link import LinkParams, compute_snr_profile

__all__ = ["IsdSweepResult", "max_isd_for_n", "sweep_max_isd"]


@dataclass(frozen=True)
class IsdSweepResult:
    """Outcome of a full N = 0..n_max sweep."""

    max_isd_by_n: dict[int, float]
    min_snr_by_n: dict[int, float]
    threshold_db: float
    link: LinkParams = field(default_factory=LinkParams, repr=False)

    def as_list(self) -> list[float]:
        """Maximum ISDs for N = 1.. in ascending N order (paper's list shape)."""
        return [self.max_isd_by_n[n] for n in sorted(self.max_isd_by_n) if n >= 1]


def _min_snr_db(isd_m: float, n_repeaters: int, link: LinkParams,
                spacing_m: float, resolution_m: float,
                shadowing_margin_db: float) -> float:
    layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters, spacing_m)
    profile = compute_snr_profile(layout, link, resolution_m=resolution_m)
    return profile.min_snr_db - shadowing_margin_db


def _resolve_threshold(capacity: TruncatedShannonModel | None,
                       threshold_db: float | None) -> float:
    """SNR constraint of the sweep.

    Priority: explicit ``threshold_db`` > ``capacity.peak_snr_db`` (when a
    capacity model is supplied) > the paper's stated "SNR > 29 dB" criterion.
    """
    if threshold_db is not None:
        return threshold_db
    if capacity is not None:
        return capacity.peak_snr_db
    return constants.PEAK_SNR_CRITERION_DB


def max_isd_for_n(n_repeaters: int,
                  link: LinkParams | None = None,
                  capacity: TruncatedShannonModel | None = None,
                  spacing_m: float = constants.LP_NODE_SPACING_M,
                  isd_step_m: float = constants.ISD_STEP_M,
                  isd_max_m: float = 4000.0,
                  resolution_m: float = 1.0,
                  shadowing_margin_db: float = 0.0,
                  threshold_db: float | None = None) -> tuple[float, float]:
    """Largest ISD sustaining peak throughput everywhere with N repeaters.

    Returns ``(max_isd_m, min_snr_db_at_max)``.  The search walks up in
    ``isd_step_m`` steps from the smallest geometry that fits the repeater
    field; feasibility is monotone in practice but the sweep is exhaustive
    (it keeps the largest feasible ISD) so non-monotone profiles are handled.

    The default SNR constraint is the paper's stated "SNR > 29 dB"; pass a
    ``capacity`` model to use its exact saturation point (29.30 dB with paper
    parameters) or ``threshold_db`` for an arbitrary constraint.

    Raises :class:`InfeasibleError` when no candidate ISD satisfies the
    constraint.
    """
    link = link or LinkParams()
    threshold = _resolve_threshold(capacity, threshold_db)

    min_isd = spacing_m * max(0, n_repeaters - 1) + 2.0 * isd_step_m
    candidates = np.arange(max(isd_step_m, min_isd), isd_max_m + isd_step_m / 2, isd_step_m)

    best_isd = None
    best_snr = None
    for isd in candidates:
        snr = _min_snr_db(float(isd), n_repeaters, link, spacing_m,
                          resolution_m, shadowing_margin_db)
        if snr >= threshold:
            best_isd = float(isd)
            best_snr = snr
    if best_isd is None:
        raise InfeasibleError(
            f"no ISD up to {isd_max_m} m sustains peak throughput with "
            f"{n_repeaters} repeaters (threshold {threshold:.2f} dB)")
    return best_isd, float(best_snr)


def sweep_max_isd(n_max: int = 10,
                  link: LinkParams | None = None,
                  capacity: TruncatedShannonModel | None = None,
                  spacing_m: float = constants.LP_NODE_SPACING_M,
                  isd_step_m: float = constants.ISD_STEP_M,
                  isd_max_m: float = 4000.0,
                  resolution_m: float = 1.0,
                  include_zero: bool = True,
                  shadowing_margin_db: float = 0.0,
                  threshold_db: float | None = None) -> IsdSweepResult:
    """The full Section V sweep: max ISD for each repeater count.

    With default (paper-literal) link parameters and the paper's stated
    29 dB criterion the result matches the registered list exactly for
    N = 1..4 and exceeds it for large N (see DESIGN.md #4.1); with
    ``RepeaterNoiseModel.FRONTHAUL_STAR`` the diminishing-returns tail is
    also reproduced.
    """
    link = link or LinkParams()
    threshold = _resolve_threshold(capacity, threshold_db)
    max_isd: dict[int, float] = {}
    min_snr: dict[int, float] = {}
    start = 0 if include_zero else 1
    for n in range(start, n_max + 1):
        isd, snr = max_isd_for_n(
            n, link, None, spacing_m, isd_step_m, isd_max_m,
            resolution_m, shadowing_margin_db, threshold_db=threshold)
        max_isd[n] = isd
        min_snr[n] = snr
    return IsdSweepResult(max_isd_by_n=max_isd, min_snr_by_n=min_snr,
                          threshold_db=threshold, link=link)

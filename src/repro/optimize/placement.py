"""Repeater placement optimization (extension beyond the paper).

The paper fixes the repeater field to 200 m spacing centered between the HP
masts.  This module asks whether unequal placement can do better: it maximizes
the worst-case SNR over repeater positions using coordinate descent on the
catenary-mast grid (positions are only installable every 50 m).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.corridor.geometry import CatenaryGrid
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError, GeometryError
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams
from repro.scenario.cache import ProfileCache
from repro.scenario.spec import Scenario

__all__ = ["PlacementResult", "optimize_placement"]


@dataclass(frozen=True)
class PlacementResult:
    """Optimized layout and the min-SNR it achieves."""

    layout: CorridorLayout
    min_snr_db: float
    baseline_min_snr_db: float
    iterations: int

    @property
    def gain_db(self) -> float:
        """Improvement of worst-case SNR over the centered baseline."""
        return self.min_snr_db - self.baseline_min_snr_db


def optimize_placement(isd_m: float,
                       n_repeaters: int,
                       link: LinkParams | None = None,
                       grid: CatenaryGrid | None = None,
                       min_spacing_m: float = 50.0,
                       resolution_m: float = 2.0,
                       max_rounds: int = 20,
                       cache: ProfileCache | None = None) -> PlacementResult:
    """Maximize worst-case SNR by moving repeaters between catenary masts.

    Coordinate descent: each round tries moving every node to neighbouring
    grid positions (keeping order and ``min_spacing_m``) and keeps the best
    single move; stops when no move improves the min-SNR.

    Each round's candidate moves are evaluated in one batched-engine call;
    a profile cache (an internal LRU unless ``cache`` is supplied) absorbs
    the many re-visited layouts of the descent.

    Starts from the paper's centered 200 m layout (snapped to the grid).
    """
    if n_repeaters < 1:
        raise ConfigurationError(f"placement needs >= 1 repeater, got {n_repeaters}")
    link = link or LinkParams()
    grid = grid or CatenaryGrid()
    cache = cache or ProfileCache(maxsize=256)

    def _min_snr(layout: CorridorLayout) -> float:
        scenario = Scenario(layout=layout, link=link, resolution_m=resolution_m)
        return evaluate_scenarios([scenario], cache=cache)[0].min_snr_db

    baseline = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters)
    baseline_snr = _min_snr(baseline)

    positions = list(grid.snap_all(baseline.repeater_positions_m))
    # Snapping can collapse near-boundary nodes; keep them inside the segment.
    positions = [min(max(p, grid.spacing_m), isd_m - grid.spacing_m) for p in positions]
    for i in range(1, len(positions)):
        if positions[i] <= positions[i - 1]:
            positions[i] = positions[i - 1] + grid.spacing_m
    if positions[-1] >= isd_m:
        raise GeometryError(f"{n_repeaters} nodes do not fit the {isd_m} m segment on the grid")

    def feasible(pos: list[float]) -> bool:
        if pos[0] < grid.spacing_m / 2 or pos[-1] > isd_m - grid.spacing_m / 2:
            return False
        return all(b - a >= min_spacing_m - 1e-9 for a, b in zip(pos, pos[1:]))

    current = _min_snr(CorridorLayout(isd_m, tuple(positions)))
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        moves: list[tuple[int, float]] = []  # (index, new position)
        trial_scenarios: list[Scenario] = []
        for i in range(len(positions)):
            for delta in (-grid.spacing_m, grid.spacing_m):
                trial = list(positions)
                trial[i] = trial[i] + delta
                if not feasible(trial):
                    continue
                moves.append((i, trial[i]))
                trial_scenarios.append(Scenario(
                    layout=CorridorLayout(isd_m, tuple(trial)), link=link,
                    resolution_m=resolution_m))
        best_move: tuple[int, float, float] | None = None  # (index, new position, snr)
        profiles = evaluate_scenarios(trial_scenarios, cache=cache)
        for (i, new_pos), profile in zip(moves, profiles):
            snr = profile.min_snr_db
            if snr > current + 1e-9 and (best_move is None or snr > best_move[2]):
                best_move = (i, new_pos, snr)
        if best_move is None:
            break
        positions[best_move[0]] = best_move[1]
        current = best_move[2]

    layout = CorridorLayout(isd_m, tuple(positions))
    return PlacementResult(layout=layout, min_snr_db=current,
                           baseline_min_snr_db=baseline_snr, iterations=rounds)

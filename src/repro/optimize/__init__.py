"""Optimization layer: the paper's max-ISD search plus extensions.

* :mod:`repro.optimize.isd` — for each repeater count, the maximum inter-site
  distance that still sustains peak 5G NR throughput everywhere (Section V).
* :mod:`repro.optimize.mc` — vectorized Monte-Carlo shadowing engine
  (common-random-number trials batched over candidates and positions).
* :mod:`repro.optimize.robustness` — outage probability and the robust
  max-ISD boundary under shadowing (extension).
* :mod:`repro.optimize.placement` — repeater placement refinement (extension).
* :mod:`repro.optimize.pareto` — energy-vs-capacity trade-off curves
  (extension).
"""

from repro.optimize.isd import IsdSweepResult, max_isd_for_n, sweep_max_isd
from repro.optimize.mc import (
    OutageMatrix,
    outage_matrix,
    trial_generators,
    wilson_interval,
)
from repro.optimize.placement import PlacementResult, optimize_placement
from repro.optimize.pareto import ParetoPoint, energy_capacity_frontier
from repro.optimize.robustness import OutageResult, outage_probability, robust_max_isd

__all__ = [
    "max_isd_for_n",
    "sweep_max_isd",
    "IsdSweepResult",
    "OutageMatrix",
    "outage_matrix",
    "trial_generators",
    "wilson_interval",
    "OutageResult",
    "outage_probability",
    "robust_max_isd",
    "optimize_placement",
    "PlacementResult",
    "energy_capacity_frontier",
    "ParetoPoint",
]

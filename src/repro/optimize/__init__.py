"""Optimization layer: the paper's max-ISD search plus extensions.

* :mod:`repro.optimize.isd` — for each repeater count, the maximum inter-site
  distance that still sustains peak 5G NR throughput everywhere (Section V).
* :mod:`repro.optimize.placement` — repeater placement refinement (extension).
* :mod:`repro.optimize.pareto` — energy-vs-capacity trade-off curves
  (extension).
"""

from repro.optimize.isd import IsdSweepResult, max_isd_for_n, sweep_max_isd
from repro.optimize.placement import PlacementResult, optimize_placement
from repro.optimize.pareto import ParetoPoint, energy_capacity_frontier

__all__ = [
    "max_isd_for_n",
    "sweep_max_isd",
    "IsdSweepResult",
    "optimize_placement",
    "PlacementResult",
    "energy_capacity_frontier",
    "ParetoPoint",
]

"""Monte-Carlo robustness of an ISD choice under shadowing.

The paper's sweep is deterministic.  Real corridors see log-normal shadowing
(vegetation, cuttings, bridges); this module estimates the *outage
probability* — the chance that some track position of a segment falls below
the peak-throughput SNR — as a function of ISD, and derives the shadowing
margin a robust design should back off.

All Monte-Carlo evaluation routes through the vectorized engine
(:mod:`repro.optimize.mc`): trials are seeded per-trial (common random
numbers), so every candidate ISD sees the same shadowing streams and the
empirical outage curve is directly comparable across candidates.
:func:`robust_max_isd` exploits that to bisect the outage-feasibility
boundary instead of scanning the whole ISD ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError, InfeasibleError
from repro.optimize.mc import outage_matrix, readonly_array, wilson_interval
from repro.propagation.fading import LogNormalShadowing
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams, SnrProfile, compute_snr_profile
from repro.scenario.cache import ProfileCache
from repro.scenario.grid import isd_candidates
from repro.scenario.spec import Scenario

__all__ = ["OutageResult", "outage_probability", "robust_max_isd"]


@dataclass(frozen=True, eq=False)
class OutageResult:
    """Monte-Carlo outage estimate for one layout.

    ``min_snr_samples_db`` is kept as a (read-only) float ndarray — one value
    per trial — so high trial counts don't pay tuple-of-boxed-floats memory
    and the quantile/CI helpers can reduce it directly.  Equality and hashing
    are defined explicitly (the generated ones choke on ndarray fields).
    """

    layout: CorridorLayout
    threshold_db: float
    trials: int
    outages: int
    min_snr_samples_db: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "min_snr_samples_db",
                           readonly_array(self.min_snr_samples_db))

    def __eq__(self, other) -> bool:
        if not isinstance(other, OutageResult):
            return NotImplemented
        return (self.layout == other.layout
                and self.threshold_db == other.threshold_db
                and self.trials == other.trials
                and self.outages == other.outages
                and np.array_equal(self.min_snr_samples_db,
                                   other.min_snr_samples_db))

    def __hash__(self) -> int:
        return hash((self.layout, self.threshold_db, self.trials, self.outages))

    @property
    def outage_probability(self) -> float:
        return self.outages / self.trials

    @property
    def median_min_snr_db(self) -> float:
        return float(np.median(self.min_snr_samples_db))

    def quantile(self, q):
        """Quantile(s) of the per-trial min-SNR samples (dB)."""
        return np.quantile(self.min_snr_samples_db, q)

    def ci95(self) -> tuple[float, float]:
        """Wilson 95% confidence interval on the outage probability."""
        low, high = wilson_interval(self.outages, self.trials)
        return float(low), float(high)


def outage_probability(layout: CorridorLayout,
                       shadowing: LogNormalShadowing | None = None,
                       link: LinkParams | None = None,
                       threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                       trials: int = 200,
                       resolution_m: float = 5.0,
                       seed: int = 2022,
                       profile: SnrProfile | None = None,
                       engine: str = "batched",
                       backend: str | None = None) -> OutageResult:
    """Probability that shadowing pushes some position below the threshold.

    One shadowing trace per trial is applied to the *total* signal (the
    dominant serving path), a conservative single-field approximation that
    avoids per-source correlation assumptions.  A precomputed ``profile`` for
    the layout (e.g. from the batched engine) skips the deterministic
    evaluation.  Trials are seeded individually (``default_rng([seed, t])``)
    and run through :func:`repro.optimize.mc.outage_matrix` (``backend``
    selects the scan kernel); ``engine="scalar"`` replays them through the
    reference path, trial-for-trial bit-identical to the batched engine
    under ``backend="reference"``.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    shadowing = shadowing or LogNormalShadowing()
    if profile is None:
        profile = compute_snr_profile(layout, link, resolution_m=resolution_m)
    matrix = outage_matrix([profile], shadowing, threshold_db=threshold_db,
                           trials=trials, seed=seed, engine=engine,
                           backend=backend)
    return OutageResult(layout=layout, threshold_db=threshold_db, trials=trials,
                        outages=int(matrix.outage_counts[0]),
                        min_snr_samples_db=matrix.min_snr_db[0])


def robust_max_isd(n_repeaters: int,
                   target_outage: float = 0.05,
                   shadowing: LogNormalShadowing | None = None,
                   link: LinkParams | None = None,
                   threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                   isd_step_m: float = constants.ISD_STEP_M,
                   isd_max_m: float = 3500.0,
                   trials: int = 100,
                   resolution_m: float = 5.0,
                   seed: int = 2022,
                   cache: ProfileCache | None = None,
                   jobs: int | None = None,
                   engine: str = "batched",
                   backend: str | None = None,
                   exhaustive: bool = False) -> tuple[float, float]:
    """Largest ISD whose shadowing outage stays below ``target_outage``.

    Returns ``(isd_m, outage_probability)``.  Always at least one 50 m step
    below the deterministic maximum, quantifying the robustness cost.  The
    deterministic profiles of all candidate ISDs are computed in one
    batched-engine call.

    Because every candidate is scored under **common random numbers** (same
    per-trial shadowing streams, see :mod:`repro.optimize.mc`), the empirical
    outage curve tracks the monotone-in-ISD behaviour of the deterministic
    profiles, and the default search bisects the feasibility boundary —
    ~log2(candidates) Monte-Carlo evaluations instead of a linear scan.
    CRN cancels trial noise between candidates but the per-trial minima are
    taken over *different* position grids, so with finite trials a local
    wobble in the empirical curve is still possible — in that (rare) case the
    bisection settles on a smaller feasible ISD than the scan would (a wobble
    at the very bottom of the ladder instead falls back to the full scan, so
    infeasibility is only ever declared from a complete evaluation).
    ``exhaustive=True`` scores every candidate (one stacked evaluation) and
    keeps the largest feasible one, exactly like the original implementation;
    the tests pin it equal to the bisection across seed x sigma sweeps.

    Raises :class:`InfeasibleError` when no candidate meets the target.
    """
    if not 0.0 < target_outage < 1.0:
        raise ConfigurationError(f"target outage must be in (0,1), got {target_outage}")
    candidates = isd_candidates(n_repeaters, constants.LP_NODE_SPACING_M,
                                isd_step_m, isd_max_m)
    layouts = [CorridorLayout.with_uniform_repeaters(float(isd), n_repeaters)
               for isd in candidates]
    profiles = evaluate_scenarios(
        [Scenario(layout=lo, link=link or LinkParams(), resolution_m=resolution_m)
         for lo in layouts], cache=cache, jobs=jobs)

    def outage_of(indices) -> np.ndarray:
        matrix = outage_matrix([profiles[i] for i in indices], shadowing,
                               threshold_db=threshold_db, trials=trials,
                               seed=seed, engine=engine, backend=backend)
        return matrix.outage_probability

    def scan() -> tuple[float, float]:
        """Stacked evaluation of every candidate; largest feasible wins."""
        outages = outage_of(range(len(profiles)))
        feasible = np.nonzero(outages <= target_outage)[0]
        if feasible.size == 0:
            raise InfeasibleError(
                f"no ISD meets the {target_outage:.0%} outage target with "
                f"{n_repeaters} repeaters")
        best = int(feasible[-1])
        return float(candidates[best]), float(outages[best])

    if exhaustive:
        return scan()

    memo: dict[int, float] = {}

    def outage_at(index: int) -> float:
        if index not in memo:
            memo[index] = float(outage_of([index])[0])
        return memo[index]

    lo, hi = 0, len(profiles) - 1
    # Evaluate the bracket in one stacked call, then bisect the boundary.
    for index, out in zip((lo, hi), outage_of([lo, hi])):
        memo[index] = float(out)
    if outage_at(lo) > target_outage:
        # The smallest candidate already misses the target: either genuine
        # infeasibility or finite-trial wobble right at the boundary.  The
        # full scan settles it either way, so the bisection never declares
        # infeasible where the exhaustive path would not.
        return scan()
    if outage_at(hi) <= target_outage:
        best = hi
    else:
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if outage_at(mid) <= target_outage:
                lo = mid
            else:
                hi = mid
        best = lo
    return float(candidates[best]), outage_at(best)

"""Monte-Carlo robustness of an ISD choice under shadowing.

The paper's sweep is deterministic.  Real corridors see log-normal shadowing
(vegetation, cuttings, bridges); this module estimates the *outage
probability* — the chance that some track position of a segment falls below
the peak-throughput SNR — as a function of ISD, and derives the shadowing
margin a robust design should back off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.propagation.fading import LogNormalShadowing
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams, SnrProfile, compute_snr_profile
from repro.scenario.cache import ProfileCache
from repro.scenario.grid import isd_candidates
from repro.scenario.spec import Scenario

__all__ = ["OutageResult", "outage_probability", "robust_max_isd"]


@dataclass(frozen=True)
class OutageResult:
    """Monte-Carlo outage estimate for one layout."""

    layout: CorridorLayout
    threshold_db: float
    trials: int
    outages: int
    min_snr_samples_db: tuple[float, ...]

    @property
    def outage_probability(self) -> float:
        return self.outages / self.trials

    @property
    def median_min_snr_db(self) -> float:
        return float(np.median(self.min_snr_samples_db))


def outage_probability(layout: CorridorLayout,
                       shadowing: LogNormalShadowing | None = None,
                       link: LinkParams | None = None,
                       threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                       trials: int = 200,
                       resolution_m: float = 5.0,
                       seed: int = 2022,
                       profile: SnrProfile | None = None) -> OutageResult:
    """Probability that shadowing pushes some position below the threshold.

    One shadowing trace per trial is applied to the *total* signal (the
    dominant serving path), a conservative single-field approximation that
    avoids per-source correlation assumptions.  A precomputed ``profile`` for
    the layout (e.g. from the batched engine) skips the deterministic
    evaluation.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    shadowing = shadowing or LogNormalShadowing()
    if profile is None:
        profile = compute_snr_profile(layout, link, resolution_m=resolution_m)
    rng = np.random.default_rng(seed)

    outages = 0
    samples = []
    for _ in range(trials):
        trace = shadowing.sample(profile.positions_m, rng)
        min_snr = float(np.min(profile.snr_db + trace))
        samples.append(min_snr)
        if min_snr < threshold_db:
            outages += 1
    return OutageResult(layout=layout, threshold_db=threshold_db, trials=trials,
                        outages=outages, min_snr_samples_db=tuple(samples))


def robust_max_isd(n_repeaters: int,
                   target_outage: float = 0.05,
                   shadowing: LogNormalShadowing | None = None,
                   link: LinkParams | None = None,
                   threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                   isd_step_m: float = constants.ISD_STEP_M,
                   isd_max_m: float = 3500.0,
                   trials: int = 100,
                   resolution_m: float = 5.0,
                   seed: int = 2022,
                   cache: ProfileCache | None = None,
                   jobs: int | None = None) -> tuple[float, float]:
    """Largest ISD whose shadowing outage stays below ``target_outage``.

    Returns ``(isd_m, outage_probability)``.  Always at least one 50 m step
    below the deterministic maximum, quantifying the robustness cost.  The
    deterministic profiles of all candidate ISDs are computed in one
    batched-engine call; only the Monte-Carlo trials run per candidate.
    """
    if not 0.0 < target_outage < 1.0:
        raise ConfigurationError(f"target outage must be in (0,1), got {target_outage}")
    candidates = isd_candidates(n_repeaters, constants.LP_NODE_SPACING_M,
                                isd_step_m, isd_max_m)
    layouts = [CorridorLayout.with_uniform_repeaters(float(isd), n_repeaters)
               for isd in candidates]
    profiles = evaluate_scenarios(
        [Scenario(layout=lo, link=link or LinkParams(), resolution_m=resolution_m)
         for lo in layouts], cache=cache, jobs=jobs)
    best: tuple[float, float] | None = None
    for isd, layout, profile in zip(candidates, layouts, profiles):
        result = outage_probability(layout, shadowing, link, threshold_db,
                                    trials, resolution_m, seed, profile=profile)
        if result.outage_probability <= target_outage:
            best = (float(isd), result.outage_probability)
    if best is None:
        raise ConfigurationError(
            f"no ISD meets the {target_outage:.0%} outage target with "
            f"{n_repeaters} repeaters")
    return best

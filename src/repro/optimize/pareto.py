"""Energy-vs-capacity trade-off frontier (extension beyond the paper).

The paper fixes the capacity constraint at "peak throughput everywhere" and
minimizes energy.  This module generalizes: for a grid of ISDs and repeater
counts it computes (average energy per km, worst-case throughput) pairs and
extracts the Pareto-efficient set, showing how much energy a relaxed capacity
target would buy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.capacity.shannon import TruncatedShannonModel
from repro.capacity.throughput import throughput_profile
from repro.corridor.layout import CorridorLayout
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError
from repro.radio.batch import evaluate_scenarios
from repro.radio.link import LinkParams
from repro.scenario.cache import ProfileCache
from repro.scenario.spec import Scenario

__all__ = ["ParetoPoint", "energy_capacity_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One deployment on (or off) the energy-capacity frontier."""

    n_repeaters: int
    isd_m: float
    w_per_km: float
    min_throughput_mbps: float
    mean_throughput_mbps: float
    efficient: bool


def energy_capacity_frontier(n_values=range(0, 11),
                             isd_values_m=None,
                             mode: OperatingMode = OperatingMode.SLEEP,
                             link: LinkParams | None = None,
                             capacity: TruncatedShannonModel | None = None,
                             energy: EnergyParams | None = None,
                             spacing_m: float = constants.LP_NODE_SPACING_M,
                             resolution_m: float = 2.0,
                             cache: ProfileCache | None = None,
                             jobs: int | None = None) -> list[ParetoPoint]:
    """Evaluate an (N, ISD) grid and mark the Pareto-efficient points.

    A point is efficient when no other point has both lower energy per km and
    higher worst-case throughput.  The SNR profiles of the whole grid are
    computed in one batched-engine call.
    """
    link = link or LinkParams()
    capacity = capacity or TruncatedShannonModel()
    energy = energy or EnergyParams()
    if isd_values_m is None:
        isd_values_m = np.arange(500.0, 3001.0, 250.0)

    layouts: list[CorridorLayout] = []
    for n in n_values:
        if n < 0:
            raise ConfigurationError(f"repeater count must be >= 0, got {n}")
        for isd in isd_values_m:
            span = spacing_m * max(0, n - 1)
            if isd <= span + 100.0:
                continue
            layouts.append(CorridorLayout.with_uniform_repeaters(float(isd), n, spacing_m))

    profiles = evaluate_scenarios(
        [Scenario(layout=lo, link=link, resolution_m=resolution_m) for lo in layouts],
        cache=cache, jobs=jobs)
    points: list[tuple[int, float, float, float, float]] = []
    for layout, snr in zip(layouts, profiles):
        thr = throughput_profile(snr, capacity)
        e = segment_energy(layout, mode, energy)
        points.append((layout.n_repeaters, float(layout.isd_m), e.w_per_km,
                       thr.min_bps / 1e6, thr.mean_bps / 1e6))

    results: list[ParetoPoint] = []
    for i, (n, isd, w, mn, mean) in enumerate(points):
        dominated = any(
            (w2 < w - 1e-9 and mn2 >= mn - 1e-9) or (w2 <= w + 1e-9 and mn2 > mn + 1e-9)
            for j, (_, _, w2, mn2, _) in enumerate(points) if j != i
        )
        results.append(ParetoPoint(n_repeaters=n, isd_m=isd, w_per_km=w,
                                   min_throughput_mbps=mn, mean_throughput_mbps=mean,
                                   efficient=not dominated))
    return results

"""Mobility layer: what a terminal on a moving train actually experiences.

The paper's capacity argument is positional (SNR at every track position).
This package converts it into the passenger-facing quantities the
introduction motivates — throughput over time during a traversal, data
volume per segment, time spent at peak rate — and models the serving-cell
handover count a corridor avoids compared to a macro network.
"""

from repro.mobility.traversal import (
    TraversalResult,
    simulate_traversal,
    segment_data_volume_gbit,
)

__all__ = [
    "TraversalResult",
    "simulate_traversal",
    "segment_data_volume_gbit",
]

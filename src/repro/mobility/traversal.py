"""Train traversal: throughput over time for a terminal riding through.

A terminal moving at train speed samples the positional SNR profile in time;
the integrated throughput is the data volume available to the train during
one segment traversal (shared by its passengers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.capacity.shannon import TruncatedShannonModel
from repro.capacity.throughput import throughput_profile
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.link import LinkParams, compute_snr_profile
from repro.traffic.trains import Train

__all__ = ["TraversalResult", "simulate_traversal", "segment_data_volume_gbit"]


@dataclass(frozen=True)
class TraversalResult:
    """Time series of one segment traversal at constant speed."""

    times_s: np.ndarray
    positions_m: np.ndarray
    snr_db: np.ndarray
    throughput_bps: np.ndarray
    train: Train

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1] - self.times_s[0])

    @property
    def data_volume_bit(self) -> float:
        """Total data deliverable during the traversal (trapezoidal)."""
        return float(np.trapezoid(self.throughput_bps, self.times_s))

    @property
    def mean_throughput_bps(self) -> float:
        return self.data_volume_bit / self.duration_s

    @property
    def min_throughput_bps(self) -> float:
        return float(np.min(self.throughput_bps))

    def time_at_peak_fraction(self, peak_bps: float | None = None) -> float:
        """Fraction of the traversal spent at peak rate."""
        peak = float(np.max(self.throughput_bps)) if peak_bps is None else peak_bps
        return float(np.mean(self.throughput_bps >= peak - 1e-6))

    def worst_gap_s(self, threshold_bps: float) -> float:
        """Longest continuous time below a throughput threshold."""
        below = self.throughput_bps < threshold_bps
        if not np.any(below):
            return 0.0
        dt = float(self.times_s[1] - self.times_s[0]) if self.times_s.size > 1 else 0.0
        longest = 0
        current = 0
        for flag in below:
            current = current + 1 if flag else 0
            longest = max(longest, current)
        return longest * dt


def simulate_traversal(layout: CorridorLayout,
                       train: Train | None = None,
                       link: LinkParams | None = None,
                       capacity: TruncatedShannonModel | None = None,
                       time_step_s: float = 0.1) -> TraversalResult:
    """Ride a terminal through the segment at train speed.

    The terminal samples the positional profile; Doppler and handover
    interruptions are outside the paper's model (a single stretched cell has
    no handovers inside the segment — that is the corridor's point).
    """
    train = train or Train()
    capacity = capacity or TruncatedShannonModel()
    if time_step_s <= 0:
        raise ConfigurationError(f"time step must be positive, got {time_step_s}")

    profile = compute_snr_profile(layout, link, resolution_m=max(0.5, train.speed_ms * time_step_s))
    thr = throughput_profile(profile, capacity)

    times = profile.positions_m / train.speed_ms
    return TraversalResult(
        times_s=times,
        positions_m=profile.positions_m,
        snr_db=profile.snr_db,
        throughput_bps=thr.throughput_bps,
        train=train,
    )


def segment_data_volume_gbit(layout: CorridorLayout,
                             train: Train | None = None,
                             link: LinkParams | None = None) -> float:
    """Data volume one traversal of the segment can deliver [Gbit]."""
    result = simulate_traversal(layout, train, link)
    return result.data_volume_bit / 1e9

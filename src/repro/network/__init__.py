"""Multi-corridor network model and demand-aware topology optimizer.

Generalizes the single-corridor analysis to a national rail *network*: a
:class:`~repro.network.graph.NetworkGraph` of named corridors whose segments
carry their own length, speed class and offered traffic demand
(:class:`~repro.network.graph.DemandProfile`, derivable from
:mod:`repro.traffic` timetables), plus a network-level optimizer
(:mod:`repro.network.optimize`) that assigns every segment one of three
technologies — conventional macro grid, out-of-band repeater chain, or the
mmWave onboard-relay alternative of :mod:`repro.baselines` — and a
demand-aware sleep policy, under global energy and cost budgets.

Per-segment technology frontiers are computed in one batched pass
(:func:`~repro.network.frontier.segment_frontiers` dedupes unique layouts
through :func:`repro.radio.batch.evaluate_scenarios` and unique
(speed class, demand) profiles through
:func:`repro.energy.scenario.segment_energy`); the assignment itself is a
Lagrangian bisection over the ``[segment, option]`` arrays — never a
per-segment Python loop.  A bit-identical ``engine="scalar"`` per-segment
reference is pinned by ``tests/test_engine_parity.py``.

Quickstart::

    from repro.network import build_graph, optimize_network

    graph = build_graph("national", n_segments=10_000)
    plan = optimize_network(graph, energy_budget_w=2.4e6)
    print(plan.table())
"""

from repro.network.graph import (
    Corridor,
    DemandProfile,
    NetworkGraph,
    NetworkSegment,
    SPEED_CLASSES,
    SpeedClass,
)
from repro.network.frontier import (
    SegmentFrontiers,
    Technology,
    TechnologyCatalog,
    TechnologyOption,
    fixed_options_power_w,
    segment_frontiers,
)
from repro.network.optimize import NetworkAssignment, optimize_network
from repro.network.presets import NAMED_GRAPHS, build_graph

__all__ = [
    "SpeedClass",
    "SPEED_CLASSES",
    "DemandProfile",
    "NetworkSegment",
    "Corridor",
    "NetworkGraph",
    "Technology",
    "TechnologyOption",
    "TechnologyCatalog",
    "SegmentFrontiers",
    "segment_frontiers",
    "fixed_options_power_w",
    "NetworkAssignment",
    "optimize_network",
    "NAMED_GRAPHS",
    "build_graph",
]

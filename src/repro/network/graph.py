"""Corridor-graph data model: corridors, segments, speed classes, demand.

A :class:`NetworkGraph` is a validated tree — corridors with unique names,
each an ordered tuple of :class:`NetworkSegment`\\ s — mirroring the
validation discipline of :class:`repro.corridor.multisegment.LinePlan`,
which it subsumes: :meth:`NetworkGraph.from_line_plan` lifts a line plan
into a single-corridor graph whose fixed-technology evaluation reproduces
the plan's energy totals exactly (see
:func:`repro.network.frontier.fixed_options_power_w`).

Demand is per segment: a :class:`DemandProfile` (trains/h, night quiet
hours, train length) that combines with the segment's :class:`SpeedClass`
into the :class:`repro.traffic.trains.TrafficParams` the duty-cycle energy
model consumes.  Profiles can be derived from :mod:`repro.traffic`
timetables (:meth:`DemandProfile.from_timetable`) or scaled for what-if
sweeps (:meth:`DemandProfile.scaled` — the study layer's ``demand_scale``
axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import constants
from repro.corridor.multisegment import LinePlan
from repro.errors import ConfigurationError, GeometryError
from repro.traffic.timetable import Timetable
from repro.traffic.trains import Train, TrafficParams

__all__ = ["SpeedClass", "SPEED_CLASSES", "DemandProfile", "NetworkSegment",
           "Corridor", "NetworkGraph"]


@dataclass(frozen=True)
class SpeedClass:
    """A line-speed category: the cruise speed trains run on such segments."""

    name: str
    train_speed_kmh: float

    def __post_init__(self) -> None:
        if self.train_speed_kmh <= 0:
            raise ConfigurationError(
                f"speed class {self.name!r}: speed must be positive, "
                f"got {self.train_speed_kmh}")


#: The shipped speed classes.  ``highspeed`` matches the paper's 200 km/h
#: scenario (Table III), so a highspeed segment with the default demand
#: profile reproduces the single-corridor energy numbers bit-identically.
SPEED_CLASSES: dict[str, SpeedClass] = {
    cls.name: cls for cls in (
        SpeedClass("station", 80.0),
        SpeedClass("regional", 160.0),
        SpeedClass("highspeed", constants.TRAIN_SPEED_KMH),
    )
}


@dataclass(frozen=True)
class DemandProfile:
    """Offered traffic demand on a segment (the Table III axes, per segment).

    Defaults reproduce the paper's scenario: 8 trains/h over 19 service
    hours, 400 m trains.  The cruise speed is *not* part of the profile —
    it comes from the segment's :class:`SpeedClass` — so one profile can be
    shared across heterogeneous segments of a corridor.
    """

    trains_per_hour: float = constants.TRAINS_PER_HOUR
    night_quiet_hours: float = constants.NIGHT_QUIET_HOURS
    train_length_m: float = constants.TRAIN_LENGTH_M

    def __post_init__(self) -> None:
        if self.trains_per_hour < 0:
            raise ConfigurationError(
                f"trains/h must be >= 0, got {self.trains_per_hour}")
        if not 0 <= self.night_quiet_hours <= 24:
            raise ConfigurationError(
                f"night quiet hours must be within [0, 24], "
                f"got {self.night_quiet_hours}")
        if self.train_length_m <= 0:
            raise ConfigurationError(
                f"train length must be positive, got {self.train_length_m}")

    @property
    def headway_s(self) -> float:
        """Mean time between trains during service hours (inf when idle)."""
        if self.trains_per_hour == 0:
            return float("inf")
        return 3600.0 / self.trains_per_hour

    def scaled(self, factor: float) -> "DemandProfile":
        """The same profile with ``trains_per_hour`` scaled by ``factor``."""
        if factor < 0:
            raise ConfigurationError(f"demand factor must be >= 0, got {factor}")
        return replace(self, trains_per_hour=self.trains_per_hour * factor)

    def traffic(self, speed_kmh: float = constants.TRAIN_SPEED_KMH) -> TrafficParams:
        """The :class:`TrafficParams` this demand implies at a cruise speed."""
        return TrafficParams(
            trains_per_hour=self.trains_per_hour,
            night_quiet_hours=self.night_quiet_hours,
            train=Train(length_m=self.train_length_m, speed_kmh=speed_kmh))

    @classmethod
    def from_timetable(cls, timetable: Timetable) -> "DemandProfile":
        """Derive a demand profile from a concrete timetable.

        The timetable's horizon is read as the daily service window (capped
        at 24 h); the run count over that window gives trains/h and the
        longest scheduled train sets the occupancy-relevant length.

        Args:
            timetable: A :class:`repro.traffic.timetable.Timetable` with at
                least one run.

        Returns:
            The equivalent average-rate :class:`DemandProfile`.

        Raises:
            ConfigurationError: For an empty timetable.
        """
        if not timetable.runs:
            raise ConfigurationError(
                "cannot derive a demand profile from an empty timetable")
        service_hours = min(24.0, timetable.horizon_s / 3600.0)
        return cls(
            trains_per_hour=len(timetable.runs) / service_hours,
            night_quiet_hours=24.0 - service_hours,
            train_length_m=max(run.train.length_m for run in timetable.runs))


@dataclass(frozen=True)
class NetworkSegment:
    """One homogeneous stretch of a corridor: length, speed class, demand."""

    name: str
    length_km: float
    speed_class: str = "highspeed"
    demand: DemandProfile = field(default_factory=DemandProfile)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a segment needs a non-empty name")
        if self.length_km <= 0:
            raise GeometryError(
                f"{self.name}: segment length must be positive, "
                f"got {self.length_km}")
        if self.speed_class not in SPEED_CLASSES:
            raise ConfigurationError(
                f"{self.name}: unknown speed class {self.speed_class!r}; "
                f"available: {sorted(SPEED_CLASSES)}")

    @property
    def train_speed_kmh(self) -> float:
        """Cruise speed implied by the segment's speed class."""
        return SPEED_CLASSES[self.speed_class].train_speed_kmh

    def traffic(self) -> TrafficParams:
        """The segment's demand at its class speed."""
        return self.demand.traffic(self.train_speed_kmh)


@dataclass(frozen=True)
class Corridor:
    """A named line: an ordered tuple of segments with unique names."""

    name: str
    segments: tuple[NetworkSegment, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a corridor needs a non-empty name")
        if not self.segments:
            raise ConfigurationError(
                f"corridor {self.name!r} needs at least one segment")
        names = [s.name for s in self.segments]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"corridor {self.name!r} has duplicate segment names")

    @property
    def length_km(self) -> float:
        """Total corridor length."""
        return sum(s.length_km for s in self.segments)


@dataclass(frozen=True)
class NetworkGraph:
    """A whole network: corridors with unique names.

    The flat segment order (:attr:`segments`) — corridors in declaration
    order, segments in corridor order — is the canonical axis every
    frontier/assignment array in :mod:`repro.network` is aligned with.
    """

    corridors: tuple[Corridor, ...]

    def __post_init__(self) -> None:
        if not self.corridors:
            raise ConfigurationError("a network needs at least one corridor")
        names = [c.name for c in self.corridors]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate corridor names: {names}")

    @property
    def segments(self) -> tuple[NetworkSegment, ...]:
        """Every segment, flattened in canonical (corridor, segment) order."""
        return tuple(s for c in self.corridors for s in c.segments)

    @property
    def segment_names(self) -> tuple[str, ...]:
        """Qualified ``corridor/segment`` names in canonical order."""
        return tuple(f"{c.name}/{s.name}"
                     for c in self.corridors for s in c.segments)

    @property
    def n_segments(self) -> int:
        """Total segment count across all corridors."""
        return sum(len(c.segments) for c in self.corridors)

    @property
    def length_km(self) -> float:
        """Total network track length."""
        return sum(c.length_km for c in self.corridors)

    @classmethod
    def from_line_plan(cls, plan: LinePlan, name: str = "line",
                       demand: DemandProfile | None = None,
                       speed_class: str = "highspeed") -> "NetworkGraph":
        """Lift a :class:`LinePlan` into a single-corridor graph.

        One network segment per line section, in section order.  With the
        default demand and speed class the fixed-technology evaluation
        (:func:`repro.network.frontier.fixed_options_power_w` over the
        sections' layouts and modes) reproduces
        :meth:`LinePlan.total_average_power_w` exactly — the line plan is
        the single-corridor special case of the network model.
        """
        demand = demand or DemandProfile()
        return cls(corridors=(Corridor(
            name=name,
            segments=tuple(
                NetworkSegment(name=s.name, length_km=s.length_km,
                               speed_class=speed_class, demand=demand)
                for s in plan.sections)),))

"""Network-level technology assignment under global budgets.

Given the per-segment frontiers of :func:`repro.network.frontier.segment_frontiers`,
:func:`optimize_network` picks one :class:`~repro.network.frontier.TechnologyOption`
per segment to minimize total cost subject to a global energy budget (or,
with only a cost budget, minimize energy subject to cost).  The segment
choices are independent given a price on the constrained resource, so the
dual is one-dimensional and the solver is a Lagrangian bisection over the
``[segment, option]`` arrays — pure numpy argmin passes, never a
per-segment Python loop.

Determinism: ties in the penalized score break toward the lower constrained
total and then the lowest option index, so the assignment is a pure
function of the frontier arrays — the property ``run_study`` relies on for
shard-layout-independent results.

Infeasibility: budgets below the minimum achievable raise
:class:`repro.errors.InfeasibleError` — but only *after* the full frontier
scan, so the error carries the true minima (``min_energy_w`` /
``min_cost_eur``) and the number of cells scanned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, InfeasibleError
from repro.network.frontier import (
    SegmentFrontiers,
    Technology,
    TechnologyCatalog,
    segment_frontiers,
)
from repro.network.graph import NetworkGraph
from repro.reporting.tables import format_table

__all__ = ["NetworkAssignment", "optimize_network"]

_BISECTION_ITERATIONS = 64
_LAMBDA_GROWTH_LIMIT = 200


@dataclass(frozen=True)
class NetworkAssignment:
    """The optimizer's output: one option per segment plus network totals.

    Attributes
    ----------
    frontiers:
        The frontier arrays the assignment was selected from.
    option_index:
        Chosen option column per segment (canonical graph order).
    lambda_star:
        The dual price on the constrained resource at the returned
        assignment (0 when the budget is slack).
    total_energy_w / total_cost_eur:
        Network totals of the assignment.
    energy_budget_w / cost_budget_eur:
        The budgets the assignment satisfies (``None`` = unconstrained).
    """

    frontiers: SegmentFrontiers
    option_index: np.ndarray
    lambda_star: float
    total_energy_w: float
    total_cost_eur: float
    energy_budget_w: float | None
    cost_budget_eur: float | None

    @property
    def graph(self) -> NetworkGraph:
        """The optimized network."""
        return self.frontiers.graph

    @property
    def options(self):
        """Option column order of :attr:`option_index`."""
        return self.frontiers.options

    @property
    def segment_energy_w(self) -> np.ndarray:
        """Per-segment average power of the chosen options [W]."""
        rows = np.arange(self.option_index.size)
        return self.frontiers.energy_w[rows, self.option_index]

    @property
    def segment_cost_eur(self) -> np.ndarray:
        """Per-segment horizon cost of the chosen options [EUR]."""
        rows = np.arange(self.option_index.size)
        return self.frontiers.cost_eur[rows, self.option_index]

    @property
    def sleeping(self) -> np.ndarray:
        """Per-segment sleep mask (the demand-aware eligibility rule)."""
        return self.frontiers.eligible.copy()

    @property
    def n_sleeping(self) -> int:
        """How many segments run a sleep (or solar) policy."""
        return int(np.count_nonzero(self.frontiers.eligible))

    def technology_counts(self) -> dict[str, int]:
        """Segments per technology family, plus the ``solar`` sub-count."""
        counts = {tech.value: 0 for tech in Technology}
        counts["solar"] = 0
        for k, option in enumerate(self.options):
            n = int(np.count_nonzero(self.option_index == k))
            counts[option.technology.value] += n
            if option.solar:
                counts["solar"] += n
        return counts

    def rows(self) -> list[tuple[str, str, float, float, bool]]:
        """Per-segment assignment rows: name, option, W, EUR, sleeping."""
        names = self.graph.segment_names
        energy = self.segment_energy_w
        cost = self.segment_cost_eur
        return [
            (names[i], self.options[self.option_index[i]].label,
             float(energy[i]), float(cost[i]),
             bool(self.frontiers.eligible[i]))
            for i in range(self.option_index.size)
        ]

    def table(self, limit: int = 20) -> str:
        """Render the assignment summary plus the first ``limit`` segments."""
        counts = self.technology_counts()
        summary = [
            ("segments", f"{self.option_index.size}"),
            ("total energy [kW]", f"{self.total_energy_w / 1e3:.3f}"),
            ("total cost [MEUR]", f"{self.total_cost_eur / 1e6:.3f}"),
            ("lambda*", f"{self.lambda_star:.6g}"),
            ("sleeping segments", f"{self.n_sleeping}"),
        ] + [(f"n {name}", f"{count}") for name, count in counts.items()]
        out = format_table(("quantity", "value"), summary,
                           title="network assignment")
        shown = self.rows()[:limit]
        body = [(name, label, f"{w:.2f}", f"{eur:,.0f}",
                 "yes" if asleep else "no")
                for name, label, w, eur, asleep in shown]
        out += "\n" + format_table(
            ("segment", "option", "avg W", "cost EUR", "sleep"), body,
            title=f"first {len(shown)} of {self.option_index.size} segments")
        return out


def _select(frontiers: SegmentFrontiers, objective: np.ndarray,
            constrained: np.ndarray, lam: float) -> np.ndarray:
    """Per-segment argmin of ``objective + lam * constrained``.

    Infeasible cells are masked with ``inf`` *before* the price is applied
    (``0 * inf`` would poison the score with NaN at ``lam == 0``).  Ties
    break toward the lower constrained total, then the lowest option index.
    """
    feasible = frontiers.feasible
    score = np.where(feasible, objective + lam * constrained, np.inf)
    best = score.min(axis=1, keepdims=True)
    tied = score == best
    # Among score-ties, prefer the smallest constrained value...
    tie_metric = np.where(tied, np.where(feasible, constrained, np.inf),
                          np.inf)
    best_metric = tie_metric.min(axis=1, keepdims=True)
    # ...and among those, the lowest option index (argmax of the mask).
    return np.argmax(tie_metric == best_metric, axis=1)


def _totals(frontiers: SegmentFrontiers, choice: np.ndarray,
            values: np.ndarray) -> float:
    rows = np.arange(choice.size)
    return float(values[rows, choice].sum())


def _solve_budget(frontiers: SegmentFrontiers, objective: np.ndarray,
                  constrained: np.ndarray, budget: float,
                  budget_name: str) -> tuple[np.ndarray, float]:
    """Min total objective s.t. total constrained <= budget (Lagrangian)."""
    # Unpriced solution: if it already fits, the budget is slack.
    choice = _select(frontiers, objective, constrained, 0.0)
    if _totals(frontiers, choice, constrained) <= budget:
        return choice, 0.0

    # Full-scan minima: definitive infeasibility check before any pricing.
    masked = np.where(frontiers.feasible, constrained, np.inf)
    min_constrained = float(masked.min(axis=1).sum())
    if min_constrained > budget:
        raise InfeasibleError(
            f"{budget_name} budget {budget:g} is below the minimum "
            f"achievable {min_constrained:g} "
            f"(after scanning {frontiers.scanned_options} "
            f"segment-option cells)",
            budget=budget, minimum=min_constrained,
            scanned_options=frontiers.scanned_options)

    # Bracket the price: grow hi until its selection fits the budget.
    hi = 1.0
    for _ in range(_LAMBDA_GROWTH_LIMIT):
        choice = _select(frontiers, objective, constrained, hi)
        if _totals(frontiers, choice, constrained) <= budget:
            break
        hi *= 2.0
    else:  # pragma: no cover - min_constrained check makes this unreachable
        raise InfeasibleError(
            f"{budget_name} budget {budget:g} not reachable by pricing",
            budget=budget, minimum=min_constrained,
            scanned_options=frontiers.scanned_options)

    lo = 0.0
    for _ in range(_BISECTION_ITERATIONS):
        mid = 0.5 * (lo + hi)
        choice = _select(frontiers, objective, constrained, mid)
        if _totals(frontiers, choice, constrained) <= budget:
            hi = mid
        else:
            lo = mid
    return _select(frontiers, objective, constrained, hi), hi


def optimize_network(graph: NetworkGraph | None = None,
                     catalog: TechnologyCatalog | None = None,
                     *,
                     frontiers: SegmentFrontiers | None = None,
                     energy_budget_w: float | None = None,
                     cost_budget_eur: float | None = None,
                     **frontier_kwargs) -> NetworkAssignment:
    """Assign one technology option per segment under global budgets.

    With an energy budget the solver minimizes total cost subject to total
    average power <= ``energy_budget_w``; with only a cost budget the roles
    swap (minimize energy subject to cost); with neither it returns the
    plain cheapest feasible option per segment.  When both budgets are
    given, the energy-constrained solution is computed first and its cost
    checked against ``cost_budget_eur``.

    Args:
        graph: The network to optimize (ignored when ``frontiers`` given).
        catalog: Candidate options/policy (default catalog).
        frontiers: Precomputed :class:`SegmentFrontiers` — skip
            recomputation when sweeping budgets over one graph.
        energy_budget_w: Max total average power [W] (``None`` = no limit).
        cost_budget_eur: Max total horizon cost [EUR] (``None`` = no
            limit).
        **frontier_kwargs: Forwarded to
            :func:`repro.network.frontier.segment_frontiers` (``link``,
            ``resolution_m``, ``horizon_years``, ``engine``, ...).

    Returns:
        The :class:`NetworkAssignment`.

    Raises:
        InfeasibleError: When a budget is below the minimum achievable or
            some segment has no feasible option — in either case only
            after the full frontier scan, with the true minima attached.
        ConfigurationError: When neither a graph nor frontiers are given.
    """
    if frontiers is None:
        if graph is None:
            raise ConfigurationError(
                "optimize_network needs a graph or precomputed frontiers")
        frontiers = segment_frontiers(graph, catalog, **frontier_kwargs)
    elif frontier_kwargs:
        raise ConfigurationError(
            f"frontier kwargs {sorted(frontier_kwargs)} have no effect "
            f"when precomputed frontiers are supplied")

    stranded = ~frontiers.feasible.any(axis=1)
    if stranded.any():
        names = [frontiers.graph.segment_names[i]
                 for i in np.flatnonzero(stranded)[:5]]
        raise InfeasibleError(
            f"{int(stranded.sum())} segment(s) have no feasible technology "
            f"option (first: {names}; scanned "
            f"{frontiers.scanned_options} cells)",
            segments=int(stranded.sum()),
            scanned_options=frontiers.scanned_options)

    cost = frontiers.cost_eur
    energy = frontiers.energy_w
    if energy_budget_w is not None:
        choice, lam = _solve_budget(frontiers, cost, energy,
                                    float(energy_budget_w), "energy")
    elif cost_budget_eur is not None:
        choice, lam = _solve_budget(frontiers, energy, cost,
                                    float(cost_budget_eur), "cost")
    else:
        choice, lam = _select(frontiers, cost, energy, 0.0), 0.0

    total_cost = _totals(frontiers, choice, cost)
    total_energy = _totals(frontiers, choice, energy)
    if (energy_budget_w is not None and cost_budget_eur is not None
            and total_cost > float(cost_budget_eur)):
        masked = np.where(frontiers.feasible, cost, np.inf)
        raise InfeasibleError(
            f"cost budget {float(cost_budget_eur):g} EUR cannot be met "
            f"together with energy budget {float(energy_budget_w):g} W "
            f"(energy-feasible minimum cost {total_cost:g}; scanned "
            f"{frontiers.scanned_options} cells)",
            budget=float(cost_budget_eur), minimum=total_cost,
            unconstrained_minimum=float(masked.min(axis=1).sum()),
            scanned_options=frontiers.scanned_options)

    return NetworkAssignment(
        frontiers=frontiers, option_index=choice, lambda_star=lam,
        total_energy_w=total_energy, total_cost_eur=total_cost,
        energy_budget_w=(None if energy_budget_w is None
                         else float(energy_budget_w)),
        cost_budget_eur=(None if cost_budget_eur is None
                         else float(cost_budget_eur)))

"""Deterministic named network graphs for studies and benchmarks.

The builders are pure index arithmetic — no RNG — so the same
``(name, n_segments, demand_scale)`` triple always yields the identical
graph, which keeps study cases CRN-safe and shard-layout independent
without shipping multi-megabyte topology files.  ``national`` at its
default 10 000 segments is the workload the ``network`` study engine and
``benchmarks/bench_network.py`` exercise.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.network.graph import Corridor, DemandProfile, NetworkGraph, NetworkSegment

__all__ = ["NAMED_GRAPHS", "build_graph"]

#: Named graph builders with their default segment counts.
NAMED_GRAPHS: dict[str, int] = {"demo": 48, "national": 10_000}

# Per-corridor demand tiers: (trains/h, night quiet hours).  Tier 0 is a
# quiet branch line, tier 3 a dense mainline whose 300 s headway rule
# flips under a 2x demand scale — the contrast the optimizer's sleep
# policy and the monotonicity properties exercise.
_DEMAND_TIERS = ((2.0, 7.0), (4.0, 6.0), (8.0, 5.0), (12.0, 4.0))


def _segment(corridor_index: int, segment_index: int,
             demand: DemandProfile) -> NetworkSegment:
    """One deterministic segment: class and length from index arithmetic."""
    c, i = corridor_index, segment_index
    if i % 16 == 0:
        return NetworkSegment(name=f"s{i:04d}", length_km=1.0,
                              speed_class="station", demand=demand)
    if (c + i) % 3 == 0:
        length = 1.5 + 0.1 * ((3 * i + c) % 12)
        return NetworkSegment(name=f"s{i:04d}", length_km=length,
                              speed_class="regional", demand=demand)
    length = 2.0 + 0.1 * ((5 * i + 2 * c) % 15)
    return NetworkSegment(name=f"s{i:04d}", length_km=length,
                          speed_class="highspeed", demand=demand)


def build_graph(name: str, n_segments: int | None = None,
                demand_scale: float = 1.0) -> NetworkGraph:
    """Build a named deterministic graph.

    Args:
        name: ``"demo"`` (4 corridors, 48 segments) or ``"national"``
            (~25 corridors, 10 000 segments).
        n_segments: Total segment count; ``None`` (or 0) uses the named
            default.  Segments are distributed round-robin-ish across
            ``max(1, n_segments // 400)`` corridors (``demo``: 4).
        demand_scale: Multiplier applied to every corridor's trains/h —
            the study layer's demand axis.

    Returns:
        The validated :class:`NetworkGraph`.

    Raises:
        ConfigurationError: For an unknown name or non-positive size.
    """
    if name not in NAMED_GRAPHS:
        raise ConfigurationError(
            f"unknown graph {name!r}; available: {sorted(NAMED_GRAPHS)}")
    total = NAMED_GRAPHS[name] if not n_segments else int(n_segments)
    if total <= 0:
        raise ConfigurationError(
            f"segment count must be positive, got {total}")
    n_corridors = 4 if name == "demo" else max(1, total // 400)
    base, extra = divmod(total, n_corridors)
    if base == 0:
        n_corridors, base, extra = total, 1, 0

    corridors = []
    for c in range(n_corridors):
        tph, quiet = _DEMAND_TIERS[c % len(_DEMAND_TIERS)]
        demand = DemandProfile(trains_per_hour=tph,
                               night_quiet_hours=quiet).scaled(demand_scale)
        count = base + (1 if c < extra else 0)
        corridors.append(Corridor(
            name=f"c{c:02d}",
            segments=tuple(_segment(c, i, demand) for i in range(count))))
    return NetworkGraph(corridors=tuple(corridors))

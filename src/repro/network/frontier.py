"""Per-segment technology frontiers, computed batched or per segment.

For every network segment and every candidate :class:`TechnologyOption` the
frontier holds three numbers — average energy [W], total cost over the
planning horizon [EUR], and feasibility — from which the optimizer
(:mod:`repro.network.optimize`) assigns technologies under global budgets.

Two engines produce bit-identical arrays:

* ``engine="batched"`` (default) — one pass through
  :func:`repro.radio.batch.evaluate_scenarios` over the *unique* candidate
  layouts, one :func:`repro.energy.scenario.segment_energy` call per unique
  (option, speed class, demand) combination, then numpy broadcasts over the
  ``[segment, option]`` grid.  No per-segment Python loop.
* ``engine="scalar"`` — the honest reference: a Python loop over segments
  that recomputes every quantity per segment through the scalar entry
  points (:func:`repro.radio.link.compute_snr_profile`,
  :func:`segment_energy`).

Both engines share the same elementwise cost/energy formulas (they operate
on floats and arrays alike), so parity is bit-exact by construction and is
pinned in ``tests/test_engine_parity.py``.

The sleep policy is demand-aware and option-independent (the topology-
control rule of Pollakis et al., arXiv 1503.08627): a segment may sleep iff
its mean headway is at least :attr:`TechnologyCatalog.min_sleep_headway_s`.
Eligible segments run every option in SLEEP (or SOLAR) mode; ineligible
segments run CONTINUOUS and their solar variants are infeasible.  Adding
demand only shrinks the eligible set — the monotonicity the property suite
asserts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.baselines.onboard_relay import OnboardRelayFleet
from repro.corridor.layout import CorridorLayout
from repro.economics.costmodel import CostAssumptions
from repro.energy.duty import EnergyParams
from repro.energy.scenario import OperatingMode, segment_energy
from repro.errors import ConfigurationError
from repro.network.graph import SPEED_CLASSES, DemandProfile, NetworkGraph
from repro.radio.link import LinkParams
from repro.units import kmh_to_ms

__all__ = ["Technology", "TechnologyOption", "TechnologyCatalog",
           "SegmentFrontiers", "segment_frontiers", "fixed_options_power_w"]

_DAY_S = 86_400.0
_HOURS_PER_YEAR_OVER_KWH = 24.0 * 365.0 / 1000.0


class Technology(enum.Enum):
    """The three per-segment deployment technologies the optimizer assigns.

    ``CONVENTIONAL``
        The dense HP-only macro grid (500 m ISD baseline).
    ``REPEATER``
        The paper's repeater-extended segments (out-of-band LP chain).
    ``MOBILE_RELAY``
        The mmWave onboard-relay alternative (arXiv 2210.09873): a sparse
        trackside grid plus active relays riding the trains
        (:class:`repro.baselines.onboard_relay.OnboardRelayFleet`).
    """

    CONVENTIONAL = "conventional"
    REPEATER = "repeater"
    MOBILE_RELAY = "mobile_relay"


@dataclass(frozen=True)
class TechnologyOption:
    """One concrete candidate: a technology, its layout, and powering.

    ``solar=True`` marks the off-grid variant (repeaters sleep *and* draw
    from PV instead of mains); it only exists for sleep-eligible segments.
    """

    technology: Technology
    layout: CorridorLayout
    solar: bool = False

    @property
    def label(self) -> str:
        """Short human-readable id, e.g. ``repeater@2400xN8+solar``."""
        tag = f"{self.technology.value}@{self.layout.isd_m:g}"
        if self.layout.n_repeaters:
            tag += f"xN{self.layout.n_repeaters}"
        if self.solar:
            tag += "+solar"
        return tag

    def mode(self, eligible: bool) -> OperatingMode:
        """Operating mode given the segment's sleep eligibility."""
        if self.solar:
            return OperatingMode.SOLAR
        return OperatingMode.SLEEP if eligible else OperatingMode.CONTINUOUS


@dataclass(frozen=True)
class TechnologyCatalog:
    """The candidate options and policy knobs of one optimization run.

    Attributes
    ----------
    technologies:
        Which technology families to include (subset of the
        :class:`Technology` values; the study layer encodes this as a
        comma-separated string).
    repeater_configs:
        Candidate ``(isd_m, n_repeaters)`` pairs for the repeater chain —
        defaults are registered paper maxima, so they pass the 29 dB
        criterion.
    conventional_isd_m:
        ISD of the conventional option (paper baseline 500 m).
    relay_isd_m:
        Trackside ISD of the mobile-relay option.  The onboard relay closes
        the link through the train body, so this sparse grid is exempt from
        the trackside min-SNR criterion.
    relay_fleet:
        Onboard relay energy model (650 W relays + cooling).
    include_solar:
        Also offer the off-grid SOLAR variant of each repeater config.
    min_sleep_headway_s:
        Demand-aware sleep rule: a segment may sleep iff its mean headway
        is at least this long.
    """

    technologies: tuple[str, ...] = ("conventional", "repeater",
                                     "mobile_relay")
    repeater_configs: tuple[tuple[float, int], ...] = (
        (1250.0, 1), (1800.0, 4), (2400.0, 8), (2650.0, 10))
    conventional_isd_m: float = constants.CONVENTIONAL_ISD_M
    relay_isd_m: float = 2650.0
    relay_fleet: OnboardRelayFleet = field(default_factory=OnboardRelayFleet)
    include_solar: bool = True
    min_sleep_headway_s: float = 300.0

    def __post_init__(self) -> None:
        known = {tech.value for tech in Technology}
        unknown = [name for name in self.technologies if name not in known]
        if unknown or not self.technologies:
            raise ConfigurationError(
                f"unknown technologies {unknown}; available: {sorted(known)}")
        if len(set(self.technologies)) != len(self.technologies):
            raise ConfigurationError(
                f"duplicate technologies: {self.technologies}")
        if not self.repeater_configs and "repeater" in self.technologies:
            raise ConfigurationError("repeater technology needs >= 1 config")
        if self.min_sleep_headway_s < 0:
            raise ConfigurationError(
                f"min sleep headway must be >= 0, "
                f"got {self.min_sleep_headway_s}")

    @classmethod
    def from_names(cls, technologies: str, **kwargs) -> "TechnologyCatalog":
        """Build a catalog from a comma-separated technology list.

        Args:
            technologies: e.g. ``"conventional,repeater,mobile_relay"`` —
                the scalar encoding the study layer's ``technologies``
                parameter uses.
            **kwargs: Forwarded to the :class:`TechnologyCatalog`
                constructor.
        """
        names = tuple(name.strip() for name in technologies.split(",")
                      if name.strip())
        return cls(technologies=names, **kwargs)

    def options(self) -> tuple[TechnologyOption, ...]:
        """The realized option list, in deterministic catalog order."""
        out: list[TechnologyOption] = []
        if "conventional" in self.technologies:
            out.append(TechnologyOption(
                Technology.CONVENTIONAL,
                CorridorLayout.conventional(self.conventional_isd_m)))
        if "repeater" in self.technologies:
            for isd_m, n in self.repeater_configs:
                layout = CorridorLayout.with_uniform_repeaters(isd_m, n)
                out.append(TechnologyOption(Technology.REPEATER, layout))
                if self.include_solar:
                    out.append(TechnologyOption(Technology.REPEATER, layout,
                                                solar=True))
        if "mobile_relay" in self.technologies:
            out.append(TechnologyOption(
                Technology.MOBILE_RELAY,
                CorridorLayout.conventional(self.relay_isd_m)))
        return tuple(out)

    def sleep_eligible(self, demand: DemandProfile) -> bool:
        """The demand-aware sleep rule for one segment's demand."""
        return demand.headway_s >= self.min_sleep_headway_s


@dataclass(frozen=True)
class SegmentFrontiers:
    """The full ``[segment, option]`` frontier arrays of one graph.

    Attributes
    ----------
    graph / catalog:
        The inputs the arrays were computed from.
    options:
        Column order of the arrays (deterministic catalog order).
    energy_w:
        Average power per (segment, option) [W] — trackside mains plus,
        for the mobile relay, the onboard fleet share.
    cost_eur:
        Total cost per (segment, option) over ``horizon_years`` [EUR].
    feasible:
        Whether the option is available on the segment (radio criterion,
        schedulability of the demand, solar-needs-sleep).
    eligible:
        Per-segment sleep eligibility (option-independent demand rule).
    horizon_years / threshold_db:
        Cost horizon and the radio feasibility criterion used.
    """

    graph: NetworkGraph
    catalog: TechnologyCatalog
    options: tuple[TechnologyOption, ...]
    energy_w: np.ndarray
    cost_eur: np.ndarray
    feasible: np.ndarray
    eligible: np.ndarray
    horizon_years: float
    threshold_db: float

    @property
    def n_segments(self) -> int:
        """Row count (canonical graph segment order)."""
        return self.energy_w.shape[0]

    @property
    def scanned_options(self) -> int:
        """Total (segment, option) cells evaluated — the full-scan size."""
        return int(self.energy_w.size)

    def min_energy_w(self) -> float:
        """Lowest achievable network energy (min feasible option per row)."""
        energy = np.where(self.feasible, self.energy_w, np.inf)
        return float(energy.min(axis=1).sum())


def _segment_cost(length_km, n_seg, n_service, n_donor, energy_w,
                  relay_trains, option: TechnologyOption,
                  assumptions: CostAssumptions, horizon_years: float):
    """Elementwise cost formula shared by both engines (floats or arrays)."""
    capex = (n_seg * assumptions.hp_site_capex
             + n_service * assumptions.repeater_capex
             + n_donor * assumptions.donor_capex
             + length_km * assumptions.fiber_capex_per_km)
    if option.solar:
        capex = capex + (n_service + n_donor) * assumptions.pv_system_capex
    if option.technology is Technology.MOBILE_RELAY:
        capex = capex + (relay_trains * option_relay_units(option)
                         * assumptions.onboard_relay_capex)
    energy_opex = (energy_w * _HOURS_PER_YEAR_OVER_KWH
                   * assumptions.energy_price_per_kwh * horizon_years)
    maintenance = (n_seg * assumptions.hp_maintenance_per_year
                   + (n_service + n_donor)
                   * assumptions.lp_maintenance_per_year) * horizon_years
    return capex + energy_opex + maintenance


def option_relay_units(option: TechnologyOption,
                       fleet: OnboardRelayFleet | None = None) -> float:
    """Relay units per attributed train for a mobile-relay option (else 0)."""
    if option.technology is not Technology.MOBILE_RELAY:
        return 0.0
    fleet = fleet or OnboardRelayFleet()
    return float(fleet.relays_per_train)


@dataclass(frozen=True)
class _ProfileQuantities:
    """Per-(speed class, demand, option) scalars both engines derive."""

    w_per_km: float
    feasible: bool
    trains_per_day: float
    speed_ms: float
    train_length_m: float


def _profile_quantities(option: TechnologyOption, speed_class: str,
                        demand: DemandProfile, eligible: bool,
                        min_snr_db: float, threshold_db: float
                        ) -> _ProfileQuantities:
    """Evaluate one unique (option, speed class, demand) combination.

    The scalar engine calls this once per segment (recomputing); the batched
    engine calls it once per unique combination and broadcasts — both see
    the identical floats.
    """
    speed_kmh = SPEED_CLASSES[speed_class].train_speed_kmh
    traffic = demand.traffic(speed_kmh)
    quantities = _ProfileQuantities(
        w_per_km=float("nan"), feasible=False,
        trains_per_day=traffic.trains_per_day,
        speed_ms=kmh_to_ms(speed_kmh), train_length_m=demand.train_length_m)
    if option.solar and not eligible:
        return quantities  # solar implies sleep; not available here
    if (option.technology is not Technology.MOBILE_RELAY
            and min_snr_db < threshold_db):
        return quantities  # trackside link budget does not close
    try:
        energy = segment_energy(option.layout, option.mode(eligible),
                                EnergyParams(traffic=traffic))
    except ConfigurationError:
        # Train passages would overlap inside the option's coverage section:
        # the demand cannot be scheduled on this sparse a grid.
        return quantities
    return _ProfileQuantities(
        w_per_km=energy.w_per_km, feasible=True,
        trains_per_day=quantities.trains_per_day,
        speed_ms=quantities.speed_ms,
        train_length_m=quantities.train_length_m)


def _min_snr_scalar(option: TechnologyOption, link: LinkParams,
                    resolution_m: float) -> float:
    """Trackside min SNR via the scalar entry point (relay is exempt)."""
    if option.technology is Technology.MOBILE_RELAY:
        return float("inf")
    from repro.radio.link import compute_snr_profile

    profile = compute_snr_profile(option.layout, link,
                                  resolution_m=resolution_m)
    return float(profile.min_snr_db)


def _min_snr_batched(options, link, resolution_m, cache, jobs) -> list[float]:
    """One batched Eq. (2) pass over the unique non-relay layouts."""
    from repro.radio.batch import evaluate_scenarios
    from repro.scenario.spec import Scenario

    unique: dict[tuple, int] = {}
    scenarios = []
    for option in options:
        if option.technology is Technology.MOBILE_RELAY:
            continue
        key = (option.layout.isd_m, option.layout.repeater_positions_m)
        if key not in unique:
            unique[key] = len(scenarios)
            scenarios.append(Scenario(layout=option.layout, link=link,
                                      resolution_m=resolution_m))
    profiles = evaluate_scenarios(scenarios, cache=cache, jobs=jobs)
    out = []
    for option in options:
        if option.technology is Technology.MOBILE_RELAY:
            out.append(float("inf"))
        else:
            key = (option.layout.isd_m, option.layout.repeater_positions_m)
            out.append(float(profiles[unique[key]].min_snr_db))
    return out


def segment_frontiers(graph: NetworkGraph,
                      catalog: TechnologyCatalog | None = None,
                      assumptions: CostAssumptions | None = None,
                      link: LinkParams | None = None,
                      resolution_m: float = 25.0,
                      horizon_years: float = 10.0,
                      threshold_db: float = constants.PEAK_SNR_CRITERION_DB,
                      cache=None,
                      jobs: int | None = None,
                      engine: str = "batched") -> SegmentFrontiers:
    """Compute the per-segment technology frontier of a whole graph.

    Args:
        graph: The network (canonical segment order = array row order).
        catalog: Candidate options and policy knobs (default catalog).
        assumptions: Unit costs (:class:`CostAssumptions` defaults).
        link: Radio link budget for the trackside feasibility criterion.
        resolution_m: Track grid of the Eq. (2) evaluation.
        horizon_years: Cost horizon [years].
        threshold_db: Min-SNR feasibility criterion [dB].
        cache: Optional :class:`repro.scenario.cache.ProfileCache`.
        jobs: Thread sharding of the batched Eq. (2) pass.
        engine: ``"batched"`` (default) or the ``"scalar"`` per-segment
            reference — bit-identical outputs.

    Returns:
        The :class:`SegmentFrontiers` arrays.

    Raises:
        ConfigurationError: For an unknown engine or invalid horizon.
    """
    if horizon_years <= 0:
        raise ConfigurationError(
            f"horizon must be positive, got {horizon_years}")
    catalog = catalog or TechnologyCatalog()
    assumptions = assumptions or CostAssumptions()
    link = link or LinkParams()
    options = catalog.options()
    if engine == "batched":
        return _frontiers_batched(graph, catalog, options, assumptions, link,
                                  resolution_m, horizon_years, threshold_db,
                                  cache, jobs)
    if engine == "scalar":
        return _frontiers_scalar(graph, catalog, options, assumptions, link,
                                 resolution_m, horizon_years, threshold_db)
    raise ConfigurationError(
        f"unknown frontier engine {engine!r}; available: batched, scalar")


def _frontiers_batched(graph, catalog, options, assumptions, link,
                       resolution_m, horizon_years, threshold_db,
                       cache, jobs) -> SegmentFrontiers:
    segments = graph.segments
    n_seg = len(segments)
    n_opt = len(options)
    lengths = np.array([s.length_km for s in segments], dtype=np.float64)
    lengths_m = lengths * 1000.0

    # One batched Eq. (2) pass over the unique candidate layouts.
    min_snrs = _min_snr_batched(options, link, resolution_m, cache, jobs)

    # Unique (speed class, demand) profiles and the row -> profile map.
    profile_keys: dict[tuple, int] = {}
    profile_of = np.empty(n_seg, dtype=np.intp)
    profiles: list[tuple[str, DemandProfile]] = []
    for i, seg in enumerate(segments):
        key = (seg.speed_class, seg.demand)
        index = profile_keys.get(key)
        if index is None:
            index = profile_keys[key] = len(profiles)
            profiles.append((seg.speed_class, seg.demand))
        profile_of[i] = index

    eligible_p = np.array([catalog.sleep_eligible(d) for _, d in profiles],
                          dtype=bool)
    eligible = eligible_p[profile_of]

    energy_w = np.empty((n_seg, n_opt), dtype=np.float64)
    cost_eur = np.empty((n_seg, n_opt), dtype=np.float64)
    feasible = np.empty((n_seg, n_opt), dtype=bool)

    for k, option in enumerate(options):
        # One scalar evaluation per unique profile, broadcast by index.
        per_profile = [
            _profile_quantities(option, cls, demand, bool(eligible_p[p]),
                                min_snrs[k], threshold_db)
            for p, (cls, demand) in enumerate(profiles)]
        wpkm = np.array([q.w_per_km for q in per_profile])[profile_of]
        ok = np.array([q.feasible for q in per_profile])[profile_of]
        tpd = np.array([q.trains_per_day for q in per_profile])[profile_of]
        speed = np.array([q.speed_ms for q in per_profile])[profile_of]
        train_m = np.array([q.train_length_m
                            for q in per_profile])[profile_of]

        energy = wpkm * lengths
        relay_trains = np.zeros(n_seg, dtype=np.float64)
        if option.technology is Technology.MOBILE_RELAY:
            occupancy_s = (lengths_m + train_m) / speed
            relay_trains = tpd * occupancy_s / _DAY_S
            energy = energy + (relay_trains
                               * catalog.relay_fleet.active_power_per_train_w)

        segs_per_row = np.ceil(lengths_m / option.layout.isd_m)
        n_service = segs_per_row * option.layout.n_repeaters
        n_donor = segs_per_row * option.layout.n_donor_nodes
        cost = _segment_cost(lengths, segs_per_row, n_service, n_donor,
                             energy, relay_trains, option, assumptions,
                             horizon_years)
        energy_w[:, k] = np.where(ok, energy, np.nan)
        cost_eur[:, k] = np.where(ok, cost, np.nan)
        feasible[:, k] = ok

    return SegmentFrontiers(graph=graph, catalog=catalog, options=options,
                            energy_w=energy_w, cost_eur=cost_eur,
                            feasible=feasible, eligible=eligible,
                            horizon_years=horizon_years,
                            threshold_db=threshold_db)


def _frontiers_scalar(graph, catalog, options, assumptions, link,
                      resolution_m, horizon_years, threshold_db
                      ) -> SegmentFrontiers:
    segments = graph.segments
    n_opt = len(options)
    energy_w = np.empty((len(segments), n_opt), dtype=np.float64)
    cost_eur = np.empty((len(segments), n_opt), dtype=np.float64)
    feasible = np.empty((len(segments), n_opt), dtype=bool)
    eligible = np.empty(len(segments), dtype=bool)

    for i, seg in enumerate(segments):
        length_km = float(seg.length_km)
        length_m = length_km * 1000.0
        seg_eligible = catalog.sleep_eligible(seg.demand)
        eligible[i] = seg_eligible
        for k, option in enumerate(options):
            min_snr = _min_snr_scalar(option, link, resolution_m)
            q = _profile_quantities(option, seg.speed_class, seg.demand,
                                    seg_eligible, min_snr, threshold_db)
            if not q.feasible:
                energy_w[i, k] = float("nan")
                cost_eur[i, k] = float("nan")
                feasible[i, k] = False
                continue
            energy = q.w_per_km * length_km
            relay_trains = 0.0
            if option.technology is Technology.MOBILE_RELAY:
                occupancy_s = (length_m + q.train_length_m) / q.speed_ms
                relay_trains = q.trains_per_day * occupancy_s / _DAY_S
                energy = energy + (relay_trains
                                   * catalog.relay_fleet
                                   .active_power_per_train_w)
            segs_per_row = float(math.ceil(length_m / option.layout.isd_m))
            n_service = segs_per_row * option.layout.n_repeaters
            n_donor = segs_per_row * option.layout.n_donor_nodes
            energy_w[i, k] = energy
            cost_eur[i, k] = _segment_cost(length_km, segs_per_row,
                                           n_service, n_donor, energy,
                                           relay_trains, option, assumptions,
                                           horizon_years)
            feasible[i, k] = True

    return SegmentFrontiers(graph=graph, catalog=catalog, options=options,
                            energy_w=energy_w, cost_eur=cost_eur,
                            feasible=feasible, eligible=eligible,
                            horizon_years=horizon_years,
                            threshold_db=threshold_db)


def fixed_options_power_w(graph: NetworkGraph,
                          layouts: tuple[CorridorLayout, ...],
                          modes: tuple[OperatingMode, ...]) -> float:
    """Total average power of a *fixed* per-segment deployment [W].

    Evaluates ``segment_energy(layout, mode).w_per_km * length_km`` per
    segment with each segment's own demand/speed traffic — the exact sum
    :meth:`repro.corridor.multisegment.LinePlan.total_average_power_w`
    computes, so a graph lifted via :meth:`NetworkGraph.from_line_plan`
    reproduces the line plan's totals bit-identically.

    Args:
        graph: The network.
        layouts: One layout per segment, canonical order.
        modes: One operating mode per segment, canonical order.

    Returns:
        The summed average power [W].

    Raises:
        ConfigurationError: When the layout/mode counts do not match the
            graph's segment count.
    """
    segments = graph.segments
    if len(layouts) != len(segments) or len(modes) != len(segments):
        raise ConfigurationError(
            f"need one layout and mode per segment: "
            f"{len(layouts)}/{len(modes)} for {len(segments)} segments")
    total = 0.0
    for seg, layout, mode in zip(segments, layouts, modes):
        params = EnergyParams(traffic=seg.traffic())
        total += segment_energy(layout, mode, params).w_per_km * seg.length_km
    return total

"""Scenario layer: frozen evaluation specs, sweep grids, and profile caching.

* :mod:`repro.scenario.spec` — :class:`Scenario`, one fully specified Eq. (2)
  evaluation with a stable content hash.
* :mod:`repro.scenario.grid` — :class:`ScenarioGrid`, declarative sweep axes
  (ISD x N x link perturbations) expanded into scenario batches.
* :mod:`repro.scenario.cache` — :class:`ArrayCache`, the generic LRU + disk
  memo machinery, and :class:`ProfileCache`, its specialization for evaluated
  profiles keyed by scenario hash (the off-grid weather memo
  :class:`repro.solar.batch.WeatherCache` builds on the same base).

The batch evaluator that consumes these lives in :mod:`repro.radio.batch`.
"""

from repro.scenario.spec import Scenario, content_token
from repro.scenario.grid import ScenarioGrid, isd_candidates
from repro.scenario.cache import ArrayCache, ProfileCache

__all__ = [
    "Scenario",
    "ScenarioGrid",
    "ArrayCache",
    "ProfileCache",
    "content_token",
    "isd_candidates",
]

"""Scenario layer: frozen evaluation specs, sweep grids, and profile caching.

* :mod:`repro.scenario.spec` — :class:`Scenario`, one fully specified Eq. (2)
  evaluation with a stable content hash.
* :mod:`repro.scenario.grid` — :class:`ScenarioGrid`, declarative sweep axes
  (ISD x N x link perturbations) expanded into scenario batches.
* :mod:`repro.scenario.cache` — :class:`ProfileCache`, LRU + disk memo of
  evaluated profiles keyed by scenario hash.

The batch evaluator that consumes these lives in :mod:`repro.radio.batch`.
"""

from repro.scenario.spec import Scenario, content_token
from repro.scenario.grid import ScenarioGrid, isd_candidates
from repro.scenario.cache import ProfileCache

__all__ = [
    "Scenario",
    "ScenarioGrid",
    "ProfileCache",
    "content_token",
    "isd_candidates",
]

"""Memoized Eq. (2) profiles keyed by scenario content hash.

Two layers:

* an in-memory LRU (``maxsize`` entries) for hot loops such as the placement
  optimizer, which revisits the same layouts across coordinate-descent rounds;
* an optional on-disk layer (``cache_dir``) that persists profiles as ``.npz``
  files named by hash, so repeated experiment runs (``repro maxisd
  --cache-dir ...``) skip the evaluation entirely.

Cached profiles are bit-identical to fresh ones: the arrays are stored as
float64 without any rounding.
"""

from __future__ import annotations

import os
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.link import SnrProfile
from repro.scenario.spec import Scenario

__all__ = ["ProfileCache"]

_PROFILE_FIELDS = ("positions_m", "source_rsrp_dbm", "total_signal_dbm",
                   "total_noise_dbm", "snr_db")


class ProfileCache:
    """LRU + optional disk memo for :class:`repro.radio.link.SnrProfile`."""

    def __init__(self, maxsize: int = 128,
                 cache_dir: str | Path | None = None) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            if self.cache_dir.exists() and not self.cache_dir.is_dir():
                raise ConfigurationError(
                    f"cache dir {str(self.cache_dir)!r} exists and is not a directory")
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, SnrProfile] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    # -- lookup -------------------------------------------------------------

    def get(self, scenario: Scenario) -> SnrProfile | None:
        """Return the cached profile for ``scenario`` or ``None`` on a miss."""
        key = scenario.content_hash
        with self._lock:
            profile = self._memory.get(key)
            if profile is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return profile
        profile = self._load_disk(key)
        with self._lock:
            if profile is not None:
                self._remember(key, profile)
                self.hits += 1
                return profile
            self.misses += 1
            return None

    def put(self, scenario: Scenario, profile: SnrProfile) -> None:
        """Store a computed profile under the scenario's hash."""
        key = scenario.content_hash
        with self._lock:
            self._remember(key, profile)
        if self.cache_dir is not None:
            arrays = {name: getattr(profile, name) for name in _PROFILE_FIELDS}
            # Write-then-rename so an interrupted run never leaves a torn
            # .npz behind for later runs to choke on.
            tmp_path = self.cache_dir / f".{key}.{os.getpid()}.tmp.npz"
            try:
                np.savez(tmp_path, **arrays)
                os.replace(tmp_path, self.cache_dir / f"{key}.npz")
            finally:
                tmp_path.unlink(missing_ok=True)

    def get_or_compute(self, scenario: Scenario) -> SnrProfile:
        """Cached profile, evaluating (and storing) on a miss."""
        profile = self.get(scenario)
        if profile is None:
            profile = scenario.evaluate()
            self.put(scenario, profile)
        return profile

    # -- internals ----------------------------------------------------------

    def _remember(self, key: str, profile: SnrProfile) -> None:
        self._memory[key] = profile
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def _load_disk(self, key: str) -> SnrProfile | None:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.npz"
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                return SnrProfile(**{name: data[name] for name in _PROFILE_FIELDS})
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # A corrupt or foreign file is a miss, not a crash; recompute
            # (and the fresh put() overwrites it atomically).
            return None

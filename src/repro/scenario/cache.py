"""Memoized evaluation results keyed by content hash.

Two layers, shared by every cache in the repository:

* an in-memory LRU (``maxsize`` entries) for hot loops such as the placement
  optimizer, which revisits the same layouts across coordinate-descent rounds;
* an optional on-disk layer (``cache_dir``) that persists values as ``.npz``
  files named by hash, so repeated experiment runs (``repro maxisd
  --cache-dir ...``) skip the evaluation entirely.

:class:`ArrayCache` is the generic machinery: it stores any value that can be
packed into a named bundle of numpy arrays.  :class:`ProfileCache`
specializes it for Eq. (2) :class:`~repro.radio.link.SnrProfile` objects; the
off-grid weather memo (:class:`repro.solar.batch.WeatherCache`) builds on the
same base for ``(days, 24)`` weather-year tensors.

Cached values are bit-identical to fresh ones: the arrays are stored as-is
without any rounding, and the in-memory layer returns the very same object.

The disk layer is hardened against the failure modes of killed and
misbehaving runs:

* writes are **atomic** (temp file + ``os.replace``), so a killed writer
  never leaves a torn ``.npz`` under the final name;
* every bundle carries a **content checksum** (SHA-256 over the packed
  arrays); a mismatch on load — bit rot, a torn write from a pre-hardening
  run, deliberate fault injection — is treated as a miss, not a crash;
* corrupt, truncated or checksum-failing files are **quarantined** into a
  ``quarantine/`` sidecar directory (and recomputed), preserving the
  evidence instead of silently overwriting it;
* an unwritable ``cache_dir`` mid-run (disk full, permissions yanked)
  degrades the cache to memory-only for that write instead of raising
  through the engine (counted in :attr:`ArrayCache.disk_errors`).
"""

from __future__ import annotations

import hashlib
import os
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.link import SnrProfile
from repro.scenario.spec import Scenario

__all__ = ["ArrayCache", "ProfileCache", "QUARANTINE_DIR"]

_PROFILE_FIELDS = ("positions_m", "source_rsrp_dbm", "total_signal_dbm",
                   "total_noise_dbm", "snr_db")

#: Reserved bundle entry carrying the content checksum of the other arrays.
_CHECKSUM_KEY = "__checksum__"

#: Sidecar directory (under ``cache_dir``) damaged files are moved into.
QUARANTINE_DIR = "quarantine"


def _bundle_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the packed arrays (names, dtypes, shapes, raw bytes)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


class ArrayCache:
    """LRU + optional disk memo of values packable as named array bundles.

    Subclasses define the value type via :meth:`_pack` (value → dict of
    arrays, used by the disk layer) and :meth:`_unpack` (dict → value).  Keys
    are content-hash strings; the in-memory layer keeps the original objects,
    so repeated hits return identical instances.
    """

    def __init__(self, maxsize: int = 128,
                 cache_dir: str | Path | None = None) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            if self.cache_dir.exists() and not self.cache_dir.is_dir():
                raise ConfigurationError(
                    f"cache dir {str(self.cache_dir)!r} exists and is not a directory")
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Disk writes that failed (cache degraded to memory-only for them).
        self.disk_errors = 0
        #: Damaged files detected on load and moved to the sidecar directory.
        self.quarantined = 0

    def __len__(self) -> int:
        return len(self._memory)

    # -- value packing (subclass contract) -----------------------------------

    def _pack(self, value) -> dict[str, np.ndarray]:
        """Named arrays to persist for ``value`` (disk layer)."""
        raise NotImplementedError

    def _unpack(self, arrays: dict[str, np.ndarray]):
        """Rebuild a value from its persisted arrays (disk layer)."""
        raise NotImplementedError

    # -- lookup -------------------------------------------------------------

    def get_by_hash(self, key: str):
        """Return the cached value for ``key`` or ``None`` on a miss."""
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return value
        value = self._load_disk(key)
        with self._lock:
            if value is not None:
                self._remember(key, value)
                self.hits += 1
                return value
            self.misses += 1
            return None

    def put_by_hash(self, key: str, value) -> None:
        """Store a computed value under its content hash.

        The disk write is atomic (temp file + ``os.replace``) and the bundle
        is stamped with a content checksum; a failing write (unwritable
        directory, disk full) degrades to memory-only instead of raising.
        """
        with self._lock:
            self._remember(key, value)
        if self.cache_dir is not None:
            arrays = dict(self._pack(value))
            arrays[_CHECKSUM_KEY] = np.array(_bundle_checksum(arrays),
                                             dtype=np.str_)
            # Write-then-rename so an interrupted run never leaves a torn
            # .npz behind for later runs to choke on.
            tmp_path = self.cache_dir / f".{key}.{os.getpid()}.tmp.npz"
            try:
                np.savez(tmp_path, **arrays)
                os.replace(tmp_path, self.cache_dir / f"{key}.npz")
            except OSError:
                self.disk_errors += 1
            finally:
                try:
                    tmp_path.unlink(missing_ok=True)
                except OSError:
                    pass

    # -- internals ----------------------------------------------------------

    def _remember(self, key: str, value) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def _load_disk(self, key: str):
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.npz"
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                arrays = {name: data[name] for name in data.files}
            stored = arrays.pop(_CHECKSUM_KEY, None)
            if stored is not None and str(stored) != _bundle_checksum(arrays):
                raise ValueError(f"checksum mismatch in {path.name}")
            return self._unpack(arrays)
        except (OSError, EOFError, ValueError, KeyError, TypeError,
                zipfile.BadZipFile):
            # A corrupt, truncated or checksum-failing file is a miss, not a
            # crash: quarantine the evidence and recompute (the fresh put()
            # rewrites the final name atomically).
            self._quarantine(path)
            return None

    def stored_checksum(self, key: str) -> str | None:
        """Verified content checksum of the on-disk bundle for ``key``.

        Loads the ``.npz`` bundle, recomputes the SHA-256 over its packed
        arrays and compares it with the embedded ``__checksum__`` entry —
        the same digest :meth:`put_by_hash` stamped at write time, which is
        what shard manifests (:mod:`repro.study.manifest`) record per array
        bundle.

        Args:
            key: Content-hash key of the bundle.

        Returns:
            The hex digest when the file exists and its checksum verifies;
            ``None`` when the store has no disk layer, the file is absent,
            unreadable, or its content no longer matches the embedded
            checksum (tampering, bit rot, a torn pre-hardening write).
            Unlike :meth:`get_by_hash`, a damaged file is *not* quarantined
            — the caller (a merge validator) owns the evidence.
        """
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.npz"
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                arrays = {name: data[name] for name in data.files}
        except (OSError, EOFError, ValueError, KeyError, TypeError,
                zipfile.BadZipFile):
            return None
        stored = arrays.pop(_CHECKSUM_KEY, None)
        computed = _bundle_checksum(arrays)
        if stored is not None and str(stored) != computed:
            return None
        return computed

    def _quarantine(self, path: Path) -> None:
        """Move a damaged file into the sidecar directory (best effort)."""
        try:
            if not path.exists():
                return
            sidecar = self.cache_dir / QUARANTINE_DIR
            sidecar.mkdir(parents=True, exist_ok=True)
            os.replace(path, sidecar / path.name)
            self.quarantined += 1
        except OSError:
            # Even unlink may fail on a read-only mount; never raise.
            try:
                path.unlink(missing_ok=True)
                self.quarantined += 1
            except OSError:
                pass


class ProfileCache(ArrayCache):
    """LRU + optional disk memo for :class:`repro.radio.link.SnrProfile`,
    keyed by :class:`~repro.scenario.spec.Scenario` content hash."""

    def _pack(self, value: SnrProfile) -> dict[str, np.ndarray]:
        return {name: getattr(value, name) for name in _PROFILE_FIELDS}

    def _unpack(self, arrays: dict[str, np.ndarray]) -> SnrProfile:
        return SnrProfile(**{name: arrays[name] for name in _PROFILE_FIELDS})

    def get(self, scenario: Scenario) -> SnrProfile | None:
        """Return the cached profile for ``scenario`` or ``None`` on a miss."""
        return self.get_by_hash(scenario.content_hash)

    def put(self, scenario: Scenario, profile: SnrProfile) -> None:
        """Store a computed profile under the scenario's hash."""
        self.put_by_hash(scenario.content_hash, profile)

    def get_or_compute(self, scenario: Scenario) -> SnrProfile:
        """Cached profile, evaluating (and storing) on a miss."""
        profile = self.get(scenario)
        if profile is None:
            profile = scenario.evaluate()
            self.put(scenario, profile)
        return profile

"""Memoized evaluation results keyed by content hash.

Two layers, shared by every cache in the repository:

* an in-memory LRU (``maxsize`` entries) for hot loops such as the placement
  optimizer, which revisits the same layouts across coordinate-descent rounds;
* an optional on-disk layer (``cache_dir``) that persists values as ``.npz``
  files named by hash, so repeated experiment runs (``repro maxisd
  --cache-dir ...``) skip the evaluation entirely.

:class:`ArrayCache` is the generic machinery: it stores any value that can be
packed into a named bundle of numpy arrays.  :class:`ProfileCache`
specializes it for Eq. (2) :class:`~repro.radio.link.SnrProfile` objects; the
off-grid weather memo (:class:`repro.solar.batch.WeatherCache`) builds on the
same base for ``(days, 24)`` weather-year tensors.

Cached values are bit-identical to fresh ones: the arrays are stored as-is
without any rounding, and the in-memory layer returns the very same object.
"""

from __future__ import annotations

import os
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.radio.link import SnrProfile
from repro.scenario.spec import Scenario

__all__ = ["ArrayCache", "ProfileCache"]

_PROFILE_FIELDS = ("positions_m", "source_rsrp_dbm", "total_signal_dbm",
                   "total_noise_dbm", "snr_db")


class ArrayCache:
    """LRU + optional disk memo of values packable as named array bundles.

    Subclasses define the value type via :meth:`_pack` (value → dict of
    arrays, used by the disk layer) and :meth:`_unpack` (dict → value).  Keys
    are content-hash strings; the in-memory layer keeps the original objects,
    so repeated hits return identical instances.
    """

    def __init__(self, maxsize: int = 128,
                 cache_dir: str | Path | None = None) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            if self.cache_dir.exists() and not self.cache_dir.is_dir():
                raise ConfigurationError(
                    f"cache dir {str(self.cache_dir)!r} exists and is not a directory")
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    # -- value packing (subclass contract) -----------------------------------

    def _pack(self, value) -> dict[str, np.ndarray]:
        """Named arrays to persist for ``value`` (disk layer)."""
        raise NotImplementedError

    def _unpack(self, arrays: dict[str, np.ndarray]):
        """Rebuild a value from its persisted arrays (disk layer)."""
        raise NotImplementedError

    # -- lookup -------------------------------------------------------------

    def get_by_hash(self, key: str):
        """Return the cached value for ``key`` or ``None`` on a miss."""
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return value
        value = self._load_disk(key)
        with self._lock:
            if value is not None:
                self._remember(key, value)
                self.hits += 1
                return value
            self.misses += 1
            return None

    def put_by_hash(self, key: str, value) -> None:
        """Store a computed value under its content hash."""
        with self._lock:
            self._remember(key, value)
        if self.cache_dir is not None:
            arrays = self._pack(value)
            # Write-then-rename so an interrupted run never leaves a torn
            # .npz behind for later runs to choke on.
            tmp_path = self.cache_dir / f".{key}.{os.getpid()}.tmp.npz"
            try:
                np.savez(tmp_path, **arrays)
                os.replace(tmp_path, self.cache_dir / f"{key}.npz")
            finally:
                tmp_path.unlink(missing_ok=True)

    # -- internals ----------------------------------------------------------

    def _remember(self, key: str, value) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def _load_disk(self, key: str):
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.npz"
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                return self._unpack({name: data[name] for name in data.files})
        except (OSError, ValueError, KeyError, TypeError, zipfile.BadZipFile):
            # A corrupt or foreign file is a miss, not a crash; recompute
            # (and the fresh put() overwrites it atomically).
            return None


class ProfileCache(ArrayCache):
    """LRU + optional disk memo for :class:`repro.radio.link.SnrProfile`,
    keyed by :class:`~repro.scenario.spec.Scenario` content hash."""

    def _pack(self, value: SnrProfile) -> dict[str, np.ndarray]:
        return {name: getattr(value, name) for name in _PROFILE_FIELDS}

    def _unpack(self, arrays: dict[str, np.ndarray]) -> SnrProfile:
        return SnrProfile(**{name: arrays[name] for name in _PROFILE_FIELDS})

    def get(self, scenario: Scenario) -> SnrProfile | None:
        """Return the cached profile for ``scenario`` or ``None`` on a miss."""
        return self.get_by_hash(scenario.content_hash)

    def put(self, scenario: Scenario, profile: SnrProfile) -> None:
        """Store a computed profile under the scenario's hash."""
        self.put_by_hash(scenario.content_hash, profile)

    def get_or_compute(self, scenario: Scenario) -> SnrProfile:
        """Cached profile, evaluating (and storing) on a miss."""
        profile = self.get(scenario)
        if profile is None:
            profile = scenario.evaluate()
            self.put(scenario, profile)
        return profile

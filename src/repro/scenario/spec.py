"""Frozen evaluation scenario: layout + link parameters + grid resolution.

A :class:`Scenario` pins down everything :func:`repro.radio.link.compute_snr_profile`
needs, so an Eq. (2) evaluation becomes a pure function of the scenario.  Each
scenario exposes a stable content hash over all of its fields, which the batch
engine (:mod:`repro.radio.batch`) and the profile cache
(:mod:`repro.scenario.cache`) use as identity: two scenarios with equal hashes
produce bit-identical profiles.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, fields, is_dataclass

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import ConfigurationError
from repro.radio.link import LinkParams, SnrProfile, compute_snr_profile

__all__ = ["Scenario", "content_token"]


def content_token(obj) -> str:
    """Canonical, repr-stable token of a parameter object.

    Recurses through dataclasses, enums, tuples/lists and numpy scalars;
    floats are rendered with ``float.hex`` so the token is exact (no rounding
    ambiguity between values that print alike).

    Args:
        obj: A dataclass instance, enum member, ``None``, bool/int/str,
            float (or numpy floating), sequence of the above, or a numpy
            array.

    Returns:
        A deterministic string — equal tokens imply equal parameter content
        across processes and sessions (the hashing contract every cache in
        the repository keys on).

    Raises:
        ConfigurationError: For types without a canonical rendering.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        inner = ",".join(
            f"{f.name}={content_token(getattr(obj, f.name))}" for f in fields(obj))
        return f"{type(obj).__name__}({inner})"
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return repr(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj).hex()
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(content_token(v) for v in obj) + ")"
    if isinstance(obj, np.ndarray):
        return "(" + ",".join(content_token(v) for v in obj.tolist()) + ")"
    raise ConfigurationError(
        f"cannot build a content token for {type(obj).__name__!r}")


@dataclass(frozen=True)
class Scenario:
    """One fully specified Eq. (2) evaluation.

    Attributes
    ----------
    layout:
        The corridor geometry (HP masts + repeater field).
    link:
        Link-budget parameters, including the noise model.
    resolution_m:
        Track position grid step of the evaluation.
    """

    layout: CorridorLayout
    link: LinkParams = field(default_factory=LinkParams)
    resolution_m: float = 1.0

    def __post_init__(self) -> None:
        if self.resolution_m <= 0:
            raise ConfigurationError(
                f"resolution must be positive, got {self.resolution_m}")

    # -- construction -------------------------------------------------------

    @classmethod
    def uniform(cls, isd_m: float, n_repeaters: int,
                spacing_m: float = constants.LP_NODE_SPACING_M,
                link: LinkParams | None = None,
                resolution_m: float = 1.0) -> "Scenario":
        """The paper's geometry wrapped in a scenario.

        Args:
            isd_m: Inter-site distance of the two HP masts [m].
            n_repeaters: Number of uniformly spaced LP repeater nodes.
            spacing_m: Repeater spacing [m] (default: the paper's 200 m).
            link: Link-budget parameters (paper defaults when ``None``).
            resolution_m: Track position grid step [m].

        Returns:
            The frozen scenario for this uniform-repeater corridor.
        """
        layout = CorridorLayout.with_uniform_repeaters(isd_m, n_repeaters, spacing_m)
        return cls(layout=layout, link=link or LinkParams(),
                   resolution_m=resolution_m)

    # -- identity -----------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """SHA-256 over every field; stable across processes and sessions."""
        return hashlib.sha256(content_token(self).encode()).hexdigest()

    # -- evaluation ---------------------------------------------------------

    def positions_m(self) -> np.ndarray:
        """The track position grid this scenario is evaluated on."""
        return np.arange(self.resolution_m, float(self.layout.isd_m),
                         self.resolution_m)

    def evaluate(self) -> SnrProfile:
        """Single-scenario evaluation via the reference Eq. (2) path.

        Returns:
            The scalar-path :class:`~repro.radio.link.SnrProfile` —
            bit-identical to what the batch engine
            (:func:`repro.radio.batch.evaluate_scenarios`) produces for the
            same scenario.
        """
        return compute_snr_profile(self.layout, self.link,
                                   resolution_m=self.resolution_m)

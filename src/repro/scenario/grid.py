"""Scenario grids: expand sweep axes into batches of scenarios.

The paper's core sweep evaluates Eq. (2) over an (ISD x N) candidate grid;
robustness and ablation studies add link-parameter perturbations (EIRP,
noise-figure) on top.  :class:`ScenarioGrid` captures those axes declaratively
and expands them into a flat scenario batch for
:func:`repro.radio.batch.evaluate_scenarios`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

import numpy as np

from repro import constants
from repro.corridor.layout import CorridorLayout
from repro.errors import GeometryError
from repro.radio.link import LinkParams
from repro.scenario.spec import Scenario

__all__ = ["ScenarioGrid", "isd_candidates"]


def isd_candidates(n_repeaters: int,
                   spacing_m: float = constants.LP_NODE_SPACING_M,
                   isd_step_m: float = constants.ISD_STEP_M,
                   isd_max_m: float = 4000.0) -> np.ndarray:
    """Candidate ISDs of the paper's sweep for one repeater count.

    Walks up in ``isd_step_m`` steps from the smallest geometry that fits the
    repeater field (identical to the seed ``max_isd_for_n`` candidate set).

    Args:
        n_repeaters: Repeater count the candidates must accommodate.
        spacing_m: Repeater spacing [m].
        isd_step_m: Sweep step [m] (default: the paper's 50 m).
        isd_max_m: Upper bound of the candidate axis [m].

    Returns:
        Ascending candidate ISD array [m].
    """
    min_isd = spacing_m * max(0, n_repeaters - 1) + 2.0 * isd_step_m
    return np.arange(max(isd_step_m, min_isd), isd_max_m + isd_step_m / 2,
                     isd_step_m)


@dataclass(frozen=True)
class ScenarioGrid:
    """Cartesian sweep axes over geometry and link perturbations.

    Axes multiply: ``len(isd_values_m) * len(n_values) * len(hp_eirp_offsets_db)
    * len(lp_eirp_offsets_db) * len(noise_figure_offsets_db)`` scenarios, minus
    geometrically infeasible (ISD, N) combinations when ``skip_infeasible``.
    """

    isd_values_m: tuple[float, ...]
    n_values: tuple[int, ...] = (0,)
    spacing_m: float = constants.LP_NODE_SPACING_M
    link: LinkParams = field(default_factory=LinkParams)
    resolution_m: float = 1.0
    hp_eirp_offsets_db: tuple[float, ...] = (0.0,)
    lp_eirp_offsets_db: tuple[float, ...] = (0.0,)
    noise_figure_offsets_db: tuple[float, ...] = (0.0,)
    skip_infeasible: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "isd_values_m",
                           tuple(float(v) for v in self.isd_values_m))
        object.__setattr__(self, "n_values", tuple(int(v) for v in self.n_values))

    @classmethod
    def isd_sweep(cls, n_repeaters: int,
                  link: LinkParams | None = None,
                  spacing_m: float = constants.LP_NODE_SPACING_M,
                  isd_step_m: float = constants.ISD_STEP_M,
                  isd_max_m: float = 4000.0,
                  resolution_m: float = 1.0) -> "ScenarioGrid":
        """The candidate axis of ``max_isd_for_n`` as a grid."""
        candidates = isd_candidates(n_repeaters, spacing_m, isd_step_m, isd_max_m)
        return cls(isd_values_m=tuple(float(c) for c in candidates),
                   n_values=(n_repeaters,), spacing_m=spacing_m,
                   link=link or LinkParams(), resolution_m=resolution_m)

    def _link_variants(self) -> list[LinkParams]:
        variants = []
        for hp_off, lp_off, nf_off in itertools.product(
                self.hp_eirp_offsets_db, self.lp_eirp_offsets_db,
                self.noise_figure_offsets_db):
            if hp_off == 0.0 and lp_off == 0.0 and nf_off == 0.0:
                variants.append(self.link)
            else:
                variants.append(replace(
                    self.link,
                    hp_eirp_dbm=self.link.hp_eirp_dbm + hp_off,
                    lp_eirp_dbm=self.link.lp_eirp_dbm + lp_off,
                    terminal_noise_figure_db=(
                        self.link.terminal_noise_figure_db + nf_off),
                ))
        return variants

    def build(self) -> tuple[Scenario, ...]:
        """Expand every axis combination into a flat scenario tuple.

        Geometry-major order: scenarios that share a layout (link
        perturbations) are adjacent, which lets the batch engine reuse one
        attenuation computation per unique geometry.
        """
        variants = self._link_variants()
        scenarios: list[Scenario] = []
        for n, isd in itertools.product(self.n_values, self.isd_values_m):
            try:
                layout = CorridorLayout.with_uniform_repeaters(
                    isd, n, self.spacing_m)
            except GeometryError:
                if self.skip_infeasible:
                    continue
                raise
            scenarios.extend(
                Scenario(layout=layout, link=link, resolution_m=self.resolution_m)
                for link in variants)
        return tuple(scenarios)

    def _geometry_feasible(self, n: int, isd: float) -> bool:
        """Arithmetic mirror of the layout constructor's feasibility checks."""
        if isd <= 0:
            return False
        if n == 0:
            return True
        if self.spacing_m <= 0:
            return False
        return isd - (n - 1) * self.spacing_m > 0

    def __len__(self) -> int:
        """Scenario count without expanding the cartesian product."""
        n_variants = (len(self.hp_eirp_offsets_db) * len(self.lp_eirp_offsets_db)
                      * len(self.noise_figure_offsets_db))
        if not self.skip_infeasible:
            return len(self.n_values) * len(self.isd_values_m) * n_variants
        n_geometries = sum(
            1 for n in self.n_values for isd in self.isd_values_m
            if self._geometry_feasible(n, isd))
        return n_geometries * n_variants

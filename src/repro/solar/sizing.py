"""PV/battery sizing search — how Table IV's per-location configs arise.

The paper starts from the standard system (540 Wp, 720 Wh) and upsizes where
the winter months would cause downtime: double battery in Vienna and Berlin,
and slightly larger modules (600 Wp) in Berlin.  This module automates that
search: walk a candidate ladder of (PV, battery) configurations ordered by
cost-ish size and return the first with zero downtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.errors import ConfigurationError, InfeasibleError
from repro.solar.battery import Battery
from repro.solar.climates import Location
from repro.solar.irradiance import WeatherParams
from repro.solar.offgrid import LoadProfile, OffGridResult, OffGridSystem
from repro.solar.pv import PvArray

__all__ = ["SizingResult", "find_minimal_system"]

#: Default candidate ladder: the paper's standard config first, then the
#: paper's actual upsizes, then further fallbacks.
DEFAULT_CANDIDATES: tuple[tuple[float, float], ...] = (
    (constants.PV_DEFAULT_PEAK_W, constants.BATTERY_DEFAULT_WH),    # 540 / 720
    (constants.PV_DEFAULT_PEAK_W, constants.BATTERY_DOUBLED_WH),    # 540 / 1440
    (constants.PV_BERLIN_PEAK_W, constants.BATTERY_DOUBLED_WH),     # 600 / 1440
    (720.0, constants.BATTERY_DOUBLED_WH),
    (720.0, 2160.0),
)


@dataclass(frozen=True)
class SizingResult:
    """Outcome of the sizing search at one location."""

    location_name: str
    pv_peak_w: float
    battery_capacity_wh: float
    result: OffGridResult
    rejected: tuple[tuple[float, float], ...] = field(default_factory=tuple)

    @property
    def needed_upsizing(self) -> bool:
        """True when the standard 540 Wp / 720 Wh system was insufficient."""
        return bool(self.rejected)


def find_minimal_system(location: Location,
                        candidates=DEFAULT_CANDIDATES,
                        load: LoadProfile | None = None,
                        weather: WeatherParams | None = None,
                        seed: int = 2022,
                        performance_ratio: float = 0.80,
                        engine: str = "batch",
                        weather_cache=None,
                        backend: str | None = None) -> SizingResult:
    """First zero-downtime configuration from the candidate ladder.

    Raises :class:`InfeasibleError` when even the largest candidate has
    downtime (e.g. an unrealistically large load).  ``weather=None`` uses the
    location's calibrated weather character.

    ``engine="batch"`` (default) evaluates the whole ladder in one vectorized
    pass with the weather year synthesized once and memoized
    (:mod:`repro.solar.batch`); ``engine="scalar"`` walks the ladder with
    per-candidate :meth:`~repro.solar.offgrid.OffGridSystem.simulate_year`
    calls.  ``backend`` selects the kernel backend of the batch engine
    (``"reference"`` is bit-identical to the scalar walk; the default fused
    backend agrees to 1e-9 on SoC-dependent floats and exactly on
    everything else, so both engines pick the same configuration).
    """
    if engine == "batch":
        from repro.solar.batch import simulate_candidates
        results = simulate_candidates(
            location, candidates, load=load, weather=weather, seed=seed,
            performance_ratio=performance_ratio, weather_cache=weather_cache,
            backend=backend)
    elif engine == "scalar":
        results = (
            OffGridSystem(
                location=location,
                pv=PvArray(peak_w=pv_peak_w, performance_ratio=performance_ratio),
                battery=Battery(capacity_wh=battery_wh),
                load=load,
                weather=weather,
                seed=seed,
            ).simulate_year()
            for pv_peak_w, battery_wh in candidates)
    else:
        raise ConfigurationError(
            f"engine must be 'batch' or 'scalar', got {engine!r}")

    rejected: list[tuple[float, float]] = []
    for (pv_peak_w, battery_wh), result in zip(candidates, results):
        if result.zero_downtime:
            return SizingResult(
                location_name=location.name,
                pv_peak_w=pv_peak_w,
                battery_capacity_wh=battery_wh,
                result=result,
                rejected=tuple(rejected),
            )
        rejected.append((pv_peak_w, battery_wh))
    raise InfeasibleError(
        f"no candidate configuration achieves zero downtime at {location.name}; "
        f"tried {list(candidates)}")

"""Monthly solar climatology for the paper's four example regions.

The paper feeds PVGIS-COSMO monthly radiation data for Madrid, Lyon, Vienna
and Berlin.  Offline, we embed representative monthly global horizontal
irradiation (GHI) climatology for the four cities (long-term monthly sums in
kWh/m², consistent with public PVGIS/Meteonorm-class values) and derive
monthly clearness indices against the extraterrestrial irradiation computed
from geometry.

``winter_reliability_derate`` models the extra loss terms an off-grid system
sees in winter (horizon shading, snow on the vertical module's frame, dirt)
that PVGIS's COSMO database implicitly contains relative to clear-sky
climatology; it is applied November-February.  Its default was calibrated so
that the paper's Table IV sizing outcome emerges (see DESIGN.md section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.solar.geometry import SolarGeometry

__all__ = ["Location", "LOCATIONS", "MONTH_DAYS", "MONTH_FIRST_DOY",
           "DOY_MONTH", "months_of_days"]

#: Days per month (non-leap year — the simulation year has 365 days).
MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
#: Day-of-year of the first day of each month.
MONTH_FIRST_DOY = (1, 32, 60, 91, 121, 152, 182, 213, 244, 274, 305, 335)

#: Month index (0..11) for each day-of-year, ``DOY_MONTH[doy - 1]``.  The
#: simulation touches this mapping ~8760+ times per simulated year, so it is
#: a precomputed lookup rather than a per-call scan over month boundaries.
DOY_MONTH = np.repeat(np.arange(12), MONTH_DAYS)

#: Months treated as "winter" for the reliability derate (Nov-Feb).
WINTER_MONTHS = (0, 1, 10, 11)


def months_of_days(day_of_year) -> np.ndarray:
    """Month indices (0..11) for an array of days-of-year (1..365)."""
    doy = np.asarray(day_of_year)
    if doy.size and (doy.min() < 1 or doy.max() > 365):
        raise ConfigurationError("day-of-year values must be in 1..365")
    return DOY_MONTH[doy - 1]


@dataclass(frozen=True)
class Location:
    """A study location: coordinates, monthly GHI climatology, and the
    weather-character parameters of its synthetic day-to-day variability.

    ``sigma_kt`` / ``rho`` / ``kt_min`` shape the AR(1) daily clearness
    process: maritime/Mediterranean climates have short, deep dark spells
    (moderate rho, low kt_min); continental winters are dominated by long,
    shallow anticyclonic stratus episodes (high rho, raised kt_min).  These
    and the winter derate are the calibrated quantities of the PVGIS
    substitution (DESIGN.md section 3).
    """

    name: str
    latitude_deg: float
    longitude_deg: float
    #: Long-term monthly global horizontal irradiation sums [kWh/m²/month].
    monthly_ghi_kwh_m2: tuple[float, ...]
    #: Extra winter loss factor (fraction of yield lost Nov-Feb).
    winter_reliability_derate: float = 0.15
    #: Day-to-day clearness standard deviation.
    sigma_kt: float = 0.13
    #: AR(1) persistence of the daily clearness process.
    rho: float = 0.60
    #: Floor of the daily clearness index (overcast sky).
    kt_min: float = 0.05

    def __post_init__(self) -> None:
        if len(self.monthly_ghi_kwh_m2) != 12:
            raise ConfigurationError(
                f"{self.name}: need 12 monthly GHI values, got {len(self.monthly_ghi_kwh_m2)}")
        if any(v < 0 for v in self.monthly_ghi_kwh_m2):
            raise ConfigurationError(f"{self.name}: GHI values must be >= 0")
        if not 0.0 <= self.winter_reliability_derate < 1.0:
            raise ConfigurationError(
                f"{self.name}: winter derate must be in [0, 1), got {self.winter_reliability_derate}")
        if not 0.0 <= self.sigma_kt < 0.5:
            raise ConfigurationError(f"{self.name}: sigma_kt must be in [0, 0.5), got {self.sigma_kt}")
        if not 0.0 <= self.rho < 1.0:
            raise ConfigurationError(f"{self.name}: rho must be in [0, 1), got {self.rho}")
        if not 0.0 < self.kt_min < 0.5:
            raise ConfigurationError(f"{self.name}: kt_min must be in (0, 0.5), got {self.kt_min}")

    @property
    def annual_ghi_kwh_m2(self) -> float:
        return float(sum(self.monthly_ghi_kwh_m2))

    def mean_daily_ghi_wh_m2(self, month: int) -> float:
        """Average daily GHI of a month [Wh/m²/day]."""
        if not 0 <= month < 12:
            raise ConfigurationError(f"month index must be 0..11, got {month}")
        return self.monthly_ghi_kwh_m2[month] * 1000.0 / MONTH_DAYS[month]

    def monthly_clearness_index(self, month: int) -> float:
        """Monthly mean clearness index KT = H / H0 from the embedded GHI."""
        geometry = SolarGeometry(self.latitude_deg)
        doys = np.arange(MONTH_FIRST_DOY[month], MONTH_FIRST_DOY[month] + MONTH_DAYS[month])
        h0 = float(np.mean(geometry.daily_extraterrestrial_wh_m2(doys)))
        if h0 <= 0:
            raise ConfigurationError(f"{self.name}: zero extraterrestrial irradiation in month {month}")
        return self.mean_daily_ghi_wh_m2(month) / h0

    def monthly_clearness_table(self) -> np.ndarray:
        """All twelve monthly mean clearness indices as one array."""
        return np.array([self.monthly_clearness_index(m) for m in range(12)])

    def month_of_day(self, day_of_year: int) -> int:
        """Month index (0..11) containing a day-of-year (1..365)."""
        if not 1 <= day_of_year <= 365:
            raise ConfigurationError(f"day-of-year must be 1..365, got {day_of_year}")
        return int(DOY_MONTH[day_of_year - 1])

    def is_winter(self, month: int) -> bool:
        return month in WINTER_MONTHS


#: The four high-speed corridor regions of Section IV-B.  Monthly GHI values
#: are long-term climatological sums [kWh/m²/month]; the weather-character
#: parameters are calibrated (seed 2022) so the paper's Table IV sizing
#: outcome emerges from the zero-downtime requirement: Madrid and Lyon run on
#: the standard 540 Wp / 720 Wh system, Vienna needs the doubled battery, and
#: Berlin needs the doubled battery plus 600 Wp (see DESIGN.md section 3).
LOCATIONS: dict[str, Location] = {
    "madrid": Location(
        name="Madrid", latitude_deg=40.42, longitude_deg=-3.70,
        monthly_ghi_kwh_m2=(67, 85, 135, 160, 195, 220, 235, 205, 155, 105, 70, 55),
        winter_reliability_derate=0.08, sigma_kt=0.15, rho=0.55, kt_min=0.05,
    ),
    "lyon": Location(
        name="Lyon", latitude_deg=45.76, longitude_deg=4.84,
        monthly_ghi_kwh_m2=(40, 60, 105, 140, 170, 190, 200, 170, 125, 75, 42, 32),
        winter_reliability_derate=0.10, sigma_kt=0.14, rho=0.60, kt_min=0.05,
    ),
    "vienna": Location(
        name="Vienna", latitude_deg=48.21, longitude_deg=16.37,
        monthly_ghi_kwh_m2=(32, 52, 95, 135, 170, 180, 185, 160, 110, 65, 33, 25),
        winter_reliability_derate=0.10, sigma_kt=0.12, rho=0.75, kt_min=0.10,
    ),
    "berlin": Location(
        name="Berlin", latitude_deg=52.52, longitude_deg=13.40,
        monthly_ghi_kwh_m2=(20, 38, 80, 125, 165, 170, 170, 145, 95, 52, 23, 16),
        winter_reliability_derate=0.16, sigma_kt=0.08, rho=0.80, kt_min=0.20,
    ),
}

"""Off-grid PV system simulation — the PVGIS statistics used in Table IV.

The hourly load profile follows the paper's Section V-B description: the
repeater sleeps continuously for the 5 night hours and runs its sleep/full-load
mix during the 19 service hours, totalling the 124.1 Wh/day average.

The simulation runs an hourly energy balance over a synthetic year and
reports the PVGIS-style statistics: percentage of days on which the battery
became full, unmet-load (downtime) hours, and monthly yield/SoC summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.energy.duty import EnergyParams, lp_node_average_power_w
from repro.errors import ConfigurationError
from repro.solar.battery import Battery
from repro.solar.climates import Location
from repro.solar.irradiance import SyntheticWeather, WeatherParams
from repro.solar.pv import PvArray

__all__ = ["LoadProfile", "repeater_load_profile", "annual_load_wh",
           "OffGridSystem", "OffGridResult"]


@dataclass(frozen=True)
class LoadProfile:
    """Hourly load of the supplied device over a day [W], 24 values."""

    hourly_w: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.hourly_w) != 24:
            raise ConfigurationError(f"need 24 hourly loads, got {len(self.hourly_w)}")
        if any(w < 0 for w in self.hourly_w):
            raise ConfigurationError("loads must be >= 0 W")

    @property
    def daily_wh(self) -> float:
        return float(sum(self.hourly_w))


def repeater_load_profile(params: EnergyParams | None = None,
                          night_hours: float = constants.NIGHT_QUIET_HOURS) -> LoadProfile:
    """The paper's repeater consumption profile for PVGIS.

    Night (no passenger traffic): pure sleep power.  Service hours: the
    sleep/full-load mix whose 24 h average is the quoted 5.17 W; the service-
    hour level is chosen so the daily total matches that average exactly.
    """
    params = params or EnergyParams()
    daily_avg_w = lp_node_average_power_w(params, sleeping=True)
    daily_wh = daily_avg_w * 24.0
    n_night = int(round(night_hours))
    if not 0 <= n_night < 24:
        raise ConfigurationError(f"night hours must be within [0, 24), got {night_hours}")
    night_wh = params.lp_sleep_w * n_night
    service_w = (daily_wh - night_wh) / (24 - n_night)
    hours = [params.lp_sleep_w] * n_night + [service_w] * (24 - n_night)
    return LoadProfile(hourly_w=tuple(hours))


def annual_load_wh(load: LoadProfile, days: int = 365) -> float:
    """Yearly load energy, accumulated hour by hour.

    The fold order matches :meth:`OffGridSystem.simulate_year`'s running
    ``annual_load_wh`` sum exactly, so callers that need the load total
    without a simulation (e.g. the degradation fade precomputation) get the
    bit-identical value.
    """
    total = 0.0
    for _ in range(days):
        for demanded in load.hourly_w:
            total += demanded
    return total


@dataclass(frozen=True)
class OffGridResult:
    """PVGIS-style yearly statistics of an off-grid system."""

    location_name: str
    pv_peak_w: float
    battery_capacity_wh: float
    days: int
    full_battery_days: int
    unmet_hours: int
    unmet_wh: float
    min_soc: float
    annual_pv_kwh: float
    annual_load_kwh: float
    monthly_pv_kwh: tuple[float, ...]
    monthly_unmet_hours: tuple[int, ...]

    @property
    def full_battery_days_pct(self) -> float:
        """Percentage of days the battery became full (Table IV row)."""
        return 100.0 * self.full_battery_days / self.days

    @property
    def zero_downtime(self) -> bool:
        """The paper's dimensioning requirement."""
        return self.unmet_hours == 0


@dataclass
class OffGridSystem:
    """A PV + battery system powering one repeater node at a location."""

    location: Location
    pv: PvArray = field(default_factory=PvArray)
    battery: Battery = field(default_factory=Battery)
    load: LoadProfile | None = None
    #: ``None`` uses the location's calibrated weather character.
    weather: WeatherParams | None = None
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.load is None:
            self.load = repeater_load_profile()

    #: Default simulation phase: start Oct 1 so one *continuous* winter sits
    #: mid-simulation (a Jan-Dec year would split the winter across both ends
    #: and start it with a freshly full battery, hiding autonomy failures).
    START_DAY_OF_YEAR = 274

    def simulate_year(self, days: int = 365, initial_soc: float = 1.0,
                      start_day_of_year: int | None = None) -> OffGridResult:
        """Hourly energy balance over a synthetic year.

        Surplus PV charges the battery (charge-efficiency limited); deficits
        discharge it down to the cutoff, below which load goes unmet
        (downtime).  A day counts as "full battery" when the battery reaches
        100 % at any hour of that day.
        """
        if days <= 0:
            raise ConfigurationError(f"days must be positive, got {days}")
        start = self.START_DAY_OF_YEAR if start_day_of_year is None else start_day_of_year
        weather = SyntheticWeather(self.location, params=self.weather, seed=self.seed)
        self.battery.reset(initial_soc)

        full_days = 0
        unmet_hours = 0
        unmet_wh = 0.0
        min_soc = self.battery.soc
        annual_pv_wh = 0.0
        annual_load_wh = 0.0
        monthly_pv_wh = np.zeros(12)
        monthly_unmet = np.zeros(12, dtype=int)

        for day_index, day in enumerate(weather.year(days, start)):
            month = self.location.month_of_day(day.day_of_year)
            pv_w = self.pv.power_w(day.poa_w_m2)
            became_full = False
            for hour in range(24):
                produced = float(pv_w[hour])
                demanded = self.load.hourly_w[hour]
                annual_pv_wh += produced
                annual_load_wh += demanded
                monthly_pv_wh[month] += produced
                if produced >= demanded:
                    self.battery.charge(produced - demanded)
                else:
                    deficit = demanded - produced
                    delivered = self.battery.discharge(deficit)
                    if delivered < deficit - 1e-9:
                        unmet_hours += 1
                        unmet_wh += deficit - delivered
                        monthly_unmet[month] += 1
                if self.battery.is_full:
                    became_full = True
                min_soc = min(min_soc, self.battery.soc)
            if became_full:
                full_days += 1

        return OffGridResult(
            location_name=self.location.name,
            pv_peak_w=self.pv.peak_w,
            battery_capacity_wh=self.battery.capacity_wh,
            days=days,
            full_battery_days=full_days,
            unmet_hours=unmet_hours,
            unmet_wh=unmet_wh,
            min_soc=min_soc,
            annual_pv_kwh=annual_pv_wh / 1000.0,
            annual_load_kwh=annual_load_wh / 1000.0,
            monthly_pv_kwh=tuple(monthly_pv_wh / 1000.0),
            monthly_unmet_hours=tuple(int(x) for x in monthly_unmet),
        )

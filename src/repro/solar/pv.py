"""PV array model.

The paper mounts up to three standard 180 Wp modules (~0.6 m x 1.4 m)
vertically on a catenary mast — 540 Wp total, 600 Wp for Berlin.  The array
converts plane-of-array irradiance to DC power with a flat performance ratio
covering module efficiency deviations, wiring, and converter losses (PVGIS
uses a comparable "system loss" input).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["PvArray"]


@dataclass(frozen=True)
class PvArray:
    """A PV array: peak power plus a flat performance ratio."""

    peak_w: float = constants.PV_DEFAULT_PEAK_W
    performance_ratio: float = 0.80

    def __post_init__(self) -> None:
        if self.peak_w <= 0:
            raise ConfigurationError(f"peak power must be positive, got {self.peak_w}")
        if not 0.0 < self.performance_ratio <= 1.0:
            raise ConfigurationError(
                f"performance ratio must be in (0, 1], got {self.performance_ratio}")

    @classmethod
    def from_modules(cls, n_modules: int,
                     module_peak_w: float = constants.PV_MODULE_PEAK_W,
                     performance_ratio: float = 0.80) -> "PvArray":
        """Array built from standard modules (3 x 180 Wp fits one mast)."""
        if n_modules < 1:
            raise ConfigurationError(f"need at least one module, got {n_modules}")
        return cls(peak_w=n_modules * module_peak_w, performance_ratio=performance_ratio)

    def power_w(self, poa_w_m2):
        """DC output power for plane-of-array irradiance [W/m²].

        Linear in irradiance with 1000 W/m² at STC, scaled by the performance
        ratio.  Accepts scalars or arrays.
        """
        poa = np.asarray(poa_w_m2, dtype=float)
        if np.any(poa < 0):
            raise ConfigurationError("irradiance must be >= 0")
        out = self.peak_w * poa / 1000.0 * self.performance_ratio
        return float(out) if np.ndim(poa_w_m2) == 0 else out

    def daily_energy_wh(self, poa_hourly_w_m2) -> float:
        """Energy over a day of hourly POA values [Wh]."""
        return float(np.sum(self.power_w(poa_hourly_w_m2)))

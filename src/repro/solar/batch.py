"""Batched off-grid engine — the Table IV workload as (candidate × location)
tensors.

The scalar reference (:meth:`repro.solar.offgrid.OffGridSystem.simulate_year`)
walks a Python ``for day / for hour`` double loop per system and re-runs the
full synthetic-weather synthesis for every candidate.  This module removes
both costs:

* :func:`synthesize_weather_year` produces the whole year as one
  ``(days, 24)`` plane-of-array tensor per ``(location, WeatherParams, seed,
  start day)`` key and memoizes it in a :class:`WeatherCache` (the generic
  :class:`~repro.scenario.cache.ArrayCache` machinery from the scenario
  layer), so a sizing ladder, a candidate grid, or repeated experiment runs
  synthesize each weather year exactly once;
* :func:`simulate_systems` runs the clipped battery state-of-charge
  recurrence with *time* as the only sequential axis, batched over a flat
  ``[system]`` leading axis that callers lay out as candidate × location (or
  service-year) grids.

Every :class:`~repro.solar.offgrid.OffGridResult` out of the batched path is
bit-identical to ``simulate_year`` on the same system — the recurrence uses
the exact same operation order, only element-wise over the batch axis
(asserted field-by-field in ``tests/test_solar_batch.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import soc_scan
from repro.scenario.cache import ArrayCache
from repro.scenario.spec import content_token
from repro.solar.battery import Battery
from repro.solar.climates import Location, months_of_days
from repro.solar.irradiance import SyntheticWeather, WeatherParams, WeatherYear
from repro.solar.offgrid import OffGridResult, OffGridSystem
from repro.solar.pv import PvArray

__all__ = [
    "WeatherKey",
    "WeatherCache",
    "synthesize_weather_year",
    "default_weather_cache",
    "simulate_systems",
    "simulate_candidates",
    "candidate_grid",
]


@dataclass(frozen=True)
class WeatherKey:
    """Everything that determines a synthesized weather year.

    Hashing the full parameter content (same ``content_token`` scheme as
    :class:`~repro.scenario.spec.Scenario`) makes the key stable across
    processes, so the disk layer of :class:`WeatherCache` can be shared
    between runs.
    """

    location: Location
    params: WeatherParams
    seed: int
    days: int
    start_day_of_year: int
    #: The full module geometry — including its latitude, which may be
    #: overridden independently of the location's.
    latitude_deg: float
    tilt_deg: float
    azimuth_deg: float

    @classmethod
    def for_weather(cls, weather: SyntheticWeather, days: int,
                    start_day_of_year: int) -> "WeatherKey":
        """Key of the ``(days, 24)`` tensor ``weather`` would synthesize.

        Args:
            weather: The configured synthesizer (location, parameters, seed).
            days: Simulated days.
            start_day_of_year: First simulated day of year (1-based).

        Returns:
            The frozen key; equal keys guarantee bit-identical tensors.
        """
        return cls(location=weather.location, params=weather.params,
                   seed=weather.seed, days=days,
                   start_day_of_year=start_day_of_year,
                   latitude_deg=weather.geometry.latitude_deg,
                   tilt_deg=weather.geometry.tilt_deg,
                   azimuth_deg=weather.geometry.azimuth_deg)

    @property
    def content_hash(self) -> str:
        """SHA-256 over every field; stable across processes and sessions."""
        return hashlib.sha256(content_token(self).encode()).hexdigest()


_WEATHER_FIELDS = ("day_of_year", "month", "kt", "ghi_w_m2", "poa_w_m2")


class WeatherCache(ArrayCache):
    """LRU + optional disk memo for :class:`WeatherYear` tensors, keyed by
    :class:`WeatherKey` content hash."""

    def _pack(self, value: WeatherYear) -> dict[str, np.ndarray]:
        arrays = {name: getattr(value, name) for name in _WEATHER_FIELDS}
        arrays["start_day_of_year"] = np.array(value.start_day_of_year)
        return arrays

    def _unpack(self, arrays: dict[str, np.ndarray]) -> WeatherYear:
        return WeatherYear(start_day_of_year=int(arrays["start_day_of_year"]),
                           **{name: arrays[name] for name in _WEATHER_FIELDS})

    def get(self, key: WeatherKey) -> WeatherYear | None:
        """Cached weather year for ``key``, or ``None`` on a miss."""
        return self.get_by_hash(key.content_hash)

    def put(self, key: WeatherKey, year: WeatherYear) -> None:
        """Store a synthesized weather year under its key's hash."""
        self.put_by_hash(key.content_hash, year)


#: Process-wide default weather memo: a weather year is ~140 kB, so keeping a
#: few dozen hot years costs single-digit megabytes and makes every sizing /
#: degradation / grid call in a session share syntheses automatically.
_DEFAULT_WEATHER_CACHE = WeatherCache(maxsize=64)


def default_weather_cache() -> WeatherCache:
    """The process-wide weather memo used when no cache is passed.

    Returns:
        The shared in-memory :class:`WeatherCache` (64 hot years, no disk
        layer); pass your own instance with a ``cache_dir`` to persist
        syntheses across runs.
    """
    return _DEFAULT_WEATHER_CACHE


def synthesize_weather_year(location: Location,
                            params: WeatherParams | None = None,
                            seed: int = 2022,
                            days: int = 365,
                            start_day_of_year: int = 1,
                            cache: WeatherCache | None = None) -> WeatherYear:
    """One memoized ``(days, 24)`` weather-year tensor for a location.

    Args:
        location: Study location (coordinates + monthly climatology).
        params: Weather-character override; ``None`` uses the location's
            calibrated parameters (same resolution rule as
            :class:`~repro.solar.irradiance.SyntheticWeather`).
        seed: Seed of the daily-clearness AR(1) process.
        days: Days to synthesize.
        start_day_of_year: First day of year (1-based).
        cache: Weather memo; ``None`` uses the process-wide default.

    Returns:
        The :class:`~repro.solar.irradiance.WeatherYear` tensor —
        bit-identical to per-day ``day_irradiance`` synthesis.
    """
    weather = SyntheticWeather(location, params=params, seed=seed)
    return _weather_year_for(weather, days, start_day_of_year, cache)


def _weather_year_for(weather: SyntheticWeather, days: int,
                      start_day_of_year: int,
                      cache: WeatherCache | None) -> WeatherYear:
    cache = cache if cache is not None else _DEFAULT_WEATHER_CACHE
    key = WeatherKey.for_weather(weather, days, start_day_of_year)
    year = cache.get(key)
    if year is None:
        year = weather.year_tensor(days, start_day_of_year)
        cache.put(key, year)
    return year


def candidate_grid(pv_peaks_w, battery_whs) -> tuple[tuple[float, float], ...]:
    """Expand PV-peak × battery-capacity axes into a candidate list.

    The grid is ordered battery-major within each PV size, matching the
    cheapest-first walk of the sizing ladder.

    Args:
        pv_peaks_w: PV peak-power axis [Wp].
        battery_whs: Battery-capacity axis [Wh].

    Returns:
        ``(pv_peak_w, battery_wh)`` tuples, PV-major.

    Raises:
        ConfigurationError: When either axis is empty.
    """
    candidates = tuple((float(pv), float(wh))
                       for pv in pv_peaks_w for wh in battery_whs)
    if not candidates:
        raise ConfigurationError("candidate grid must not be empty")
    return candidates


def simulate_systems(systems,
                     days: int = 365,
                     initial_soc: float = 1.0,
                     start_day_of_year: int | None = None,
                     weather_cache: WeatherCache | None = None,
                     backend: str | None = None) -> list[OffGridResult]:
    """Batched hourly energy balance over every system at once.

    Weather is synthesized once per unique :class:`WeatherKey` (memoized
    through ``weather_cache``); the battery clip-recurrence then runs
    through the :func:`repro.kernels.soc_scan` kernel — a single flattened
    hour-major walk whose element-wise operation order matches
    :meth:`~repro.solar.offgrid.OffGridSystem.simulate_year` exactly, so
    the returned results are bit-identical to the scalar path under both
    the ``"reference"`` and the fused ``"numpy"`` backend (the fused walk
    hoists all accounting out of the loop but reproduces the reference
    accumulation order bitwise) — ``system.simulate_year(days)`` is the
    per-system escape hatch / audit path, pinned equal in
    ``tests/test_engine_parity.py``.

    Args:
        systems: Sequence of :class:`~repro.solar.offgrid.OffGridSystem`;
            they may span locations, candidate sizes, seeds and loads.
        days: Simulated days (one shared horizon for the whole batch).
        initial_soc: Battery state of charge at the first hour, in [0, 1].
        start_day_of_year: First day of year; ``None`` uses the Oct-1
            default that puts one continuous winter mid-simulation.
        weather_cache: Optional memo of synthesized weather tensors
            (weather is backend-independent to 1e-9; cached tensors are
            keyed by content, not by backend).
        backend: Kernel backend; ``None`` resolves via ``REPRO_BACKEND``
            and then the ``"numpy"`` default.

    Returns:
        One :class:`~repro.solar.offgrid.OffGridResult` per system, in input
        order.

    Raises:
        ConfigurationError: On a non-positive horizon or an SoC outside
            [0, 1].
    """
    systems = list(systems)
    if not systems:
        return []
    if days <= 0:
        raise ConfigurationError(f"days must be positive, got {days}")
    if not 0.0 <= initial_soc <= 1.0:
        raise ConfigurationError(f"SoC must be in [0, 1], got {initial_soc}")
    start = (OffGridSystem.START_DAY_OF_YEAR if start_day_of_year is None
             else start_day_of_year)

    # One weather synthesis per unique key; systems index into the pool.
    pool: dict[str, WeatherYear] = {}
    pv_powers = []
    for system in systems:
        weather = SyntheticWeather(system.location, params=system.weather,
                                   seed=system.seed)
        key = WeatherKey.for_weather(weather, days, start).content_hash
        if key not in pool:
            pool[key] = _weather_year_for(weather, days, start, weather_cache)
        # Same element-wise conversion as the scalar path's per-day
        # ``pv.power_w(day.poa_w_m2)`` calls, applied to the whole tensor.
        pv_powers.append(system.pv.power_w(pool[key].poa_w_m2))

    n = len(systems)
    produced_w = np.stack(pv_powers, axis=-1)          # (days, 24, n)
    demanded_w = np.array([s.load.hourly_w for s in systems]).T   # (24, n)
    months = months_of_days((start - 1 + np.arange(days)) % 365 + 1)

    capacity = np.array([s.battery.capacity_wh for s in systems])
    efficiency = np.array([s.battery.charge_efficiency for s in systems])
    cutoff = np.array([s.battery.discharge_cutoff for s in systems])

    acc = soc_scan(produced_w, demanded_w, months, capacity, efficiency,
                   cutoff, float(initial_soc), backend=backend)

    return [
        OffGridResult(
            location_name=system.location.name,
            pv_peak_w=system.pv.peak_w,
            battery_capacity_wh=system.battery.capacity_wh,
            days=days,
            full_battery_days=int(acc["full_days"][i]),
            unmet_hours=int(acc["unmet_hours"][i]),
            unmet_wh=float(acc["unmet_wh"][i]),
            min_soc=float(acc["min_soc"][i]),
            annual_pv_kwh=float(acc["annual_pv_wh"][i] / 1000.0),
            annual_load_kwh=float(acc["annual_load_wh"][i] / 1000.0),
            monthly_pv_kwh=tuple(acc["monthly_pv_wh"][i] / 1000.0),
            monthly_unmet_hours=tuple(
                int(x) for x in acc["monthly_unmet_hours"][i]),
        )
        for i, system in enumerate(systems)
    ]


def simulate_candidates(location: Location,
                        candidates,
                        load=None,
                        weather: WeatherParams | None = None,
                        seed: int = 2022,
                        performance_ratio: float = 0.80,
                        weather_cache: WeatherCache | None = None,
                        backend: str | None = None) -> list[OffGridResult]:
    """Evaluate a whole (PV peak, battery Wh) candidate ladder in one pass.

    Args:
        location: Study location shared by every candidate.
        candidates: ``(pv_peak_w, battery_wh)`` tuples (see
            :func:`candidate_grid`).
        load: Optional load-profile override (default: the repeater load).
        weather: Optional weather-character override.
        seed: Weather-year seed shared by every candidate.
        performance_ratio: PV performance ratio.
        weather_cache: Optional memo of synthesized weather tensors.
        backend: Kernel backend forwarded to :func:`simulate_systems`.

    Returns:
        One :class:`~repro.solar.offgrid.OffGridResult` per candidate, in
        order — the batched equivalent of calling ``simulate_year`` per
        rung (bit-identical; the scalar method remains the audit path).
    """
    systems = [
        OffGridSystem(
            location=location,
            pv=PvArray(peak_w=pv_peak_w, performance_ratio=performance_ratio),
            battery=Battery(capacity_wh=battery_wh),
            load=load,
            weather=weather,
            seed=seed,
        )
        for pv_peak_w, battery_wh in candidates
    ]
    return simulate_systems(systems, weather_cache=weather_cache,
                            backend=backend)

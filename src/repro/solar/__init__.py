"""Solar substrate — an offline substitute for the PVGIS off-grid tool.

The paper dimensions the repeater's PV system with the PVGIS web service
(https://ec.europa.eu/jrc/en/pvgis).  That service is not available offline,
so this package implements the pieces of it the paper consumes:

* solar geometry (declination, hour angle, zenith/incidence angles),
* a synthetic typical-meteorological-year generator driven by monthly
  clearness-index climatology for the four studied locations, with seeded
  AR(1) day-to-day variability (dark-spell persistence is what drains the
  battery in winter),
* Erbs diffuse decomposition and isotropic transposition onto the vertical
  south-facing module plane,
* a PV + battery off-grid simulation reporting the PVGIS statistics used in
  Table IV ("days with full battery", downtime), and
* a sizing search that finds the minimal zero-downtime configuration.

See DESIGN.md section 3 for the substitution rationale and calibration notes.
"""

from repro.solar.geometry import SolarGeometry, declination_rad, sunset_hour_angle_rad
from repro.solar.climates import LOCATIONS, Location
from repro.solar.irradiance import SyntheticWeather, WeatherParams, DayIrradiance, WeatherYear
from repro.solar.pv import PvArray
from repro.solar.battery import Battery
from repro.solar.offgrid import LoadProfile, OffGridResult, OffGridSystem, repeater_load_profile
from repro.solar.sizing import SizingResult, find_minimal_system
from repro.solar.batch import (
    WeatherCache,
    WeatherKey,
    candidate_grid,
    simulate_candidates,
    simulate_systems,
    synthesize_weather_year,
)

__all__ = [
    "SolarGeometry",
    "declination_rad",
    "sunset_hour_angle_rad",
    "Location",
    "LOCATIONS",
    "WeatherParams",
    "SyntheticWeather",
    "DayIrradiance",
    "WeatherYear",
    "WeatherKey",
    "WeatherCache",
    "synthesize_weather_year",
    "simulate_systems",
    "simulate_candidates",
    "candidate_grid",
    "PvArray",
    "Battery",
    "LoadProfile",
    "repeater_load_profile",
    "OffGridSystem",
    "OffGridResult",
    "SizingResult",
    "find_minimal_system",
]

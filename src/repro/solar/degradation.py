"""Battery aging: does the Table IV system still work in year ten?

The paper sizes the PV system for a single year.  Off-grid batteries fade —
both with calendar time and with cycling.  This module estimates equivalent
full cycles from the simulated SoC trajectory and projects the system's
downtime across its service life with a linear capacity-fade model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.solar.battery import Battery
from repro.solar.climates import Location
from repro.solar.offgrid import (
    LoadProfile,
    OffGridResult,
    OffGridSystem,
    annual_load_wh,
    repeater_load_profile,
)
from repro.solar.pv import PvArray

__all__ = ["AgingParams", "LifetimeResult", "project_lifetime"]


@dataclass(frozen=True)
class AgingParams:
    """First-order battery fade model.

    ``calendar_fade_per_year`` and ``cycle_fade_per_efc`` (equivalent full
    cycle) reduce usable capacity linearly; defaults are typical LFP values.
    ``pv_fade_per_year`` covers module degradation.
    """

    calendar_fade_per_year: float = 0.015
    cycle_fade_per_efc: float = 0.0001
    pv_fade_per_year: float = 0.005

    def __post_init__(self) -> None:
        for name in ("calendar_fade_per_year", "cycle_fade_per_efc",
                     "pv_fade_per_year"):
            if not 0.0 <= getattr(self, name) < 0.2:
                raise ConfigurationError(f"{name} out of plausible range")


@dataclass(frozen=True)
class YearOutcome:
    """One service year: effective sizes and the simulated result."""

    year: int
    battery_capacity_wh: float
    pv_peak_w: float
    result: OffGridResult
    equivalent_full_cycles: float


@dataclass(frozen=True)
class LifetimeResult:
    """Projection over the whole service life."""

    years: tuple[YearOutcome, ...]

    @property
    def first_downtime_year(self) -> int | None:
        for outcome in self.years:
            if not outcome.result.zero_downtime:
                return outcome.year
        return None

    @property
    def total_unmet_hours(self) -> int:
        return sum(o.result.unmet_hours for o in self.years)

    def survives(self, service_years: int) -> bool:
        """Zero downtime through the first ``service_years`` years."""
        return all(o.result.zero_downtime for o in self.years[:service_years])


def _equivalent_full_cycles(result: OffGridResult,
                            battery_capacity_wh: float) -> float:
    """EFC estimate: energy cycled through the battery / capacity.

    The battery supplies everything the PV does not cover directly; the load
    side bounds the discharge throughput, so EFC <= yearly load / capacity.
    We use the night-load share as the cycled energy (daytime load is mostly
    PV-direct), a deliberate mid-range estimate.
    """
    cycled_kwh = 0.45 * result.annual_load_kwh
    return cycled_kwh * 1000.0 / battery_capacity_wh


def _fade_schedule(battery_capacity_wh: float, pv_peak_w: float,
                   aging: AgingParams, service_years: int,
                   yearly_load_kwh: float) -> list[tuple[float, float]]:
    """Per-year (battery, PV) capacities from the fade recurrence.

    The cycle-fade term consumes each year's equivalent full cycles, which
    depend only on the yearly load energy (not on the weather draw), so the
    whole schedule can be advanced without running any simulation — it is
    bit-identical to the schedule the per-year scalar loop produces.
    """
    schedule: list[tuple[float, float]] = []
    cumulative_efc = 0.0
    for year in range(1, service_years + 1):
        calendar_years = year - 1
        battery_fade = (aging.calendar_fade_per_year * calendar_years
                        + aging.cycle_fade_per_efc * cumulative_efc)
        battery_now = battery_capacity_wh * max(0.0, 1.0 - battery_fade)
        pv_now = pv_peak_w * (1.0 - aging.pv_fade_per_year) ** calendar_years
        if battery_now <= 0:
            raise ConfigurationError(f"battery fully faded in year {year}")
        cycled_kwh = 0.45 * yearly_load_kwh
        cumulative_efc += cycled_kwh * 1000.0 / battery_now
        schedule.append((battery_now, pv_now))
    return schedule


def project_lifetime(location: Location,
                     pv_peak_w: float,
                     battery_capacity_wh: float,
                     service_years: int = 10,
                     aging: AgingParams | None = None,
                     load: LoadProfile | None = None,
                     seed: int = 2022,
                     engine: str = "batch",
                     weather_cache=None,
                     backend: str | None = None) -> LifetimeResult:
    """Simulate each service year with faded capacities.

    Each year runs the full synthetic-weather simulation (different seeds per
    year) against the capacity remaining at the start of that year.

    ``engine="batch"`` (default) precomputes the fade schedule (the
    equivalent-full-cycle recurrence depends only on the load, see
    :func:`_fade_schedule`), then evaluates all service years as one batched
    pass with the per-year fade factors applied as array scalars and the
    per-year weather tensors memoized; ``engine="scalar"`` runs the original
    year-by-year loop.  ``backend`` selects the batch engine's kernel
    backend: ``"reference"`` reproduces the scalar loop bit-identically,
    the default fused backend agrees to 1e-9 on SoC-dependent floats.
    """
    if service_years <= 0:
        raise ConfigurationError(f"service years must be positive, got {service_years}")
    if pv_peak_w <= 0 or battery_capacity_wh <= 0:
        raise ConfigurationError("PV and battery sizes must be positive")
    if engine not in ("batch", "scalar"):
        raise ConfigurationError(
            f"engine must be 'batch' or 'scalar', got {engine!r}")
    aging = aging or AgingParams()

    if engine == "batch":
        from repro.solar.batch import simulate_systems
        yearly_load_kwh = annual_load_wh(load or repeater_load_profile()) / 1000.0
        schedule = _fade_schedule(battery_capacity_wh, pv_peak_w, aging,
                                  service_years, yearly_load_kwh)
        systems = [
            OffGridSystem(location=location, pv=PvArray(peak_w=pv_now),
                          battery=Battery(capacity_wh=battery_now),
                          load=load, seed=seed + year)
            for year, (battery_now, pv_now) in enumerate(schedule, start=1)
        ]
        results = simulate_systems(systems, weather_cache=weather_cache,
                                   backend=backend)
        outcomes = []
        for year, ((battery_now, pv_now), result) in enumerate(
                zip(schedule, results), start=1):
            outcomes.append(YearOutcome(
                year=year, battery_capacity_wh=battery_now, pv_peak_w=pv_now,
                result=result,
                equivalent_full_cycles=_equivalent_full_cycles(result, battery_now)))
        return LifetimeResult(years=tuple(outcomes))

    outcomes: list[YearOutcome] = []
    cumulative_efc = 0.0
    for year in range(1, service_years + 1):
        calendar_years = year - 1
        battery_fade = (aging.calendar_fade_per_year * calendar_years
                        + aging.cycle_fade_per_efc * cumulative_efc)
        battery_now = battery_capacity_wh * max(0.0, 1.0 - battery_fade)
        pv_now = pv_peak_w * (1.0 - aging.pv_fade_per_year) ** calendar_years
        if battery_now <= 0:
            raise ConfigurationError(f"battery fully faded in year {year}")

        system = OffGridSystem(
            location=location,
            pv=PvArray(peak_w=pv_now),
            battery=Battery(capacity_wh=battery_now),
            load=load,
            seed=seed + year,
        )
        result = system.simulate_year()
        efc = _equivalent_full_cycles(result, battery_now)
        cumulative_efc += efc
        outcomes.append(YearOutcome(year=year, battery_capacity_wh=battery_now,
                                    pv_peak_w=pv_now, result=result,
                                    equivalent_full_cycles=efc))
    return LifetimeResult(years=tuple(outcomes))

"""Battery aging: does the Table IV system still work in year ten?

The paper sizes the PV system for a single year.  Off-grid batteries fade —
both with calendar time and with cycling.  This module estimates equivalent
full cycles from the simulated SoC trajectory and projects the system's
downtime across its service life with a linear capacity-fade model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.solar.battery import Battery
from repro.solar.climates import Location
from repro.solar.offgrid import LoadProfile, OffGridResult, OffGridSystem
from repro.solar.pv import PvArray

__all__ = ["AgingParams", "LifetimeResult", "project_lifetime"]


@dataclass(frozen=True)
class AgingParams:
    """First-order battery fade model.

    ``calendar_fade_per_year`` and ``cycle_fade_per_efc`` (equivalent full
    cycle) reduce usable capacity linearly; defaults are typical LFP values.
    ``pv_fade_per_year`` covers module degradation.
    """

    calendar_fade_per_year: float = 0.015
    cycle_fade_per_efc: float = 0.0001
    pv_fade_per_year: float = 0.005

    def __post_init__(self) -> None:
        for name in ("calendar_fade_per_year", "cycle_fade_per_efc",
                     "pv_fade_per_year"):
            if not 0.0 <= getattr(self, name) < 0.2:
                raise ConfigurationError(f"{name} out of plausible range")


@dataclass(frozen=True)
class YearOutcome:
    """One service year: effective sizes and the simulated result."""

    year: int
    battery_capacity_wh: float
    pv_peak_w: float
    result: OffGridResult
    equivalent_full_cycles: float


@dataclass(frozen=True)
class LifetimeResult:
    """Projection over the whole service life."""

    years: tuple[YearOutcome, ...]

    @property
    def first_downtime_year(self) -> int | None:
        for outcome in self.years:
            if not outcome.result.zero_downtime:
                return outcome.year
        return None

    @property
    def total_unmet_hours(self) -> int:
        return sum(o.result.unmet_hours for o in self.years)

    def survives(self, service_years: int) -> bool:
        """Zero downtime through the first ``service_years`` years."""
        return all(o.result.zero_downtime for o in self.years[:service_years])


def _equivalent_full_cycles(result: OffGridResult,
                            battery_capacity_wh: float) -> float:
    """EFC estimate: energy cycled through the battery / capacity.

    The battery supplies everything the PV does not cover directly; the load
    side bounds the discharge throughput, so EFC <= yearly load / capacity.
    We use the night-load share as the cycled energy (daytime load is mostly
    PV-direct), a deliberate mid-range estimate.
    """
    cycled_kwh = 0.45 * result.annual_load_kwh
    return cycled_kwh * 1000.0 / battery_capacity_wh


def project_lifetime(location: Location,
                     pv_peak_w: float,
                     battery_capacity_wh: float,
                     service_years: int = 10,
                     aging: AgingParams | None = None,
                     load: LoadProfile | None = None,
                     seed: int = 2022) -> LifetimeResult:
    """Simulate each service year with faded capacities.

    Each year runs the full synthetic-weather simulation (different seeds per
    year) against the capacity remaining at the start of that year.
    """
    if service_years <= 0:
        raise ConfigurationError(f"service years must be positive, got {service_years}")
    if pv_peak_w <= 0 or battery_capacity_wh <= 0:
        raise ConfigurationError("PV and battery sizes must be positive")
    aging = aging or AgingParams()

    outcomes: list[YearOutcome] = []
    cumulative_efc = 0.0
    for year in range(1, service_years + 1):
        calendar_years = year - 1
        battery_fade = (aging.calendar_fade_per_year * calendar_years
                        + aging.cycle_fade_per_efc * cumulative_efc)
        battery_now = battery_capacity_wh * max(0.0, 1.0 - battery_fade)
        pv_now = pv_peak_w * (1.0 - aging.pv_fade_per_year) ** calendar_years
        if battery_now <= 0:
            raise ConfigurationError(f"battery fully faded in year {year}")

        system = OffGridSystem(
            location=location,
            pv=PvArray(peak_w=pv_now),
            battery=Battery(capacity_wh=battery_now),
            load=load,
            seed=seed + year,
        )
        result = system.simulate_year()
        efc = _equivalent_full_cycles(result, battery_now)
        cumulative_efc += efc
        outcomes.append(YearOutcome(year=year, battery_capacity_wh=battery_now,
                                    pv_peak_w=pv_now, result=result,
                                    equivalent_full_cycles=efc))
    return LifetimeResult(years=tuple(outcomes))

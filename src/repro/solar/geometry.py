"""Solar position geometry (standard textbook formulas, e.g. Duffie & Beckman).

Angles are in radians internally; day-of-year ``n`` runs 1..365.  The module
plane of interest is the paper's: tilt 90° (vertical, on a catenary mast),
azimuth 0° = facing the equator (PVGIS convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SOLAR_CONSTANT_W_M2",
    "declination_rad",
    "eccentricity_factor",
    "sunset_hour_angle_rad",
    "SolarGeometry",
]

SOLAR_CONSTANT_W_M2 = 1367.0


def declination_rad(day_of_year) -> np.ndarray | float:
    """Solar declination (Cooper's equation)."""
    n = np.asarray(day_of_year, dtype=float)
    delta = np.deg2rad(23.45) * np.sin(2.0 * np.pi * (284.0 + n) / 365.0)
    return float(delta) if np.ndim(day_of_year) == 0 else delta


def eccentricity_factor(day_of_year) -> np.ndarray | float:
    """Earth-sun distance correction to the solar constant."""
    n = np.asarray(day_of_year, dtype=float)
    e0 = 1.0 + 0.033 * np.cos(2.0 * np.pi * n / 365.0)
    return float(e0) if np.ndim(day_of_year) == 0 else e0


def sunset_hour_angle_rad(latitude_rad: float, declination) -> np.ndarray | float:
    """Hour angle of sunset; clipped for polar day/night."""
    x = -np.tan(latitude_rad) * np.tan(np.asarray(declination, dtype=float))
    out = np.arccos(np.clip(x, -1.0, 1.0))
    return float(out) if np.ndim(declination) == 0 else out


@dataclass(frozen=True)
class SolarGeometry:
    """Solar geometry for a latitude and a module orientation.

    ``tilt_deg=90`` and ``azimuth_deg=0`` (equator-facing) reproduce the
    paper's vertical catenary-mast installation; other orientations are
    supported for sensitivity studies.
    """

    latitude_deg: float
    tilt_deg: float = 90.0
    azimuth_deg: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ConfigurationError(f"latitude must be in [-90, 90], got {self.latitude_deg}")
        if not 0.0 <= self.tilt_deg <= 90.0:
            raise ConfigurationError(f"tilt must be in [0, 90], got {self.tilt_deg}")
        if not -180.0 <= self.azimuth_deg <= 180.0:
            raise ConfigurationError(f"azimuth must be in [-180, 180], got {self.azimuth_deg}")

    @property
    def latitude_rad(self) -> float:
        return float(np.deg2rad(self.latitude_deg))

    def cos_zenith(self, day_of_year: int, hour_angle_rad) -> np.ndarray | float:
        """Cosine of the solar zenith angle (negative below the horizon)."""
        delta = declination_rad(day_of_year)
        phi = self.latitude_rad
        w = np.asarray(hour_angle_rad, dtype=float)
        out = np.sin(phi) * np.sin(delta) + np.cos(phi) * np.cos(delta) * np.cos(w)
        return float(out) if np.ndim(hour_angle_rad) == 0 else out

    def cos_incidence(self, day_of_year: int, hour_angle_rad) -> np.ndarray | float:
        """Cosine of the incidence angle on the tilted module plane.

        General formula for a surface tilted ``beta`` with surface azimuth
        ``gamma`` (0 = equator-facing); negative values mean the sun is behind
        the module.
        """
        delta = declination_rad(day_of_year)
        phi = self.latitude_rad
        beta = np.deg2rad(self.tilt_deg)
        gamma = np.deg2rad(self.azimuth_deg)
        w = np.asarray(hour_angle_rad, dtype=float)
        out = (np.sin(delta) * np.sin(phi) * np.cos(beta)
               - np.sin(delta) * np.cos(phi) * np.sin(beta) * np.cos(gamma)
               + np.cos(delta) * np.cos(phi) * np.cos(beta) * np.cos(w)
               + np.cos(delta) * np.sin(phi) * np.sin(beta) * np.cos(gamma) * np.cos(w)
               + np.cos(delta) * np.sin(beta) * np.sin(gamma) * np.sin(w))
        return float(out) if np.ndim(hour_angle_rad) == 0 else out

    def daily_extraterrestrial_wh_m2(self, day_of_year) -> np.ndarray | float:
        """Daily extraterrestrial irradiation on the horizontal plane [Wh/m²].

        Accepts a scalar day-of-year or an array of them (vectorized over the
        day axis for the monthly clearness calibration).
        """
        delta = declination_rad(day_of_year)
        phi = self.latitude_rad
        ws = sunset_hour_angle_rad(phi, delta)
        h0_j = (24.0 * 3600.0 / np.pi) * SOLAR_CONSTANT_W_M2 * eccentricity_factor(day_of_year) * (
            np.cos(phi) * np.cos(delta) * np.sin(ws) + ws * np.sin(phi) * np.sin(delta))
        out = np.maximum(0.0, h0_j) / 3600.0
        return float(out) if np.ndim(day_of_year) == 0 else out

    def hour_angles_rad(self, hours_solar_time) -> np.ndarray:
        """Hour angle for solar times in hours (12 = solar noon)."""
        h = np.asarray(hours_solar_time, dtype=float)
        return np.deg2rad(15.0 * (h - 12.0))

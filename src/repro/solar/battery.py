"""Battery model with the PVGIS off-grid semantics.

PVGIS's off-grid tool takes a battery capacity and a *discharge cutoff limit*:
the controller disconnects the load when the state of charge falls to the
cutoff (40 % in the paper), which protects the battery but means unmet load —
downtime for the repeater.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["Battery"]


@dataclass
class Battery:
    """A simple energy-bucket battery with charge efficiency and a cutoff.

    State of charge (``soc``) is tracked as a fraction of capacity; the
    usable window is [cutoff, 1].
    """

    capacity_wh: float = constants.BATTERY_DEFAULT_WH
    discharge_cutoff: float = constants.BATTERY_DISCHARGE_CUTOFF
    charge_efficiency: float = 0.95
    soc: float = field(default=1.0)

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ConfigurationError(f"capacity must be positive, got {self.capacity_wh}")
        if not 0.0 <= self.discharge_cutoff < 1.0:
            raise ConfigurationError(
                f"discharge cutoff must be in [0, 1), got {self.discharge_cutoff}")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise ConfigurationError(
                f"charge efficiency must be in (0, 1], got {self.charge_efficiency}")
        if not 0.0 <= self.soc <= 1.0:
            raise ConfigurationError(f"SoC must be in [0, 1], got {self.soc}")

    @property
    def stored_wh(self) -> float:
        """Energy above empty (not above the cutoff)."""
        return self.soc * self.capacity_wh

    @property
    def usable_wh(self) -> float:
        """Energy available before the controller cuts the load off."""
        return max(0.0, (self.soc - self.discharge_cutoff) * self.capacity_wh)

    @property
    def headroom_wh(self) -> float:
        """Energy the battery can still absorb."""
        return (1.0 - self.soc) * self.capacity_wh

    @property
    def is_full(self) -> bool:
        return self.soc >= 1.0 - 1e-9

    def charge(self, energy_wh: float) -> float:
        """Charge with PV surplus; returns the energy actually absorbed
        (measured at the input, before efficiency)."""
        if energy_wh < 0:
            raise ConfigurationError(f"charge energy must be >= 0, got {energy_wh}")
        absorbable_in = self.headroom_wh / self.charge_efficiency
        taken = min(energy_wh, absorbable_in)
        self.soc = min(1.0, self.soc + taken * self.charge_efficiency / self.capacity_wh)
        return taken

    def discharge(self, energy_wh: float) -> float:
        """Supply the load; returns the energy actually delivered (cutoff
        limited)."""
        if energy_wh < 0:
            raise ConfigurationError(f"discharge energy must be >= 0, got {energy_wh}")
        delivered = min(energy_wh, self.usable_wh)
        self.soc -= delivered / self.capacity_wh
        return delivered

    def reset(self, soc: float = 1.0) -> None:
        """Reset the state of charge (start of a simulation)."""
        if not 0.0 <= soc <= 1.0:
            raise ConfigurationError(f"SoC must be in [0, 1], got {soc}")
        self.soc = soc
